"""Table 3: prior hardware-based mitigations."""

from conftest import emit

from repro.experiments import table3


def test_table3(once):
    text = once(table3.render)
    emit("table3", text)
    assert "SPT (this work)" in text
