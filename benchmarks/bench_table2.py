"""Table 2: evaluated design variants."""

from conftest import emit

from repro.harness.configs import table2_text


def test_table2(once):
    text = once(table2_text)
    emit("table2", text)
    assert "SPT{Bwd,ShadowL1}" in text
