"""Micro-benchmarks of the simulator itself (throughput, engine overhead).

These use pytest-benchmark's statistics properly (multiple rounds) since
each run is short; they track how expensive each protection engine makes
simulation, which matters when scaling budgets up.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.harness.configs import make_engine
from repro.harness.runner import build_core
from repro.isa.interpreter import run_program
from repro.pipeline import OoOCore
from repro.pipeline.params import MachineParams
from repro.workloads.registry import get

WORKLOAD = "xz"
BUDGET = 1500


def simulate(config: str) -> int:
    program = get(WORKLOAD).program(scale=1)
    engine = make_engine(config, AttackModel.FUTURISTIC)
    sim = OoOCore(program, engine=engine).run(max_instructions=BUDGET)
    return sim.cycles


def simulate_backend(config: str, backend: str) -> int:
    program = get(WORKLOAD).program(scale=1)
    engine = make_engine(config, AttackModel.FUTURISTIC)
    core = build_core(program, engine=engine,
                      params=MachineParams(backend=backend))
    return core.run(max_instructions=BUDGET).cycles


def test_interpreter_throughput(benchmark):
    program = get(WORKLOAD).program(scale=1)
    result = benchmark.pedantic(run_program, args=(program,),
                                kwargs={"max_instructions": BUDGET},
                                rounds=3, iterations=1)
    assert result.retired > 0


@pytest.mark.parametrize("config", ["UnsafeBaseline", "STT",
                                    "SPT{Bwd,ShadowL1}",
                                    "SPT{Ideal,ShadowMem}"])
def test_core_throughput(benchmark, config):
    cycles = benchmark.pedantic(simulate, args=(config,),
                                rounds=2, iterations=1)
    assert cycles > 0


@pytest.mark.parametrize("backend", ["reference", "vector"])
def test_spt_backend_throughput(benchmark, backend):
    # The same protected cell under both execution backends; the cycle
    # counts must agree exactly (bit-identity) while the vector backend's
    # wall-clock should sit well below the reference's.
    cycles = benchmark.pedantic(simulate_backend,
                                args=("SPT{Bwd,ShadowL1}", backend),
                                rounds=2, iterations=1)
    assert cycles == simulate("SPT{Bwd,ShadowL1}")
