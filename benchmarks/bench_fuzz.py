"""Fuzz-campaign throughput: serial vs. parallel oracle sweeps.

A leakage-fuzzing campaign is the harness's most fan-out-heavy client —
every seed costs ``configs x models x 2 secrets`` simulations — so its
throughput (victims per minute) is worth a trajectory line next to the
Figure 7 sweep in ``bench_parallel.py``.  The campaign here is a bounded
slice: quick-profile victims against the sanity configuration and full
SPT, one attack model.
"""

import time

from conftest import emit

from repro.core.attack_model import AttackModel
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.harness.parallel import default_jobs

SEEDS = 12
SWEEP = dict(profile="quick",
             configs=["UnsafeBaseline", "SPT{Bwd,ShadowL1}"],
             models=[AttackModel.SPECTRE], use_cache=False)


def test_fuzz_campaign_throughput(once):
    jobs = default_jobs()

    def two_passes():
        timings = {}
        start = time.perf_counter()
        serial = run_campaign(CampaignConfig(seeds=SEEDS, jobs=1, **SWEEP))
        timings["serial"] = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_campaign(CampaignConfig(seeds=SEEDS, jobs=jobs,
                                               **SWEEP))
        timings["parallel"] = time.perf_counter() - start
        return timings, serial, parallel

    timings, serial, parallel = once(two_passes)

    # Both passes fuzz the same victims and must reach the same verdicts.
    assert serial.ok and parallel.ok, "campaign found counterexamples"
    assert serial.divergences_by_config == parallel.divergences_by_config
    assert serial.unsafe_divergences >= 1, "oracle sanity signal is dead"

    lines = [f"fuzz campaign slice ({SEEDS} seeds x "
             f"{len(SWEEP['configs'])} configs x 1 model x 2 secrets, "
             f"jobs={jobs}):"]
    for name in ("serial", "parallel"):
        wall = timings[name]
        rate = SEEDS / max(wall, 1e-9) * 60
        speedup = timings["serial"] / max(wall, 1e-9)
        lines.append(f"  {name:<10} {wall:8.2f}s  {rate:7.1f} victims/min"
                     f"  ({speedup:4.1f}x vs serial)")
    emit("fuzz_campaign", "\n".join(lines))
