"""Harness throughput: Figure 7 sweep serial vs. parallel vs. warm cache.

Tracks the wall-clock of the same sweep through the three execution paths
of ``repro.harness.parallel.run_many`` so the speedup (and any regression
in pool startup or cache lookup cost) lands in the bench trajectory.  The
sweep is a representative slice of Figure 7 — one attack model, six
workloads, the full configuration column — to keep the three passes
bounded on small runners.
"""

import os
import tempfile
import time

from conftest import budget, emit, scale

from repro.core.attack_model import AttackModel
from repro.harness.configs import FIGURE7_ORDER
from repro.harness.parallel import default_jobs, run_many
from repro.experiments import figure7

WORKLOADS = ["mcf", "xz", "gcc", "leela", "chacha20", "djbsort"]
MODELS = [AttackModel.FUTURISTIC]


def _sweep_specs():
    return figure7.specs(WORKLOADS, FIGURE7_ORDER, MODELS,
                         scale(), budget())


def test_parallel_sweep_speedup(once):
    jobs = default_jobs()
    specs = _sweep_specs()

    def three_passes():
        timings = {}
        start = time.perf_counter()
        serial = run_many(specs, jobs=1, use_cache=False)
        timings["serial"] = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_many(specs, jobs=jobs, use_cache=False)
        timings["parallel"] = time.perf_counter() - start

        with tempfile.TemporaryDirectory() as cache_dir:
            os.environ["REPRO_CACHE_DIR"] = cache_dir
            try:
                run_many(specs, jobs=jobs, use_cache=True)   # fill
                start = time.perf_counter()
                warm = run_many(specs, jobs=jobs, use_cache=True)
                timings["warm-cache"] = time.perf_counter() - start
            finally:
                del os.environ["REPRO_CACHE_DIR"]
        return timings, serial, parallel, warm

    timings, serial, parallel, warm = once(three_passes)

    for a, b in ((serial, parallel), (serial, warm)):
        assert [(r.cycles, r.retired) for r in a] == \
            [(r.cycles, r.retired) for r in b], "paths disagree"

    lines = [f"Figure 7 slice ({len(specs)} runs, {len(WORKLOADS)} workloads"
             f" x {len(FIGURE7_ORDER) + 1} configs, budget={budget()},"
             f" jobs={jobs}):"]
    for name in ("serial", "parallel", "warm-cache"):
        speedup = timings["serial"] / max(timings[name], 1e-9)
        lines.append(f"  {name:<12} {timings[name]:8.2f}s"
                     f"  ({speedup:5.1f}x vs serial)")
    emit("parallel_harness", "\n".join(lines))

    # The warm cache must be dramatically cheaper than simulating; the
    # parallel/serial ratio is informational (it depends on core count).
    assert timings["warm-cache"] < timings["serial"] / 2
