"""Table 1: simulated architecture parameters."""

from conftest import emit

from repro.pipeline.params import table1_text


def test_table1(once):
    text = once(table1_text)
    emit("table1", "Table 1: Simulated architecture parameters\n" + text)
    assert "192 ROB" in text
