"""Shared configuration for the benchmark harness.

Every paper table/figure has one bench module.  Simulation sizes default to
small-but-meaningful budgets so the full harness completes in minutes; set
``REPRO_BENCH_BUDGET`` (retired instructions per run, default below) and
``REPRO_BENCH_SCALE`` (workload scale factor) to run closer to paper scale.
"""

import os
import time

import pytest

from repro.harness.runner import bench_budget, bench_scale

DEFAULT_BUDGET = 800

_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
_SESSION_START = None


def budget() -> int:
    return bench_budget(DEFAULT_BUDGET)


def scale() -> int:
    return bench_scale()


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""
    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return run


def emit(name: str, text: str) -> None:
    """Persist a rendered table/figure for the terminal summary.

    Each bench writes its output to ``benchmarks/output/<name>.txt``; the
    terminal-summary hook below re-reads and prints every file written
    during the session (after the pytest-benchmark table), so the paper
    tables land in ``bench_output.txt`` when the harness is piped through
    ``tee``.  (The hook cannot share in-memory state with this function:
    pytest imports its conftest copy under a different module name than the
    benches' ``from conftest import emit``.)
    """
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(_OUTPUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def pytest_sessionstart(session):
    global _SESSION_START
    _SESSION_START = time.time()


def pytest_terminal_summary(terminalreporter):
    if not os.path.isdir(_OUTPUT_DIR):
        return
    for filename in sorted(os.listdir(_OUTPUT_DIR)):
        path = os.path.join(_OUTPUT_DIR, filename)
        if _SESSION_START and os.path.getmtime(path) < _SESSION_START - 1:
            continue
        terminalreporter.section(f"paper output: {filename}")
        with open(path) as handle:
            terminalreporter.write(handle.read())
