"""Figure 7 + Section 9.2: normalised execution time of every configuration.

Regenerates both panels of Figure 7 (Futuristic and Spectre attack models)
over the full benchmark suite, plus the Section 9.2 headline numbers with
the paper's values alongside.  Expect the *shape* to match the paper (who
wins, by roughly what factor); absolute numbers come from a different
substrate (see DESIGN.md).
"""

from conftest import budget, emit, scale

from repro.experiments import figure7


def test_figure7_full_sweep(once):
    # use_cache=False: this bench tracks simulation throughput; the cache
    # paths are measured by bench_parallel.py.
    data = once(figure7.collect, budget=budget(), scale=scale(),
                use_cache=False)
    emit("figure7", figure7.render(data) + "\n\n"
         + figure7.render_headline(figure7.headline(data)))
    # Shape assertions (Section 9.2): SPT beats SecureBaseline on average in
    # both models, and the constant-time kernels are near-free under SPT.
    numbers = figure7.headline(data)
    assert numbers["overhead_reduction_futuristic"] > 1.5
    assert numbers["overhead_reduction_spectre"] > 1.0
    assert numbers["ct_spt_slowdown_futuristic"] < \
        numbers["ct_secure_slowdown_futuristic"]
