"""Section 9.4 ablation: execution time vs. untaint broadcast width."""

from conftest import budget, emit, scale

from repro.experiments import figure9


def test_width_sweep(once):
    sweep = once(figure9.width_sweep, widths=(1, 2, 3, 4, 8),
                 budget=budget(), scale=scale(), use_cache=False)
    emit("width_sweep", figure9.render_width_sweep(sweep))
    cycles = sweep["cycles"]
    for workload in sweep["workloads"]:
        # Wider broadcast never hurts; width 3 is within 2% of width 8
        # (the paper's justification for choosing 3).
        assert cycles[(3, workload)] <= cycles[(1, workload)] + 5
        assert cycles[(3, workload)] <= 1.05 * cycles[(8, workload)] + 5
