"""Figure 8: breakdown of untaint-event types per benchmark."""

from conftest import budget, emit, scale

from repro.experiments import figure8


def test_figure8_breakdown(once):
    data = once(figure8.collect, budget=budget(), scale=scale(),
                use_cache=False)
    emit("figure8", figure8.render(data))
    # At least one benchmark must exercise each of the main mechanisms.
    all_kinds = set()
    for counts in data.counts.values():
        all_kinds.update(k for k, v in counts.items() if v)
    assert "vp-transmitter" in all_kinds
    assert "forward" in all_kinds
    assert "shadow-l1" in all_kinds
