"""Figure 9: registers untainted per untainting cycle (ideal propagation)."""

from conftest import budget, emit, scale

from repro.experiments import figure9


def test_figure9_cdf(once):
    data = once(figure9.collect, budget=budget(), scale=scale(),
                use_cache=False)
    emit("figure9", figure9.render(data))
    average = data.average_cdf()
    # Paper: ~81% of untainting cycles untaint at most 3 registers; assert
    # the qualitative claim that width 3 covers the majority of cycles.
    assert average[2] >= 0.5
