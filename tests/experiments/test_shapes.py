"""Shape tests for the experiment reproductions.

These run scaled-down versions of the paper's sweeps and assert the
qualitative findings of Section 9 (see DESIGN.md, "Expected shapes"):
ordering of configurations, model gaps, constant-time behaviour, and the
Figure 9 broadcast-width distribution.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.experiments import figure7, figure8, figure9, table3
from repro.harness.configs import FULL_SPT

SMALL_WORKLOADS = ["mcf", "x264", "chacha20", "djbsort"]
BUDGET = 1200


@pytest.fixture(scope="module")
def fig7():
    return figure7.collect(workloads=SMALL_WORKLOADS, budget=BUDGET)


def test_secure_baseline_dominates_spt(fig7):
    for model in fig7.models:
        assert fig7.mean_normalized(model, "SecureBaseline") >= \
            fig7.mean_normalized(model, FULL_SPT) - 1e-9


def test_spt_never_faster_than_unsafe(fig7):
    for model in fig7.models:
        for workload in fig7.workloads:
            assert fig7.normalized(model, workload, FULL_SPT) >= 0.99


def test_stt_at_most_spt_overhead_on_pointer_chasing(fig7):
    # STT's protection scope is narrower, so on workloads dominated by
    # chains of dependent transmitters it is cheaper than SPT.  (On
    # spill/reload patterns the relation can invert: STT taints every
    # speculative load output while SPT's shadow L1 knows the spilled data
    # is public — so the comparison is made per-workload, not on the mean.)
    for model in fig7.models:
        assert fig7.normalized(model, "mcf", "STT") <= \
            fig7.normalized(model, "mcf", FULL_SPT) + 1e-9


def test_futuristic_costs_at_least_spectre(fig7):
    for config in ("SecureBaseline", FULL_SPT):
        fut = fig7.mean_normalized(AttackModel.FUTURISTIC, config)
        spe = fig7.mean_normalized(AttackModel.SPECTRE, config)
        assert fut >= spe - 0.01


def test_incremental_spt_mechanisms_weakly_improve(fig7):
    order = ["SPT{Fwd,NoShadowL1}", "SPT{Bwd,NoShadowL1}",
             "SPT{Bwd,ShadowL1}", "SPT{Bwd,ShadowMem}"]
    for model in fig7.models:
        means = [fig7.mean_normalized(model, c) for c in order]
        for earlier, later in zip(means, means[1:]):
            assert later <= earlier + 0.02


def test_constant_time_kernels_near_free_under_spt(fig7):
    for workload in ("chacha20", "djbsort"):
        assert fig7.normalized(AttackModel.FUTURISTIC, workload,
                               FULL_SPT) <= 1.15
        assert fig7.normalized(AttackModel.FUTURISTIC, workload,
                               "SecureBaseline") >= 1.5


def test_render_produces_both_panels(fig7):
    text = figure7.render(fig7)
    assert "futuristic" in text and "spectre" in text
    for workload in SMALL_WORKLOADS:
        assert workload in text


def test_headline_numbers_computable(fig7):
    numbers = figure7.headline(fig7)
    assert numbers["overhead_reduction_futuristic"] > 1.0
    assert numbers["spt_overhead_futuristic"] >= 0.0
    text = figure7.render_headline(numbers)
    assert "paper" in text


def test_figure8_breakdown_nonempty_for_mcf():
    data = figure8.collect(workloads=["mcf", "perlbench"], budget=BUDGET)
    counts = data.counts[(AttackModel.FUTURISTIC, "mcf")]
    assert sum(counts.values()) > 0
    text = figure8.render(data)
    assert "mcf" in text and "vp-transmitter" in text


def test_figure9_most_cycles_untaint_few_registers():
    data = figure9.collect(workloads=["mcf", "parest", "perlbench"],
                           budget=BUDGET)
    average = data.average_cdf()
    # The paper finds ~81% of untainting cycles untaint <= 3 registers.
    assert average[2] >= 0.5
    assert average[-1] >= average[0]       # CDF is monotone
    text = figure9.render(data)
    assert "<=3" in text


def test_width_sweep_monotone_improvement():
    sweep = figure9.width_sweep(widths=(1, 3, 8), workloads=["mcf"],
                                budget=BUDGET)
    cycles = sweep["cycles"]
    assert cycles[(8, "mcf")] <= cycles[(1, "mcf")] + 5
    text = figure9.render_width_sweep(sweep)
    assert "width=3" in text


def test_table3_renders_all_schemes():
    text = table3.render()
    assert "SPT (this work)" in text
    assert "Non-spec secrets" in text
    assert "STT" in text
    assert text.count("\n") >= 18
