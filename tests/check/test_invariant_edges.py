"""Regression tests pinning invariant edge cases the sanitizer surfaced.

The first tests pin the two real bugs the checker found in the tree:

* Explicit L1 flushes (the clflush-style attack-harness helpers) bypassed
  ``on_l1_evict``, so the shadow L1 kept stale untainted bytes for lines
  no longer resident — a silent violation of the paper's Section 6.8 rule
  that eviction re-taints.
* A store whose retire-time cache access stalled on exhausted MSHRs (no
  L1 fill happens) still wrote its data taint into the shadow, creating a
  shadow image of a line that was never installed.  Found by the full
  sanitizer grid on perlbench under SPT{Bwd,ShadowL1}/spectre.

The remaining tests pin the trickiest clean-path edges at
``check_level=full``: store-to-load forwarding on a squashed wrong path,
and untaint ordering when a declassification burst overruns the width-3
broadcast bus.
"""

from __future__ import annotations

from repro.core.attack_model import AttackModel
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.isa.assembler import assemble
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams


def full_params() -> MachineParams:
    return MachineParams(check_level="full")


def spt_shadow_engine() -> SPTEngine:
    return SPTEngine(AttackModel.FUTURISTIC, backward=True,
                     shadow=ShadowMode.L1)


def test_flush_l1_line_invalidates_shadow():
    """An explicit flush must drop the shadow line like a demand eviction.

    Before the fix, ``MemoryHierarchy.flush_l1_line`` invalidated the L1
    tag without telling the engine, and the very next full-level cycle
    scan raised ``shadow-residency``.
    """
    engine = spt_shadow_engine()
    program = assemble("""
        li s2, 0x4000
        li a0, 5
        sd a0, 0(s2)
        halt
    """)
    core = OoOCore(program, engine=engine, params=full_params())
    # Step until the store has retired and created its shadow line.
    for _ in range(200):
        core.step()
        if 0x4000 in engine.shadow.lines():
            break
    assert 0x4000 in engine.shadow.lines(), "store never shadowed its line"

    assert core.hierarchy.flush_l1_line(0x4000)
    assert 0x4000 not in engine.shadow.lines(), \
        "flush left a stale shadow line behind"
    # The sanitizer agrees: draining the pipeline raises nothing.
    while not core.halted:
        core.step()


def test_flush_all_invalidates_shadow():
    engine = spt_shadow_engine()
    program = assemble("""
        li s2, 0x4000
        li a0, 5
        sd a0, 0(s2)
        sd a0, 64(s2)
        halt
    """)
    core = OoOCore(program, engine=engine, params=full_params())
    while not core.halted:
        core.step()
    assert engine.shadow.lines(), "stores never shadowed their lines"
    core.hierarchy.flush_all()
    assert engine.shadow.lines() == []


def test_mshr_stalled_store_retire_keeps_shadow_resident():
    """An MSHR-stalled store retire must not forge a shadow line.

    A dependent ALU chain holds the store at the ROB head while twenty
    younger loads to distinct cold lines saturate the sixteen MSHRs, so
    the store's retire-time access stalls and no L1 fill happens.  Before
    the fix SPT still mirrored the store data's taint into the shadow and
    the very next cycle scan raised ``shadow-residency``; now the bytes
    keep their conservative default (absent line = tainted) until a real
    fill occurs.
    """
    engine = spt_shadow_engine()
    source = ["li s1, 0x4000", "li t0, 1"]
    source += ["addi t0, t0, 1"] * 40
    source.append("sd s1, 0(s1)")
    for i in range(20):
        source.append(f"ld a{i % 8}, {64 * (i + 1)}(s1)")
    source.append("halt")
    core = OoOCore(assemble("\n".join(source)), engine=engine,
                   params=full_params())
    sim = core.run(max_instructions=1000)
    assert sim.halted
    # The store's line never became resident at retire time, so its bytes
    # read back tainted (the safe direction) instead of shadow-untainted.
    checks = sim.metrics.groups["check"].groups["passed"].scalars
    assert checks.get("shadow-residency", 0) > 0


def test_wrong_path_store_forwarding_stays_clean():
    """Mispredicted-branch store forwarding: wrong-path stores feed
    wrong-path loads while the branch hangs on a DRAM miss, then the whole
    chain is squashed.  The full-level scans (squash-complete,
    lsq-forwarding, final-state) must all stay quiet."""
    program = assemble("""
        li s2, 0x100000
        li a0, 7
        ld t0, 0(s2)
        beq t0, zero, skip
        sd a0, 8(s2)
        ld a1, 8(s2)
        add a2, a1, a0
        skip:
        sd a0, 16(s2)
        ld a3, 16(s2)
        halt
    """)
    core = OoOCore(program, params=full_params())
    sim = core.run(max_instructions=1000)
    assert sim.halted
    assert core.n_mispredicts >= 1, "the wrong path was never entered"
    checks = sim.metrics.groups["check"].groups["passed"].scalars
    assert checks.get("squash-complete", 0) > 0
    assert checks.get("lsq-forwarding", 0) > 0


def test_untaint_burst_respects_broadcast_ordering():
    """A mass declassification (frontier sweep over eight stores with
    distinct tainted address registers) overruns the width-3 bus; the
    queue must drain in order across cycles without tripping
    broadcast-width or taint-monotonic."""
    source = ["li t1, 0x100000", "ld t2, 0(t1)", "bne t2, zero, out"]
    for reg in ("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"):
        source.append(f"sd zero, 0({reg})")
    source.extend(["out:", "    halt"])
    engine = SPTEngine(AttackModel.SPECTRE, backward=True)
    core = OoOCore(assemble("\n".join(source)), engine=engine,
                   params=full_params())
    sim = core.run(max_instructions=1000)
    assert sim.halted
    # The burst was real: the bus stalled at least once with a backlog.
    assert engine.untaint.broadcast_stall_cycles >= 1
    checks = sim.metrics.groups["check"].groups["passed"].scalars
    assert checks.get("broadcast-width", 0) > 0
    assert checks.get("taint-monotonic", 0) > 0
