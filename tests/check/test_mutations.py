"""Seeded-bug mutation suite: the sanitizer must catch every mutation.

Each test injects one bug into the pipeline or a protection engine — via
monkeypatching, never by editing source — runs a program at
``check_level=full``, and asserts that the sanitizer raises
:class:`InvariantViolation` with the *correct* invariant id.  This is the
checker checking the checker: a sanitizer that misses any of these seeded
bugs, or attributes one to the wrong invariant, fails here.
"""

from __future__ import annotations

import pytest

from repro.check import InvariantViolation
from repro.core.attack_model import AttackModel
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.core.stt import STTEngine
from repro.isa.assembler import assemble
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams
from repro.workloads.random_programs import random_program


def checked_params() -> MachineParams:
    return MachineParams(check_level="full")


def spt_engine(shadow: ShadowMode = ShadowMode.NONE) -> SPTEngine:
    return SPTEngine(AttackModel.FUTURISTIC, backward=True, shadow=shadow)


def run_checked(program, engine=None, params=None, budget=20_000):
    core = OoOCore(program, engine=engine, params=params or checked_params())
    return core.run(max_instructions=budget)


def expect_violation(invariant: str, program, engine=None, params=None,
                     budget=20_000) -> InvariantViolation:
    with pytest.raises(InvariantViolation) as exc_info:
        run_checked(program, engine=engine, params=params, budget=budget)
    violation = exc_info.value
    assert violation.invariant == invariant, (
        f"caught by {violation.invariant!r}, expected {invariant!r}:\n"
        f"{violation}")
    return violation


# A program with transient execution: a loop whose final iteration
# mispredicts, dependent loads/stores, and initially-tainted inputs.
LOOP_WITH_MEMORY = """
    li s2, 0x4000
    li t0, 0
    li t1, 8
loop:
    sd t0, 0(s2)
    ld a0, 0(s2)
    addi s2, s2, 8
    addi t0, t0, 1
    bne t0, t1, loop
    halt
"""


# ---------------------------------------------------------------- mutations
def test_mutation_drop_taint_on_rename(monkeypatch):
    """Seeded bug: rename forgets the source-operand taint bits."""
    original = SPTEngine.on_rename

    def buggy(self, di):
        original(self, di)
        di.t_src1 = False           # drops the Section 6.3 entry taint

    monkeypatch.setattr(SPTEngine, "on_rename", buggy)
    expect_violation("taint-init", random_program(7), engine=spt_engine())


def test_mutation_untaint_one_cycle_early(monkeypatch):
    """Seeded bug: transmitters declassified while still transient."""
    original = SPTEngine.tick

    def buggy(self):
        original(self)
        for di in self.core.in_flight():
            if di.is_transmitter and not di.squashed:
                self._declassify(di)        # ignores the VP frontier

    monkeypatch.setattr(SPTEngine, "tick", buggy)
    expect_violation("vp-declassify", assemble(LOOP_WITH_MEMORY),
                     engine=spt_engine())


def test_mutation_skip_squash_of_wrong_path_load(monkeypatch):
    """Seeded bug: a squashed wrong-path load lingers in the LSQ."""
    original = OoOCore._squash_after

    def buggy(self, di):
        original(self, di)
        # Resurrect the youngest squashed load into the LSQ.
        if self.squash_sink:
            for victim in self.squash_sink:
                if victim.is_load:
                    self.lsq.append(victim)
                    break
            self.squash_sink.clear()

    monkeypatch.setattr(OoOCore, "_squash_after", buggy)
    # The branch predicate hangs on a DRAM miss, so the wrong path (gshare
    # starts weakly not-taken; the branch is actually taken) is dispatched
    # into the ROB/LSQ long before the late mispredict squashes it.
    program = assemble("""
        li s2, 0x100000
        ld t0, 0(s2)
        beq t0, zero, skip
        sd t0, 0(s2)
        ld a0, 0(s2)
        addi t0, t0, 1
skip:
        halt
    """)
    with pytest.raises(InvariantViolation) as exc_info:
        core = OoOCore(program, params=checked_params())
        core.squash_sink = []
        core.run(max_instructions=20_000)
    assert exc_info.value.invariant == "squash-complete", str(exc_info.value)


def test_mutation_forward_from_stale_store(monkeypatch):
    """Seeded bug: store-to-load forwarding picks the oldest match."""
    original = OoOCore._memory_dependences

    def buggy(self, load):
        blocked, forward = original(self, load)
        if forward is not None:
            for st in self.lsq:          # oldest matching store wins instead
                if st.seq >= load.seq:
                    break
                if (st.is_store and not st.squashed and st.addr_ready
                        and st.address == load.address
                        and st.info.mem_size >= load.info.mem_size):
                    return blocked, st
        return blocked, forward

    monkeypatch.setattr(OoOCore, "_memory_dependences", buggy)
    program = assemble("""
        li s2, 0x4000
        li a0, 1
        sd a0, 0(s2)
        li a0, 2
        sd a0, 0(s2)
        ld a1, 0(s2)
        halt
    """)
    expect_violation("lsq-forwarding", program)


# A tainted-address load parked behind a DRAM-miss VP obstacle.  The
# obstacle matters: ``advance_vp`` marks the *first* obstacle itself as
# having reached the VP, so the oldest in-flight transmitter is always
# legal — the gated load must sit behind an older incomplete load for the
# futuristic-model frontier to hold it transient.
GATED_LOAD_BEHIND_MISS = """
    li s2, 0x100000
    ld a4, 0(s2)
    ld a1, 0(a0)
    halt
"""


def test_mutation_gated_transmitter_touches_cache():
    """Seeded bug: the engine stops gating tainted-address transmitters."""
    engine = spt_engine()
    engine.may_compute_address = lambda di: True    # type: ignore[assignment]
    # x10 is never written: its initial value is tainted, so the load's
    # address operand is secret and must not reach the cache pre-VP.
    expect_violation("gated-transmitter", assemble(GATED_LOAD_BEHIND_MISS),
                     engine=engine)


def test_mutation_resolution_bypasses_gate():
    """Seeded bug: branch resolution ignores the taint gate."""
    engine = spt_engine()
    engine.may_resolve = lambda di: True            # type: ignore[assignment]
    # The load is a long-latency VP obstacle (futuristic model); the branch
    # behind it resolves with tainted predicate registers.
    program = assemble("""
        li s2, 0x100000
        ld a1, 0(s2)
        beq a2, a3, skip
        addi t0, t0, 1
skip:
        halt
    """)
    expect_violation("gated-resolution", program, engine=engine)


def test_mutation_broadcast_overruns_width(monkeypatch):
    """Seeded bug: the untaint broadcast ignores its width limit."""
    original = SPTEngine._broadcast

    def buggy(self, limit):
        return original(self, limit=None)           # unbounded broadcast

    monkeypatch.setattr(SPTEngine, "_broadcast", buggy)
    # Eight stores with distinct tainted address registers pile up behind a
    # branch whose predicate hangs on a DRAM miss (the only Spectre-model
    # obstacle).  Resolution releases the frontier in one sweep: all eight
    # stores declassify in the same tick, queueing eight untaint requests —
    # more than the width-3 broadcast bus may retire in one cycle.
    source = ["li t1, 0x100000", "ld t2, 0(t1)", "bne t2, zero, out"]
    for reg in ("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"):
        source.append(f"sd zero, 0({reg})")
    source.extend(["out:", "    halt"])
    engine = SPTEngine(AttackModel.SPECTRE, backward=True)
    expect_violation("broadcast-width", assemble("\n".join(source)),
                     engine=engine)


def test_mutation_missed_shadow_eviction():
    """Seeded bug: L1 evictions stop invalidating the shadow L1."""
    engine = spt_engine(shadow=ShadowMode.L1)
    engine.on_l1_evict = lambda line: None          # type: ignore[assignment]
    # The store creates a shadow line when it retires and fills the L1.  The
    # conflict walk must run *after* that retire, so its address chains
    # through a DRAM miss: t3 becomes 0x4000 only once the miss returns,
    # long after the store's line (the set's LRU entry by then) is resident.
    # Nine more lines of the same set (32 KB / 64 B / 8 ways -> 4 KB stride)
    # then force its eviction.
    source = ["li s2, 0x4000", "li a0, 5", "sd a0, 0(s2)",
              "li t1, 0x100000", "ld t2, 0(t1)", "add t3, t2, s2"]
    for way in range(1, 10):
        source.append(f"ld a1, {way * 4096}(t3)")
    source.append("halt")
    expect_violation("shadow-residency", assemble("\n".join(source)),
                     engine=engine)


def test_mutation_retire_corrupts_store_data(monkeypatch):
    """Seeded bug: stores retire with a corrupted data value."""
    original = OoOCore._retire

    def buggy(self, di):
        if di.is_store:
            di.rs2_value = (di.rs2_value or 0) + 1
        original(self, di)

    monkeypatch.setattr(OoOCore, "_retire", buggy)
    expect_violation("mem-equality", assemble(LOOP_WITH_MEMORY))


def test_mutation_stt_root_dropped(monkeypatch):
    """Seeded bug: STT forgets to propagate the youngest root of taint."""
    original = STTEngine.on_rename

    def buggy(self, di):
        original(self, di)
        if not di.is_load and di.prd >= 0:
            self._root_of.pop(di.prd, None)         # dependents untainted

    monkeypatch.setattr(STTEngine, "on_rename", buggy)
    # ``ld t2`` cold-misses to DRAM: it installs the line (so the root load's
    # mandatory cache access behind store-to-load forwarding is an L1 hit and
    # completes quickly) and stays incomplete for ~150 cycles, holding the VP
    # frontier — the root stays live while the dependent chain feeds the
    # second load's address.  Dropping the root at ``add`` lets that load
    # issue while speculatively shadowed; the sanitizer's private YRoT map
    # disagrees and flags the transmit.
    engine = STTEngine(AttackModel.FUTURISTIC)
    program = assemble("""
        li s2, 0x4000
        li a0, 8
        ld t2, 0(s2)
        sd a0, 0(s2)
        ld a1, 0(s2)
        add a2, a1, s2
        ld a3, 0(a2)
        halt
    """)
    expect_violation("gated-transmitter", program, engine=engine)


# ------------------------------------------------------------ meta checks
def test_clean_run_raises_nothing():
    """The same programs pass with no mutation applied (control group)."""
    for engine in (None, spt_engine(shadow=ShadowMode.L1),
                   STTEngine(AttackModel.SPECTRE)):
        sim = run_checked(assemble(LOOP_WITH_MEMORY), engine=engine)
        assert sim.halted
        assert sim.metrics.groups["check"].scalars["total"] > 0


def test_violation_reports_carry_context():
    """A violation names the invariant, cycle, and offending instruction."""
    engine = spt_engine()
    engine.may_compute_address = lambda di: True    # type: ignore[assignment]
    violation = expect_violation(
        "gated-transmitter", assemble(GATED_LOAD_BEHIND_MISS), engine=engine)
    assert violation.cycle > 0
    assert violation.inst is not None
    assert "gated-transmitter" in str(violation)
