"""Unit tests for the sanitizer plumbing (clean paths, levels, metrics)."""

from __future__ import annotations

import pickle

import pytest

from repro.check import InvariantViolation, Sanitizer
from repro.check.invariants import CHECK_LEVELS, INVARIANTS, invariants_at
from repro.core.attack_model import AttackModel
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.core.stt import STTEngine
from repro.isa.assembler import assemble
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams

PROGRAM = """
    li s2, 0x4000
    li t0, 0
    li t1, 6
loop:
    sd t0, 0(s2)
    ld a0, 0(s2)
    addi s2, s2, 8
    addi t0, t0, 1
    bne t0, t1, loop
    halt
"""


def run_at(level, engine=None):
    core = OoOCore(assemble(PROGRAM), engine=engine,
                   params=MachineParams(check_level=level))
    return core, core.run(max_instructions=5000)


def test_off_level_attaches_no_checker():
    core, sim = run_at("off")
    assert core.checker is None
    assert sim.halted
    assert "check" not in sim.metrics.groups


def test_commit_level_runs_lockstep_only():
    core, sim = run_at("commit")
    assert core.checker is not None and not core.checker.full
    check = sim.metrics.groups["check"]
    assert check.scalars["level"] == 1
    passed = check.groups["passed"].scalars
    assert passed["retire-order"] == sim.retired
    # Full-level scans did not run.
    assert "vp-frontier" not in passed
    assert check.scalars["total"] == sum(passed.values())


def test_full_level_covers_engine_invariants():
    engine = SPTEngine(AttackModel.FUTURISTIC, backward=True,
                       shadow=ShadowMode.L1)
    core, sim = run_at("full", engine=engine)
    passed = sim.metrics.groups["check"].groups["passed"].scalars
    for invariant in ("retire-order", "pc-sequence", "reg-equality",
                      "final-state", "rob-age-order", "vp-frontier",
                      "taint-init", "taint-monotonic", "broadcast-width",
                      "zero-reg", "shadow-residency", "stall-identity"):
        assert passed.get(invariant, 0) > 0, invariant


def test_stt_shadow_root_map_tracks_engine():
    """On clean runs the sanitizer's private YRoT map mirrors the engine's
    gating decisions — no false positives."""
    engine = STTEngine(AttackModel.FUTURISTIC)
    core, sim = run_at("full", engine=engine)
    assert sim.halted
    passed = sim.metrics.groups["check"].groups["passed"].scalars
    assert passed.get("gated-transmitter", 0) > 0


def test_invalid_level_rejected():
    with pytest.raises(ValueError):
        MachineParams(check_level="paranoid").validate()
    core, _ = run_at("off")
    with pytest.raises(ValueError):
        Sanitizer(core, "off")
    with pytest.raises(ValueError):
        Sanitizer(core, "bogus")


def test_checked_run_is_timing_neutral():
    """The sanitizer is passive: cycle-for-cycle identical schedules."""
    results = {}
    for level in CHECK_LEVELS:
        engine = SPTEngine(AttackModel.FUTURISTIC, backward=True)
        _, sim = run_at(level, engine=engine)
        results[level] = (sim.cycles, sim.retired)
    assert results["off"] == results["commit"] == results["full"]


def test_violation_pickles_across_process_boundary():
    """ProcessPoolExecutor transports violations by pickling."""
    violation = InvariantViolation(
        "vp-frontier", 123, "frontier disagreement",
        inst="#7 ld x13, 0(x12)", window=["cycle 120: retire #5"])
    clone = pickle.loads(pickle.dumps(violation))
    assert isinstance(clone, InvariantViolation)
    assert clone.invariant == "vp-frontier"
    assert clone.cycle == 123
    assert "frontier disagreement" in str(clone)
    assert "ld x13" in str(clone)


def test_invariant_registry_is_consistent():
    assert CHECK_LEVELS == ("off", "commit", "full")
    assert {spec.id for spec in invariants_at("full")} == set(INVARIANTS)
    commit_ids = {spec.id for spec in invariants_at("commit")}
    assert commit_ids < set(INVARIANTS)
    assert invariants_at("off") == []
    for spec in INVARIANTS.values():
        assert spec.level in ("commit", "full")
        assert spec.section and spec.description
