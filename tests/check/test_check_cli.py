"""Tests for the ``repro check`` sweep command."""

from __future__ import annotations

import pytest

from repro.check.cli import (SMOKE_CONFIGS, SMOKE_WORKLOADS, check_counts,
                             _parse_configs, _parse_workloads, main)
from repro.harness.configs import CONFIGURATIONS
from repro.workloads.registry import WORKLOADS


def test_smoke_grid_is_well_formed():
    for name in SMOKE_WORKLOADS:
        assert name in WORKLOADS
    for name in SMOKE_CONFIGS:
        assert name in CONFIGURATIONS


def test_parse_configs_honours_braces():
    names = _parse_configs("STT,SPT{Bwd,ShadowL1}")
    assert names == ["STT", "SPT{Bwd,ShadowL1}"]
    with pytest.raises(SystemExit):
        _parse_configs("NotAConfig")
    with pytest.raises(SystemExit):
        _parse_configs(",")


def test_parse_workloads_rejects_unknown():
    assert _parse_workloads("mcf,chacha20") == ["mcf", "chacha20"]
    with pytest.raises(SystemExit):
        _parse_workloads("quake3")


def test_check_counts_extraction():
    blob = {"groups": {"check": {"groups": {"passed": {
        "scalars": {"pc-sequence": 7, "zero-reg": 3}}}}}}
    assert check_counts(blob) == {"pc-sequence": 7, "zero-reg": 3}
    assert check_counts({}) == {}


def test_single_cell_sweep_passes(capsys):
    code = main(["--workloads", "chacha20", "--configs", "STT",
                 "--models", "spectre", "--budget", "300", "--jobs", "1",
                 "--no-cache"])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 cells clean at check_level=full" in out
    assert "pc-sequence" in out and "gated-transmitter" in out


def test_violation_fails_the_sweep(capsys, monkeypatch):
    from repro.check.violation import InvariantViolation
    from repro.harness import parallel

    def exploding(specs, jobs=None, use_cache=None):
        raise parallel.RunFailure(
            specs[0], str(InvariantViolation("vp-frontier", 9, "boom")))

    monkeypatch.setattr("repro.check.cli.run_many", exploding)
    code = main(["--workloads", "chacha20", "--configs", "STT",
                 "--models", "spectre"])
    err = capsys.readouterr().err
    assert code == 1
    assert "INVARIANT VIOLATION" in err
    assert "vp-frontier" in err


def test_commit_level_sweep(capsys):
    code = main(["--workloads", "chacha20", "--configs", "UnsafeBaseline",
                 "--models", "spectre", "--level", "commit",
                 "--budget", "300", "--jobs", "1", "--no-cache"])
    out = capsys.readouterr().out
    assert code == 0
    assert "check_level=commit" in out
