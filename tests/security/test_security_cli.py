"""The ``repro pentest`` command-line interface."""

import json

import pytest

from repro.security.cli import main as pentest_main


def test_list_describes_every_scenario(capsys):
    assert pentest_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("spectre-pht", "spectre-btb", "spectre-rsb", "spectre-stl",
                 "nonspec-secret", "uninit-transient"):
        assert name in out


def test_single_cell_json(capsys):
    code = pentest_main(["--scenario", "spectre-pht",
                         "--configs", "UnsafeBaseline",
                         "--models", "spectre", "--json"])
    assert code == 0
    cells = json.loads(capsys.readouterr().out)
    assert cells == [{"scenario": "spectre-pht", "config": "UnsafeBaseline",
                      "model": "SPECTRE", "leaked": True, "expected": True,
                      "passed": True}]


def test_table_output_and_exit_status(capsys):
    code = pentest_main(["--scenario", "spectre-rsb",
                         "--configs", "UnsafeBaseline,STT,SPT{Bwd,ShadowL1}",
                         "--models", "spectre"])
    assert code == 0
    out = capsys.readouterr().out
    assert "spectre-rsb" in out and "LEAK" in out
    assert "(!)" not in out


def test_unknown_scenario_is_a_usage_error(capsys):
    assert pentest_main(["--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_unknown_config_and_model_raise_systemexit():
    with pytest.raises(SystemExit):
        pentest_main(["--configs", "NotAConfig"])
    with pytest.raises(SystemExit):
        pentest_main(["--models", "quantum"])


def test_dispatch_through_top_level_cli(capsys):
    from repro.cli import main as top_main
    assert top_main(["pentest", "--list"]) == 0
    assert "spectre-btb" in capsys.readouterr().out
