"""The attack scenario library and its declarative leak-expectation table.

The full matrix (every scenario x Table 2 config x attack model) must match
the expectation rows exactly:

* speculative exposure (spectre-pht, spectre-stl, uninit-transient): only
  UnsafeBaseline leaks;
* non-speculative exposure (spectre-btb, spectre-rsb, nonspec-secret):
  UnsafeBaseline *and STT* leak — the protection-scope gap SPT closes.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.harness.configs import CONFIGURATIONS
from repro.security import attacks, scenarios

from tests.conftest import BOTH_MODELS

NONSPEC_LEAKERS = ("UnsafeBaseline", "STT")


def test_registry_covers_all_variants():
    assert set(scenarios.SCENARIOS) == {
        "spectre-pht", "spectre-btb", "spectre-rsb", "spectre-stl",
        "nonspec-secret", "uninit-transient"}
    for s in scenarios.SCENARIOS.values():
        assert set(s.expected) == set(CONFIGURATIONS)


def test_alias_resolves_to_registered_scenario():
    assert scenarios.get_scenario("spectre-v1").name == "spectre-pht"


def test_expectation_rows():
    for name, s in scenarios.SCENARIOS.items():
        for config in CONFIGURATIONS:
            expected = scenarios.expected_to_leak(name, config)
            if config == "UnsafeBaseline":
                assert expected, f"{name} must leak on the unsafe baseline"
            elif s.exposure == scenarios.NONSPECULATIVE:
                assert expected == (config == "STT"), (name, config)
            else:
                assert not expected, (name, config)


def test_expected_to_leak_rejects_unknown_names():
    with pytest.raises(KeyError):
        scenarios.expected_to_leak("spectre-pht", "NotAConfig")
    with pytest.raises(KeyError):
        scenarios.expected_to_leak("not-a-scenario", "STT")


@pytest.mark.parametrize("model", BOTH_MODELS)
@pytest.mark.parametrize("config", list(CONFIGURATIONS))
@pytest.mark.parametrize("name", sorted(scenarios.SCENARIOS))
def test_scenario_cell_matches_expectation(name, config, model):
    leaked, sim = scenarios.run_scenario(name, config, model)
    assert sim.halted
    assert leaked == scenarios.expected_to_leak(name, config), (
        f"{name} under {config}/{model.value}: leaked={leaked}")


def test_matrix_deterministic_across_worker_processes():
    kwargs = dict(scenarios=["spectre-btb", "uninit-transient"],
                  configs=["UnsafeBaseline", "STT", "SPT{Bwd,ShadowL1}"],
                  models=[AttackModel.SPECTRE])
    solo = scenarios.scenario_matrix(jobs=1, **kwargs)
    pooled = scenarios.scenario_matrix(jobs=2, **kwargs)
    assert solo == pooled
    assert all(r.passed for r in solo)


def test_matrix_rejects_unknown_scenario():
    with pytest.raises(KeyError):
        scenarios.scenario_matrix(scenarios=["not-a-scenario"])


def test_render_matrix_flags_mismatches():
    ok = scenarios.ScenarioResult("spectre-pht", "STT", "SPECTRE",
                                  leaked=False, expected=False)
    bad = scenarios.ScenarioResult("spectre-pht", "UnsafeBaseline", "SPECTRE",
                                   leaked=False, expected=True)
    text = scenarios.render_matrix([ok, bad])
    assert "none" in text
    assert "none(!)" in text


def test_stl_requires_memory_dependence_speculation():
    # Without the override the load waits for the older store's address and
    # forwards the public value: no transient window, even on the unsafe core.
    attack = attacks.spectre_stl()
    assert attack.overrides == {"memory_dependence_speculation": True}
    from repro.harness.configs import make_engine
    from repro.pipeline.core import OoOCore
    core = OoOCore(attack.program,
                   engine=make_engine("UnsafeBaseline", AttackModel.SPECTRE))
    sim = core.run(max_instructions=500_000)
    assert sim.halted and not attack.leaked(sim.observer)


def test_uninit_transient_seed_selects_the_leaked_line():
    a = attacks.uninit_transient(seed=0x5EED)
    b = attacks.uninit_transient(seed=0x1234)
    assert a.secret != b.secret     # different seeds leak different bytes
    leaked_a, _ = scenarios.run_scenario("uninit-transient", "UnsafeBaseline",
                                         AttackModel.SPECTRE)
    assert leaked_a


def test_uninit_transient_trace_equivalence_across_seeds():
    # Two seeds fill uninitialised memory with different secrets.  Under SPT
    # the attacker-visible trace must be identical across seeds (no leak);
    # on the unsafe baseline the probe access betrays the seed.
    from repro.harness.configs import make_engine
    from repro.pipeline.core import OoOCore
    from repro.security.observer import differing_events

    def trace(seed, config):
        attack = attacks.uninit_transient(seed=seed)
        core = OoOCore(attack.program,
                       engine=make_engine(config, AttackModel.SPECTRE),
                       params=scenarios.scenario_params(attack))
        sim = core.run(max_instructions=500_000)
        assert sim.halted
        return sim.observer

    seeds = (0x5EED, 0x1234)
    spt = [trace(s, "SPT{Bwd,ShadowL1}") for s in seeds]
    assert not differing_events(spt[0], spt[1]), (
        "SPT must make the trace independent of uninitialised memory")
    unsafe = [trace(s, "UnsafeBaseline") for s in seeds]
    assert differing_events(unsafe[0], unsafe[1])
