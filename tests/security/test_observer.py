"""Unit tests for the attacker observation model."""

from repro.security.observer import (Observation, Observer, differing_events,
                                     traces_equal)


def test_events_recorded_in_order():
    observer = Observer()
    observer.load_access(1, 0x1000, "L1D")
    observer.store_address(2, 0x2000)
    observer.predictor_update(3, 7, True)
    observer.squash(4, 7)
    observer.store_write(5, 0x2000, "L1D")
    kinds = [e.kind for e in observer.events]
    assert kinds == ["load", "store-addr", "bp-update", "squash", "store-write"]


def test_lines_touched_includes_loads_and_store_writes():
    observer = Observer()
    observer.load_access(1, 0x1000, "L2")
    observer.store_write(2, 0x2000, "L1D")
    observer.store_address(3, 0x3000)
    assert observer.lines_touched() == {0x1000, 0x2000}
    assert observer.lines_touched("store-addr") == {0x3000}


def test_trace_equality():
    a, b = Observer(), Observer()
    a.load_access(1, 0x40, "L1D")
    b.load_access(1, 0x40, "L1D")
    assert traces_equal(a, b)
    b.load_access(2, 0x80, "L1D")
    assert not traces_equal(a, b)


def test_cycle_sensitivity():
    # Timing is part of the attacker's view: same events, different cycles
    # must be distinguishable.
    a, b = Observer(), Observer()
    a.load_access(1, 0x40, "L1D")
    b.load_access(2, 0x40, "L1D")
    assert not traces_equal(a, b)


def test_record_cycles_false_hides_timing():
    a, b = Observer(record_cycles=False), Observer(record_cycles=False)
    a.load_access(1, 0x40, "L1D")
    b.load_access(2, 0x40, "L1D")
    assert traces_equal(a, b)


def test_differing_events_finds_first_divergence():
    a, b = Observer(), Observer()
    a.load_access(1, 0x40, "L1D")
    a.load_access(2, 0x80, "L1D")
    b.load_access(1, 0x40, "L1D")
    b.load_access(2, 0xC0, "L1D")
    diffs = differing_events(a, b)
    assert diffs[0][0] == 1
    assert diffs[0][1].value == 0x80


def test_differing_events_reports_length_mismatch():
    a, b = Observer(), Observer()
    a.load_access(1, 0x40, "L1D")
    diffs = differing_events(a, b)
    assert diffs and diffs[0][1] == "length"


def test_observation_is_hashable():
    assert hash(Observation(1, "load", 0x40, "L1D")) is not None
