"""Trace-equivalence security tests.

Stronger than the pen tests: for a victim whose secret is a *non-speculative
secret* (never passed to a transmitter or branch), the entire attacker-
visible trace — every cache access with its cycle, every predictor update,
every squash — must be identical across secret values under every secure
configuration.  This is Definition 1 of the paper made executable.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.harness.configs import make_engine
from repro.pipeline.core import OoOCore
from repro.security.attacks import nonspec_secret
from repro.security.observer import differing_events, traces_equal
from repro.workloads.crypto import aes_bitslice, chacha20, djbsort

from tests.conftest import BOTH_MODELS

SECURE = ["SecureBaseline", "SPT{Fwd,NoShadowL1}", "SPT{Bwd,ShadowL1}",
          "SPT{Bwd,ShadowMem}", "SPT{Ideal,ShadowMem}"]


def run_observer(program, config, model):
    core = OoOCore(program, engine=make_engine(config, model))
    sim = core.run(max_instructions=300_000)
    assert sim.halted
    return sim.observer


def assert_trace_equal(build, secrets, config, model):
    a = run_observer(build(secrets[0]), config, model)
    b = run_observer(build(secrets[1]), config, model)
    assert traces_equal(a, b), (
        f"{config}/{model.value} trace differs:\n"
        + "\n".join(str(d) for d in differing_events(a, b)))


def chacha_with_key(key0):
    return chacha20.build(scale=1, key_words=[key0] + [7] * 7)


def aes_with_key(key0):
    return aes_bitslice.build(scale=1, rounds=2,
                              key_planes=[key0] + [5] * 7)


def sort_with_values(v0):
    return djbsort.build(scale=1, values=[v0] + list(range(15)))


@pytest.mark.parametrize("model", BOTH_MODELS)
@pytest.mark.parametrize("config", SECURE + ["UnsafeBaseline", "STT"])
def test_chacha20_trace_independent_of_key(config, model):
    # Constant-time code leaks nothing non-speculatively on ANY machine and,
    # because it has no exploitable misprediction here, the full trace is
    # key-independent even on the insecure baseline.
    assert_trace_equal(chacha_with_key, (0x01234567, 0xDEADBEEF),
                       config, model)


@pytest.mark.parametrize("config", SECURE)
def test_aes_trace_independent_of_key(config):
    assert_trace_equal(aes_with_key, (0x1111, 0xFFFFFFFF),
                       config, AttackModel.FUTURISTIC)


@pytest.mark.parametrize("config", SECURE)
def test_djbsort_trace_independent_of_values(config):
    assert_trace_equal(sort_with_values, (0, 0xFFFFFFFF),
                       config, AttackModel.FUTURISTIC)


@pytest.mark.parametrize("model", BOTH_MODELS)
@pytest.mark.parametrize("config", SECURE)
def test_nonspec_secret_victim_trace_equivalence(config, model):
    # The mis-trained indirect-branch victim: under secure configs the whole
    # trace must be secret-independent.
    def build(secret):
        return nonspec_secret(secret=secret).program
    assert_trace_equal(build, (0x22, 0xE7), config, model)


@pytest.mark.parametrize("model", BOTH_MODELS)
def test_nonspec_secret_victim_traces_differ_on_unsafe(model):
    # Sanity: the property is not vacuous — the insecure machine's trace DOES
    # depend on the secret.
    a = run_observer(nonspec_secret(secret=0x22).program, "UnsafeBaseline",
                     model)
    b = run_observer(nonspec_secret(secret=0xE7).program, "UnsafeBaseline",
                     model)
    assert not traces_equal(a, b)


def test_nonspec_secret_victim_traces_differ_on_stt():
    a = run_observer(nonspec_secret(secret=0x22).program, "STT",
                     AttackModel.FUTURISTIC)
    b = run_observer(nonspec_secret(secret=0xE7).program, "STT",
                     AttackModel.FUTURISTIC)
    assert not traces_equal(a, b)
