"""Unit tests for the gate-level untaint algebra (paper Section 5)."""

import pytest

from repro.core.gates import Circuit, CircuitError


def test_forward_rule_untainted_inputs_give_untainted_output():
    c = Circuit()
    c.input("a", 1, tainted=False)
    c.input("b", 0, tainted=False)
    out = c.gate("AND", "a", "b")
    assert not c.tainted(out)
    assert c.value(out) == 0


def test_forward_glift_and_masking_zero():
    # Section 5.1: an untainted 0 input makes an AND output public.
    c = Circuit()
    c.input("a", 0, tainted=False)
    c.input("b", 1, tainted=True)
    out = c.gate("AND", "a", "b")
    assert not c.tainted(out)


def test_forward_glift_and_no_masking_with_one():
    # 1 & secret = secret: output must stay tainted.
    c = Circuit()
    c.input("a", 1, tainted=False)
    c.input("b", 1, tainted=True)
    out = c.gate("AND", "a", "b")
    assert c.tainted(out)


def test_forward_glift_or_masking_one():
    c = Circuit()
    c.input("a", 1, tainted=False)
    c.input("b", 0, tainted=True)
    out = c.gate("OR", "a", "b")
    assert not c.tainted(out)


def test_xor_never_masks():
    c = Circuit()
    c.input("a", 0, tainted=False)
    c.input("b", 1, tainted=True)
    assert c.tainted(c.gate("XOR", "a", "b"))


def test_figure2_backward_and_output_one():
    # Figure 2: out = 1 untainted  =>  in1 = in2 = 1, both untainted.
    c = Circuit()
    c.input("in1", 1, tainted=True)
    c.input("in2", 1, tainted=True)
    out = c.gate("AND", "in1", "in2")
    assert c.tainted(out)
    newly = c.declassify(out)
    assert set(newly) == {out, "in1", "in2"}
    assert not c.tainted("in1") and not c.tainted("in2")


def test_figure2_backward_and_output_zero_no_inference():
    # out = 0 untainted: either input may have been 0; nothing inferable.
    c = Circuit()
    c.input("in1", 0, tainted=True)
    c.input("in2", 1, tainted=True)
    out = c.gate("AND", "in1", "in2")
    c.declassify(out)
    assert c.tainted("in1") and c.tainted("in2")


def test_section52_and_zero_with_one_public_input():
    # out = 0, in2 = 1 untainted  =>  in1 must be 0.
    c = Circuit()
    c.input("in1", 0, tainted=True)
    c.input("in2", 1, tainted=True)
    out = c.gate("AND", "in1", "in2")
    c.declassify(out)
    assert c.tainted("in1")
    c.declassify("in2")
    assert not c.tainted("in1")


def test_backward_or_zero_infers_both():
    c = Circuit()
    c.input("a", 0, tainted=True)
    c.input("b", 0, tainted=True)
    out = c.gate("OR", "a", "b")
    c.declassify(out)
    assert not c.tainted("a") and not c.tainted("b")


def test_backward_xor_with_one_public_input():
    c = Circuit()
    c.input("a", 1, tainted=True)
    c.input("b", 1, tainted=False)
    out = c.gate("XOR", "a", "b")
    assert c.tainted(out)
    c.declassify(out)
    assert not c.tainted("a")        # a = out ^ b


def test_backward_not():
    c = Circuit()
    c.input("a", 1, tainted=True)
    out = c.gate("NOT", "a")
    c.declassify(out)
    assert not c.tainted("a")


def test_figure3_composition():
    # Figure 3: out = (t0 OR ...) AND in2 with in2 = 1 untainted, out = 0.
    # Declassifying out infers t0 = 0 and back-propagates through the OR.
    c = Circuit()
    c.input("x", 0, tainted=True)
    c.input("y", 0, tainted=True)
    c.input("in2", 1, tainted=False)
    t0 = c.gate("OR", "x", "y", name="t0")
    out = c.gate("AND", "t0", "in2", name="out")
    assert c.tainted(t0) and c.tainted(out)
    newly = c.declassify(out)
    assert not c.tainted(t0)          # step 2 of Figure 3
    assert not c.tainted("x") and not c.tainted("y")   # step 3
    assert set(newly) >= {"out", "t0", "x", "y"}


def test_dynamic_reapplication_of_forward_rules():
    # Section 5.1: declassifying an input re-applies the GLIFT rules.
    c = Circuit()
    c.input("a", 0, tainted=True)
    c.input("b", 1, tainted=True)
    out = c.gate("AND", "a", "b")
    assert c.tainted(out)
    c.declassify("a")                 # a = 0 becomes public: out = 0 public
    assert not c.tainted(out)


def test_taint_is_monotone_under_declassification():
    c = Circuit()
    c.input("a", 1, tainted=True)
    c.input("b", 0, tainted=True)
    c.gate("XOR", "a", "b", name="w")
    before = {n: w.tainted for n, w in c.wires.items()}
    c.declassify("a")
    for name, wire in c.wires.items():
        if not before[name]:
            assert not wire.tainted   # untainted never re-taints


def test_bad_wire_value_rejected():
    c = Circuit()
    with pytest.raises(CircuitError):
        c.input("a", 2, tainted=False)


def test_duplicate_wire_rejected():
    c = Circuit()
    c.input("a", 0, tainted=False)
    with pytest.raises(CircuitError):
        c.input("a", 1, tainted=False)


def test_unknown_gate_rejected():
    c = Circuit()
    c.input("a", 0, tainted=False)
    with pytest.raises(CircuitError):
        c.gate("NAND", "a", "a")


def test_primary_inputs():
    c = Circuit()
    c.input("a", 0, tainted=False)
    c.input("b", 1, tainted=True)
    c.gate("AND", "a", "b", name="w")
    assert set(c.primary_inputs()) == {"a", "b"}
