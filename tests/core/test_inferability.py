"""Unit tests for the executable proof checker."""

from repro.core.gates import Circuit
from repro.core.inferability import consistent_assignments, soundness_violation


def build_and(a_val, b_val, a_taint=True, b_taint=True) -> Circuit:
    c = Circuit()
    c.input("a", a_val, tainted=a_taint)
    c.input("b", b_val, tainted=b_taint)
    c.gate("AND", "a", "b", name="out")
    return c


def test_all_tainted_many_consistent_assignments():
    c = build_and(1, 1)
    assignments = consistent_assignments(c, {"a": 1, "b": 1})
    assert len(assignments) == 4              # nothing is public yet


def test_declassified_and_one_pins_inputs():
    c = build_and(1, 1)
    c.declassify("out")
    assignments = consistent_assignments(c, {"a": 1, "b": 1})
    assert assignments == [{"a": 1, "b": 1}]


def test_sound_circuit_has_no_violation():
    c = build_and(0, 1)
    c.declassify("out")                        # out=0: inputs stay tainted
    assert soundness_violation(c) is None


def test_violation_detected_when_untainting_illegally():
    # Manually untaint an input that is NOT determined by public knowledge:
    # the checker must flag it.
    c = build_and(0, 1)
    c.declassify("out")                        # out = 0 public
    c.wires["b"].tainted = False               # ILLEGAL: b could be 0 or 1?
    # With out=0 public and b=1 public, a must be 0 -> actually inferable;
    # instead untaint `a` in a case where it is ambiguous:
    c2 = build_and(0, 0)
    c2.declassify("out")                       # out = 0: a,b ambiguous
    c2.wires["a"].tainted = False              # ILLEGAL
    assert soundness_violation(c2) is not None


def test_checker_accepts_fixpoint_of_algebra():
    c = Circuit()
    c.input("x", 1, tainted=True)
    c.input("y", 0, tainted=True)
    c.input("z", 1, tainted=False)
    c.gate("OR", "x", "y", name="t")
    c.gate("AND", "t", "z", name="out")
    c.declassify("out")
    assert soundness_violation(c) is None
