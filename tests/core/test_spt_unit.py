"""Unit-level tests for the SPT engine's taint machinery."""

import pytest

from repro.core.attack_model import AttackModel
from repro.core.events import UntaintKind
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.isa.assembler import assemble
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams

from tests.conftest import assert_matches_interpreter


def run_spt(source, model=AttackModel.FUTURISTIC, **engine_kwargs):
    engine = SPTEngine(model, **engine_kwargs)
    sim = assert_matches_interpreter(assemble(source), engine=engine)
    return sim, engine


def test_config_names_match_table2():
    assert SPTEngine(AttackModel.SPECTRE, backward=False,
                     shadow=ShadowMode.NONE).name == "SPT{Fwd,NoShadowL1}"
    assert SPTEngine(AttackModel.SPECTRE).name == "SPT{Bwd,ShadowL1}"
    assert SPTEngine(AttackModel.SPECTRE, shadow=ShadowMode.FULL_MEMORY
                     ).name == "SPT{Bwd,ShadowMem}"
    assert SPTEngine(AttackModel.SPECTRE, ideal=True,
                     shadow=ShadowMode.FULL_MEMORY
                     ).name == "SPT{Ideal,ShadowMem}"


def test_everything_starts_tainted():
    # A load through an architectural register that was never written is
    # delayed: all registers start tainted (Section 6.3).  x0 is the
    # exception (it is architecturally zero).
    sim, engine = run_spt("ld a0, 0x4000(zero)\nhalt")
    assert sim.halted
    assert not engine.taint[0]            # phys 0 backs x0


def test_load_immediate_output_untainted():
    # Section 6.5: LI results are inferable from the ROB alone.
    sim, engine = run_spt("""
        li s2, 0x4000
        ld a0, 0(s2)
        halt
    """)
    # The load's address operand was untainted, so the load was never
    # delayed by the protection policy.
    assert sim.stats["transmitters_delayed_cycles"] == 0


def test_vp_declassification_of_transmitter_operand():
    sim, engine = run_spt("""
        ld a0, 0x4000(zero)
        ld a1, 0(a0)
        halt
    """)
    kinds = engine.untaint.as_dict()
    assert kinds.get(UntaintKind.VP_TRANSMITTER.value, 0) >= 1


def test_forward_untaint_through_alu():
    # a0 (load output, tainted) feeds an ADD; once a0 is declassified by the
    # second load's VP, the ADD's output is forward-untainted.
    # Spectre model: the VP frontier is not blocked by the incomplete load,
    # so the second load declassifies a0 while the adds are still in flight
    # (the paper notes the Spectre model gives propagation more room, 9.3).
    sim, engine = run_spt("""
        ld a0, 0x4000(zero)
        add a1, a0, a0
        add a2, a1, a1
        ld a3, 0(a0)
        add a4, a1, a2
        halt
    """, model=AttackModel.SPECTRE)
    kinds = engine.untaint.as_dict()
    assert kinds.get(UntaintKind.FORWARD.value, 0) >= 1


def test_backward_untaint_through_invertible_add():
    # addr = offset + base; declassifying addr with base public infers the
    # loaded offset (the mcf pattern, Section 6.6 rule 2).
    source = """
        li s2, 0x4000
        ld a0, 0(s2)
        add a1, a0, s2
        mul t0, a1, a1
        ld a2, 0(a1)
        halt
    """
    sim, engine = run_spt(source, model=AttackModel.SPECTRE)
    kinds = engine.untaint.as_dict()
    assert kinds.get(UntaintKind.BACKWARD.value, 0) >= 1


def test_backward_disabled_in_fwd_config():
    source = """
        li s2, 0x4000
        ld a0, 0(s2)
        add a1, a0, s2
        ld a2, 0(a1)
        halt
    """
    _, engine = run_spt(source, model=AttackModel.SPECTRE, backward=False)
    assert engine.untaint.as_dict().get(UntaintKind.BACKWARD.value, 0) == 0


def test_vp_branch_declassification():
    sim, engine = run_spt("""
        ld a0, 0x4000(zero)
        beq a0, zero, out
        li a1, 1
    out:
        halt
    """)
    kinds = engine.untaint.as_dict()
    assert kinds.get(UntaintKind.VP_BRANCH.value, 0) >= 1


def test_tainted_address_transmitter_is_delayed():
    sim, engine = run_spt("""
        ld a0, 0x4000(zero)
        ld a1, 0(a0)
        halt
    """)
    assert sim.stats["transmitters_delayed_cycles"] > 0


def test_untainted_chain_is_never_delayed():
    sim, engine = run_spt("""
        li s2, 0x4000
        li t0, 8
        add s3, s2, t0
        ld a0, 0(s3)
        sd a0, 8(s3)
        halt
    """)
    assert sim.stats["transmitters_delayed_cycles"] == 0


def test_broadcast_width_limits_untaints_per_cycle():
    params = MachineParams(untaint_broadcast_width=1)
    engine = SPTEngine(AttackModel.FUTURISTIC)
    program = assemble("""
        ld a0, 0x4000(zero)
        add a1, a0, a0
        add a2, a0, a0
        add a3, a0, a0
        add a4, a0, a0
        ld a5, 0(a0)
        halt
    """)
    sim = OoOCore(program, engine=engine, params=params).run()
    assert sim.halted
    assert max(engine.untaint.untaints_per_cycle or {0: 0}) <= 1


def test_ideal_mode_untaints_unbounded_per_cycle():
    engine = SPTEngine(AttackModel.SPECTRE, ideal=True,
                       shadow=ShadowMode.FULL_MEMORY)
    program = assemble("""
        ld a0, 0x4000(zero)
        add a1, a0, a0
        add a2, a0, a0
        add a3, a0, a0
        add a4, a0, a0
        ld a5, 0(a0)
        halt
    """)
    sim = OoOCore(program, engine=engine).run()
    assert sim.halted
    assert engine.untaint.total >= 4


def test_taint_is_monotone_globally():
    # Once the global map untaints a register it stays untainted until the
    # register is re-allocated by rename.
    engine = SPTEngine(AttackModel.FUTURISTIC)
    program = assemble("""
        ld a0, 0x4000(zero)
        ld a1, 0(a0)
        add a2, a0, a1
        halt
    """)
    core = OoOCore(program, engine=engine)
    untainted_seen = set()
    while not core.halted and core.cycle < 10_000:
        core.step()
        for preg in untainted_seen:
            assert not engine.taint[preg]
        allocated = {di.prd for di in core.in_flight() if di.prd >= 0}
        for preg, tainted in enumerate(engine.taint):
            if not tainted and preg in allocated:
                untainted_seen.add(preg)
        # Registers leaving the window may be recycled; track live only.
        untainted_seen &= allocated
    assert core.halted


def test_squash_drops_pending_broadcasts():
    # A wrong-path instruction's pending untaint must not survive into the
    # recycled physical register.  Exercised by a misprediction-heavy run.
    engine = SPTEngine(AttackModel.SPECTRE)
    program = assemble("""
        li t0, 10
        li s2, 0x4000
        li a0, 0
    loop:
        ld a1, 0(s2)
        add a2, a1, s2
        addi a0, a0, 1
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """)
    sim = assert_matches_interpreter(program, engine=engine)
    assert sim.reg(10) == 10


@pytest.mark.parametrize("shadow", list(ShadowMode))
def test_all_shadow_modes_run(shadow):
    sim, _ = run_spt("""
        li s2, 0x4000
        li a0, 123
        sd a0, 0(s2)
        ld a1, 0(s2)
        halt
    """, shadow=shadow)
    assert sim.reg(11) == 123
