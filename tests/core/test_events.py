"""Unit tests for the untaint-event accounting."""

from repro.core.events import UntaintKind, UntaintStats


def test_count_accumulates_by_kind():
    stats = UntaintStats()
    stats.count(UntaintKind.FORWARD)
    stats.count(UntaintKind.FORWARD, 2)
    stats.count(UntaintKind.BACKWARD)
    assert stats.by_kind[UntaintKind.FORWARD] == 3
    assert stats.total == 4


def test_as_dict_uses_kind_values():
    stats = UntaintStats()
    stats.count(UntaintKind.VP_TRANSMITTER)
    stats.count(UntaintKind.SHADOW_L1)
    as_dict = stats.as_dict()
    assert as_dict == {"shadow-l1": 1, "vp-transmitter": 1}


def test_cycle_width_histogram_ignores_zero():
    stats = UntaintStats()
    stats.record_cycle_width(0)
    stats.record_cycle_width(3)
    stats.record_cycle_width(3)
    stats.record_cycle_width(1)
    assert stats.untaints_per_cycle == {3: 2, 1: 1}


def test_kinds_are_exclusive_and_stable():
    values = [kind.value for kind in UntaintKind]
    assert len(values) == len(set(values))
    assert "forward" in values and "backward" in values
    assert "stl-forward" in values and "stl-backward" in values


def test_log2_bucket_boundaries():
    from repro.core.events import log2_bucket
    assert log2_bucket(0) == 0
    assert log2_bucket(1) == 1
    assert [log2_bucket(v) for v in (2, 3)] == [2, 2]
    assert [log2_bucket(v) for v in (4, 7)] == [3, 3]
    assert log2_bucket(8) == 4
    assert log2_bucket(1023) == 10


def test_latency_histogram_buckets_by_kind():
    stats = UntaintStats()
    stats.record_latency(UntaintKind.FORWARD, 3)
    stats.record_latency(UntaintKind.FORWARD, 2)
    stats.record_latency(UntaintKind.BACKWARD, 9)
    assert stats.latency_by_kind[UntaintKind.FORWARD] == {2: 2}
    assert stats.latency_by_kind[UntaintKind.BACKWARD] == {4: 1}


def test_queue_wait_histogram():
    stats = UntaintStats()
    stats.record_queue_wait(0)
    stats.record_queue_wait(1)
    stats.record_queue_wait(5)
    assert stats.queue_wait == {0: 1, 1: 1, 3: 1}
