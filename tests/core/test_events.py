"""Unit tests for the untaint-event accounting."""

from repro.core.events import UntaintKind, UntaintStats


def test_count_accumulates_by_kind():
    stats = UntaintStats()
    stats.count(UntaintKind.FORWARD)
    stats.count(UntaintKind.FORWARD, 2)
    stats.count(UntaintKind.BACKWARD)
    assert stats.by_kind[UntaintKind.FORWARD] == 3
    assert stats.total == 4


def test_as_dict_uses_kind_values():
    stats = UntaintStats()
    stats.count(UntaintKind.VP_TRANSMITTER)
    stats.count(UntaintKind.SHADOW_L1)
    as_dict = stats.as_dict()
    assert as_dict == {"shadow-l1": 1, "vp-transmitter": 1}


def test_cycle_width_histogram_ignores_zero():
    stats = UntaintStats()
    stats.record_cycle_width(0)
    stats.record_cycle_width(3)
    stats.record_cycle_width(3)
    stats.record_cycle_width(1)
    assert stats.untaints_per_cycle == {3: 2, 1: 1}


def test_kinds_are_exclusive_and_stable():
    values = [kind.value for kind in UntaintKind]
    assert len(values) == len(set(values))
    assert "forward" in values and "backward" in values
    assert "stl-forward" in values and "stl-backward" in values
