"""Unit tests for the visibility-point predicates."""

from repro.core.attack_model import AttackModel, vp_obstacle
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.pipeline.core import OoOCore
from repro.pipeline.dyninst import DynInst


def make(op, **kwargs):
    return DynInst(0, 0, Instruction(op, **kwargs))


def test_spectre_only_blocks_on_unresolved_control():
    obstacle = vp_obstacle(AttackModel.SPECTRE)
    branch = make("BEQ", rs1=1, rs2=2, imm=5)
    assert obstacle(branch)
    branch.resolution_applied = True
    assert not obstacle(branch)
    load = make("LD", rd=1, rs1=2)
    assert not obstacle(load)           # incomplete loads do not block
    alu = make("ADD", rd=1, rs1=2, rs2=3)
    assert not obstacle(alu)


def test_futuristic_blocks_on_any_incomplete_instruction():
    obstacle = vp_obstacle(AttackModel.FUTURISTIC)
    load = make("LD", rd=1, rs1=2)
    assert obstacle(load)
    load.mem_complete = True
    assert not obstacle(load)
    alu = make("ADD", rd=1, rs1=2, rs2=3)
    assert obstacle(alu)
    alu.complete = True
    assert not obstacle(alu)
    branch = make("BNE", rs1=1, rs2=2, imm=3)
    branch.complete = True
    assert obstacle(branch)             # resolution still pending
    branch.resolution_applied = True
    assert not obstacle(branch)


def test_jal_never_blocks_either_model():
    jal = make("JAL", rd=1, imm=9)
    jal.complete = True
    jal.resolution_applied = True
    assert not vp_obstacle(AttackModel.SPECTRE)(jal)
    assert not vp_obstacle(AttackModel.FUTURISTIC)(jal)


def test_vp_frontier_is_monotone_prefix():
    program = assemble("""
        li t0, 3
        li s2, 0x4000
    loop:
        ld a0, 0(s2)
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """)
    core = OoOCore(program)
    obstacle = vp_obstacle(AttackModel.FUTURISTIC)
    reached: set = set()
    while not core.halted and core.cycle < 5000:
        core.step()
        newly = core.advance_vp(obstacle)
        for di in newly:
            assert di.seq not in reached
            reached.add(di.seq)
        # Every instruction in flight older than a VP'd one is also VP'd.
        flight = list(core.in_flight())
        for older, younger in zip(flight, flight[1:]):
            if younger.reached_vp:
                assert older.reached_vp
    assert core.halted
