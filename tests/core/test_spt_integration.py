"""Integration tests: SPT's memory-taint mechanisms on whole programs."""

import pytest

from repro.core.attack_model import AttackModel
from repro.core.events import UntaintKind
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.isa.assembler import assemble

from tests.conftest import BOTH_MODELS, assert_matches_interpreter


def run(source, model=AttackModel.FUTURISTIC, **kwargs):
    engine = SPTEngine(model, **kwargs)
    sim = assert_matches_interpreter(assemble(source), engine=engine)
    return sim, engine


SPILL_RELOAD = """
    li s2, 0x4000
    li sp, 0x8000
    sd s2, 0(sp)          # spill a public pointer
    li t0, 40
pad:
    addi t0, t0, -1
    bne t0, zero, pad
    ld a0, 0(sp)          # reload it (far from the store: reads the L1D)
    ld a1, 0(a0)          # use it as an address
    halt
"""


def test_shadow_l1_keeps_spilled_pointers_public():
    with_shadow, engine = run(SPILL_RELOAD, shadow=ShadowMode.L1)
    without, _ = run(SPILL_RELOAD, shadow=ShadowMode.NONE)
    assert engine.shadow.stores_cleared >= 1
    assert with_shadow.stats["transmitters_delayed_cycles"] <= \
        without.stats["transmitters_delayed_cycles"]


def test_shadow_l1_untaint_event_on_reload():
    _, engine = run(SPILL_RELOAD, shadow=ShadowMode.L1)
    kinds = engine.untaint.as_dict()
    assert kinds.get(UntaintKind.SHADOW_L1.value, 0) >= 1


def test_shadow_mem_event_kind():
    _, engine = run(SPILL_RELOAD, shadow=ShadowMode.FULL_MEMORY)
    kinds = engine.untaint.as_dict()
    assert kinds.get(UntaintKind.SHADOW_MEM.value, 0) >= 1


def test_tainted_store_data_keeps_bytes_tainted():
    # Data loaded from cold memory is tainted; storing it and reloading it
    # must keep the taint (no laundering through the cache).
    source = """
        li s2, 0x4000
        li sp, 0x8000
        ld a0, 0(s2)          # tainted data
        sd a0, 0(sp)
        li t0, 40
    pad:
        addi t0, t0, -1
        bne t0, zero, pad
        ld a1, 0(sp)          # reload: must still be tainted
        ld a2, 0(a1)          # so this transmitter is delayed
        halt
    """
    sim, engine = run(source, shadow=ShadowMode.L1)
    assert sim.stats["transmitters_delayed_cycles"] > 0


def test_stl_forwarding_propagates_untaint_when_public():
    # Store with public data forwards to a nearby load: STLPublic holds (all
    # addresses public), so the load's output untaints via the STL rule.
    # No transmitter consumes a1 here: otherwise that transmitter's VP
    # declassification would untaint a1 before the STL rule gets a chance.
    source = """
        li s2, 0x4000
        li a0, 55
        sd a0, 0(s2)
        ld a1, 0(s2)          # forwarded from the store
        add a2, a1, a1
        halt
    """
    sim, engine = run(source, model=AttackModel.SPECTRE)
    kinds = engine.untaint.as_dict()
    assert kinds.get(UntaintKind.STL_FORWARD.value, 0) >= 1
    assert sim.reg(11) == 55


def test_stl_blocked_while_store_address_tainted():
    # The forwarding store's own address comes from a tainted load, so
    # STLPublic cannot hold before declassification; untaint must wait.
    source = """
        li s2, 0x4000
        ld a3, 0(s2)          # tainted address material
        li a0, 9
        sd a0, 0(a3)          # store with tainted address
        ld a1, 0(a3)          # would forward
        halt
    """
    sim, engine = run(source, model=AttackModel.FUTURISTIC)
    assert sim.halted         # progresses via VP declassification


def test_eviction_retaints_under_shadow_l1_but_not_shadow_mem():
    # Write a public value, then sweep enough lines through the same L1 set
    # to evict it; the reload is tainted under ShadowL1, public under
    # ShadowMem.
    source = """
        li s2, 0x8000
        li a0, 7
        sd a0, 0(s2)
        li t0, 0x10000
        li t1, 12
    sweep:
        ld a1, 0(t0)
        addi t0, t0, 0x8000   # same L1 set (32KB stride), different lines
        addi t1, t1, -1
        bne t1, zero, sweep
        ld a2, 0(s2)          # reload after eviction
        ld a3, 0(a2)
        halt
    """
    l1_sim, l1_engine = run(source, shadow=ShadowMode.L1)
    mem_sim, _ = run(source, shadow=ShadowMode.FULL_MEMORY)
    assert mem_sim.stats["transmitters_delayed_cycles"] <= \
        l1_sim.stats["transmitters_delayed_cycles"]


@pytest.mark.parametrize("model", BOTH_MODELS)
def test_ideal_never_slower_than_width_limited(model):
    source = SPILL_RELOAD
    limited, _ = run(source, model=model, shadow=ShadowMode.FULL_MEMORY)
    ideal, _ = run(source, model=model, ideal=True,
                   shadow=ShadowMode.FULL_MEMORY)
    assert ideal.cycles <= limited.cycles + 2


def test_incremental_configs_weakly_improve():
    # Fwd -> Bwd -> ShadowL1 -> ShadowMem must not regress on a workload
    # exercising all mechanisms.
    source = SPILL_RELOAD
    fwd, _ = run(source, backward=False, shadow=ShadowMode.NONE)
    bwd, _ = run(source, backward=True, shadow=ShadowMode.NONE)
    sl1, _ = run(source, backward=True, shadow=ShadowMode.L1)
    smem, _ = run(source, backward=True, shadow=ShadowMode.FULL_MEMORY)
    assert bwd.cycles <= fwd.cycles + 2
    assert sl1.cycles <= bwd.cycles + 2
    assert smem.cycles <= sl1.cycles + 2
