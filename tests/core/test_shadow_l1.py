"""Unit tests for the shadow L1 / shadow memory taint structure."""


from repro.core.shadow_l1 import ShadowMode, ShadowTaint


def test_everything_starts_tainted():
    shadow = ShadowTaint(ShadowMode.L1)
    assert shadow.range_tainted(0x1000, 8)
    assert shadow.range_tainted(0, 1)


def test_store_clears_exactly_the_written_bytes():
    shadow = ShadowTaint(ShadowMode.L1)
    shadow.clear_range(0x1008, 8)
    assert not shadow.range_tainted(0x1008, 8)
    assert shadow.range_tainted(0x1000, 8)       # bytes before
    assert shadow.range_tainted(0x1010, 8)       # bytes after
    assert shadow.range_tainted(0x1004, 8)       # straddling the boundary


def test_byte_granularity():
    shadow = ShadowTaint(ShadowMode.L1)
    shadow.clear_range(0x2000, 1)
    assert not shadow.range_tainted(0x2000, 1)
    assert shadow.range_tainted(0x2001, 1)
    assert shadow.range_tainted(0x2000, 2)


def test_tainted_store_retaints():
    shadow = ShadowTaint(ShadowMode.L1)
    shadow.clear_range(0x3000, 8)
    shadow.set_range(0x3000, 4, tainted=True)
    assert shadow.range_tainted(0x3000, 4)
    assert not shadow.range_tainted(0x3004, 4)


def test_line_straddling_access():
    shadow = ShadowTaint(ShadowMode.L1, line_bytes=64)
    shadow.clear_range(0x103C, 8)                 # crosses 0x1040 boundary
    assert not shadow.range_tainted(0x103C, 8)
    assert shadow.range_tainted(0x1038, 4)
    assert shadow.range_tainted(0x1044, 4)


def test_eviction_retaints_in_l1_mode():
    shadow = ShadowTaint(ShadowMode.L1)
    shadow.clear_range(0x1000, 64)
    shadow.invalidate_line(0x1000)
    assert shadow.range_tainted(0x1000, 8)


def test_eviction_is_ignored_in_full_memory_mode():
    shadow = ShadowTaint(ShadowMode.FULL_MEMORY)
    shadow.clear_range(0x1000, 64)
    shadow.invalidate_line(0x1000)
    assert not shadow.range_tainted(0x1000, 8)


def test_none_mode_is_always_tainted():
    shadow = ShadowTaint(ShadowMode.NONE)
    shadow.clear_range(0x1000, 64)
    assert shadow.range_tainted(0x1000, 8)


def test_resident_untainted_bytes_diagnostic():
    shadow = ShadowTaint(ShadowMode.L1)
    assert shadow.resident_untainted_bytes() == 0
    shadow.clear_range(0x1000, 16)
    assert shadow.resident_untainted_bytes() == 16
