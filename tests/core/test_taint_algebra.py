"""Property tests for the word-level untaint algebra.

The key soundness property ties the ``invertible`` opcode flags to the
actual semantics: whenever :func:`backward_untaints` declares a source
inferable, the (output value, other-operand value, immediate) triple must
uniquely determine that source — verified by sampling the value space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.taint_algebra import (backward_untaints,
                                      forward_untaints_output,
                                      initial_output_taint, leaked_operands)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import OPCODES, WORD_MASK, Kind
from repro.isa.semantics import alu_result

u64 = st.integers(min_value=0, max_value=WORD_MASK)

INVERTIBLE_RR = [n for n, i in OPCODES.items()
                 if i.kind == Kind.ALU and i.invertible]
INVERTIBLE_RI = [n for n, i in OPCODES.items()
                 if i.kind == Kind.ALU_IMM and i.invertible]


@given(op=st.sampled_from(INVERTIBLE_RR), a=u64, a2=u64, b=u64)
def test_invertible_rr_ops_are_injective_in_each_operand(op, a, a2, b):
    # If backward untainting can infer src1 from (out, src2), then different
    # src1 values must give different outputs.
    inst = Instruction(op, rd=1, rs1=2, rs2=3)
    if a != a2:
        assert alu_result(inst, a, b) != alu_result(inst, a2, b)


@given(op=st.sampled_from(INVERTIBLE_RR), a=u64, b=u64, b2=u64)
def test_invertible_rr_ops_are_injective_in_second_operand(op, a, b, b2):
    inst = Instruction(op, rd=1, rs1=2, rs2=3)
    if b != b2:
        assert alu_result(inst, a, b) != alu_result(inst, a, b2)


@given(op=st.sampled_from(INVERTIBLE_RI), a=u64, a2=u64,
       imm=st.integers(min_value=0, max_value=4095))
def test_invertible_ri_ops_are_injective(op, a, a2, imm):
    if op in ("ROTLI", "ROTRI"):
        imm %= 64
    inst = Instruction(op, rd=1, rs1=2, imm=imm)
    if a != a2:
        assert alu_result(inst, a, 0) != alu_result(inst, a2, 0)


@given(a=u64, a2=u64, b=u64)
@settings(max_examples=50)
def test_noninvertible_and_is_actually_lossy(a, a2, b):
    # Sanity that the flag matters: AND genuinely collides, so marking it
    # invertible would be unsound.  (We only check that collisions exist at
    # all, via a constructed witness.)
    inst = Instruction("AND", rd=1, rs1=2, rs2=3)
    assert alu_result(inst, 0b01, 0b10) == alu_result(inst, 0b10, 0b01) == 0


def test_backward_rule_requires_untainted_output():
    add = Instruction("ADD", rd=1, rs1=2, rs2=3)
    assert backward_untaints(add, True, True, False) is None
    assert backward_untaints(add, False, True, False) == "src1"
    assert backward_untaints(add, False, False, True) == "src2"
    assert backward_untaints(add, False, True, True) is None
    assert backward_untaints(add, False, False, False) is None


def test_backward_rule_mov_and_imm_forms():
    mov = Instruction("MOV", rd=1, rs1=2)
    assert backward_untaints(mov, False, True, False) == "src1"
    addi = Instruction("ADDI", rd=1, rs1=2, imm=5)
    assert backward_untaints(addi, False, True, False) == "src1"
    andi = Instruction("ANDI", rd=1, rs1=2, imm=5)
    assert backward_untaints(andi, False, True, False) is None  # lossy


def test_forward_rule_needs_all_sources_public():
    add = Instruction("ADD", rd=1, rs1=2, rs2=3)
    assert forward_untaints_output(add, False, False)
    assert not forward_untaints_output(add, True, False)
    assert not forward_untaints_output(add, False, True)
    load = Instruction("LD", rd=1, rs1=2)
    assert not forward_untaints_output(load, False, False)  # memory-dependent


def test_initial_output_taint():
    li = Instruction("LI", rd=1, imm=3)
    assert not initial_output_taint(li, False, False)
    load = Instruction("LD", rd=1, rs1=2)
    assert initial_output_taint(load, False, False)
    add = Instruction("ADD", rd=1, rs1=2, rs2=3)
    assert initial_output_taint(add, True, False)
    assert not initial_output_taint(add, False, False)
    jalr = Instruction("JALR", rd=1, rs1=2)
    assert not initial_output_taint(jalr, True, False)   # link = pc+1


def test_leaked_operands_by_kind():
    assert leaked_operands(Instruction("LD", rd=1, rs1=2)) == ("src1",)
    assert leaked_operands(Instruction("SD", rs1=1, rs2=2)) == ("src1",)
    assert leaked_operands(Instruction("BEQ", rs1=1, rs2=2, imm=0)) == \
        ("src1", "src2")
    assert leaked_operands(Instruction("JALR", rd=1, rs1=2)) == ("src1",)
    assert leaked_operands(Instruction("ADD", rd=1, rs1=2, rs2=3)) == ()
    assert leaked_operands(Instruction("JAL", rd=1, imm=0)) == ()
