"""Behavioural tests for the STT engine."""

from repro.core.attack_model import AttackModel
from repro.core.stt import STTEngine
from repro.isa.assembler import assemble
from repro.pipeline.core import OoOCore

from tests.conftest import BOTH_MODELS, assert_matches_interpreter

import pytest


def run_with_stt(source, model=AttackModel.FUTURISTIC):
    engine = STTEngine(model)
    sim = assert_matches_interpreter(assemble(source), engine=engine)
    return sim, engine


DEPENDENT_LOAD = """
    li s2, 0x4000
    sd s2, 0x4000(zero)
    ld a0, 0x4000(zero)
    ld a1, 0(a0)
    halt
"""


@pytest.mark.parametrize("model", BOTH_MODELS)
def test_dependent_load_is_delayed(model):
    engine = STTEngine(model)
    sim = assert_matches_interpreter(assemble(DEPENDENT_LOAD), engine=engine)
    unsafe = OoOCore(assemble(DEPENDENT_LOAD)).run()
    assert sim.cycles >= unsafe.cycles


def test_load_output_is_tainted_until_vp():
    # A transmitter whose address comes from a load may not execute before
    # that load reaches the VP; with the futuristic model and a long pre-VP
    # shadow, the delay is visible in cycles.
    slow = """
        li s2, 0x4000
        li t0, 3
        mul t1, t0, t0
        mul t1, t1, t1
        mul t1, t1, t1
        ld a0, 0x4000(zero)
        ld a1, 0(a0)
        halt
    """
    stt, _ = run_with_stt(slow)
    unsafe = OoOCore(assemble(slow)).run()
    assert stt.cycles >= unsafe.cycles


def test_non_speculative_data_is_not_protected():
    # STT's scope gap: data in a register that was loaded and retired long
    # ago is s-untainted, so a transmitter using it is never delayed.
    source = """
        sd zero, 0x4000(zero)
        ld s2, 0x4000(zero)
        li t0, 100
    pad:
        addi t0, t0, -1
        bne t0, zero, pad
        ld a0, 0x100(s2)
        halt
    """
    stt, engine = run_with_stt(source)
    assert stt.stats.get("engine.delayed_transmitter_checks", 0) == 0 or \
        stt.stats["engine.delayed_transmitter_checks"] < 5


def test_alu_results_propagate_taint():
    # Taint flows through arithmetic: load -> add -> load address.
    source = """
        li s2, 0x4000
        sd zero, 0(s2)
        ld a0, 0(s2)
        add a1, a0, s2
        ld a2, 0(a1)
        halt
    """
    sim, engine = run_with_stt(source)
    assert sim.halted


def test_branch_resolution_delayed_on_tainted_predicate():
    source = """
        li s2, 0x4000
        sd zero, 0(s2)
        ld a0, 0(s2)
        beq a0, zero, out
        li a1, 1
    out:
        halt
    """
    stt, _ = run_with_stt(source)
    unsafe = OoOCore(assemble(source)).run()
    assert stt.cycles >= unsafe.cycles


@pytest.mark.parametrize("model", BOTH_MODELS)
def test_architectural_equivalence_under_stt(model):
    from repro.workloads.random_programs import random_program
    for seed in (7000, 7001, 7002):
        assert_matches_interpreter(random_program(seed),
                                   engine=STTEngine(model))


def test_engine_name_and_scope_flags():
    engine = STTEngine(AttackModel.SPECTRE)
    assert engine.name == "STT"
    assert engine.protects_speculative_data
    assert not engine.protects_nonspeculative_secrets
