"""Property-based soundness of the untaint algebra.

The paper's Lemma 2 ("untainted data is inferable by the attacker") is
checked by brute force on random circuits: after arbitrary declassification
sequences, every untainted wire's value must be uniquely determined by the
circuit structure plus the untainted wires (see repro.core.inferability).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gates import Circuit
from repro.core.inferability import soundness_violation


def random_circuit(rng: random.Random, num_inputs: int, num_gates: int) -> Circuit:
    c = Circuit()
    wires = []
    for index in range(num_inputs):
        name = f"i{index}"
        c.input(name, rng.randint(0, 1), tainted=rng.random() < 0.7)
        wires.append(name)
    for index in range(num_gates):
        op = rng.choice(["AND", "OR", "XOR", "NOT"])
        if op == "NOT":
            inputs = [rng.choice(wires)]
        else:
            inputs = [rng.choice(wires), rng.choice(wires)]
        wires.append(c.gate(op, *inputs, name=f"g{index}"))
    return c


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000),
       num_inputs=st.integers(min_value=1, max_value=6),
       num_gates=st.integers(min_value=1, max_value=10),
       declassifications=st.integers(min_value=0, max_value=4))
def test_untaint_algebra_is_sound(seed, num_inputs, num_gates,
                                  declassifications):
    rng = random.Random(seed)
    circuit = random_circuit(rng, num_inputs, num_gates)
    names = list(circuit.wires)
    for _ in range(declassifications):
        circuit.declassify(rng.choice(names))
    violation = soundness_violation(circuit)
    assert violation is None, violation


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_declassification_is_monotone(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng, 4, 8)
    names = list(circuit.wires)
    untainted: set = {n for n in names if not circuit.tainted(n)}
    for _ in range(5):
        circuit.declassify(rng.choice(names))
        now = {n for n in names if not circuit.tainted(n)}
        assert untainted <= now          # never re-taint
        untainted = now


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_propagate_reaches_fixpoint(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng, 4, 8)
    circuit.declassify(rng.choice(list(circuit.wires)))
    assert circuit.propagate() == []     # second pass finds nothing new


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_declassify_everything_untaints_everything(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng, 4, 6)
    for name in list(circuit.wires):
        circuit.declassify(name)
    assert all(not circuit.tainted(n) for n in circuit.wires)
