"""Campaign driver, corpus persistence/resume, report, and the fuzz CLI."""

import json

import pytest

from repro.core.attack_model import AttackModel
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.corpus import Corpus
from repro.fuzz.report import FuzzReport, render_report

# Two configurations and one model keep the campaign tests fast while still
# covering the sanity signal (UnsafeBaseline) and a secure configuration.
FAST_SWEEP = dict(profile="quick",
                  configs=["UnsafeBaseline", "SPT{Bwd,ShadowL1}"],
                  models=[AttackModel.SPECTRE], jobs=1)


def test_campaign_end_to_end(tmp_path):
    cfg = CampaignConfig(seeds=4, corpus_dir=str(tmp_path / "corpus"),
                         **FAST_SWEEP)
    report = run_campaign(cfg)
    assert report.seeds_run == 4 and report.seeds_resumed == 0
    assert report.cells_checked == 4 * 2    # seeds x configs x 1 model
    assert not report.invalid_seeds
    assert not report.counterexamples
    assert report.unsafe_divergences >= 1, (
        "no UnsafeBaseline divergence: the oracle sanity signal is dead")
    assert report.sanity_ok and report.ok
    # Every seed landed in the corpus with its cell verdicts.
    corpus = Corpus(str(tmp_path / "corpus"))
    seeds = corpus.records("seed")
    assert {r["seed"] for r in seeds} == {0, 1, 2, 3}
    assert all(len(r["cells"]) == 2 for r in seeds)


def test_campaign_resumes_from_corpus(tmp_path):
    corpus_dir = str(tmp_path / "corpus")
    first = run_campaign(CampaignConfig(seeds=3, corpus_dir=corpus_dir,
                                        **FAST_SWEEP))
    assert first.seeds_run == 3
    # Same campaign again: everything resumes, nothing re-runs.
    second = run_campaign(CampaignConfig(seeds=3, corpus_dir=corpus_dir,
                                         **FAST_SWEEP))
    assert second.seeds_run == 0 and second.seeds_resumed == 3
    assert second.ok
    # Extending the seed range only runs the new seeds.
    third = run_campaign(CampaignConfig(seeds=4, corpus_dir=corpus_dir,
                                        **FAST_SWEEP))
    assert third.seeds_run == 1 and third.seeds_resumed == 3


def test_campaign_without_unsafe_baseline_skips_sanity_gate():
    cfg = CampaignConfig(seeds=2, configs=["SPT{Bwd,ShadowL1}"],
                         profile="quick", models=[AttackModel.SPECTRE],
                         jobs=1)
    report = run_campaign(cfg)
    assert report.unsafe_divergences == 0
    assert report.sanity_ok and report.ok


def test_corpus_skips_truncated_trailing_line(tmp_path):
    directory = str(tmp_path / "corpus")
    corpus = Corpus(directory)
    corpus.append({"type": "seed", "seed": 1, "profile": "quick",
                   "fingerprint": "f", "cells": []})
    with open(corpus.path, "a") as handle:
        handle.write('{"type": "seed", "seed": 2, "prof')   # crash artifact
    reloaded = Corpus(directory)
    assert [r["seed"] for r in reloaded.records("seed")] == [1]
    assert reloaded.tried_seeds("quick", "f") == {1}
    assert reloaded.tried_seeds("quick", "other-fingerprint") == set()


def test_in_memory_corpus_has_no_path():
    corpus = Corpus(None)
    corpus.append({"type": "counterexample", "seed": 9})
    assert corpus.path is None
    assert corpus.counterexamples() == [{"type": "counterexample", "seed": 9}]


def test_report_sanity_failure_is_visible():
    report = FuzzReport(profile="quick", seeds_requested=2, seeds_run=2,
                        seeds_resumed=0, configs=["UnsafeBaseline"],
                        models=["spectre"], cells_checked=2)
    assert not report.sanity_ok and not report.ok
    assert "SANITY" in render_report(report)


def test_cli_runs_a_small_campaign(tmp_path, capsys):
    exit_code = fuzz_main([
        "--seeds", "2", "--profile", "quick", "--jobs", "1",
        "--configs", "UnsafeBaseline,SPT{Bwd,ShadowL1}",
        "--models", "spectre",
        "--corpus-dir", str(tmp_path / "corpus")])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "fuzz campaign" in out and "UnsafeBaseline" in out
    with open(tmp_path / "corpus" / "corpus.jsonl") as handle:
        records = [json.loads(line) for line in handle]
    assert {r["seed"] for r in records} == {0, 1}


def test_cli_rejects_bad_arguments(capsys):
    assert fuzz_main(["--seeds", "0"]) == 2
    with pytest.raises(SystemExit):
        fuzz_main(["--configs", "NotAConfig"])
    with pytest.raises(SystemExit):
        fuzz_main(["--profile", "nope"])
