"""Generator invariants: determinism, halting, secret-independence."""

import hashlib
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.fuzz.generator import (PROFILES, SECRET_BYTES, generate_plan,
                                  plan_from_json, plan_to_json, render,
                                  secret_pair, secret_region, workload_name)
from repro.fuzz.oracle import architectural_dependence
from repro.isa.interpreter import run_program
from repro.workloads import registry


def _program_digest(program) -> str:
    blob = json.dumps([[str(i) for i in program.instructions],
                       sorted(program.initial_memory.items())])
    return hashlib.sha256(blob.encode()).hexdigest()


def test_plans_and_programs_are_deterministic():
    for seed in (0, 7):
        plan_a, plan_b = generate_plan(seed, "quick"), generate_plan(seed, "quick")
        assert plan_to_json(plan_a) == plan_to_json(plan_b)
        secret = secret_pair(seed)[0]
        assert (_program_digest(render(plan_a, secret))
                == _program_digest(render(plan_b, secret)))


def test_programs_identical_across_processes():
    """Two fresh interpreter processes must render byte-identical victims."""
    code = (
        "import hashlib, json;"
        "from repro.fuzz.generator import generate_plan, render, secret_pair;"
        "plan = generate_plan(7, 'quick');"
        "p = render(plan, secret_pair(7)[0]);"
        "blob = json.dumps([[str(i) for i in p.instructions],"
        " sorted(p.initial_memory.items())]);"
        "print(hashlib.sha256(blob.encode()).hexdigest())")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONHASHSEED"] = "0"
    digests = set()
    for hashseed in ("1", "2"):       # different hash randomisation per run
        env["PYTHONHASHSEED"] = hashseed
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        digests.add(out.stdout.strip())
    assert len(digests) == 1
    plan = generate_plan(7, "quick")
    local = _program_digest(render(plan, secret_pair(7)[0]))
    assert digests == {local}


def test_secret_pair_is_a_distinct_pair():
    for seed in range(20):
        a, b = secret_pair(seed)
        assert a != b
        assert secret_region(a) != secret_region(b)
        assert len(secret_region(a)) == SECRET_BYTES


def test_every_victim_halts_and_is_secret_independent():
    for seed in range(8):
        plan = generate_plan(seed, "quick")
        a, b = (render(plan, s) for s in secret_pair(seed))
        result = run_program(a, max_instructions=200_000)
        assert result.halted, f"seed {seed} did not halt"
        assert not architectural_dependence(a, b), (
            f"seed {seed}: committed path depends on the secret")


def test_profiles_change_program_shape():
    quick = render(generate_plan(3, "quick"), secret_pair(3)[0])
    deep = render(generate_plan(3, "deep"), secret_pair(3)[0])
    assert len(deep.instructions) > len(quick.instructions)
    assert set(PROFILES) >= {"default", "quick", "deep"}


def test_plan_json_round_trip():
    plan = generate_plan(5, "default")
    rebuilt = plan_from_json(plan_to_json(plan))
    assert plan_to_json(rebuilt) == plan_to_json(plan)
    secret = secret_pair(5)[0]
    assert (_program_digest(render(rebuilt, secret))
            == _program_digest(render(plan, secret)))


def test_registry_resolves_fuzz_workloads():
    secret = secret_pair(4)[0]
    name = workload_name("quick", 4, secret)
    workload = registry.get(name)
    assert workload.name == name
    program = workload.program()
    assert (_program_digest(program)
            == _program_digest(render(generate_plan(4, "quick"), secret)))


def test_registry_still_rejects_unknown_names():
    with pytest.raises(KeyError):
        registry.get("no-such-workload")
    with pytest.raises(KeyError):
        registry.get("fuzz:quick:not-a-seed:beef")
