"""Adversarial campaign: mutation operators, scoring, and the guided search.

The full 10-seed hill-climb-vs-uniform comparison lives in the slow tier
(``--run-slow``); the fast tests pin the pieces the comparison relies on —
mutation closure over the plan IR, score monotonicity in the window width,
budget accounting, and determinism.
"""

import random

import pytest

from repro.core.attack_model import AttackModel
from repro.fuzz.adversarial import (INSTRUMENT_CONFIG, SearchOutcome,
                                    _instrument_score, hill_climb, mutate,
                                    render_outcome, taint_reach_score,
                                    uniform_search)
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.generator import (PROFILES, Gadget, generate_plan, render,
                                  secret_pair)
from repro.fuzz.oracle import architectural_dependence

HARD = PROFILES["hard"]


# ---------------------------------------------------------------- mutation
def test_mutate_preserves_gadget_and_invariants():
    rng = random.Random("mutate-closure")
    plan = generate_plan(7, "hard")
    for _ in range(200):
        plan = mutate(plan, rng, HARD)
        assert plan.gadgets, "mutation dropped the last gadget"
        for block in plan.blocks:
            if isinstance(block, Gadget):
                assert 0 <= block.widen <= 48
                assert 0 <= block.trainings <= 8


def test_mutate_is_deterministic_per_rng_seed():
    plan = generate_plan(3, "hard")
    out = [mutate(plan, random.Random("fixed"), HARD) for _ in range(2)]
    assert out[0] == out[1]


def test_mutated_plans_stay_architecturally_secret_independent():
    rng = random.Random("arch-indep")
    plan = generate_plan(11, "hard")
    for _ in range(25):
        plan = mutate(plan, rng, HARD)
    a, b = secret_pair(plan.seed)
    assert not architectural_dependence(render(plan, a), render(plan, b),
                                        200_000)


# ----------------------------------------------------------------- scoring
def test_taint_reach_score_weights_transmit_delay():
    low = taint_reach_score({"transmitters_delayed_cycles": 10})
    high = taint_reach_score({"transmitters_delayed_cycles": 200})
    assert high > low > 0
    assert taint_reach_score({}) == 0.0


def test_instrument_score_grows_with_window_width():
    """The gradient the climber follows: widening a gadget's speculation
    window increases the taint-reach score under the instrument config."""
    from dataclasses import replace

    from repro.fuzz.generator import with_blocks
    plan = generate_plan(2, "hard")
    gadget = plan.gadgets[0]
    scores = []
    for widen in (0, 4, 8):
        blocks = [replace(b, widen=widen) if b is gadget else b
                  for b in plan.blocks]
        score = _instrument_score(with_blocks(plan, blocks),
                                  AttackModel.SPECTRE, 200_000)
        assert score is not None
        scores.append(score)
    assert scores[0] < scores[1] < scores[2], scores


# ------------------------------------------------------------------ search
def test_hill_climb_finds_leak_outside_sampled_envelope():
    outcome = hill_climb(profile="hard", config="UnsafeBaseline",
                         model=AttackModel.SPECTRE, budget=400, seed=5)
    assert outcome.found and outcome.plan is not None
    assert outcome.channels
    assert outcome.sims <= 400
    assert not outcome.counterexample      # UnsafeBaseline leaks by design
    text = render_outcome(outcome)
    assert "leaking plan" in text and "COUNTEREXAMPLE" not in text


def test_hill_climb_is_deterministic():
    runs = [hill_climb(profile="hard", budget=120, seed=3)
            for _ in range(2)]
    assert runs[0] == runs[1]


def test_uniform_search_exhausts_budget_on_hard_profile():
    """The sampled envelope is leak-free: uniform search burns the whole
    budget without a verdict, which is the baseline the climber beats."""
    outcome = uniform_search(profile="hard", config="UnsafeBaseline",
                             model=AttackModel.SPECTRE, budget=60,
                             seed_start=0)
    assert not outcome.found
    assert outcome.sims == 60 and outcome.evals == 30


def test_budget_is_a_hard_ceiling():
    outcome = hill_climb(profile="hard", budget=5, seed=0)
    assert outcome.sims <= 5
    assert isinstance(outcome, SearchOutcome)


def test_no_leak_on_protected_config_within_small_budget():
    outcome = hill_climb(profile="hard", config="SPT{Bwd,ShadowL1}",
                         model=AttackModel.SPECTRE, budget=45, seed=0)
    assert not outcome.found
    assert not outcome.counterexample
    assert "no leaking plan" in render_outcome(outcome)


def test_instrument_config_is_the_full_design():
    assert INSTRUMENT_CONFIG == "SPT{Bwd,ShadowL1}"


# --------------------------------------------------------------------- CLI
def test_cli_adversarial_compare_uniform(capsys):
    code = fuzz_main(["--adversarial", "--profile", "hard",
                      "--budget", "400", "--compare-uniform",
                      "--models", "spectre", "--seed-start", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "hill-climb" in out and "uniform" in out
    assert "advantage: hill-climb leaked" in out


@pytest.mark.slow
def test_hill_climb_beats_uniform_across_seeds():
    """The acceptance demo: over several seeds, guided search reaches a
    leaking plan while uniform sampling exhausts the same budget."""
    hill_sims, uniform_found = [], 0
    for seed in range(4):
        h = hill_climb(profile="hard", budget=400, seed=seed)
        u = uniform_search(profile="hard", budget=400, seed_start=seed * 1000)
        assert h.found, f"hill-climb missed at seed {seed}"
        hill_sims.append(h.sims)
        uniform_found += u.found
    assert uniform_found == 0
    assert max(hill_sims) < 400
