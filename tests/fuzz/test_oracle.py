"""Non-interference oracle: planted leaks and the expected-divergence matrix.

The planted gadgets here are the oracle's ground truth:

* a *speculative* bounds-check-bypass gadget must diverge under
  ``UnsafeBaseline`` and under no protected configuration;
* a *non-speculative* secret gadget must additionally diverge under STT
  (the scope gap of paper Section 3 that motivates SPT) while every SPT
  variant holds.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.fuzz.generator import Gadget, generate_plan, render, secret_pair, \
    with_blocks
from repro.fuzz.oracle import (architectural_dependence, check_pair_direct,
                               classify, divergence_detail,
                               expected_to_diverge)
from repro.harness.configs import CONFIGURATIONS

SPT_CONFIGS = [name for name in CONFIGURATIONS if name.startswith("SPT")]


def _planted(exposure: str):
    gadget = Gadget(exposure=exposure, transmit="line", trainings=3, widen=8,
                    in_bounds=4, secret_index=10, shift=6)
    plan = with_blocks(generate_plan(0, "quick"), [gadget])
    secrets = secret_pair(0)
    programs = tuple(render(plan, s) for s in secrets)
    assert not architectural_dependence(*programs)
    return programs


def test_unsafe_baseline_leaks_planted_speculative_gadget():
    a, b = _planted("speculative")
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        channels = check_pair_direct(a, b, "UnsafeBaseline", model)
        assert "load-line" in channels, (
            "the secret-dependent probe load must move across cache lines")


def test_protected_configs_hold_on_speculative_gadget():
    a, b = _planted("speculative")
    for config in ["SecureBaseline", "STT", *SPT_CONFIGS]:
        for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
            assert not check_pair_direct(a, b, config, model), (
                f"{config}/{model.value} leaked a speculatively-accessed "
                f"secret")


def test_stt_scope_gap_on_nonspeculative_gadget():
    """STT leaks a non-speculatively accessed secret; SPT must not."""
    a, b = _planted("nonspeculative")
    assert check_pair_direct(a, b, "UnsafeBaseline", AttackModel.SPECTRE)
    assert check_pair_direct(a, b, "STT", AttackModel.SPECTRE), (
        "the planted nonspec gadget must expose STT's scope gap")
    for config in SPT_CONFIGS + ["SecureBaseline"]:
        for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
            assert not check_pair_direct(a, b, config, model), (
                f"{config}/{model.value} leaked a non-speculatively "
                f"accessed secret")


def test_expected_divergence_matrix():
    for exposure in ("speculative", "nonspeculative"):
        assert expected_to_diverge(exposure, "UnsafeBaseline")
    assert expected_to_diverge("nonspeculative", "STT")
    assert not expected_to_diverge("speculative", "STT")
    for config in SPT_CONFIGS + ["SecureBaseline"]:
        for exposure in ("speculative", "nonspeculative"):
            assert not expected_to_diverge(exposure, config)


def test_classify_flags_counterexamples():
    model = AttackModel.SPECTRE
    ok = classify("speculative", "SPT{Bwd,ShadowL1}", model, [])
    assert not ok.diverged and not ok.counterexample
    expected = classify("speculative", "UnsafeBaseline", model, ["load-line"])
    assert expected.diverged and expected.expected
    assert not expected.counterexample
    bad = classify("speculative", "SPT{Bwd,ShadowL1}", model, ["load-line"])
    assert bad.diverged and bad.counterexample and not bad.expected


def test_divergence_detail_shows_differing_events():
    a, b = _planted("speculative")
    detail = divergence_detail(a, b, "UnsafeBaseline", AttackModel.SPECTRE)
    assert detail.strip(), "a diverging pair must produce a visible diff"


def test_oracle_rejects_bad_exposure():
    with pytest.raises(ValueError):
        expected_to_diverge("banana", "STT")
