"""Counterexample minimisation: a planted gadget shrinks out of the noise."""

import pytest

from repro.core.attack_model import AttackModel
from repro.fuzz.generator import (Gadget, generate_plan, render, secret_pair,
                                  with_blocks)
from repro.fuzz.minimize import minimize_plan
from repro.fuzz.oracle import check_pair_direct

# A single planted gadget renders to ~50 instructions; anything meaningfully
# above that means the minimiser failed to strip the surrounding noise.
MINIMAL_BUDGET = 64


def _noisy_plan_with_planted_gadget():
    """A real generated victim, its gadgets replaced by one known leaker."""
    gadget = Gadget(exposure="speculative", transmit="line", trainings=3,
                    widen=8, in_bounds=4, secret_index=10, shift=6)
    base = generate_plan(2, "default")      # a full-size victim as the noise
    noise = [b for b in base.blocks if not isinstance(b, Gadget)]
    return with_blocks(base, noise + [gadget])


def test_minimiser_shrinks_planted_gadget_to_budget():
    plan = _noisy_plan_with_planted_gadget()
    secrets = secret_pair(plan.seed)
    model = AttackModel.SPECTRE
    assert check_pair_direct(render(plan, secrets[0]),
                             render(plan, secrets[1]),
                             "UnsafeBaseline", model), \
        "the planted gadget must leak before minimisation"

    result = minimize_plan(plan, secrets, "UnsafeBaseline", model)

    assert result.instructions_after < result.instructions_before
    assert result.instructions_after <= MINIMAL_BUDGET, (
        f"minimised victim still has {result.instructions_after} "
        f"instructions")
    assert result.plan.gadgets, "minimisation must keep the gadget"
    # The shrunken plan must still witness the same divergence.
    assert check_pair_direct(render(result.plan, secrets[0]),
                             render(result.plan, secrets[1]),
                             "UnsafeBaseline", model)


def test_minimiser_rejects_non_diverging_input():
    plan = _noisy_plan_with_planted_gadget()
    secrets = secret_pair(plan.seed)
    with pytest.raises(ValueError):
        # The planted gadget does NOT leak under full SPT.
        minimize_plan(plan, secrets, "SPT{Bwd,ShadowL1}", AttackModel.SPECTRE)


def test_minimiser_respects_check_budget():
    plan = _noisy_plan_with_planted_gadget()
    secrets = secret_pair(plan.seed)
    result = minimize_plan(plan, secrets, "UnsafeBaseline",
                           AttackModel.SPECTRE, max_checks=10)
    assert result.checks <= 10
