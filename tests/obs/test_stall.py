"""Unit tests for stall-cause attribution (``repro.obs.stall``).

The engine-delay categories never dominate on the bundled workloads (the
visibility point usually releases the head before it stalls), so these
tests pin the classifier's behaviour with purpose-built gating engines
and micro-programs where the cause is unambiguous.
"""

from repro.isa.assembler import assemble
from repro.obs.stall import STALL_CAUSES, StallCause, stall_breakdown
from repro.pipeline.core import OoOCore
from repro.pipeline.engine_api import ProtectionEngine


class GateUntil(ProtectionEngine):
    """Refuses transmitter issue / branch resolution until a given cycle;
    optionally reports every source register's untaint as queued."""

    name = "GateUntil"

    def __init__(self, release_cycle: int, gate_address: bool = True,
                 gate_resolve: bool = False, pending: bool = False):
        super().__init__()
        self.release_cycle = release_cycle
        self.gate_address = gate_address
        self.gate_resolve = gate_resolve
        self.pending = pending

    def _released(self) -> bool:
        return self.core.cycle >= self.release_cycle

    def may_compute_address(self, di) -> bool:
        return self._released() if self.gate_address else True

    def may_resolve(self, di) -> bool:
        return self._released() if self.gate_resolve else True

    def untaint_pending(self, preg: int) -> bool:
        return self.pending and not self._released()


LOAD_PROGRAM = """
    li a0, 0x100
    ld a1, 0(a0)
    halt
"""

BRANCH_PROGRAM = """
    li t0, 1
    beq t0, zero, skip
    li a0, 7
skip:
    halt
"""


def run_with(source: str, engine=None):
    core = OoOCore(assemble(source), engine=engine)
    sim = core.run(max_instructions=1000)
    assert sim.halted
    return sim


def breakdown_of(sim) -> dict:
    return stall_breakdown(sim.metrics)


def test_identity_on_micro_program():
    sim = run_with(LOAD_PROGRAM)
    bd = breakdown_of(sim)
    assert sum(bd.values()) == sim.cycles
    assert set(bd) == {cause.key for cause in STALL_CAUSES}


def test_gated_transmitter_attributed_to_engine_delay():
    baseline = run_with(LOAD_PROGRAM)
    gated = run_with(LOAD_PROGRAM, GateUntil(release_cycle=40))
    bd = breakdown_of(gated)
    delayed = bd[StallCause.DELAYED_TRANSMITTER.key]
    assert delayed > 10
    assert gated.cycles > baseline.cycles + 10
    assert sum(bd.values()) == gated.cycles
    # The compatibility counter agrees that the engine held issue back.
    assert gated.stats["transmitters_delayed_cycles"] >= delayed


def test_gated_transmitter_with_queued_untaint_is_broadcast_wait():
    gated = run_with(LOAD_PROGRAM,
                     GateUntil(release_cycle=40, pending=True))
    bd = breakdown_of(gated)
    # The finer-grained cause wins over the generic engine delay.
    assert bd[StallCause.UNTAINT_BROADCAST_WAIT.key] > 10
    assert bd[StallCause.DELAYED_TRANSMITTER.key] == 0


def test_gated_resolution_attributed_to_engine_delay():
    gated = run_with(BRANCH_PROGRAM,
                     GateUntil(release_cycle=40, gate_address=False,
                               gate_resolve=True))
    bd = breakdown_of(gated)
    assert bd[StallCause.DELAYED_RESOLUTION.key] > 10
    assert sum(bd.values()) == gated.cycles
    assert gated.stats["resolutions_delayed_cycles"] > 10


def test_gated_resolution_with_queued_untaint_is_broadcast_wait():
    gated = run_with(BRANCH_PROGRAM,
                     GateUntil(release_cycle=40, gate_address=False,
                               gate_resolve=True, pending=True))
    bd = breakdown_of(gated)
    assert bd[StallCause.UNTAINT_BROADCAST_WAIT.key] > 10
    assert bd[StallCause.DELAYED_RESOLUTION.key] == 0


def test_memory_miss_attribution():
    # A dependent-load chain keeps the head in memory flight.
    source = """
        li a0, 0x1000
        ld a1, 0(a0)
        ld a2, 0(a1)
        halt
    """
    sim = run_with(source)
    bd = breakdown_of(sim)
    assert bd[StallCause.MEMORY_MISS.key] > 0
    assert sum(bd.values()) == sim.cycles


def test_squash_recovery_attribution():
    # A data-dependent hard-to-predict exit forces at least one squash.
    source = """
        li t0, 5
        li t1, 0
    loop:
        addi t1, t1, 1
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """
    sim = run_with(source)
    assert sim.stats["squashes"] >= 1
    bd = breakdown_of(sim)
    assert bd[StallCause.SQUASH_RECOVERY.key] > 0
    assert sum(bd.values()) == sim.cycles


def test_backpressure_visible_on_real_workload():
    """Delay-everything protection turns into reservation-station pressure."""
    from repro.core.attack_model import AttackModel
    from repro.harness.runner import run_one

    result = run_one("djbsort", "SecureBaseline",
                     model=AttackModel.FUTURISTIC, max_instructions=3000)
    bd = stall_breakdown(result.metrics)
    assert bd[StallCause.RS_FULL.key] > 0
    assert sum(bd.values()) == result.cycles


def test_stall_breakdown_accepts_dict_and_metrics():
    sim = run_with(LOAD_PROGRAM)
    from_tree = stall_breakdown(sim.metrics)
    from_blob = stall_breakdown(sim.metrics.as_dict())
    assert from_tree == from_blob


def test_cause_keys_are_stable():
    # The keys are a serialisation format (BENCH snapshots, docs): renames
    # are schema changes, not refactors.
    assert [cause.key for cause in STALL_CAUSES] == [
        "retiring", "fetch-starved", "rob-full", "rs-full", "lsq-full",
        "memory-miss", "squash-recovery", "engine-delayed-transmitter",
        "engine-delayed-resolution", "untaint-broadcast-wait",
    ]
