"""Tests for performance snapshots (``repro.obs.bench``) and the CLI."""

import copy
import json

import pytest

from repro.obs import bench
from repro.obs.cli import bench_main, stats_main
from repro.obs.stall import STALL_CAUSES

BUDGET = 120
WORKLOADS = ["mcf", "djbsort"]


@pytest.fixture(scope="module")
def snapshot():
    return bench.record_snapshot(budget=BUDGET, jobs=1, reps=1,
                                 workloads=WORKLOADS)


def test_snapshot_shape(snapshot):
    assert snapshot["schema_version"] == bench.SCHEMA_VERSION
    assert snapshot["budget"] == BUDGET
    assert snapshot["workloads"] == WORKLOADS
    assert snapshot["throughput"]["instr_per_sec"] > 0
    assert snapshot["throughput"]["workload"] == bench.THROUGHPUT_WORKLOAD
    assert snapshot["overheads"], "headline overheads must be non-empty"
    fractions = snapshot["stall"]["fractions"]
    assert set(fractions) == {cause.key for cause in STALL_CAUSES}
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    assert snapshot["stall"]["total_cycles"] == \
        sum(snapshot["stall"]["cycles"].values())


def test_snapshot_per_backend_throughput(snapshot):
    spt = snapshot["spt_throughput"]
    assert spt["config"] == bench.SPEEDUP_CONFIG
    assert set(spt["backends"]) == set(bench.BACKENDS)
    for cell in spt["backends"].values():
        assert cell["instr_per_sec"] > 0
    assert spt["vector_speedup"] > 0


def test_snapshot_backends_agree_on_stall_shape(snapshot):
    # The vector backend is bit-identical by contract: the same cell's
    # stall breakdown must match the reference backend's exactly.
    assert snapshot["stall_vector"]["cycles"] == snapshot["stall"]["cycles"]


def test_write_load_round_trip(snapshot, tmp_path):
    path = bench.write_snapshot(snapshot, str(tmp_path / "BENCH_test.json"))
    loaded = bench.load_snapshot(path)
    assert loaded == json.loads(json.dumps(snapshot))


def test_load_rejects_unknown_schema(snapshot, tmp_path):
    stale = dict(snapshot, schema_version=bench.SCHEMA_VERSION + 1)
    path = bench.write_snapshot(stale, str(tmp_path / "BENCH_stale.json"))
    with pytest.raises(ValueError, match="schema"):
        bench.load_snapshot(path)


def test_compare_self_is_clean(snapshot):
    assert bench.compare_snapshots(snapshot, snapshot) == []


def test_compare_flags_throughput_regression(snapshot):
    slow = copy.deepcopy(snapshot)
    slow["throughput"]["instr_per_sec"] /= 2.0
    failures = bench.compare_snapshots(snapshot, slow)
    assert len(failures) == 1
    assert "throughput regression" in failures[0]
    # A 2x speed-up is never a failure (one-sided check).
    assert bench.compare_snapshots(slow, snapshot) == []


def test_compare_enforces_vector_speedup_floor(snapshot):
    speedup = snapshot["spt_throughput"]["vector_speedup"]
    assert bench.compare_snapshots(snapshot, snapshot,
                                   min_vector_speedup=0.0) == []
    failures = bench.compare_snapshots(snapshot, snapshot,
                                       min_vector_speedup=speedup + 1.0)
    assert any("vector speedup below floor" in f for f in failures)


def test_compare_flags_backend_stall_divergence(snapshot):
    diverged = copy.deepcopy(snapshot)
    diverged["stall_vector"]["fractions"]["retiring"] += 0.05
    failures = bench.compare_snapshots(snapshot, diverged)
    assert any("backend divergence" in f and "retiring" in f
               for f in failures)


def test_compare_flags_overhead_drift(snapshot):
    drifted = copy.deepcopy(snapshot)
    key = sorted(drifted["overheads"])[0]
    drifted["overheads"][key] += 0.01
    failures = bench.compare_snapshots(snapshot, drifted)
    assert any("overhead shape changed" in f and key in f for f in failures)


def test_compare_flags_stall_shape_drift(snapshot):
    drifted = copy.deepcopy(snapshot)
    drifted["stall"]["fractions"]["retiring"] += 0.05
    failures = bench.compare_snapshots(snapshot, drifted)
    assert any("stall shape changed: retiring" in f for f in failures)


def test_compare_refuses_mismatched_sweeps(snapshot):
    other = copy.deepcopy(snapshot)
    other["budget"] = BUDGET * 2
    failures = bench.compare_snapshots(snapshot, other)
    # A budget mismatch is a CI configuration error, not a regression:
    # the message must name the knob to fix (REPRO_BENCH_BUDGET) and
    # both disagreeing values.
    assert len(failures) == 1
    assert "incomparable snapshots" in failures[0]
    assert "REPRO_BENCH_BUDGET" in failures[0]
    assert repr(BUDGET) in failures[0]
    assert repr(BUDGET * 2) in failures[0]


def test_bench_cli_compare_exit_codes(snapshot, tmp_path):
    base = bench.write_snapshot(snapshot, str(tmp_path / "base.json"))
    slow = copy.deepcopy(snapshot)
    slow["throughput"]["instr_per_sec"] /= 2.0
    regressed = bench.write_snapshot(slow, str(tmp_path / "slow.json"))

    assert bench_main(["compare", base, base]) == 0
    assert bench_main(["compare", base, regressed]) == 1
    assert bench_main(["compare", base, str(tmp_path / "missing.json")]) == 2
    assert bench_main(["show", base]) == 0


@pytest.fixture(scope="module")
def canary():
    return bench.backend_canary(budget=BUDGET, reps=1)


def test_backend_canary_shape(canary):
    assert canary["budget"] == BUDGET
    assert canary["workload"] == bench.SPEEDUP_WORKLOAD
    assert canary["config"] == bench.SPEEDUP_CONFIG
    assert set(canary["backends"]) == set(bench.BACKENDS)
    for cell in canary["backends"].values():
        assert cell["instr_per_sec"] > 0
        assert cell["best_wall_seconds"] > 0
    assert canary["vector_speedup"] == pytest.approx(
        canary["backends"]["vector"]["instr_per_sec"]
        / canary["backends"]["reference"]["instr_per_sec"])


def test_render_canary_mentions_both_backends(canary):
    text = bench.render_canary(canary)
    assert "reference" in text
    assert "vector" in text
    assert f"{canary['vector_speedup']:.2f}x" in text


def test_bench_cli_canary_exit_codes(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_BUDGET", str(BUDGET))
    # Any positive speedup clears a 0.0 floor; no real ratio reaches 1e9.
    assert bench_main(["canary", "--reps", "1", "--min-ratio", "0.0"]) == 0
    assert bench_main(["canary", "--reps", "1", "--min-ratio", "1e9"]) == 1
    err = capsys.readouterr().err
    assert "below the" in err


def test_bench_cli_profile_writes_pstats(tmp_path, monkeypatch, capsys):
    import pstats

    monkeypatch.setenv("REPRO_BENCH_BUDGET", str(BUDGET))
    out = str(tmp_path / "bench.pstats")
    assert bench_main(["profile", "-o", out, "--runs", "1"]) == 0
    text = capsys.readouterr().out
    assert "cumulative" in text
    stats = pstats.Stats(out)
    assert stats.total_calls > 0


def test_bench_cli_record(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_BUDGET", str(BUDGET))
    out = str(tmp_path / "BENCH_cli.json")
    assert bench_main(["record", "-o", out, "--reps", "1",
                       "--jobs", "1"]) == 0
    recorded = bench.load_snapshot(out)
    assert recorded["budget"] == BUDGET


def test_stats_cli_json(capsys):
    assert stats_main(["mcf", "--config", "SPT{Bwd,ShadowL1}",
                       "--max-instructions", "300", "--json"]) == 0
    blob = json.loads(capsys.readouterr().out)
    groups = blob["groups"]
    assert groups["sim"]["scalars"]["cycles"] > 0
    assert "stalls" in groups
    assert "engine" in groups


def test_stats_cli_text(capsys):
    assert stats_main(["mcf", "--max-instructions", "300"]) == 0
    out = capsys.readouterr().out
    assert "Begin Simulation Metrics" in out
    assert "sim.cycles" in out
    assert "stalls." in out
