"""Unit tests for the hierarchical metrics tree (``repro.obs.metrics``)."""

import json

from repro.obs.metrics import Metrics


def sample_tree() -> Metrics:
    m = Metrics("sim")
    sim = m.child("sim")
    sim.set("cycles", 100)
    sim.set("ipc", 0.5)
    stalls = m.child("stalls")
    stalls.set("retiring", 60)
    stalls.set("memory-miss", 40)
    engine = m.child("engine")
    engine.add("broadcasts", 3)
    engine.add("broadcasts", 4)
    untaint = engine.child("untaint")
    untaint.add_dist("latency", 2)
    untaint.add_dist("latency", 2)
    untaint.add_dist("latency", 7)
    return m


def test_child_is_created_once():
    m = Metrics()
    assert m.child("a") is m.child("a")
    assert m.child("a") is not m.child("b")


def test_scalar_set_add_get():
    m = Metrics()
    m.add("x")
    m.add("x", 4)
    assert m.get("x") == 5
    m.set("x", 2)
    assert m.get("x") == 2
    assert m.get("missing") == 0
    assert m.get("missing", -1) == -1


def test_dist_accumulation():
    m = Metrics()
    m.add_dist("lat", 3)
    m.add_dist("lat", 3, 2)
    m.add_dist("lat", 9)
    assert m.dists["lat"] == {3: 3, 9: 1}


def test_set_dist_coerces_keys_to_int():
    m = Metrics()
    m.set_dist("lat", {"4": 7, 8: 1})
    assert m.dists["lat"] == {4: 7, 8: 1}


def test_flatten_dotted_keys():
    flat = sample_tree().flatten()
    assert flat["sim.cycles"] == 100
    assert flat["stalls.memory-miss"] == 40
    assert flat["engine.broadcasts"] == 7
    assert flat["engine.untaint.latency::2"] == 2
    assert flat["engine.untaint.latency::7"] == 1


def test_group_dotted_resolution():
    m = sample_tree()
    assert m.group("engine.untaint").dists["latency"][2] == 2
    assert m.group("stalls").get("retiring") == 60
    assert m.group("missing") is None
    assert m.group("engine.missing") is None
    assert m.group("missing.deeper") is None


def test_as_dict_round_trip():
    m = sample_tree()
    blob = m.as_dict()
    # The blob must survive a real JSON round-trip (the cache stores it).
    blob = json.loads(json.dumps(blob))
    rebuilt = Metrics.from_dict(blob, name="sim")
    assert rebuilt.flatten() == m.flatten()
    # Dist bucket keys come back as ints, not the JSON strings.
    assert rebuilt.group("engine.untaint").dists["latency"] == {2: 2, 7: 1}


def test_as_dict_omits_empty_sections():
    empty = Metrics()
    assert empty.as_dict() == {}
    scalar_only = Metrics()
    scalar_only.set("a", 1)
    assert set(scalar_only.as_dict()) == {"scalars"}


def test_render_gem5_style():
    text = sample_tree().render("Test Stats")
    lines = text.splitlines()
    assert lines[0].startswith("---------- Begin Test Stats")
    assert lines[-1].startswith("---------- End Test Stats")
    assert any(line.startswith("sim.cycles") and line.rstrip().endswith("#")
               for line in lines)
    # Floats render with six decimals, like gem5.
    assert any("0.500000" in line for line in lines)


def test_walk_visits_every_group():
    paths = [path for path, _ in sample_tree().walk()]
    assert "engine.untaint" in paths
    assert "stalls" in paths
