"""Taint-lifecycle histograms surfaced through the metrics tree.

A real SPT run must populate the taint-to-untaint latency distribution
per untaint rule and the broadcast queue-wait distribution, and those
must survive the RunResult JSON path unchanged.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.harness.configs import FULL_SPT
from repro.harness.runner import run_one
from repro.obs.metrics import Metrics


@pytest.fixture(scope="module")
def result():
    return run_one("mcf", FULL_SPT, model=AttackModel.FUTURISTIC,
                   max_instructions=2000)


@pytest.fixture(scope="module")
def tree(result):
    return Metrics.from_dict(result.metrics, name="sim")


def test_untaint_latency_histograms_present(result, tree):
    untaint = tree.group("engine.untaint")
    assert untaint is not None
    latency_dists = {key: hist for key, hist in untaint.dists.items()
                     if key.startswith("latency-")}
    assert latency_dists, "no taint-to-untaint latency recorded"
    observed = sum(count for hist in latency_dists.values()
                   for count in hist.values())
    # Every taint transition records exactly one latency sample, and each
    # transition is also counted once in the Figure-8 by-kind breakdown.
    assert 0 < observed <= untaint.get("total")
    assert all(bucket >= 0 for hist in latency_dists.values()
               for bucket in hist)


def test_latency_kinds_match_by_kind_counts(result, tree):
    untaint = tree.group("engine.untaint")
    for key, hist in untaint.dists.items():
        if not key.startswith("latency-"):
            continue
        kind = key[len("latency-"):]
        assert sum(hist.values()) <= untaint.get(kind), (
            f"more latency samples than untaint events for rule {kind}")


def test_broadcast_queue_wait_present(tree):
    broadcast = tree.group("engine.broadcast")
    assert broadcast is not None
    assert broadcast.get("broadcasts") > 0
    wait = broadcast.dists.get("queue_wait")
    assert wait, "no broadcast queue-wait samples recorded"
    assert sum(wait.values()) == broadcast.get("broadcasts")


def test_lifecycle_survives_json_round_trip(result):
    import json

    blob = json.loads(json.dumps(result.metrics))
    rebuilt = Metrics.from_dict(blob, name="sim")
    original = Metrics.from_dict(result.metrics, name="sim")
    assert rebuilt.flatten() == original.flatten()
