"""Stall accounting identity: every cycle has exactly one cause.

ISSUE acceptance criterion: for every (workload, configuration, model)
cell of the Figure-7 sweep, the per-cause stall cycles must sum to the
simulated cycle count — no cycle unaccounted, none double-counted.
"""

import pytest

from repro.harness.configs import FIGURE7_ORDER
from repro.harness.runner import run_one
from repro.obs.stall import stall_breakdown

from tests.conftest import BOTH_MODELS

BUDGET = 300
WORKLOADS = ["mcf", "djbsort", "xz"]
CONFIGS = ["UnsafeBaseline"] + list(FIGURE7_ORDER)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("model", BOTH_MODELS)
def test_stall_cycles_sum_to_total(workload, config, model):
    result = run_one(workload, config, model=model,
                     max_instructions=BUDGET)
    breakdown = stall_breakdown(result.metrics)
    assert sum(breakdown.values()) == result.cycles, (
        f"{workload}/{config}/{model.value}: stall causes sum to "
        f"{sum(breakdown.values())} but the core ran {result.cycles} cycles")
    assert all(count >= 0 for count in breakdown.values())
