"""Unit and property tests for the flat backing store."""

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.main_memory import MainMemory

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
addr = st.integers(min_value=0, max_value=1 << 20)
size = st.sampled_from([1, 2, 4, 8])


def test_uninitialised_reads_zero():
    assert MainMemory().load(0x1234, 8) == 0


def test_image_constructor():
    memory = MainMemory({0x10: 0xAB})
    assert memory.load(0x10, 1) == 0xAB


@given(address=addr, value=u64, access=size)
def test_store_load_roundtrip(address, value, access):
    memory = MainMemory()
    memory.store(address, value, access)
    mask = (1 << (8 * access)) - 1
    assert memory.load(address, access) == value & mask


@given(address=addr, value=u64)
def test_little_endian_composition(address, value):
    memory = MainMemory()
    memory.store(address, value, 8)
    composed = 0
    for offset in range(8):
        composed |= memory.load(address + offset, 1) << (8 * offset)
    assert composed == value


@given(address=addr, first=u64, second=u64)
def test_partial_overwrite(address, first, second):
    memory = MainMemory()
    memory.store(address, first, 8)
    memory.store(address + 2, second, 2)
    expected = (first & ~(0xFFFF << 16)) | ((second & 0xFFFF) << 16)
    assert memory.load(address, 8) == expected


def test_snapshot_drops_zero_bytes():
    memory = MainMemory()
    memory.store(0x100, 0x00FF, 2)
    assert memory.snapshot() == {0x100: 0xFF}
