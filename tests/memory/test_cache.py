"""Unit tests for the set-associative cache."""

import pytest

from repro.memory.cache import Cache, CacheParams


def small_cache(ways: int = 2, sets: int = 4) -> Cache:
    return Cache(CacheParams("T", size_bytes=64 * ways * sets, line_bytes=64,
                             ways=ways, latency=1))


def test_miss_then_hit():
    cache = small_cache()
    hit, evicted = cache.access(0x100)
    assert not hit and evicted is None
    hit, evicted = cache.access(0x100)
    assert hit and evicted is None
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_same_line_different_offsets_hit():
    cache = small_cache()
    cache.access(0x100)
    hit, _ = cache.access(0x13F)      # last byte of the same 64B line
    assert hit
    hit, _ = cache.access(0x140)      # next line
    assert not hit


def test_lru_eviction_order():
    cache = small_cache(ways=2, sets=1)
    cache.access(0x000)
    cache.access(0x040)
    cache.access(0x000)               # refresh line 0
    hit, evicted = cache.access(0x080)
    assert not hit
    assert evicted == 0x040           # line 0x40 was least recently used


def test_set_indexing_avoids_cross_set_eviction():
    cache = small_cache(ways=1, sets=4)
    lines = [0x000, 0x040, 0x080, 0x0C0]
    for line in lines:
        _, evicted = cache.access(line)
        assert evicted is None        # each maps to its own set


def test_invalidate():
    cache = small_cache()
    cache.access(0x200)
    assert cache.probe(0x200)
    assert cache.invalidate(0x200)
    assert not cache.probe(0x200)
    assert not cache.invalidate(0x200)


def test_probe_does_not_disturb_lru():
    cache = small_cache(ways=2, sets=1)
    cache.access(0x000)
    cache.access(0x040)
    cache.probe(0x000)                # must NOT refresh
    _, evicted = cache.access(0x080)
    assert evicted == 0x000


def test_resident_lines():
    cache = small_cache()
    cache.access(0x100)
    cache.access(0x480)
    assert sorted(cache.resident_lines()) == [0x100, 0x480]


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheParams("bad", size_bytes=64, line_bytes=64, ways=2,
                    latency=1).num_sets
