"""Unit tests for the three-level hierarchy and MSHRs."""

from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy


def test_cold_miss_goes_to_dram_then_warms_up():
    h = MemoryHierarchy()
    first = h.access(0x1000, now=0)
    assert first.level == "DRAM"
    assert first.latency == (2 + 20 + 40 + 90)
    second = h.access(0x1000, now=200)
    assert second.level == "L1D"
    assert second.latency == 2


def test_l2_hit_after_l1_eviction():
    params = HierarchyParams()
    params.l1_params.size_bytes = 2 * 64 * 8     # tiny L1: 2 sets x 8 ways
    h = MemoryHierarchy(params)
    h.access(0x0000, now=0)
    # Fill the set until 0x0000 is evicted from L1 (same set: stride 2 lines).
    for index in range(1, 9):
        h.access(index * 128, now=index)
    result = h.access(0x0000, now=100)
    assert result.level == "L2"
    assert result.latency == 2 + 20


def test_l1_eviction_reported():
    params = HierarchyParams()
    params.l1_params.size_bytes = 64 * 2         # 1 set, 2 ways
    params.l1_params.ways = 2
    h = MemoryHierarchy(params)
    h.access(0x000, now=0)
    h.access(0x040, now=1)
    result = h.access(0x080, now=2)
    assert result.l1_evicted_line == 0x000


def test_mshr_exhaustion_stalls():
    params = HierarchyParams()
    params.mshrs = 2
    h = MemoryHierarchy(params)
    assert not h.access(0x0000, now=0).stalled
    assert not h.access(0x1000, now=0).stalled
    stalled = h.access(0x2000, now=0)
    assert stalled.stalled
    assert stalled.level == "STALL"
    # After the misses complete, new misses are accepted again.
    late = h.access(0x2000, now=1000)
    assert not late.stalled


def test_l1_hits_do_not_consume_mshrs():
    params = HierarchyParams()
    params.mshrs = 1
    h = MemoryHierarchy(params)
    h.access(0x0000, now=0)              # miss: occupies the only MSHR
    hit = h.access(0x0000, now=1)        # L1 hit: must not stall
    assert hit.level == "L1D" and not hit.stalled


def test_flush_l1_line_forces_l2_hit():
    h = MemoryHierarchy()
    h.access(0x3000, now=0)
    assert h.l1_resident(0x3000)
    assert h.flush_l1_line(0x3000)
    assert not h.l1_resident(0x3000)
    assert h.access(0x3000, now=500).level == "L2"


def test_flush_all():
    h = MemoryHierarchy()
    h.access(0x5000, now=0)
    h.flush_all()
    assert h.access(0x5000, now=500).level == "DRAM"


def test_inclusive_fill_on_miss():
    h = MemoryHierarchy()
    h.access(0x7000, now=0)
    assert h.l1.probe(0x7000)
    assert h.l2.probe(0x7000)
    assert h.l3.probe(0x7000)
