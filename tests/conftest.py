"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.attack_model import AttackModel
from repro.isa.interpreter import run_program
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams


BOTH_MODELS = [AttackModel.SPECTRE, AttackModel.FUTURISTIC]


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the persistent result cache at a per-test directory.

    Keeps the suite from reading (or polluting) the user's real
    ``~/.cache/repro`` while still exercising the cache code paths.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def small_params() -> MachineParams:
    """A small machine for fast unit tests."""
    return MachineParams(rob_entries=64, rs_entries=32, num_phys_regs=128,
                         lq_entries=16, sq_entries=16)


def assert_matches_interpreter(program, engine=None, params=None,
                               max_instructions=200_000):
    """Run a program on the OoO core and the golden interpreter; compare.

    Returns the SimResult for further assertions.
    """
    ref = run_program(program, max_instructions=max_instructions)
    core = OoOCore(program, engine=engine, params=params)
    sim = core.run(max_instructions=max_instructions + 1000)
    assert sim.halted == ref.halted, (
        f"halt mismatch: interp={ref.halted} sim={sim.halted}")
    for index in range(32):
        assert sim.reg(index) == ref.state.read_reg(index), (
            f"x{index}: interp={ref.state.read_reg(index):#x} "
            f"sim={sim.reg(index):#x}")
    mem_ref = {a: v for a, v in ref.state.memory.items() if v}
    assert sim.memory.snapshot() == mem_ref, "memory image mismatch"
    assert sim.retired == ref.retired
    return sim


def pytest_addoption(parser):
    parser.addoption("--run-slow", action="store_true", default=False,
                     help="run slow end-to-end sweeps")


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running end-to-end test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
