"""End-to-end verification of the named targets — the PR's acceptance bar.

The three constant-time crypto kernels must verify *leak-free* at the
default bounds (a complete exploration, so the verdict is a proof up to
``spec_window``/``spec_depth``), and both attack gadgets must produce a
symbolic leak witness that names the responsible secret bytes and comes
with a confirmed distinguishing secret pair.
"""

import pytest

from repro.verify import TARGETS, reflexive_check, verify_target
from repro.verify.targets import make_symbolic_memory

KERNELS = ["chacha20", "aes-bitslice", "djbsort"]
GADGETS = ["spectre-pht", "nonspec-secret"]


def test_target_registry_is_complete():
    assert set(TARGETS) == set(KERNELS) | set(GADGETS)
    for name in KERNELS:
        assert TARGETS[name].expected == "safe"
    for name in GADGETS:
        assert TARGETS[name].expected == "leak"


@pytest.mark.parametrize("name", KERNELS)
def test_constant_time_kernel_verifies_safe(name):
    result = verify_target(name)
    assert result.verdict == "safe", \
        f"{name} produced witnesses: {[w.to_json() for w in result.witnesses]}"
    assert result.complete and result.halted
    assert result.stats.retired > 0


@pytest.mark.parametrize("name", GADGETS)
def test_attack_gadget_produces_confirmed_witness(name):
    result = verify_target(name)
    assert result.verdict == "leak"
    confirmed = [w for w in result.witnesses if w.confirmed]
    assert confirmed, "leak verdict must come with a confirmed witness"
    witness = confirmed[0]
    # Both gadgets leak exactly their single secret byte, transiently.
    assert witness.secret == (0,)
    assert witness.depth > 0
    assert witness.secret_a != witness.secret_b
    assert witness.value_a != witness.value_b


def test_spectre_gadget_is_safe_without_speculation():
    """spec_depth=0 turns off transient exploration: the gadget's
    *committed* path is constant-time, so the leak must disappear —
    pinning that the witness really is speculative."""
    result = verify_target("spectre-pht", spec_depth=0)
    assert result.verdict == "safe" and result.complete


@pytest.mark.parametrize("name", KERNELS + GADGETS)
def test_reflexive_self_composition_is_safe(name):
    """With the secret concretised (both runs identical) nothing may
    diverge — not even for the gadgets."""
    target = TARGETS[name]
    program, layout = target.build(1)
    result = reflexive_check(program, make_symbolic_memory(program, layout))
    assert result.verdict == "safe", name
    assert result.complete


def test_witness_report_is_json_serialisable():
    import json
    result = verify_target("spectre-pht")
    blob = json.dumps(result.to_json())
    assert "spectre" in blob or "witness" in blob or "leak" in blob
