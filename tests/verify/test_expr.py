"""Property tests for the symbolic expression layer.

The central contract: :class:`SymbolicDomain`'s *simplifying* constructors
must agree with :class:`ConcreteDomain` under every assignment of the
secret bytes.  We generate random straight-line dataflow (the same shape
the explorer produces when it runs a program) and execute it twice — once
through the symbolic constructors over variables, once through the
concrete domain over the variables' sampled values — then check that
``evaluate`` closes the square.  A second pass checks that every node's
``(lo, hi)`` interval actually contains its concrete value, since the
explorer uses those intervals to discharge branches and cache-line
projections without a solver: an unsound interval would silently turn a
real leak into a ``safe`` verdict.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import WORD_MASK
from repro.isa.semantics import ConcreteDomain as C
from repro.verify.expr import (Expr, SymbolicDomain as S, bounds, evaluate,
                               rename, secret_bytes, size, var, variables)

SET = "S"

# (name, symbolic constructor, concrete reference) for 2-ary word ops.
_BINARY = [
    ("add", S.add, C.add), ("sub", S.sub, C.sub),
    ("and", S.and_, C.and_), ("or", S.or_, C.or_), ("xor", S.xor, C.xor),
    ("mul", S.mul, C.mul), ("div", S.div, C.div), ("rem", S.rem, C.rem),
    ("sll", S.sll, C.sll), ("srl", S.srl, C.srl), ("sra", S.sra, C.sra),
    ("slt", S.slt, C.slt), ("sltu", S.sltu, C.sltu),
]
_PREDICATES = [
    ("eq", S.eq, lambda a, b: a == b), ("ne", S.ne, lambda a, b: a != b),
    ("lt", S.lt, C.lt), ("ge", S.ge, C.ge),
    ("ltu", S.ltu, C.ltu), ("geu", S.geu, C.geu),
]

# One build step of the random dataflow program: pick an operation and
# operand slots (taken modulo the current worklist length).
_step = st.tuples(
    st.integers(min_value=0, max_value=len(_BINARY) + len(_PREDICATES) + 4),
    st.integers(min_value=0, max_value=255),    # operand slot a
    st.integers(min_value=0, max_value=255),    # operand slot b / extract idx
    st.integers(min_value=0, max_value=63),     # rotate amount
)

_programs = st.tuples(
    st.lists(st.integers(min_value=0, max_value=255),
             min_size=1, max_size=4),                       # secret bytes
    st.lists(st.integers(min_value=0, max_value=WORD_MASK),
             min_size=1, max_size=3),                       # constants
    st.lists(_step, min_size=1, max_size=24),               # build steps
)


def _run(secrets, consts, steps):
    """Build the dataflow twice; returns [(term, concrete value)]."""
    env = {(SET, i): b for i, b in enumerate(secrets)}
    work = [(var(SET, i), b) for i, b in enumerate(secrets)]
    work += [(c, c) for c in consts]
    n_pred = len(_PREDICATES)
    for opcode, slot_a, slot_b, rot in steps:
        term_a, val_a = work[slot_a % len(work)]
        term_b, val_b = work[slot_b % len(work)]
        if opcode < len(_BINARY):
            _, sym, ref = _BINARY[opcode]
            res, expect = sym(term_a, term_b), ref(val_a, val_b)
        elif opcode < len(_BINARY) + n_pred:
            _, sym, ref = _PREDICATES[opcode - len(_BINARY)]
            res, expect = sym(term_a, term_b), ref(val_a, val_b)
        else:
            extra = opcode - len(_BINARY) - n_pred
            if extra == 0:
                res, expect = S.not_(term_a), C.not_(val_a)
            elif extra == 1:
                res, expect = S.rotl(term_a, rot), C.rotl(val_a, rot)
            elif extra == 2:
                res, expect = S.rotr(term_a, rot), C.rotr(val_a, rot)
            elif extra == 3:
                index = slot_b % 8
                res = S.extract(term_a, index)
                expect = (val_a >> (8 * index)) & 0xFF
            else:
                term_c, val_c = work[rot % len(work)]
                res = S.ite(S.ne(term_a, term_b), term_c, term_a)
                expect = val_c if val_a != val_b else val_a
        if isinstance(expect, bool):
            expect = int(expect)
        if isinstance(res, bool):
            res = int(res)
        work.append((res, expect & WORD_MASK if not isinstance(expect, bool)
                     else expect))
    return env, work


@settings(max_examples=300, deadline=None)
@given(_programs)
def test_simplifying_construction_preserves_semantics(program):
    """evaluate(symbolic build, env) == the concrete computation."""
    secrets, consts, steps = program
    env, work = _run(secrets, consts, steps)
    for term, expect in work:
        assert evaluate(term, env) == expect


@settings(max_examples=300, deadline=None)
@given(_programs)
def test_intervals_are_sound(program):
    """Every node's unsigned interval contains its concrete value.

    The explorer trusts these intervals to *prove* observations concrete
    (``lo >> 6 == hi >> 6`` means the cache line cannot move), so interval
    soundness is exactly checker soundness.
    """
    secrets, consts, steps = program
    _, work = _run(secrets, consts, steps)
    for term, expect in work:
        lo, hi = bounds(term)
        assert lo <= expect <= hi


@settings(max_examples=200, deadline=None)
@given(_programs)
def test_variables_track_secret_provenance(program):
    """variables() only ever names declared secret bytes; fully folded
    terms (plain ints) name none."""
    secrets, consts, steps = program
    declared = {(SET, i) for i in range(len(secrets))}
    _, work = _run(secrets, consts, steps)
    for term, _ in work:
        names = variables(term)
        assert names <= declared
        if isinstance(term, int):
            assert not names
        assert secret_bytes(term) == tuple(
            sorted({i for _s, i in names}))


@settings(max_examples=200, deadline=None)
@given(_programs)
def test_rename_is_semantics_preserving(program):
    """rename() moves every variable to a new set without changing the
    function the term denotes — the heart of the self-composition."""
    secrets, consts, steps = program
    env, work = _run(secrets, consts, steps)
    env_b = {("B", i): v for (_s, i), v in env.items()}
    for term, expect in work:
        renamed = rename(term, "B")
        assert evaluate(renamed, env_b) == expect
        assert {s for s, _i in variables(renamed)} <= {"B"}


def test_structural_equality_and_hash():
    a = S.add(var(SET, 0), 17)
    b = S.add(var(SET, 0), 17)
    assert a == b and hash(a) == hash(b)
    assert a != S.add(var(SET, 0), 18)
    assert a != S.add(var(SET, 1), 17)


def test_folds_erase_the_secret():
    """The identities the kernels lean on: these must fold to ints,
    because a symbolic term reaching an observation point means 'leak'."""
    s = var(SET, 0)
    assert S.xor(s, s) == 0
    assert S.sub(s, s) == 0
    assert S.and_(s, 0) == 0
    assert S.mul(s, 0) == 0
    # A masked secret offset confined to one cache line: the line index
    # is concrete, so the access is unobservable.
    addr = S.add(0x400, S.and_(s, 0x3F))
    assert S.srl(addr, 6) == 0x400 >> 6
    # Unmasked, the byte spans four lines and the projection must stay
    # symbolic — this asymmetry is the whole leak check.
    assert isinstance(S.srl(S.add(0x400, s), 6), Expr)
    # Masking a value that already fits is the identity.
    assert S.and_(s, 0xFF) is s
    # Interval-decided comparisons are Python bools, not 0/1 terms.
    assert S.ltu(s, 0x100) is True
    assert S.geu(s, 0x100) is False


def test_extract_folds():
    s = var(SET, 0)                 # bounded 0..255
    assert S.extract(s, 0) is s     # identity: already one byte
    assert S.extract(s, 3) == 0     # high bytes provably zero
    word = S.sll(s, 8)
    inner = S.extract(word, 1)
    assert isinstance(inner, Expr)
    assert evaluate(inner, {(SET, 0): 0xAB}) == 0xAB


def test_deep_chains_do_not_recurse():
    """A chain far past Python's recursion limit must still evaluate,
    collect variables, and rename (all three walks are iterative)."""
    term = var(SET, 0)
    for i in range(5000):
        term = S.add(S.xor(term, i & WORD_MASK), 1)
    value = evaluate(term, {(SET, 0): 7})
    assert 0 <= value <= WORD_MASK
    assert variables(term) == frozenset({(SET, 0)})
    renamed = rename(term, "B")
    assert evaluate(renamed, {("B", 0): 7}) == value
    assert size(renamed) == size(term)
