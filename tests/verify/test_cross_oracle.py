"""Cross-oracle agreement: symbolic checker vs. concrete fuzz oracle.

Two halves:

1. **Seed sweeps** — 100 seeded plan-IR programs from every generator
   profile family, each run through both oracles
   (:func:`repro.verify.crosscheck.cross_check_plan`), asserting zero
   disagreements under the implication-shaped agreement rules.

2. **Planted bugs** — the repo's canonical 12-bug mutation suite
   (``tests/check/test_mutations.py``) plants bugs by monkeypatching
   *pipeline* internals (rename taint drops, early untaint, squash skips,
   stale store forwarding, …), which an interpreter-level symbolic checker
   cannot execute: those mutations corrupt the machine that *runs*
   programs, not the programs themselves.  The equivalent exercise at this
   level is planting twelve *leak-introducing program mutations* — one per
   observation channel and speculation shape the checker claims to cover —
   into a constant-time scaffold, and asserting the checker flags every
   one with a confirmed witness.  The architectural subset is additionally
   replayed through the concrete oracle to confirm the two sides still
   agree on the planted bugs, not just on generator-shaped programs.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.fuzz.generator import PROFILES, generate_plan
from repro.fuzz.oracle import check_pair_direct
from repro.isa.builder import ProgramBuilder
from repro.verify.crosscheck import cross_check_plan
from repro.verify.selfcomp import check_program
from repro.verify.targets import SecretLayout, make_symbolic_memory

SEEDS_PER_FAMILY = 100


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_hundred_seeds_per_family_agree(profile):
    """Both oracles over 100 generated plans; any disagreement fails with
    the classified reason (missed-leak / phantom-architectural-leak /
    unconfirmed-witness)."""
    disagreements = []
    for seed in range(SEEDS_PER_FAMILY):
        record = cross_check_plan(generate_plan(seed, profile))
        if record.disagreement:
            disagreements.append(record.to_json())
    assert not disagreements, disagreements


# --------------------------------------------------------------------------
# Planted leak-introducing program mutations.
#
# Each mutation takes a builder whose register a1 already holds the secret
# byte and emits one leaking construct.  ``ARCH`` mutations leak on the
# committed path (the concrete oracle must agree); ``TRANSIENT`` ones leak
# only under misprediction (concrete agreement is the over-approximation
# case, so only the symbolic verdict is asserted).

def _scaffold(secret_value=0):
    b = ProgramBuilder("planted", data_base=0x1000)
    secret = b.alloc_bytes("secret", [secret_value] * 8, align=64)
    ramp = b.alloc_bytes("ramp", range(64), align=64)
    probe = b.reserve("probe", 1024, align=64)
    b.li("a0", secret)
    b.lb("a1", "a0", 0)                     # a1 = secret byte 0
    b.li("a6", probe)
    b.li("a7", ramp)
    return b, secret


def _m_load_secret_index(b):
    b.add("a2", "a6", "a1")
    b.lb("a3", "a2", 0)


def _m_load_secret_line_scaled(b):
    b.slli("t0", "a1", 6)                   # line-granular probe stride
    b.add("a2", "a6", "t0")
    b.lb("a3", "a2", 0)


def _m_store_secret_index(b):
    b.add("a2", "a6", "a1")
    b.sb("a1", "a2", 0)


def _m_branch_on_secret(b):
    done = b.forward_label()
    b.bne("a1", "zero", done)
    b.nop()
    b.place(done)


def _m_branch_on_derived(b):
    b.slti("t0", "a1", 17)
    done = b.forward_label()
    b.bne("t0", "zero", done)
    b.nop()
    b.place(done)


def _m_line_crossing_mask(b):
    b.andi("t0", "a1", 0x7F)                # spans two lines: still leaks
    b.add("a2", "a6", "t0")
    b.lb("a3", "a2", 0)


def _m_value_then_branch(b):
    # Line-confined table read (no cache leak) whose *value* is secret-
    # dependent via the mux, then a branch on it: branch-outcome leak.
    b.andi("t0", "a1", 0x3F)
    b.add("a2", "a7", "t0")
    b.lb("a3", "a2", 0)                     # ramp[secret & 0x3F]
    done = b.forward_label()
    b.bne("a3", "zero", done)
    b.nop()
    b.place(done)


def _m_rem_derived_address(b):
    b.li("t1", 60)
    b.rem("t0", "a1", "t1")                 # secret % 60
    b.slli("t0", "t0", 6)
    b.add("a2", "a6", "t0")
    b.lb("a3", "a2", 0)


def _m_transient_load(b):
    skip = b.forward_label()
    b.beq("zero", "zero", skip)             # architecturally always taken
    b.add("a2", "a6", "a1")
    b.lb("a3", "a2", 0)
    b.place(skip)


def _m_transient_store(b):
    skip = b.forward_label()
    b.beq("zero", "zero", skip)
    b.add("a2", "a6", "a1")
    b.sb("a1", "a2", 0)
    b.place(skip)


def _m_transient_branch(b):
    skip = b.forward_label()
    b.beq("zero", "zero", skip)
    b.bne("a1", "zero", skip)               # secret branch, wrong path only
    b.nop()
    b.place(skip)


def _m_jalr_secret_target(b):
    # target = handler[secret & 1]; the two handlers read different cache
    # lines so the divergence is visible to the concrete observer too.
    b.jal("t1", "anchor")
    b.place("anchor")                       # t1 = pc of 'anchor'
    b.addi("t1", "t1", 6)                   # pc of the first handler
    b.andi("t2", "a1", 1)
    b.slli("t3", "t2", 1)
    b.add("t2", "t2", "t3")                 # (secret & 1) * 3
    b.add("t2", "t2", "t1")
    b.jalr("zero", "t2", 0)                 # anchor+6 or anchor+9
    b.lb("a3", "a6", 0)                     # handler 0: probe line 0
    b.jal("zero", "jalr_done")
    b.nop()
    b.lb("a3", "a6", 448)                   # handler 1: probe line 7
    b.place("jalr_done")


ARCH = {
    "load-secret-index": _m_load_secret_index,
    "load-secret-line-scaled": _m_load_secret_line_scaled,
    "store-secret-index": _m_store_secret_index,
    "branch-on-secret": _m_branch_on_secret,
    "branch-on-derived": _m_branch_on_derived,
    "line-crossing-mask": _m_line_crossing_mask,
    "value-then-branch": _m_value_then_branch,
    "rem-derived-address": _m_rem_derived_address,
    "jalr-secret-target": _m_jalr_secret_target,
}
TRANSIENT = {
    "transient-load": _m_transient_load,
    "transient-store": _m_transient_store,
    "transient-branch": _m_transient_branch,
}
PLANTED = {**ARCH, **TRANSIENT}


def _build(mutation, secret_value=0):
    b, secret = _scaffold(secret_value)
    PLANTED[mutation](b)
    b.halt()
    return b.build(), SecretLayout(((secret, 1),))


def test_twelve_planted_bugs():
    assert len(PLANTED) == 12


@pytest.mark.parametrize("mutation", sorted(PLANTED))
def test_symbolic_checker_flags_planted_bug(mutation):
    program, layout = _build(mutation)
    result = check_program(program, make_symbolic_memory(program, layout))
    assert result.verdict == "leak", mutation
    confirmed = [w for w in result.witnesses if w.confirmed]
    assert confirmed, f"{mutation}: no confirmed witness"
    assert confirmed[0].secret == (0,)


@pytest.mark.parametrize("mutation", sorted(ARCH))
def test_concrete_oracle_agrees_on_architectural_bugs(mutation):
    """The committed-path subset must also diverge under the concrete
    observer for a distinguishing secret pair — the two oracles agree on
    the planted bugs themselves, not just on generator output."""
    program_a, _ = _build(mutation, secret_value=0)
    program_b, _ = _build(mutation, secret_value=255)
    channels = check_pair_direct(program_a, program_b, "UnsafeBaseline",
                                 AttackModel.SPECTRE)
    assert channels, mutation


def test_unmutated_scaffold_is_safe():
    """Negative control: the scaffold itself (plus the two deliberately
    benign constructs — line-confined access, secret *value* store) must
    verify safe, so the planted-bug failures above are attributable to
    the mutations alone."""
    b, secret = _scaffold()
    b.andi("t0", "a1", 0x3F)                # stays inside one line
    b.add("a2", "a6", "t0")
    b.lb("a3", "a2", 0)
    b.sd("a1", "a6", 256)                   # secret value, public address
    b.halt()
    program = b.build()
    layout = SecretLayout(((secret, 1),))
    result = check_program(program, make_symbolic_memory(program, layout))
    assert result.verdict == "safe" and result.complete
