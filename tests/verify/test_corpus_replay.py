"""Replay of the committed fuzz corpus through the symbolic checker.

``tests/verify/data/corpus.jsonl`` is a real (small) campaign corpus
committed to the repo: UnsafeBaseline and SPT cells for a spread of
quick/default/hard seeds.  The nightly ``verify-corpus`` CI job replays
it with ``repro verify crosscheck --corpus-dir``; this test keeps the
same path working under plain pytest and pins the corpus's shape so a
regenerated corpus that loses its UnsafeBaseline cells (the concrete
verdicts the cross-check consumes) fails loudly instead of silently
cross-checking against nothing.
"""

import os

from repro.fuzz.corpus import Corpus
from repro.verify.crosscheck import cross_check_corpus

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def _corpus() -> Corpus:
    corpus = Corpus(DATA_DIR)
    assert corpus.records("seed"), "committed corpus is missing or empty"
    return corpus


def test_committed_corpus_has_concrete_verdicts():
    corpus = _corpus()
    replayable = corpus.replayable()
    assert len(replayable) >= 20
    profiles = {record["profile"] for record, _plan in replayable}
    assert {"quick", "default", "hard"} <= profiles
    for record, plan in replayable:
        assert plan.seed == record["seed"]
        configs = {cell["config"] for cell in record["cells"]}
        assert "UnsafeBaseline" in configs


def test_corpus_replay_has_zero_disagreements():
    report = cross_check_corpus(_corpus())
    assert report.records, "nothing replayed"
    assert report.ok, [r.to_json() for r in report.disagreements]
    # Budgeted exploration must still have decided every plan.
    assert all(r.symbolic in ("safe", "leak") for r in report.records)


def test_corpus_replay_respects_limit():
    report = cross_check_corpus(_corpus(), limit=5)
    assert len(report.records) == 5
