"""Unit and property tests for the symbolic byte memory."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import WORD_MASK
from repro.verify.expr import SymbolicDomain as S, evaluate, var
from repro.verify.symmem import SymMemory

SET = "S"


def test_concrete_little_endian_round_trip():
    mem = SymMemory()
    mem.store(0x100, 0x1122334455667788, 8)
    assert mem.load(0x100, 8) == 0x1122334455667788
    assert mem.load(0x100, 1) == 0x88
    assert mem.load(0x107, 1) == 0x11
    assert mem.load(0x104, 4) == 0x11223344
    assert mem.load(0x500, 8) == 0          # absent bytes read as zero


def test_address_wraps_like_archstate():
    mem = SymMemory()
    mem.store(WORD_MASK, 0xABCD, 2)
    assert mem.byte(WORD_MASK) == 0xCD
    assert mem.byte(0) == 0xAB
    assert mem.load(WORD_MASK, 2) == 0xABCD


def test_symbolic_word_reassembles_to_same_term():
    """Store a symbolic word, load it back: the *same* node must return,
    or spilled secrets would become opaque and ``x ^ x`` would stop
    folding across a memory round trip."""
    mem = SymMemory()
    word = S.add(S.sll(var(SET, 0), 8), var(SET, 1))
    mem.store(0x200, word, 8)
    assert mem.load(0x200, 8) is word
    # A bounded word stored narrow reads back identically too.
    assert mem.load(0x200, 4) is word       # hi < 2**32


def test_single_symbolic_byte_round_trip():
    mem = SymMemory()
    s = var(SET, 3)
    mem.store(0x80, s, 1)
    assert mem.load(0x80, 1) is s
    loaded = mem.load(0x80, 8)              # widened: still evaluates right
    assert evaluate(loaded, {(SET, 3): 0x5A}) == 0x5A


def test_partial_overwrite_still_evaluates_correctly():
    mem = SymMemory()
    word = S.mul(var(SET, 0), 0x101)        # symbolic, hi > one byte
    mem.store(0x300, word, 8)
    mem.store(0x303, 0x77, 1)               # clobber one middle byte
    env = {(SET, 0): 0xAB}
    expected = (evaluate(word, env) & ~(0xFF << 24)) | (0x77 << 24)
    assert evaluate(mem.load(0x300, 8), env) == expected & WORD_MASK


def test_rollback_restores_and_commit_keeps():
    mem = SymMemory({0x10: 1, 0x11: 2})
    mem.begin_speculation()
    mem.store(0x10, 0xFF, 1)                # overwrite
    mem.store(0x40, 0xEE, 1)                # fresh byte
    assert mem.byte(0x10) == 0xFF
    mem.rollback()
    assert mem.byte(0x10) == 1 and mem.byte(0x40) == 0
    mem.begin_speculation()
    mem.store(0x10, 0xCC, 1)
    mem.commit()
    assert mem.byte(0x10) == 0xCC
    assert mem.speculation_depth == 0


def test_nested_rollback_propagates_to_outer_frame():
    """A nested window's writes must be undone when the *outer* window
    squashes, even though the inner frame already popped."""
    mem = SymMemory({0x10: 1})
    mem.begin_speculation()                 # outer
    mem.begin_speculation()                 # inner
    mem.store(0x10, 9, 1)
    mem.commit()                            # inner commits its write
    assert mem.byte(0x10) == 9
    mem.rollback()                          # outer squashes
    assert mem.byte(0x10) == 1


def test_symbolic_addresses_lists_secret_bytes():
    mem = SymMemory()
    mem.store(0x20, var(SET, 0), 1)
    mem.store(0x21, 7, 1)
    assert mem.symbolic_addresses() == [0x20]
    assert mem.concretise({(SET, 0): 0x44}) == {0x20: 0x44, 0x21: 7}


_ops = st.lists(
    st.tuples(st.booleans(),                          # store?
              st.integers(min_value=0, max_value=48),  # address
              st.sampled_from([1, 2, 4, 8]),           # size
              st.integers(min_value=0, max_value=WORD_MASK),
              st.booleans()),                          # symbolic value?
    min_size=1, max_size=30)


@settings(max_examples=200, deadline=None)
@given(ops=_ops,
       secrets=st.lists(st.integers(min_value=0, max_value=255),
                        min_size=2, max_size=2))
def test_random_traffic_matches_reference_byte_model(ops, secrets):
    """Differential test against a plain {addr: byte} reference model.

    Symbolic values are ``value ^ (secret expression)`` so stores mix int
    and Expr bytes freely; every load must evaluate (under the sampled
    secret) to exactly what the reference model holds.
    """
    env = {(SET, i): b for i, b in enumerate(secrets)}
    twist = S.xor(S.sll(var(SET, 0), 8), var(SET, 1))
    twist_value = evaluate(twist, env)
    mem, ref = SymMemory(), {}
    for is_store, address, size, value, symbolic in ops:
        if is_store:
            term = S.xor(value, twist) if symbolic else value
            concrete = (value ^ twist_value) if symbolic else value
            mem.store(address, term, size)
            for offset in range(size):
                ref[(address + offset) & WORD_MASK] = \
                    (concrete >> (8 * offset)) & 0xFF
        else:
            expect = 0
            for offset in range(size):
                expect |= ref.get((address + offset) & WORD_MASK,
                                  0) << (8 * offset)
            assert evaluate(mem.load(address, size), env) == expect
