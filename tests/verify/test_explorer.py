"""Unit tests for the always-mispredict symbolic explorer.

Each test builds a tiny program with the ISA builder, marks a small secret
region symbolic, and checks the explorer's verdict, witness shape, and —
most importantly — that transient windows roll *all* architectural effects
back while keeping their observations.
"""

from repro.isa.builder import ProgramBuilder
from repro.verify.explorer import (OBS_BRANCH, OBS_LOAD_LINE,
                                   OBS_STORE_LINE, SpeculativeExplorer)
from repro.verify.selfcomp import check_program, reflexive_check
from repro.verify.targets import SecretLayout, make_symbolic_memory


def _scaffold():
    """Builder with a one-byte secret and a 64-byte-aligned probe array."""
    b = ProgramBuilder("explorer-case", data_base=0x1000)
    secret = b.alloc_bytes("secret", [0], align=64)
    probe = b.reserve("probe", 512, align=64)
    return b, secret, probe


def _explore(b, secret, **bounds):
    program = b.build()
    memory = make_symbolic_memory(program, SecretLayout(((secret, 1),)))
    return SpeculativeExplorer(program, memory, **bounds).run()


def test_straight_line_public_program_is_safe():
    b, secret, probe = _scaffold()
    b.li("a0", 5)
    b.addi("a0", "a0", 37)
    b.li("a1", probe)
    b.sd("a0", "a1", 0)
    b.halt()
    result = _explore(b, secret)
    assert result.verdict == "safe" and result.complete and result.halted


def test_architectural_secret_indexed_load_leaks():
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)                     # a1 = secret byte
    b.li("a2", probe)
    b.add("a2", "a2", "a1")
    b.lb("a3", "a2", 0)                     # probe[secret]: 4 lines reachable
    b.halt()
    result = _explore(b, secret)
    assert result.verdict == "leak"
    leak = result.leaks[0]
    assert leak.kind == OBS_LOAD_LINE and leak.depth == 0
    assert leak.secret == (0,)


def test_line_confined_access_is_not_a_cache_leak():
    """probe[secret & 0x3F] with a 64-aligned probe stays in one line —
    the interval fold must prove the line concrete, no leak."""
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    b.andi("a1", "a1", 0x3F)
    b.li("a2", probe)
    b.add("a2", "a2", "a1")
    b.lb("a3", "a2", 0)
    b.halt()
    result = _explore(b, secret)
    assert result.verdict == "safe" and result.complete


def test_storing_the_secret_value_is_safe():
    """Store *values* are invisible to the concrete observer (it records
    line and hit level only), so the symbolic checker must agree."""
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    b.li("a2", probe)
    b.sd("a1", "a2", 0)                     # secret value, public address
    b.halt()
    result = _explore(b, secret)
    assert result.verdict == "safe" and result.complete


def test_secret_branch_and_store_address_leak():
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    done = b.forward_label()
    b.bne("a1", "zero", done)               # branch outcome = secret
    b.li("a2", probe)
    b.add("a2", "a2", "a1")
    b.sb("a1", "a2", 0)                     # store line = secret
    b.place(done)
    b.halt()
    result = _explore(b, secret)
    kinds = {leak.kind for leak in result.leaks}
    assert OBS_BRANCH in kinds and OBS_STORE_LINE in kinds


def test_transient_window_rolls_back_registers_and_memory():
    """The wrong path of an always-taken branch clobbers a register and a
    memory word; after the squash, the architectural path must see the
    original values — and the transient leak observation must survive."""
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    b.li("a4", 0x1234)
    b.li("a5", probe)
    b.sd("a4", "a5", 0)
    skip = b.forward_label()
    b.beq("zero", "zero", skip)             # architecturally always taken
    # -- wrong path only --
    b.li("a4", 0xDEAD)                      # clobber a register
    b.sd("zero", "a5", 0)                   # clobber committed memory
    b.add("a6", "a5", "a1")
    b.lb("a7", "a6", 0)                     # transient secret-indexed load
    b.place(skip)
    b.ld("a3", "a5", 0)                     # reload the committed word
    b.halt()
    program = b.build()
    memory = make_symbolic_memory(program, SecretLayout(((secret, 1),)))
    explorer = SpeculativeExplorer(program, memory)
    result = explorer.run()
    assert result.verdict == "leak"
    leak = result.leaks[0]
    assert leak.kind == OBS_LOAD_LINE and leak.depth == 1 \
        and leak.secret == (0,)
    # Architectural state is untouched by the squashed window.
    assert explorer.regs[14] == 0x1234                  # a4
    assert explorer.regs[13] == 0x1234                  # a3: reloaded word
    assert memory.load(probe, 8) == 0x1234
    assert memory.speculation_depth == 0


def test_spec_depth_zero_disables_transient_exploration():
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    skip = b.forward_label()
    b.beq("zero", "zero", skip)
    b.li("a2", probe)
    b.add("a2", "a2", "a1")
    b.lb("a3", "a2", 0)
    b.place(skip)
    b.halt()
    assert _explore(b, secret, spec_depth=0).verdict == "safe"
    assert _explore(b, secret, spec_depth=1).verdict == "leak"


def test_spec_window_bounds_the_transient_reach():
    """The transient gadget sits several instructions into the wrong path:
    a 2-instruction window cannot reach it, the default window can."""
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    skip = b.forward_label()
    b.beq("zero", "zero", skip)
    b.nop()
    b.nop()
    b.nop()
    b.li("a2", probe)
    b.add("a2", "a2", "a1")
    b.lb("a3", "a2", 0)                     # 6 instructions into the window
    b.place(skip)
    b.halt()
    assert _explore(b, secret, spec_window=2).verdict == "safe"
    assert _explore(b, secret, spec_window=8).verdict == "leak"


def test_jalr_explores_previously_seen_targets():
    """Within-run BTB mistraining: the indirect call is first *trained* on
    a probe gadget with a public (zero) index, then the secret-laden round
    dispatches to a safe handler — architecturally the secret never reaches
    the gadget, but the explorer replays the previously-seen target
    transiently and the gadget leaks at depth 1 (the nonspec-secret
    shape)."""
    b, secret, probe = _scaffold()
    table = b.reserve("table", 16, align=8)

    # Handler PCs are computed at runtime from a JAL link register so the
    # test doesn't hard-code absolute instruction indices (they are
    # self-checked against the built program below).
    b.jal("t1", "anchor")
    b.place("anchor")                       # t1 = pc of 'anchor'
    b.li("a5", table)
    b.addi("t2", "t1", 19)                  # pc of f_safe   (anchor + 19)
    b.sd("t2", "a5", 0)                     # table[0]: secret round
    b.addi("t2", "t1", 21)                  # pc of f_gadget (anchor + 21)
    b.sd("t2", "a5", 8)                     # table[1]: training round
    b.li("a6", probe)
    b.li("a4", 1)

    b.li("t0", 2)                           # two dispatch rounds
    loop = b.label("dispatch")
    b.addi("t0", "t0", -1 & ((1 << 64) - 1))
    b.slli("t3", "t0", 3)                   # round 1 -> gadget, 0 -> safe
    b.add("t3", "t3", "a5")
    b.ld("t4", "t3", 0)
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    b.sltu("t5", "t0", "a4")                # 1 only on the final round
    b.mul("a1", "a1", "t5")                 # a1 = secret iff final round
    b.jalr("ra", "t4", 0)                   # the single static call site
    b.bne("t0", "zero", loop)
    b.beq("zero", "zero", "end")
    b.place("f_safe")                       # anchor + 19
    b.nop()
    b.jalr("zero", "ra", 0)
    b.place("f_gadget")                     # anchor + 21
    b.add("a2", "a6", "a1")
    b.lb("a3", "a2", 0)                     # probe[a1]
    b.jalr("zero", "ra", 0)
    b.place("end")
    b.halt()

    program = b.build()
    # Self-check the hand-computed handler offsets before relying on them.
    anchor = next(i for i, inst in enumerate(program.instructions)
                  if inst.op == "JAL") + 1
    names = [inst.op for inst in program.instructions]
    assert names[anchor + 19] == "NOP"          # f_safe
    assert names[anchor + 21] == "ADD"          # f_gadget
    memory = make_symbolic_memory(program, SecretLayout(((secret, 1),)))
    result = SpeculativeExplorer(program, memory).run()
    assert result.verdict == "leak"
    # Architecturally the gadget only ever sees a1 = 0; the leak is purely
    # transient, via the trained alternate target.
    assert all(leak.depth == 1 for leak in result.leaks)
    assert any(leak.kind == OBS_LOAD_LINE and leak.secret == (0,)
               for leak in result.leaks)


def test_budget_exhaustion_yields_unknown_not_safe():
    b, secret, probe = _scaffold()
    b.li("a0", 0)
    with b.loop(count=1000, counter="t0"):
        b.addi("a0", "a0", 1)
    b.halt()
    result = _explore(b, secret, max_instructions=50)
    assert result.verdict == "unknown"
    assert not result.complete and not result.halted


def test_check_program_confirms_witness_with_secret_pair():
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    b.li("a2", probe)
    b.add("a2", "a2", "a1")
    b.lb("a3", "a2", 0)
    b.halt()
    program = b.build()
    layout = SecretLayout(((secret, 1),))
    result = check_program(program, make_symbolic_memory(program, layout))
    assert result.verdict == "leak"
    witness = result.witnesses[0]
    assert witness.confirmed
    assert witness.secret == (0,)
    assert witness.secret_a != witness.secret_b
    assert witness.value_a != witness.value_b
    # The two sides of the self-composition carry distinct variable sets.
    assert "A[0]" in witness.expression_a
    assert "B[0]" in witness.expression_b


def test_reflexive_check_never_leaks():
    """Self-composition is reflexive: with the secret fixed (both runs see
    the same concrete bytes) even the leaky gadget must verify safe."""
    b, secret, probe = _scaffold()
    b.li("a0", secret)
    b.lb("a1", "a0", 0)
    b.li("a2", probe)
    b.add("a2", "a2", "a1")
    b.lb("a3", "a2", 0)
    b.halt()
    program = b.build()
    layout = SecretLayout(((secret, 1),))
    result = reflexive_check(program,
                             make_symbolic_memory(program, layout))
    assert result.verdict == "safe" and result.complete
