"""The ``repro verify`` CLI: exit codes, report files, dispatch."""

import json

from repro.cli import main as repro_main
from repro.verify.cli import main as verify_main


def test_target_mode_all_green(tmp_path, capsys):
    report = tmp_path / "report.json"
    assert verify_main(["target", "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "chacha20: SAFE  [ok]" in out
    assert "spectre-v1: LEAK  [ok]" in out
    payload = json.loads(report.read_text())
    assert payload["ok"]
    assert len(payload["checks"]) == 5
    leak_checks = [c for c in payload["checks"] if c["verdict"] == "leak"]
    assert leak_checks
    for check in leak_checks:
        assert any(w["confirmed"] for w in check["witnesses"])


def test_target_mode_unknown_name_is_usage_error(capsys):
    assert verify_main(["target", "nonesuch"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_target_mode_fails_on_wrong_expectation(capsys):
    # A tiny budget leaves the kernels undecided: "unknown" != "safe".
    assert verify_main(["target", "chacha20",
                        "--max-instructions", "10"]) == 1
    assert "[EXPECTED SAFE]" in capsys.readouterr().out


def test_plan_mode(capsys):
    assert verify_main(["plan", "--seeds", "2",
                        "--profile", "quick"]) == 0
    out = capsys.readouterr().out
    assert out.count("LEAK") + out.count("SAFE") >= 2


def test_plan_file_mode_accepts_counterexample_record(tmp_path, capsys):
    from repro.fuzz.generator import generate_plan, plan_to_json
    plan = generate_plan(3, "quick")
    path = tmp_path / "counterexample.json"
    path.write_text(json.dumps({"type": "counterexample",
                                "plan": plan_to_json(plan)}))
    assert verify_main(["plan-file", str(path)]) == 0
    assert "fuzz-quick-3" in capsys.readouterr().out


def test_crosscheck_mode_seeds(tmp_path, capsys):
    report = tmp_path / "cross.json"
    assert verify_main(["crosscheck", "--seeds", "3",
                        "--profile", "quick", "--json", str(report)]) == 0
    assert "zero oracle disagreements" in capsys.readouterr().out
    payload = json.loads(report.read_text())
    assert payload["ok"] and payload["checked"] == 3


def test_crosscheck_mode_corpus(capsys):
    assert verify_main(["crosscheck", "--corpus-dir", "tests/verify/data",
                        "--limit", "3"]) == 0
    assert "3 plans" in capsys.readouterr().out


def test_top_level_dispatch(capsys):
    assert repro_main(["verify", "target", "spectre-pht"]) == 0
    out = capsys.readouterr().out
    assert "LEAK  [ok]" in out and "secret bytes [0]" in out
