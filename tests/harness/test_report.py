"""Unit tests for report formatting."""

import math

from repro.harness.report import format_bar, format_table, geomean, mean


def test_geomean_basic():
    assert math.isclose(geomean([1, 4]), 2.0)
    assert math.isclose(geomean([2, 2, 2]), 2.0)


def test_geomean_skips_nonpositive():
    assert math.isclose(geomean([0, 4, 4]), 4.0)
    assert geomean([]) == 0.0


def test_mean():
    assert mean([1, 2, 3]) == 2.0
    assert mean([]) == 0.0


def test_format_table_alignment():
    text = format_table(["name", "v"], [["a", 1.5], ["long-name", 20.25]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.50" in text and "20.25" in text
    # All data lines have the same width.
    widths = {len(line) for line in lines[2:]}
    assert len(widths) <= 2


def test_format_bar():
    assert format_bar(0.0, width=10) == "." * 10
    assert format_bar(1.0, width=10) == "#" * 10
    assert format_bar(0.5, width=10).count("#") == 5
    assert format_bar(2.0, width=4) == "####"     # clamps
