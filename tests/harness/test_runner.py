"""Unit tests for the experiment runner."""

import pytest

from repro.core.attack_model import AttackModel
from repro.harness.runner import (bench_budget, bench_scale, normalized_time,
                                  run_one)


def test_run_one_returns_populated_result():
    result = run_one("chacha20", "UnsafeBaseline", AttackModel.FUTURISTIC,
                     max_instructions=2000)
    assert result.cycles > 0
    assert result.retired > 0
    assert result.workload == "chacha20"
    assert result.config == "UnsafeBaseline"
    assert 0 < result.ipc <= 8


def test_run_one_spt_collects_untaint_stats():
    result = run_one("mcf", "SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC,
                     max_instructions=1500)
    assert result.untaint_by_kind        # mcf definitely declassifies


def test_run_one_non_spt_has_no_untaint_stats():
    result = run_one("mcf", "STT", AttackModel.FUTURISTIC,
                     max_instructions=1500)
    assert result.untaint_by_kind == {}


def test_keep_sim_flag():
    with_sim = run_one("djbsort", "UnsafeBaseline", max_instructions=1000,
                       keep_sim=True)
    without = run_one("djbsort", "UnsafeBaseline", max_instructions=1000)
    assert with_sim.sim is not None
    assert without.sim is None


def test_normalized_time_same_retired():
    base = run_one("djbsort", "UnsafeBaseline", max_instructions=1400)
    secure = run_one("djbsort", "SecureBaseline", AttackModel.FUTURISTIC,
                     max_instructions=1400)
    ratio = normalized_time(secure, base)
    assert ratio >= 1.0


def test_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_BUDGET", "1234")
    monkeypatch.setenv("REPRO_BENCH_SCALE", "5")
    assert bench_budget() == 1234
    assert bench_scale() == 5


def test_env_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_BUDGET", raising=False)
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert bench_budget(777) == 777
    assert bench_scale() == 1


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        run_one("not-a-workload", "STT")


@pytest.mark.parametrize("name,reader", [
    ("REPRO_BENCH_BUDGET", bench_budget),
    ("REPRO_BENCH_SCALE", bench_scale),
])
def test_env_validation_names_the_variable(monkeypatch, name, reader):
    monkeypatch.setenv(name, "not-a-number")
    with pytest.raises(ValueError, match=name):
        reader()
    monkeypatch.setenv(name, "0")
    with pytest.raises(ValueError, match=name):
        reader()
    monkeypatch.setenv(name, "-3")
    with pytest.raises(ValueError, match=name):
        reader()
