"""Tests for the parallel fan-out layer (``repro.harness.parallel``)."""

import time

import pytest

from repro.core.attack_model import AttackModel
from repro.harness import parallel
from repro.harness.parallel import (RunFailure, RunSpec, default_jobs,
                                    default_timeout, run_many)

BUDGET = 400


def specs_small():
    return [RunSpec(workload, config, AttackModel.FUTURISTIC,
                    max_instructions=BUDGET)
            for workload in ("mcf", "djbsort")
            for config in ("UnsafeBaseline", "SPT{Bwd,ShadowL1}")]


def fingerprint(results):
    return [(r.workload, r.config, r.cycles, r.retired, r.stats,
             r.untaint_by_kind) for r in results]


def test_serial_parallel_equivalence():
    """REPRO_JOBS=1 and a 4-worker pool must agree bit-for-bit."""
    serial = run_many(specs_small(), jobs=1, use_cache=False)
    pooled = run_many(specs_small(), jobs=4, use_cache=False)
    assert fingerprint(serial) == fingerprint(pooled)


def test_results_in_spec_order():
    results = run_many(specs_small(), jobs=4, use_cache=False)
    assert [(r.workload, r.config) for r in results] == \
        [(s.workload, s.config) for s in specs_small()]


def test_duplicate_specs_simulated_once(monkeypatch):
    calls = []
    real = parallel.run_one

    def counting(workload, config, *args, **kwargs):
        calls.append((workload, config))
        return real(workload, config, *args, **kwargs)

    monkeypatch.setattr(parallel, "run_one", counting)
    spec = RunSpec("xz", "STT", max_instructions=BUDGET)
    results = run_many([spec, spec, spec], jobs=1, use_cache=False)
    assert len(calls) == 1
    assert len(results) == 3
    assert fingerprint(results[:1]) == fingerprint(results[1:2])


def test_model_independent_configs_shared(monkeypatch):
    """UnsafeBaseline ignores the attack model: one run serves both."""
    calls = []
    real = parallel.run_one

    def counting(workload, config, *args, **kwargs):
        calls.append(workload)
        return real(workload, config, *args, **kwargs)

    monkeypatch.setattr(parallel, "run_one", counting)
    results = run_many(
        [RunSpec("xz", "UnsafeBaseline", AttackModel.FUTURISTIC,
                 max_instructions=BUDGET),
         RunSpec("xz", "UnsafeBaseline", AttackModel.SPECTRE,
                 max_instructions=BUDGET)],
        jobs=1, use_cache=False)
    assert len(calls) == 1
    assert results[0].cycles == results[1].cycles


def test_empty_spec_list():
    assert run_many([], jobs=4) == []


def test_failure_names_the_spec_serial():
    bad = RunSpec("no-such-workload", "STT", max_instructions=100)
    with pytest.raises(RunFailure) as excinfo:
        run_many([bad], jobs=1, use_cache=False)
    message = str(excinfo.value)
    assert "no-such-workload" in message
    assert "STT" in message
    assert excinfo.value.spec == bad


def test_failure_names_the_spec_parallel():
    specs = [RunSpec("mcf", "STT", max_instructions=200),
             RunSpec("no-such-workload", "STT", max_instructions=100)]
    with pytest.raises(RunFailure) as excinfo:
        run_many(specs, jobs=4, use_cache=False)
    assert "no-such-workload" in str(excinfo.value)


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        run_many(specs_small(), jobs=0)


def test_default_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert default_jobs() == 7
    monkeypatch.setenv("REPRO_JOBS", "three")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()


def test_default_timeout_env(monkeypatch):
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    assert default_timeout() is None
    monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
    assert default_timeout() == 2.5
    monkeypatch.setenv("REPRO_RUN_TIMEOUT", "-1")
    with pytest.raises(ValueError, match="REPRO_RUN_TIMEOUT"):
        default_timeout()
    monkeypatch.setenv("REPRO_RUN_TIMEOUT", "soon")
    with pytest.raises(ValueError, match="REPRO_RUN_TIMEOUT"):
        default_timeout()


def test_timeout_does_not_wait_for_the_hung_run():
    """A run exceeding its timeout must fail the sweep *promptly*.

    Regression test: ``_run_pool`` used to exit through the executor's
    context manager, whose shutdown joins running workers — so a wedged
    simulation stalled the sweep for however long the hang lasted, long
    past the deadline the timeout promised.  The specs below each take
    tens of seconds of simulation; the sweep must abandon them within
    the timeout plus pool-management overhead.
    """
    slow = [RunSpec("mcf", "UnsafeBaseline", scale=150 + extra,
                    max_instructions=10_000_000) for extra in (0, 1)]
    start = time.perf_counter()
    with pytest.raises(RunFailure, match="timeout"):
        run_many(slow, jobs=2, timeout=1.5, use_cache=False)
    elapsed = time.perf_counter() - start
    assert elapsed < 8.0, (
        f"sweep took {elapsed:.1f}s after a 1.5s timeout: the pool "
        f"shutdown waited for the hung simulation")


def test_pool_failure_falls_back_to_serial(monkeypatch):
    """If the pool cannot start, run_many degrades to in-process runs."""
    monkeypatch.setattr(parallel, "_run_pool", lambda *a, **k: None)
    results = run_many(specs_small(), jobs=4, use_cache=False)
    assert fingerprint(results) == \
        fingerprint(run_many(specs_small(), jobs=1, use_cache=False))


def test_serial_path_honours_timeout(monkeypatch):
    """Regression: jobs=1 used to ignore ``timeout`` entirely, so a wedged
    simulation hung the sweep forever on the serial path."""
    def wedge(*_args, **_kwargs):
        time.sleep(10.0)

    monkeypatch.setattr(parallel, "run_one", wedge)
    spec = RunSpec("mcf", "UnsafeBaseline", max_instructions=BUDGET)
    start = time.perf_counter()
    with pytest.raises(RunFailure, match="timeout"):
        run_many([spec], jobs=1, timeout=0.3, use_cache=False)
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, (
        f"serial sweep took {elapsed:.1f}s after a 0.3s timeout")


def test_serial_path_without_timeout_runs_inline(monkeypatch):
    """No timeout → no watchdog thread; run_one is called directly."""
    import threading
    threads = []

    real = parallel.run_one

    def spy(*args, **kwargs):
        threads.append(threading.current_thread())
        return real(*args, **kwargs)

    monkeypatch.setattr(parallel, "run_one", spy)
    run_many([RunSpec("mcf", "UnsafeBaseline", max_instructions=BUDGET)],
             jobs=1, use_cache=False)
    assert threads == [threading.main_thread()]
