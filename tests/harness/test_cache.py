"""Tests for the persistent result cache (``repro.harness.cache``)."""

import os


from repro.core.attack_model import AttackModel
from repro.harness import cache, parallel
from repro.harness.parallel import RunSpec, run_many
from repro.pipeline.params import MachineParams

BUDGET = 400
SPEC = RunSpec("mcf", "SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC,
               max_instructions=BUDGET)


def counting_run_one(monkeypatch):
    calls = []
    real = parallel.run_one

    def counting(workload, config, *args, **kwargs):
        calls.append(workload)
        return real(workload, config, *args, **kwargs)

    monkeypatch.setattr(parallel, "run_one", counting)
    return calls


def test_cache_dir_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/some/where")
    assert cache.cache_dir() == "/some/where"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert cache.cache_dir().endswith(os.path.join(".cache", "repro"))


def test_cache_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    assert cache.cache_enabled()
    monkeypatch.setenv("REPRO_NO_CACHE", "0")
    assert cache.cache_enabled()
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert not cache.cache_enabled()


def test_second_invocation_hits_cache(monkeypatch):
    calls = counting_run_one(monkeypatch)
    first = run_many([SPEC], jobs=1)
    assert len(calls) == 1
    second = run_many([SPEC], jobs=1)
    assert len(calls) == 1          # served from disk, no simulation
    assert first[0].cycles == second[0].cycles
    assert first[0].stats == second[0].stats
    assert first[0].untaint_by_kind == second[0].untaint_by_kind


def test_no_cache_env_opts_out(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    calls = counting_run_one(monkeypatch)
    run_many([SPEC], jobs=1)
    run_many([SPEC], jobs=1)
    assert len(calls) == 2


def test_untaints_per_cycle_keys_survive_round_trip():
    spec = RunSpec("mcf", "SPT{Ideal,ShadowMem}", AttackModel.FUTURISTIC,
                   max_instructions=BUDGET)
    fresh = run_many([spec], jobs=1)[0]
    cached = run_many([spec], jobs=1)[0]
    assert fresh.untaints_per_cycle
    assert cached.untaints_per_cycle == fresh.untaints_per_cycle
    assert all(isinstance(k, int) for k in cached.untaints_per_cycle)


def test_key_changes_with_budget():
    assert SPEC.key() != RunSpec(
        SPEC.workload, SPEC.config, SPEC.model,
        max_instructions=BUDGET + 1).key()


def test_key_changes_with_machine_params():
    base = RunSpec("mcf", "SPT{Bwd,ShadowL1}", max_instructions=BUDGET,
                   params=MachineParams())
    widened = RunSpec("mcf", "SPT{Bwd,ShadowL1}", max_instructions=BUDGET,
                      params=MachineParams(untaint_broadcast_width=8))
    assert base.key() != widened.key()
    # Default params hash like an explicit default MachineParams.
    assert base.key() == SPEC.key()


def test_key_changes_with_model_for_protected_configs():
    assert SPEC.key() != RunSpec(SPEC.workload, SPEC.config,
                                 AttackModel.SPECTRE,
                                 max_instructions=BUDGET).key()


def test_key_shared_across_models_for_unsafe_baseline():
    futuristic = RunSpec("mcf", "UnsafeBaseline", AttackModel.FUTURISTIC,
                         max_instructions=BUDGET)
    spectre = RunSpec("mcf", "UnsafeBaseline", AttackModel.SPECTRE,
                      max_instructions=BUDGET)
    assert futuristic.key() == spectre.key()


def test_key_changes_with_source_fingerprint(monkeypatch):
    before = SPEC.key()
    monkeypatch.setattr(cache, "source_fingerprint",
                        lambda: "deadbeef-simulated-code-change")
    assert SPEC.key() != before


def test_source_fingerprint_is_stable_and_memoised():
    first = cache.source_fingerprint()
    assert first == cache.source_fingerprint()
    assert len(first) == 64


def test_corrupt_blob_is_a_miss(monkeypatch):
    run_many([SPEC], jobs=1)
    key = SPEC.key()
    path = os.path.join(cache.cache_dir(), f"{key}.json")
    with open(path, "w") as handle:
        handle.write("{ not json")
    assert cache.load(key) is None
    calls = counting_run_one(monkeypatch)
    run_many([SPEC], jobs=1)
    assert len(calls) == 1          # re-simulated and re-stored


def test_clear_removes_entries():
    run_many([SPEC], jobs=1)
    assert cache.clear() >= 1
    assert cache.load(SPEC.key()) is None


def test_store_survives_unwritable_dir(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/proc/definitely-not-writable")
    results = run_many([SPEC], jobs=1, use_cache=True)
    assert results[0].cycles > 0    # simulation succeeded, store was dropped


def test_checked_and_unchecked_runs_never_share_a_cache_entry(monkeypatch):
    """check_level is part of the cache key at every level."""
    checked = RunSpec(SPEC.workload, SPEC.config, AttackModel.FUTURISTIC,
                      max_instructions=BUDGET,
                      params=MachineParams(check_level="full"))
    commit = RunSpec(SPEC.workload, SPEC.config, AttackModel.FUTURISTIC,
                     max_instructions=BUDGET,
                     params=MachineParams(check_level="commit"))
    assert checked.key() != SPEC.key()
    assert commit.key() != SPEC.key()
    assert commit.key() != checked.key()

    calls = counting_run_one(monkeypatch)
    unchecked_result = run_many([SPEC], jobs=1)[0]
    checked_result = run_many([checked], jobs=1)[0]
    assert len(calls) == 2      # the checked run missed the unchecked entry
    assert "check" in checked_result.metrics["groups"]
    assert "check" not in unchecked_result.metrics["groups"]
    # And the cached checked blob round-trips its check metrics.
    cached = run_many([checked], jobs=1)[0]
    assert len(calls) == 2
    assert cached.metrics["groups"]["check"] \
        == checked_result.metrics["groups"]["check"]


# ------------------------------------------------------------- stats / gc
def _write_entry(name: str, payload: bytes, mtime: float) -> str:
    path = os.path.join(cache.cache_dir(), name)
    os.makedirs(cache.cache_dir(), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(payload)
    os.utime(path, (mtime, mtime))
    return path


def test_stats_counts_entries_and_tmp_files():
    _write_entry("aa.json", b"x" * 100, mtime=1000.0)
    _write_entry("bb.json", b"x" * 50, mtime=1001.0)
    _write_entry("cc.tmp", b"x" * 7, mtime=1002.0)
    info = cache.stats()
    assert info["dir"] == cache.cache_dir()
    assert info["entries"] == 2
    assert info["bytes"] == 150
    assert info["tmp_files"] == 1
    assert info["tmp_bytes"] == 7


def test_gc_sweeps_stale_tmp_files_only():
    stale = _write_entry("stale.tmp", b"x", mtime=0.0)
    fresh = _write_entry("fresh.tmp", b"x", mtime=9000.0)
    kept = _write_entry("kept.json", b"x" * 10, mtime=100.0)
    swept = cache.gc(tmp_max_age=3600.0, now=10000.0)
    assert swept["tmp_removed"] == 1
    assert not os.path.exists(stale)
    assert os.path.exists(fresh)        # younger than tmp_max_age
    assert os.path.exists(kept)         # entries untouched without max_bytes
    assert swept["evicted"] == 0


def test_gc_evicts_oldest_entries_until_under_budget():
    oldest = _write_entry("old.json", b"x" * 100, mtime=1000.0)
    middle = _write_entry("mid.json", b"x" * 100, mtime=2000.0)
    newest = _write_entry("new.json", b"x" * 100, mtime=3000.0)
    swept = cache.gc(max_bytes=250, now=10000.0)
    assert swept["evicted"] == 1
    assert swept["evicted_bytes"] == 100
    assert not os.path.exists(oldest)
    assert os.path.exists(middle) and os.path.exists(newest)
    assert swept["remaining_entries"] == 2
    assert swept["remaining_bytes"] == 200


def test_gc_on_missing_dir_is_a_noop(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/nonexistent/cache/dir")
    swept = cache.gc(max_bytes=0)
    assert swept == {"tmp_removed": 0, "evicted": 0, "evicted_bytes": 0,
                     "remaining_entries": 0, "remaining_bytes": 0}


def test_cache_cli_stats_gc_clear(capsys):
    from repro.harness.cache_cli import cache_main, parse_bytes
    _write_entry("aa.json", b"x" * 100, mtime=1000.0)
    _write_entry("bb.json", b"x" * 100, mtime=2000.0)

    assert cache_main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "entries:    2" in out

    assert cache_main(["gc", "--max-bytes", "150"]) == 0
    out = capsys.readouterr().out
    assert "evicted 1 entr(ies)" in out
    assert cache.stats()["entries"] == 1

    assert cache_main(["clear"]) == 0
    assert cache.stats()["entries"] == 0

    assert parse_bytes("500m") == 500 * 2**20
    assert parse_bytes("1G") == 2**30
    assert parse_bytes("42") == 42
