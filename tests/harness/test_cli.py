"""Tests for the artifact-compatible CLI."""

import pytest

from repro.cli import (build_parser, load_program, main,
                       make_engine_from_args, validate_args)
from repro.core.baselines import SecureBaseline, UnsafeBaseline
from repro.core.spt import SPTEngine
from repro.core.stt import STTEngine


def parse(argv):
    return build_parser().parse_args(argv)


def test_insecure_baseline_is_default():
    args = parse(["mcf"])
    assert validate_args(args) is None
    assert isinstance(make_engine_from_args(args), UnsafeBaseline)


def test_secure_baseline_mapping():
    args = parse(["mcf", "--enable-spt", "--threat-model", "spectre",
                  "--untaint-method", "none"])
    engine = make_engine_from_args(args)
    assert isinstance(engine, SecureBaseline)


@pytest.mark.parametrize("method,shadow_flag,expected_name", [
    ("fwd", None, "SPT{Fwd,NoShadowL1}"),
    ("bwd", None, "SPT{Bwd,NoShadowL1}"),
    ("bwd", "--enable-shadow-l1", "SPT{Bwd,ShadowL1}"),
    ("bwd", "--enable-shadow-mem", "SPT{Bwd,ShadowMem}"),
    ("ideal", "--enable-shadow-mem", "SPT{Ideal,ShadowMem}"),
])
def test_table2_configuration_mapping(method, shadow_flag, expected_name):
    argv = ["mcf", "--enable-spt", "--threat-model", "futuristic",
            "--untaint-method", method]
    if shadow_flag:
        argv.append(shadow_flag)
    engine = make_engine_from_args(parse(argv))
    assert isinstance(engine, SPTEngine)
    assert engine.name == expected_name


def test_stt_flag():
    args = parse(["mcf", "--stt", "--threat-model", "spectre"])
    assert validate_args(args) is None
    assert isinstance(make_engine_from_args(args), STTEngine)


@pytest.mark.parametrize("argv,fragment", [
    (["mcf", "--enable-spt"], "--threat-model"),
    (["mcf", "--enable-spt", "--threat-model", "spectre"],
     "--untaint-method"),
    (["mcf", "--enable-spt", "--threat-model", "spectre",
      "--untaint-method", "bwd", "--enable-shadow-l1",
      "--enable-shadow-mem"], "both"),
    (["mcf", "--track-insts"], "--track-insts"),
    (["mcf", "--stt"], "--threat-model"),
    (["mcf", "--enable-shadow-l1"], "--enable-spt"),
])
def test_invalid_combinations_rejected(argv, fragment):
    error = validate_args(parse(argv))
    assert error is not None and fragment in error


def test_load_program_from_workload_registry():
    program = load_program("djbsort", scale=1)
    assert program.name == "djbsort"


def test_load_program_from_asm_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text("li a0, 1\nhalt\n")
    program = load_program(str(path), scale=1)
    assert len(program) == 2


def test_load_program_unknown_exits():
    with pytest.raises(SystemExit):
        load_program("no-such-thing", scale=1)


def test_main_end_to_end(tmp_path, capsys):
    code = main(["djbsort", "--enable-spt", "--threat-model", "futuristic",
                 "--untaint-method", "bwd", "--enable-shadow-l1",
                 "--track-insts", "--max-instructions", "1500",
                 "--output-dir", str(tmp_path)])
    assert code == 0
    stats = (tmp_path / "stats.txt").read_text()
    assert "numCycles" in stats
    assert "configName" in stats and "SPT{Bwd,ShadowL1}" in stats
    out = capsys.readouterr().out
    assert "instructions" in out


def test_main_rejects_bad_combo(capsys):
    code = main(["mcf", "--enable-spt"])
    assert code == 2
