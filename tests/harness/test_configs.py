"""Unit tests for the Table 2 configuration registry."""

import pytest

from repro.core.attack_model import AttackModel
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.harness.configs import (CONFIGURATIONS, FIGURE7_ORDER, FULL_SPT,
                                   SECURE_CONFIGS, SPT_CONFIGS, make_engine,
                                   table2_text)


def test_all_table2_rows_present():
    expected = {"UnsafeBaseline", "SecureBaseline", "SPT{Fwd,NoShadowL1}",
                "SPT{Bwd,NoShadowL1}", "SPT{Bwd,ShadowL1}",
                "SPT{Bwd,ShadowMem}", "SPT{Ideal,ShadowMem}", "STT"}
    assert set(CONFIGURATIONS) == expected


def test_engine_names_match_config_names():
    for name in CONFIGURATIONS:
        engine = make_engine(name, AttackModel.FUTURISTIC)
        assert engine.name == name


def test_full_spt_is_bwd_shadowl1():
    engine = make_engine(FULL_SPT, AttackModel.SPECTRE)
    assert isinstance(engine, SPTEngine)
    assert engine.backward and not engine.ideal
    assert engine.shadow_mode == ShadowMode.L1


def test_spt_variant_knobs():
    fwd = make_engine("SPT{Fwd,NoShadowL1}", AttackModel.SPECTRE)
    assert not fwd.backward and fwd.shadow_mode == ShadowMode.NONE
    ideal = make_engine("SPT{Ideal,ShadowMem}", AttackModel.SPECTRE)
    assert ideal.ideal and ideal.backward
    assert ideal.shadow_mode == ShadowMode.FULL_MEMORY


def test_figure7_order_excludes_unsafe():
    assert "UnsafeBaseline" not in FIGURE7_ORDER
    assert set(FIGURE7_ORDER) <= set(CONFIGURATIONS)


def test_secure_and_spt_groupings():
    assert "UnsafeBaseline" not in SECURE_CONFIGS
    assert all(name.startswith("SPT") for name in SPT_CONFIGS)
    assert len(SPT_CONFIGS) == 5


def test_engines_are_fresh_instances():
    a = make_engine(FULL_SPT, AttackModel.SPECTRE)
    b = make_engine(FULL_SPT, AttackModel.SPECTRE)
    assert a is not b


def test_table2_text_lists_everything():
    text = table2_text()
    for name in CONFIGURATIONS:
        assert name in text


def test_unknown_config_raises():
    with pytest.raises(KeyError):
        make_engine("SPT{Quantum}", AttackModel.SPECTRE)


def test_parse_config_names_handles_brace_commas():
    from repro.harness.configs import parse_config_names
    assert parse_config_names("UnsafeBaseline,SPT{Bwd,ShadowL1},STT") == \
        ["UnsafeBaseline", "SPT{Bwd,ShadowL1}", "STT"]
    assert parse_config_names("all") == list(CONFIGURATIONS)
    with pytest.raises(SystemExit, match="unknown configuration"):
        parse_config_names("SPT{Bwd")
    with pytest.raises(SystemExit, match="selected nothing"):
        parse_config_names(",")
