"""Unit tests for opcode metadata."""

import pytest

from repro.isa.opcodes import (BRANCH_OPS, LOAD_OPS, OPCODES, STORE_OPS, Kind,
                               to_signed, to_unsigned)


def test_every_opcode_has_consistent_kind_flags():
    for name, info in OPCODES.items():
        assert info.name == name
        if info.kind == Kind.LOAD:
            assert info.writes_rd and info.reads_rs1 and info.mem_size > 0
        if info.kind == Kind.STORE:
            assert info.reads_rs1 and info.reads_rs2 and info.mem_size > 0
            assert not info.writes_rd
        if info.kind == Kind.BRANCH:
            assert info.reads_rs1 and info.reads_rs2 and not info.writes_rd


def test_transmitters_are_exactly_loads_and_stores():
    transmitters = {n for n, i in OPCODES.items() if i.is_transmitter}
    assert transmitters == LOAD_OPS | STORE_OPS


def test_control_ops():
    controls = {n for n, i in OPCODES.items() if i.is_control}
    assert BRANCH_OPS < controls
    assert "JAL" in controls and "JALR" in controls
    assert "HALT" not in controls


def test_invertible_flags_match_backward_rule_semantics():
    # Invertible: knowing output + all-but-one input determines the rest.
    for op in ("ADD", "SUB", "XOR", "ADDI", "XORI", "MOV", "NOT",
               "ROTLI", "ROTRI"):
        assert OPCODES[op].invertible, op
    for op in ("AND", "OR", "SLL", "SRL", "MUL", "SLT", "ANDI", "ORI",
               "SLLI", "SRLI"):
        assert not OPCODES[op].invertible, op


def test_memory_sizes():
    assert OPCODES["LD"].mem_size == 8
    assert OPCODES["LW"].mem_size == 4
    assert OPCODES["LH"].mem_size == 2
    assert OPCODES["LB"].mem_size == 1
    for load, store in (("LD", "SD"), ("LW", "SW"), ("LH", "SH"), ("LB", "SB")):
        assert OPCODES[load].mem_size == OPCODES[store].mem_size


def test_latencies():
    assert OPCODES["ADD"].latency == 1
    assert OPCODES["MUL"].latency > OPCODES["ADD"].latency
    assert OPCODES["DIV"].latency > OPCODES["MUL"].latency


@pytest.mark.parametrize("value,expected", [
    (0, 0), (1, 1), ((1 << 63) - 1, (1 << 63) - 1),
    (1 << 63, -(1 << 63)), ((1 << 64) - 1, -1),
])
def test_to_signed(value, expected):
    assert to_signed(value) == expected


def test_to_unsigned_wraps():
    assert to_unsigned(-1) == (1 << 64) - 1
    assert to_unsigned(1 << 64) == 0
    assert to_unsigned(123) == 123


def test_signed_unsigned_roundtrip():
    for value in (0, 1, 2**63 - 1, 2**63, 2**64 - 1):
        assert to_unsigned(to_signed(value)) == value
