"""Regression pin for the pluggable-value-domain semantics refactor.

``repro.isa.semantics`` used to evaluate each opcode with a hand-written
if-chain; it now dispatches through a semantics table built over a value
domain (so the symbolic checker can execute the same table).  This module
keeps the *pre-refactor* implementation verbatim as the golden reference
and asserts, opcode by opcode, that the table-driven concrete evaluation is
bit-identical over an edge-case + seeded-random operand corpus.

If an opcode's semantics ever needs to change intentionally, change the
legacy copy here in the same commit — the diff then documents the semantic
change explicitly.
"""

from __future__ import annotations

import random

import pytest

from repro.isa.instructions import Instruction
from repro.isa.opcodes import (BRANCH_OPS, OPCODES, WORD_MASK, Kind,
                               to_signed, to_unsigned)
from repro.isa.semantics import (ConcreteDomain, alu_result,
                                 branch_taken, build_alu_table,
                                 build_branch_table,
                                 build_effective_address,
                                 effective_address)


# --------------------------------------------------------------- legacy copy
def _legacy_alu_result(inst: Instruction, a: int, b: int) -> int:
    """The pre-refactor if-chain, preserved verbatim (do not modernise)."""
    op = inst.op
    imm = inst.imm
    if op == "ADD":
        return (a + b) & WORD_MASK
    if op == "SUB":
        return (a - b) & WORD_MASK
    if op == "AND":
        return a & b
    if op == "OR":
        return a | b
    if op == "XOR":
        return a ^ b
    if op == "SLL":
        return (a << (b & 63)) & WORD_MASK
    if op == "SRL":
        return a >> (b & 63)
    if op == "SRA":
        return to_unsigned(to_signed(a) >> (b & 63))
    if op == "SLT":
        return 1 if to_signed(a) < to_signed(b) else 0
    if op == "SLTU":
        return 1 if a < b else 0
    if op == "MUL":
        return (a * b) & WORD_MASK
    if op == "DIV":
        if b == 0:
            return WORD_MASK
        return to_unsigned(int(to_signed(a) / to_signed(b)))
    if op == "REM":
        if b == 0:
            return a
        sa, sb = to_signed(a), to_signed(b)
        return to_unsigned(sa - sb * int(sa / sb))
    if op == "ADDI":
        return (a + imm) & WORD_MASK
    if op == "ANDI":
        return a & (imm & WORD_MASK)
    if op == "ORI":
        return a | (imm & WORD_MASK)
    if op == "XORI":
        return a ^ (imm & WORD_MASK)
    if op == "SLLI":
        return (a << (imm & 63)) & WORD_MASK
    if op == "SRLI":
        return a >> (imm & 63)
    if op == "SRAI":
        return to_unsigned(to_signed(a) >> (imm & 63))
    if op == "SLTI":
        return 1 if to_signed(a) < to_signed(imm) else 0
    if op == "ROTLI":
        shift = imm & 63
        return ((a << shift) | (a >> (64 - shift))) & WORD_MASK if shift else a
    if op == "ROTRI":
        shift = imm & 63
        return ((a >> shift) | (a << (64 - shift))) & WORD_MASK if shift else a
    if op == "MOV":
        return a
    if op == "NOT":
        return a ^ WORD_MASK
    if op == "LI":
        return imm & WORD_MASK
    raise ValueError(f"{op} is not an ALU instruction")


def _legacy_branch_taken(inst: Instruction, a: int, b: int) -> bool:
    """The pre-refactor branch predicate chain, preserved verbatim."""
    op = inst.op
    if op == "BEQ":
        return a == b
    if op == "BNE":
        return a != b
    if op == "BLT":
        return to_signed(a) < to_signed(b)
    if op == "BGE":
        return to_signed(a) >= to_signed(b)
    if op == "BLTU":
        return a < b
    if op == "BGEU":
        return a >= b
    raise ValueError(f"{op} is not a branch")


def _legacy_effective_address(inst: Instruction, base: int) -> int:
    return (base + inst.imm) & WORD_MASK


# ------------------------------------------------------------ operand corpus
_EDGES = (0, 1, 2, 3, 63, 64, 0x7F, 0xFF, 0x8000000000000000,
          0x7FFFFFFFFFFFFFFF, WORD_MASK, WORD_MASK - 1, 1 << 32,
          (1 << 32) - 1, 0xDEADBEEF)


def _operand_corpus(op: str) -> list:
    """(a, b, imm) triples: all edge pairs plus seeded random values."""
    rng = random.Random(f"semantics-pin:{op}")
    values = list(_EDGES) + [rng.getrandbits(64) for _ in range(8)]
    imms = [0, 1, 5, 63, -1, -8, 1 << 40, WORD_MASK,
            rng.getrandbits(64), -rng.getrandbits(32)]
    triples = []
    for a in values:
        for b in values[:8]:
            triples.append((a, b, imms[(a + b) % len(imms)]))
    for _ in range(64):
        triples.append((rng.getrandbits(64), rng.getrandbits(64),
                        rng.choice(imms)))
    return triples


_ALU_KINDS = (Kind.ALU, Kind.ALU_IMM, Kind.MOVE, Kind.LOAD_IMM)
ALU_OPS = sorted(n for n, i in OPCODES.items() if i.kind in _ALU_KINDS)
MEM_OPS = sorted(n for n, i in OPCODES.items()
                 if i.kind in (Kind.LOAD, Kind.STORE))


@pytest.mark.parametrize("op", ALU_OPS)
def test_alu_opcode_bit_identical_to_legacy(op):
    for a, b, imm in _operand_corpus(op):
        inst = Instruction(op, rd=1, rs1=2, rs2=3, imm=imm)
        assert alu_result(inst, a, b) == _legacy_alu_result(inst, a, b), (
            f"{op} a={a:#x} b={b:#x} imm={imm}")


@pytest.mark.parametrize("op", sorted(BRANCH_OPS))
def test_branch_opcode_bit_identical_to_legacy(op):
    for a, b, imm in _operand_corpus(op):
        inst = Instruction(op, rs1=2, rs2=3, imm=0)
        assert branch_taken(inst, a, b) == _legacy_branch_taken(inst, a, b), (
            f"{op} a={a:#x} b={b:#x}")


@pytest.mark.parametrize("op", MEM_OPS)
def test_effective_address_bit_identical_to_legacy(op):
    for a, _b, imm in _operand_corpus(op):
        inst = Instruction(op, rd=1, rs1=2, rs2=3, imm=imm)
        assert effective_address(inst, a) == \
            _legacy_effective_address(inst, a)


def test_alu_table_covers_exactly_the_alu_kinds():
    table = build_alu_table(ConcreteDomain)
    assert sorted(table) == ALU_OPS


def test_branch_table_covers_exactly_the_branches():
    table = build_branch_table(ConcreteDomain)
    assert sorted(table) == sorted(BRANCH_OPS)


def test_non_alu_op_still_raises_value_error():
    with pytest.raises(ValueError):
        alu_result(Instruction("BEQ", rs1=1, rs2=2, imm=0), 1, 2)
    with pytest.raises(ValueError):
        branch_taken(Instruction("ADD", rd=1, rs1=2, rs2=3), 1, 2)


def test_effective_address_builder_matches_module_function():
    ea = build_effective_address(ConcreteDomain)
    inst = Instruction("LD", rd=1, rs1=2, imm=-16)
    assert ea(0x1000, inst.imm) == effective_address(inst, 0x1000)
