"""Unit tests for the golden interpreter."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.interpreter import InterpreterError, run_program


def test_arithmetic_and_halt():
    result = run_program(assemble("li a0, 6\nli a1, 7\nmul a2, a0, a1\nhalt"))
    assert result.reg(12) == 42
    assert result.halted
    assert result.retired == 4


def test_x0_is_hardwired_zero():
    result = run_program(assemble("li x0, 99\nadd a0, x0, x0\nhalt"))
    assert result.reg(0) == 0
    assert result.reg(10) == 0


def test_memory_roundtrip_all_sizes():
    result = run_program(assemble("""
        li a0, 0x1122334455667788
        sd a0, 0x100(zero)
        ld a1, 0x100(zero)
        lw a2, 0x100(zero)
        lh a3, 0x100(zero)
        lb a4, 0x100(zero)
        halt
    """))
    assert result.reg(11) == 0x1122334455667788
    assert result.reg(12) == 0x55667788
    assert result.reg(13) == 0x7788
    assert result.reg(14) == 0x88


def test_little_endian_byte_order():
    result = run_program(assemble("""
        li a0, 0x0102030405060708
        sd a0, 0x200(zero)
        lb a1, 0x200(zero)
        lb a2, 0x207(zero)
        halt
    """))
    assert result.reg(11) == 0x08
    assert result.reg(12) == 0x01


def test_partial_store_overwrites_only_its_bytes():
    result = run_program(assemble("""
        li a0, -1
        sd a0, 0x300(zero)
        li a1, 0
        sb a1, 0x303(zero)
        ld a2, 0x300(zero)
        halt
    """))
    assert result.reg(12) == 0xFFFFFFFF00FFFFFF


def test_call_and_return():
    result = run_program(assemble("""
        li a0, 1
        jal ra, func
        addi a0, a0, 100
        halt
    func:
        addi a0, a0, 10
        jalr zero, ra, 0
    """))
    assert result.reg(10) == 111


def test_branch_taken_and_not_taken():
    result = run_program(assemble("""
        li a0, 5
        li a1, 5
        beq a0, a1, equal
        li a2, 111
        halt
    equal:
        li a2, 222
        halt
    """))
    assert result.reg(12) == 222


def test_runaway_pc_raises():
    with pytest.raises(InterpreterError, match="left the program"):
        run_program(assemble("addi a0, a0, 1"))   # no halt: falls off the end


def test_instruction_budget_stops_infinite_loop():
    result = run_program(assemble("loop: jal zero, loop\nhalt"),
                         max_instructions=100)
    assert not result.halted
    assert result.retired == 100


def test_pc_trace():
    result = run_program(assemble("nop\nnop\nhalt"), trace_pcs=True)
    assert result.pc_trace == [0, 1, 2]


def test_initial_memory_image_visible():
    program = assemble(".word 0x500 1234\nld a0, 0x500(zero)\nhalt")
    assert run_program(program).reg(10) == 1234
