"""Unit tests for the text assembler."""

import pytest

from repro.isa.assembler import assemble, parse_register
from repro.isa.instructions import IsaError


def test_parse_register_aliases():
    assert parse_register("zero") == 0
    assert parse_register("ra") == 1
    assert parse_register("sp") == 2
    assert parse_register("a0") == 10
    assert parse_register("t6") == 31
    assert parse_register("x17") == 17


def test_parse_register_rejects_garbage():
    for bad in ("x32", "y1", "a99", ""):
        with pytest.raises(IsaError):
            parse_register(bad)


def test_basic_program():
    program = assemble("""
        li  t0, 42          # a comment
        addi t0, t0, -2     ; another comment
        halt
    """)
    assert len(program) == 3
    assert program.instructions[0].op == "LI"
    assert program.instructions[0].imm == 42
    assert program.instructions[1].imm == -2 & ((1 << 64) - 1) or \
        program.instructions[1].imm == -2


def test_labels_forward_and_backward():
    program = assemble("""
    start:
        beq a0, zero, end
        jal zero, start
    end:
        halt
    """)
    assert program.symbols == {"start": 0, "end": 2}
    assert program.instructions[0].imm == 2
    assert program.instructions[1].imm == 0


def test_memory_operand_syntax():
    program = assemble("""
        ld a0, 16(sp)
        sd a1, -8(a0)
        halt
    """)
    load = program.instructions[0]
    assert (load.rd, load.rs1, load.imm) == (10, 2, 16)
    store = program.instructions[1]
    assert (store.rs2, store.rs1, store.imm) == (11, 10, -8)


def test_data_directives():
    program = assemble("""
        .data buf 0x1000
        .word buf 0xDEADBEEF
        .byte 0x1010 255
        ld a0, buf(zero)
        halt
    """)
    assert program.data_symbols["buf"] == 0x1000
    assert program.instructions[0].imm == 0x1000
    from repro.isa.instructions import load_word
    assert load_word(program.initial_memory, 0x1000) == 0xDEADBEEF
    assert program.initial_memory[0x1010] == 255


def test_duplicate_label_rejected():
    with pytest.raises(IsaError, match="duplicate"):
        assemble("a:\nnop\na:\nhalt")


def test_unknown_opcode_rejected():
    with pytest.raises(IsaError, match="unknown opcode"):
        assemble("frobnicate a0, a1\nhalt")


def test_wrong_operand_count_rejected():
    with pytest.raises(IsaError):
        assemble("add a0, a1\nhalt")


def test_empty_program_rejected():
    with pytest.raises(IsaError):
        assemble("# only a comment")


def test_label_on_same_line_as_instruction():
    program = assemble("loop: addi a0, a0, 1\nbne a0, zero, loop\nhalt")
    assert program.symbols["loop"] == 0


def test_hex_and_negative_immediates():
    program = assemble("li a0, 0xFF\nli a1, -7\nhalt")
    assert program.instructions[0].imm == 255
    assert program.instructions[1].imm == -7
