"""Unit tests for the programmatic builder."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import IsaError, load_word
from repro.isa.interpreter import run_program


def test_alloc_words_initialises_memory():
    b = ProgramBuilder(data_base=0x2000)
    address = b.alloc_words("data", [1, 2, 3])
    b.halt()
    program = b.build()
    assert address == 0x2000
    assert load_word(program.initial_memory, 0x2000) == 1
    assert load_word(program.initial_memory, 0x2010) == 3
    assert program.data_symbols["data"] == 0x2000


def test_alloc_bytes_and_reserve_alignment():
    b = ProgramBuilder(data_base=0x1001)
    bytes_at = b.alloc_bytes("b", [9, 8], align=8)
    reserved = b.reserve("r", 100, align=64)
    assert bytes_at == 0x1008
    assert reserved % 64 == 0
    assert reserved >= bytes_at + 2


def test_loop_helper_executes_count_times():
    b = ProgramBuilder()
    b.li("a0", 0)
    with b.loop(count=7, counter="t0"):
        b.addi("a0", "a0", 1)
    b.halt()
    result = run_program(b.build())
    assert result.reg(10) == 7


def test_nested_loops():
    b = ProgramBuilder()
    b.li("a0", 0)
    with b.loop(count=3, counter="t0"):
        with b.loop(count=4, counter="t1"):
            b.addi("a0", "a0", 1)
    b.halt()
    assert run_program(b.build()).reg(10) == 12


def test_while_ne_helper():
    b = ProgramBuilder()
    b.li("a0", 5)
    b.li("a1", 0)
    with b.while_ne("a0", "zero"):
        b.addi("a0", "a0", -1)
        b.addi("a1", "a1", 1)
    b.halt()
    assert run_program(b.build()).reg(11) == 5


def test_forward_label_must_be_placed():
    b = ProgramBuilder()
    label = b.forward_label()
    b.jal(0, label)
    b.halt()
    with pytest.raises(IsaError, match="never placed"):
        b.build()


def test_label_cannot_be_placed_twice():
    b = ProgramBuilder()
    b.label("x")
    b.nop()
    with pytest.raises(IsaError, match="placed twice"):
        b.label("x")


def test_unresolved_symbol_rejected():
    b = ProgramBuilder()
    b.jal(0, "nowhere")
    with pytest.raises(IsaError, match="unresolved"):
        b.build()


def test_getattr_emitters_match_emit():
    b = ProgramBuilder()
    b.add("a0", "a1", "a2")
    b.addi("a3", "a0", 5)
    b.ld("a4", "sp", 8)
    b.sd("a4", "sp", 16)
    b.beq("a0", "zero", "end")
    b.place("end") if "end" in b._labels else b.label("end")
    b.halt()
    program = b.build()
    ops = [inst.op for inst in program.instructions]
    assert ops == ["ADD", "ADDI", "LD", "SD", "BEQ", "HALT"]
    store = program.instructions[3]
    assert store.rs1 == 2 and store.rs2 == 14      # base sp, data a4


def test_getattr_unknown_op_raises_attribute_error():
    b = ProgramBuilder()
    with pytest.raises(AttributeError):
        b.frobnicate("a0", "a1")


def test_builder_and_assembler_agree():
    from repro.isa.assembler import assemble
    b = ProgramBuilder()
    b.li("t0", 3)
    b.slli("t1", "t0", 4)
    b.halt()
    built = b.build()
    assembled = assemble("li t0, 3\nslli t1, t0, 4\nhalt")
    assert [str(i) for i in built.instructions] == \
        [str(i) for i in assembled.instructions]
