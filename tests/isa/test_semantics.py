"""Property-based tests for the shared ALU/branch semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.instructions import Instruction
from repro.isa.opcodes import WORD_MASK, to_signed
from repro.isa.semantics import alu_result, branch_taken, effective_address

u64 = st.integers(min_value=0, max_value=WORD_MASK)


@given(a=u64, b=u64)
def test_add_sub_roundtrip(a, b):
    added = alu_result(Instruction("ADD", rd=1, rs1=2, rs2=3), a, b)
    assert alu_result(Instruction("SUB", rd=1, rs1=2, rs2=3), added, b) == a


@given(a=u64, b=u64)
def test_xor_involution(a, b):
    x = alu_result(Instruction("XOR", rd=1, rs1=2, rs2=3), a, b)
    assert alu_result(Instruction("XOR", rd=1, rs1=2, rs2=3), x, b) == a


@given(a=u64, shift=st.integers(min_value=0, max_value=63))
def test_rotate_roundtrip(a, shift):
    left = alu_result(Instruction("ROTLI", rd=1, rs1=2, imm=shift), a, 0)
    back = alu_result(Instruction("ROTRI", rd=1, rs1=2, imm=shift), left, 0)
    assert back == a


@given(a=u64)
def test_not_involution(a):
    n = alu_result(Instruction("NOT", rd=1, rs1=2), a, 0)
    assert alu_result(Instruction("NOT", rd=1, rs1=2), n, 0) == a
    assert n == a ^ WORD_MASK


@given(a=u64, b=u64)
def test_results_stay_in_64_bits(a, b):
    for op in ("ADD", "SUB", "AND", "OR", "XOR", "SLL", "SRL", "SRA",
               "MUL", "DIV", "REM", "SLT", "SLTU"):
        result = alu_result(Instruction(op, rd=1, rs1=2, rs2=3), a, b)
        assert 0 <= result <= WORD_MASK, op


@given(a=u64, b=u64)
def test_slt_matches_signed_comparison(a, b):
    result = alu_result(Instruction("SLT", rd=1, rs1=2, rs2=3), a, b)
    assert result == (1 if to_signed(a) < to_signed(b) else 0)


@given(a=u64, b=u64)
def test_div_rem_identity(a, b):
    if b == 0:
        return
    q = alu_result(Instruction("DIV", rd=1, rs1=2, rs2=3), a, b)
    r = alu_result(Instruction("REM", rd=1, rs1=2, rs2=3), a, b)
    assert (to_signed(q) * to_signed(b) + to_signed(r)) & WORD_MASK == a


def test_div_by_zero_defined():
    assert alu_result(Instruction("DIV", rd=1, rs1=2, rs2=3), 5, 0) == WORD_MASK
    assert alu_result(Instruction("REM", rd=1, rs1=2, rs2=3), 5, 0) == 5


@given(a=u64, b=u64)
def test_branch_pairs_are_complementary(a, b):
    for taken_op, complement in (("BEQ", "BNE"), ("BLT", "BGE"),
                                 ("BLTU", "BGEU")):
        t = branch_taken(Instruction(taken_op, rs1=1, rs2=2, imm=0), a, b)
        c = branch_taken(Instruction(complement, rs1=1, rs2=2, imm=0), a, b)
        assert t != c


@given(base=u64, offset=st.integers(min_value=-1024, max_value=1024))
def test_effective_address_wraps(base, offset):
    inst = Instruction("LD", rd=1, rs1=2, imm=offset)
    assert effective_address(inst, base) == (base + offset) % (1 << 64)


@given(a=u64)
def test_li_ignores_operands(a):
    inst = Instruction("LI", rd=1, imm=77)
    assert alu_result(inst, a, a) == 77
