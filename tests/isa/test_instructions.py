"""Unit tests for the static instruction and program containers."""

import pytest

from repro.isa.instructions import (Instruction, IsaError, Program, load_word,
                                    store_word)


def test_instruction_validates_opcode_and_registers():
    with pytest.raises(IsaError):
        Instruction("NOSUCH")
    with pytest.raises(IsaError):
        Instruction("ADD", rd=32)
    with pytest.raises(IsaError):
        Instruction("ADD", rs1=-1)


def test_source_and_dest_registers():
    add = Instruction("ADD", rd=3, rs1=1, rs2=2)
    assert add.source_regs() == (1, 2)
    assert add.dest_reg() == 3
    store = Instruction("SD", rs1=4, rs2=5)
    assert store.source_regs() == (4, 5)
    assert store.dest_reg() is None
    x0_write = Instruction("LI", rd=0, imm=7)
    assert x0_write.dest_reg() is None


def test_str_formats():
    assert str(Instruction("ADD", rd=1, rs1=2, rs2=3)) == "add x1, x2, x3"
    assert str(Instruction("LD", rd=1, rs1=2, imm=8)) == "ld x1, 8(x2)"
    assert str(Instruction("SD", rs1=2, rs2=1, imm=-8)) == "sd x1, -8(x2)"
    assert str(Instruction("HALT")) == "halt"
    assert str(Instruction("LI", rd=5, imm=42)) == "li x5, 42"


def test_program_requires_instructions():
    with pytest.raises(IsaError):
        Program([])


def test_program_validates_memory_image():
    inst = [Instruction("HALT")]
    with pytest.raises(IsaError):
        Program(inst, initial_memory={-1: 0})
    with pytest.raises(IsaError):
        Program(inst, initial_memory={0: 256})


def test_program_fetch_bounds():
    program = Program([Instruction("NOP"), Instruction("HALT")])
    assert program.fetch(0).op == "NOP"
    assert program.fetch(1).op == "HALT"
    assert program.fetch(2) is None
    assert program.fetch(-1) is None


def test_with_memory_patch():
    program = Program([Instruction("HALT")], initial_memory={0: 1},
                      name="base")
    patched = program.with_memory({0: 2, 5: 9}, name="patched")
    assert patched.initial_memory == {0: 2, 5: 9}
    assert program.initial_memory == {0: 1}        # original untouched
    assert patched.name == "patched"
    assert patched.instructions is program.instructions


def test_store_load_word_helpers():
    memory: dict = {}
    store_word(memory, 0x10, 0x0102030405060708, 8)
    assert memory[0x10] == 0x08 and memory[0x17] == 0x01
    assert load_word(memory, 0x10, 8) == 0x0102030405060708
    assert load_word(memory, 0x10, 2) == 0x0708


def test_program_iteration_and_len():
    program = Program([Instruction("NOP"), Instruction("HALT")])
    assert len(program) == 2
    assert [i.op for i in program] == ["NOP", "HALT"]
