"""Backend selection plumbing: params validation, caching, pickling, deps."""

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.core.attack_model import AttackModel
from repro.fastpath import deps
from repro.harness import cache
from repro.harness.parallel import RunSpec, run_many
from repro.harness.runner import build_core
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams
from repro.workloads.registry import get as get_workload


def test_unknown_backend_is_rejected_by_name():
    with pytest.raises(ValueError, match="warp"):
        MachineParams(backend="warp").validate()


def test_build_core_selects_backend():
    from repro.fastpath.vector_core import VectorCore
    program = get_workload("chacha20").program(1)
    assert type(build_core(program)) is OoOCore
    assert type(build_core(
        program, params=MachineParams(backend="vector"))) is VectorCore


def test_vector_core_wraps_spt_engine():
    from repro.core.spt import SPTEngine
    from repro.fastpath.spt_vector import VectorSPTEngine
    from repro.harness.configs import make_engine
    program = get_workload("chacha20").program(1)
    engine = make_engine("SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC)
    core = build_core(program, engine=engine,
                      params=MachineParams(backend="vector"))
    assert type(core.engine) is VectorSPTEngine
    assert isinstance(core.engine, SPTEngine)
    assert core.engine.backward == engine.backward
    assert core.engine.shadow_mode == engine.shadow_mode


def test_cache_version_covers_backend_field():
    # The backend rides in MachineParams, which result_key hashes in full;
    # the version bump retires every pre-backend cache slot.
    assert cache.CACHE_VERSION >= 5
    common = dict(workload="mcf", config="SPT{Bwd,ShadowL1}",
                  model=AttackModel.FUTURISTIC, scale=1,
                  max_instructions=1000)
    ref_key = cache.result_key(params=MachineParams(backend="reference"),
                               **common)
    vec_key = cache.result_key(params=MachineParams(backend="vector"),
                               **common)
    assert ref_key != vec_key


def test_vector_results_pickle_and_flow_through_run_many(tmp_path,
                                                         monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    params = MachineParams(backend="vector")
    specs = [RunSpec("chacha20", "SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC,
                     max_instructions=500, params=params),
             RunSpec("mcf", "STT", AttackModel.SPECTRE,
                     max_instructions=500, params=params)]
    results = run_many(specs, jobs=2, use_cache=True)
    # The budget is a floor for stopping, not an exact count: the last
    # commit group may overshoot by up to commit_width - 1.
    assert all(r.retired >= 500 for r in results)
    restored = pickle.loads(pickle.dumps(results[0]))
    assert restored.cycles == results[0].cycles
    # A second sweep is served from the cache written by the first.
    again = run_many(specs, jobs=1, use_cache=True)
    assert [(r.cycles, r.stats) for r in again] == \
        [(r.cycles, r.stats) for r in results]


def test_vector_backend_without_numpy_raises_actionably(monkeypatch):
    monkeypatch.setattr(deps, "np", None)
    program = get_workload("chacha20").program(1)
    with pytest.raises(ImportError, match="numpy") as info:
        build_core(program, params=MachineParams(backend="vector"))
    assert "backend='reference'" in str(info.value)


def test_reference_backend_needs_no_numpy():
    # Run a reference simulation in a subprocess whose import machinery
    # refuses numpy outright: the reference backend must be unaffected and
    # the vector backend must fail with the actionable message.
    script = textwrap.dedent("""
        import sys

        class BlockNumpy:
            def find_spec(self, name, path=None, target=None):
                if name == "numpy" or name.startswith("numpy."):
                    raise ImportError("numpy is blocked in this test")
                return None

        sys.meta_path.insert(0, BlockNumpy())
        from repro.harness.runner import run_one
        from repro.pipeline.params import MachineParams

        result = run_one("chacha20", "SPT{Bwd,ShadowL1}",
                         max_instructions=300)
        assert result.retired > 0, result.retired
        try:
            run_one("chacha20", "SPT{Bwd,ShadowL1}", max_instructions=300,
                    params=MachineParams(backend="vector"))
        except ImportError as exc:
            assert "backend='reference'" in str(exc), exc
        else:
            raise AssertionError("vector backend ran without numpy")
        print("no-numpy-ok")
    """)
    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ,
               PYTHONPATH=os.path.join(repo_root, "src"),
               REPRO_NO_CACHE="1")
    completed = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env=env, cwd=repo_root)
    assert completed.returncode == 0, completed.stderr
    assert "no-numpy-ok" in completed.stdout
