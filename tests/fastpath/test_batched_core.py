"""Adversarial micro-programs for the batched vector core.

The registry workloads exercise the fast path at steady state; these
programs are built to hit the batched sweeps where they are weakest:

* a branch that alternates taken/not-taken every iteration, so squashes
  land *mid fetch-group* and the group's younger half must be recycled
  the same cycle it was renamed;
* a wrong-path overfetch storm — a chase-dependent branch whose
  resolution is delayed behind a missing load while the predicted path
  runs into a long straight-line block, maximising pool/quarantine
  churn per squash;
* the sanitizer-on configuration, where the vector core must *refuse*
  the fast path (flyweights would be invisible to the lockstep checker)
  and still match the reference bit for bit.

Each cell is compared with the same comparator as ``repro backend-diff``
(:func:`repro.fastpath.diff.compare_cell`), so "match" means cycles,
retired-PC stream, architectural registers, stats, the metrics tree and
the attacker-visible trace digests are all identical.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core.attack_model import AttackModel
from repro.fastpath.diff import compare_cell
from repro.harness.configs import make_engine
from repro.harness.runner import build_core
from repro.isa.builder import ProgramBuilder
from repro.pipeline.core import SimulationError
from repro.pipeline.params import MachineParams
from repro.security.observer import channel_digests

BUDGET = 4000
CONFIGS = ("UnsafeBaseline", "SecureBaseline", "STT", "SPT{Bwd,ShadowL1}")


def _run(program, config, backend, *, model=AttackModel.FUTURISTIC,
         budget=BUDGET, check_level="off"):
    """One cell reduced to its comparable outcome, plus the core itself.

    Mirrors :func:`repro.fastpath.diff.run_backend`, but for a locally
    built :class:`Program` instead of a registered workload.
    """
    engine = make_engine(config, model)
    params = MachineParams(backend=backend, check_level=check_level)
    core = build_core(program, engine=engine, params=params,
                      record_retired_pcs=True)
    try:
        sim = core.run(max_instructions=budget)
    except SimulationError as exc:
        return core, {"error": f"{type(exc).__name__}: {exc}"}
    return core, {
        "cycles": sim.cycles,
        "retired": sim.retired,
        "halted": sim.halted,
        "retired_pcs": sim.retired_pcs,
        "arch_regs": sim.arch_regs,
        "stats": sim.stats,
        "metrics": sim.metrics.as_dict(),
        "digests": channel_digests(sim.observer, sim.cycles),
    }


def _assert_identical(program, config, **kwargs):
    _, ref = _run(program, config, "reference", **kwargs)
    vec_core, vec = _run(program, config, "vector", **kwargs)
    mismatches = compare_cell(ref, vec)
    assert not mismatches, (
        f"{program.name}/{config}: {'; '.join(mismatches)}")
    return vec_core


def parity_flip_program():
    """A branch that alternates direction every iteration.

    The two-bit counters in the direction predictor can never settle, so
    roughly every other iteration squashes — and because the taken path
    skips a 10-instruction straight-line run, the squash consistently
    lands in the middle of an 8-wide fetch group, recycling instructions
    that were renamed earlier the *same* cycle.
    """
    b = ProgramBuilder("parity-flip", data_base=0x4000)
    b.li("t0", 0)                     # i
    b.li("t1", 48)                    # trip count
    b.li("a1", 0)                     # accumulator
    top = b.label()
    b.andi("t3", "t0", 1)
    odd = b.forward_label()
    b.bne("t3", "zero", odd)          # taken on odd iterations only
    for k in range(10):               # even path: fills the fetch group
        b.addi("a1", "a1", k + 1)
    b.place(odd)
    b.addi("t0", "t0", 1)
    b.bne("t0", "t1", top)
    b.halt()
    return b.build()


def overfetch_storm_program():
    """Wrong-path fetch storm behind a chase-delayed branch.

    Every iteration loads the next pointer (a dependent chase, so the
    load's value arrives late — later still under SPT, which delays the
    dependent branch until the visibility point) and branches on it.
    While the branch sits unresolved, fetch runs ahead into a
    40-instruction straight-line block on the fall-through path; each
    mispredict therefore squashes dozens of in-flight wrong-path
    instructions at once, stressing same-cycle recycling, the cooldown
    list and the quarantine heap together.
    """
    base = 0x10000
    b = ProgramBuilder("overfetch-storm", data_base=base)
    nodes = 24
    # A shuffled ring of word offsets: node i points at node (i*7+3)%n,
    # closing back on node 0 whose next pointer is 0 (the chase's halt
    # sentinel after every node was visited exactly once: 7 and 24 are
    # coprime, so the walk is a full cycle).
    order = [(i * 7 + 3) % nodes for i in range(nodes)]
    words = [0 if nxt == 0 else nxt * 8 for nxt in order]
    b.alloc_words("ring", words)

    b.li("s0", base)                  # arena base
    b.mov("a0", "s0")                 # current node
    b.li("a1", 0)                     # nodes visited
    top = b.label()
    b.ld("a5", "a0", 0)               # next offset (dependent chase)
    b.addi("a1", "a1", 1)
    done = b.forward_label()
    b.beq("a5", "zero", done)         # resolves only when the load lands
    b.add("a0", "a5", "s0")
    b.jal("zero", top)
    b.place(done)
    # The fall-through block fetch speculates into while the branch is
    # pending: long enough to overflow a fetch group several times over.
    for k in range(40):
        b.addi("a2", "a2", k + 1)
    b.sd("a2", "s0", 0)
    b.halt()
    return b.build()


@pytest.mark.parametrize("config", CONFIGS)
def test_squash_mid_fetch_group(config):
    core = _assert_identical(parity_flip_program(), config)
    assert core._fast, "micro-program unexpectedly fell off the fast path"


@pytest.mark.parametrize("config", CONFIGS)
def test_wrong_path_overfetch_storm(config):
    core = _assert_identical(overfetch_storm_program(), config)
    assert core._fast, "micro-program unexpectedly fell off the fast path"


@pytest.mark.parametrize("model",
                         [AttackModel.SPECTRE, AttackModel.FUTURISTIC])
def test_storm_under_both_attack_models(model):
    _assert_identical(overfetch_storm_program(), "SPT{Bwd,ShadowL1}",
                      model=model)


def test_recycled_window_drains_clean():
    """After an overfetch storm, no stale state survives in the window.

    The engine's window masks and slot map must be empty, and every
    pooled carcass (retired or squashed) must have released its
    fast-path window slot — a leak here would silently corrupt the
    *next* allocation from the pool rather than this run.
    """
    core, _ = _run(overfetch_storm_program(), "SPT{Bwd,ShadowL1}", "vector")
    engine = core.engine
    for mask in (engine._t_src1_m, engine._t_src2_m, engine._t_dst_m,
                 engine._pure_m, engine._inv_mono_m, engine._inv_alu_m):
        assert mask == 0
    assert all(di is None for di in engine._slot_di)
    for carcasses in core._pool.values():
        for di in carcasses:
            assert di.fp_slot == -1
    # Cooldown victims not yet re-pooled are still squashed carcasses.
    for di in core._cool:
        assert di.squashed


def test_sanitizer_forces_materialisation():
    """check_level != off must disable the fast path, not break it.

    The lockstep sanitizer walks real DynInst objects at retirement, so
    the vector core must fall back to full materialisation — and the
    checked run must still be bit-identical to the reference backend at
    the same check level.
    """
    program = overfetch_storm_program()
    core = _assert_identical(program, "SPT{Bwd,ShadowL1}",
                             check_level="commit")
    assert core._fast is False
    assert core.checker is not None


def test_sanitizer_off_enables_fast_path():
    core, _ = _run(parity_flip_program(), "UnsafeBaseline", "vector")
    assert core._fast is True
    assert core.checker is None
