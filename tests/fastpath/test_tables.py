"""The decode tables must be definitionally tied to the reference rules.

Every flag in :mod:`repro.fastpath.tables` is checked against the
predicate it lowers — over *every* opcode in the ISA and, for the
forward/backward rules, over every realizable taint combination — so a
new opcode or a rule change cannot silently diverge between the two
backends.
"""

import pytest

from repro.core.taint_algebra import (PC_INFERABLE_KINDS, PURE_KINDS,
                                      backward_untaints,
                                      forward_untaints_output,
                                      initial_output_taint, leaked_operands)
from repro.fastpath.tables import (DC_JUMP, DC_LOAD, DC_NONE, DC_RS,
                                   DC_STORE, F_BRANCH, F_INV_ALU, F_INV_MONO,
                                   F_JUMP_REG, F_LEAK_SRC1, F_LEAK_SRC2,
                                   F_LOAD, F_PC_INFERABLE, F_PURE,
                                   F_READS_RS2, F_STORE, F_TRANSMITTER,
                                   KC_CONTROL, KC_HALT, KC_SIMPLE,
                                   lower_instruction, lower_program)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import OPCODES, Kind
from repro.workloads.registry import get as get_workload

ALL_INSTS = [Instruction(name, rd=1, rs1=2, rs2=3)
             for name in sorted(OPCODES)]

# Taint states the pipeline can actually produce: ``t_src2`` is only ever
# set for instructions that read a second register source.
def _realizable_taints(inst):
    for src1 in (False, True):
        for src2 in ((False, True) if inst.info.reads_rs2 else (False,)):
            yield src1, src2


@pytest.mark.parametrize("inst", ALL_INSTS, ids=lambda i: i.op)
def test_static_flags_match_predicates(inst):
    info = inst.info
    flags = lower_instruction(inst)
    assert bool(flags & F_PURE) == (info.kind in PURE_KINDS)
    assert bool(flags & F_READS_RS2) == info.reads_rs2
    assert bool(flags & F_LOAD) == (info.kind == Kind.LOAD)
    assert bool(flags & F_STORE) == (info.kind == Kind.STORE)
    assert bool(flags & F_TRANSMITTER) == info.is_transmitter
    assert bool(flags & F_BRANCH) == (info.kind == Kind.BRANCH)
    assert bool(flags & F_JUMP_REG) == (info.kind == Kind.JUMP_REG)
    assert bool(flags & F_PC_INFERABLE) == (info.kind in PC_INFERABLE_KINDS)
    leaked = leaked_operands(inst)
    assert bool(flags & F_LEAK_SRC1) == ("src1" in leaked)
    assert bool(flags & F_LEAK_SRC2) == ("src2" in leaked)
    # The two invertibility classes partition the invertible opcodes.
    assert not (flags & F_INV_MONO and flags & F_INV_ALU)
    assert bool(flags & (F_INV_MONO | F_INV_ALU)) == info.invertible


@pytest.mark.parametrize("inst", ALL_INSTS, ids=lambda i: i.op)
def test_forward_rule_equivalence(inst):
    # The vector engine fires the forward rule when F_PURE is set and no
    # source bit is set; that must equal the reference predicate on every
    # realizable taint state.
    flags = lower_instruction(inst)
    for src1, src2 in _realizable_taints(inst):
        table_fires = bool(flags & F_PURE) and not src1 and not src2
        assert table_fires == forward_untaints_output(inst, src1, src2)


@pytest.mark.parametrize("inst", ALL_INSTS, ids=lambda i: i.op)
def test_backward_rule_equivalence(inst):
    # The vector engine's backward decision, reconstructed from the flag
    # word, must name the same source as the reference function.
    flags = lower_instruction(inst)
    for src1, src2 in _realizable_taints(inst):
        for dst in (False, True):
            if dst or not flags & (F_INV_MONO | F_INV_ALU):
                table_says = None
            elif flags & F_INV_MONO:
                table_says = "src1" if src1 else None
            elif src1 != src2:
                table_says = "src1" if src1 else "src2"
            else:
                table_says = None
            assert table_says == backward_untaints(inst, dst, src1, src2)


@pytest.mark.parametrize("inst", ALL_INSTS, ids=lambda i: i.op)
def test_rename_taint_flags_consistent(inst):
    # Section 6.3/6.5: loads rename tainted, PC-inferable outputs never do.
    flags = lower_instruction(inst)
    if flags & F_LOAD:
        assert initial_output_taint(inst, False, False)
    if flags & F_PC_INFERABLE:
        assert not initial_output_taint(inst, True, True)


def test_program_table_covers_every_pc():
    program = get_workload("mcf").program(1)
    table = lower_program(program)
    insts = list(program)
    assert len(table.flags) == len(insts)
    for pc, inst in enumerate(insts):
        assert table.flags[pc] == lower_instruction(inst)
    if table.flags_v is not None:
        assert table.flags_v.tolist() == table.flags
        assert table.latency_v.tolist() == [i.info.latency for i in insts]
        assert table.mem_size_v.tolist() == [i.info.mem_size for i in insts]


# The frontend/dispatch columns are *defined* by these reference
# predicates; pin each one over every PC of a real program so a new
# opcode kind (or a change to the reference checks they cache) cannot
# silently diverge the batched paths that consume them.

_KINDC = {Kind.HALT: KC_HALT, Kind.BRANCH: KC_CONTROL,
          Kind.JUMP: KC_CONTROL, Kind.JUMP_REG: KC_CONTROL}
_DCLASS = {Kind.LOAD: DC_LOAD, Kind.STORE: DC_STORE, Kind.HALT: DC_NONE,
           Kind.NOP: DC_NONE, Kind.JUMP: DC_JUMP}
_RTIER = {Kind.LOAD: 1, Kind.STORE: 1, Kind.BRANCH: 2, Kind.JUMP_REG: 2}
_ALU_KINDS = (Kind.ALU, Kind.ALU_IMM, Kind.MOVE, Kind.LOAD_IMM)


@pytest.mark.parametrize("workload", ["mcf", "xz", "chacha20"])
def test_frontend_columns_match_reference_predicates(workload):
    program = get_workload(workload).program(1)
    table = lower_program(program)
    insts = list(program)
    for pc, inst in enumerate(insts):
        kind = inst.info.kind
        assert table.kindc[pc] == _KINDC.get(kind, KC_SIMPLE)
        assert table.hasdest[pc] == (inst.dest_reg() is not None)
        assert table.needs_rs[pc] == (kind not in (Kind.HALT, Kind.NOP,
                                                   Kind.JUMP))
        assert table.dclass[pc] == _DCLASS.get(kind, DC_RS)
        assert table.rtier[pc] == _RTIER.get(kind, 0)
        assert table.aluc[pc] == (kind in _ALU_KINDS)
        assert table.insts[pc] is inst
        assert table.infos[pc] is inst.info
    # runlen[pc] counts the consecutive KC_SIMPLE PCs starting at pc.
    for pc in range(len(insts)):
        expected = 0
        probe = pc
        while (probe < len(insts)
               and table.kindc[probe] == KC_SIMPLE):
            expected += 1
            probe += 1
        assert table.runlen[pc] == expected


def test_lower_program_is_memoized_per_program():
    program = get_workload("mcf").program(1)
    assert lower_program(program) is lower_program(program)
