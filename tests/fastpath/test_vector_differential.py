"""Tier-1 differential pinning of the vector backend.

The full Figure 7 grid runs nightly (``repro backend-diff``); this suite
keeps a representative slice in the fast test tier: every protection
family, a memory-bound and a compute-bound workload, both attack models,
with fast-forwarding live (``check_level="off"``) so the quiescent-cycle
batching itself is under differential test.  ``compare_cell`` checks
cycles, the retired-PC stream, architectural state, flat stats, the whole
metrics tree, and the per-channel trace digests.
"""

import pytest

from repro.core.attack_model import AttackModel
from repro.fastpath.diff import compare_cell, run_backend
from repro.harness.configs import make_engine
from repro.harness.runner import build_core
from repro.pipeline.core import SimulationError
from repro.pipeline.params import MachineParams
from repro.workloads.registry import get as get_workload

BUDGET = 1500

CELLS = [
    ("mcf", "UnsafeBaseline", AttackModel.FUTURISTIC),
    ("mcf", "SecureBaseline", AttackModel.FUTURISTIC),
    ("mcf", "STT", AttackModel.SPECTRE),
    ("mcf", "SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC),
    ("mcf", "SPT{Bwd,ShadowL1}", AttackModel.SPECTRE),
    ("mcf", "SPT{Fwd,NoShadowL1}", AttackModel.FUTURISTIC),
    ("mcf", "SPT{Ideal,ShadowMem}", AttackModel.FUTURISTIC),
    ("chacha20", "SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC),
    ("chacha20", "STT", AttackModel.FUTURISTIC),
    ("xalancbmk", "SPT{Bwd,ShadowMem}", AttackModel.SPECTRE),
]


@pytest.mark.parametrize("workload,config,model", CELLS,
                         ids=[f"{w}-{c}-{m.value}" for w, c, m in CELLS])
def test_backends_bit_identical(workload, config, model):
    ref = run_backend(workload, config, model, 1, BUDGET, "reference")
    vec = run_backend(workload, config, model, 1, BUDGET, "vector")
    assert compare_cell(ref, vec) == [], (ref.get("cycles"),
                                          vec.get("cycles"))


def test_wedged_runs_raise_identically():
    # A cycle cap small enough to trip mid-run: the vector backend must
    # raise the same SimulationError at the same point, even though it
    # reaches the cap by jumping rather than stepping.
    def capped(backend):
        program = get_workload("mcf").program(1)
        engine = make_engine("SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC)
        params = MachineParams(backend=backend, max_cycles=400)
        core = build_core(program, engine=engine, params=params)
        with pytest.raises(SimulationError) as info:
            core.run(max_instructions=10_000_000)
        return str(info.value), core.cycle, core.retired_count
    assert capped("reference") == capped("vector")


def test_vector_engine_window_drains_clean():
    # After a completed run every slot must have been freed: leftover mask
    # bits would mean retire/squash bookkeeping diverged from the ROB.
    program = get_workload("chacha20").program(1)
    engine = make_engine("SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC)
    core = build_core(program, engine=engine,
                      params=MachineParams(backend="vector"))
    core.run(max_instructions=2000)
    engine = core.engine
    assert engine._t_src1_m == engine._t_src2_m == engine._t_dst_m == 0
    assert engine._pure_m == engine._inv_mono_m == engine._inv_alu_m == 0
    assert all(di is None for di in engine._slot_di)
