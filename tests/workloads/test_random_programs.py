"""Unit tests for the random program generator."""

from repro.isa.interpreter import run_program
from repro.workloads.random_programs import RandomProgramConfig, random_program


def test_determinism():
    a = random_program(42)
    b = random_program(42)
    assert [str(i) for i in a.instructions] == [str(i) for i in b.instructions]
    assert a.initial_memory == b.initial_memory


def test_different_seeds_differ():
    a = random_program(1)
    b = random_program(2)
    assert [str(i) for i in a.instructions] != [str(i) for i in b.instructions]


def test_every_program_halts():
    for seed in range(30):
        result = run_program(random_program(seed), max_instructions=500_000)
        assert result.halted, f"seed {seed} did not halt"


def test_memory_accesses_stay_in_bounds():
    from repro.workloads.random_programs import _MEM_BASE, _MEM_MASK
    for seed in range(10):
        result = run_program(random_program(seed), max_instructions=500_000)
        for address in result.state.memory:
            assert _MEM_BASE <= address < _MEM_BASE + _MEM_MASK + 16 + 8, \
                hex(address)


def test_config_knobs_shape_the_program():
    loopy = random_program(5, RandomProgramConfig(blocks=20,
                                                  loop_probability=0.9,
                                                  branch_probability=0.0))
    branchy = random_program(5, RandomProgramConfig(blocks=20,
                                                    loop_probability=0.0,
                                                    branch_probability=0.9))
    loop_branches = sum(1 for i in loopy.instructions if i.op == "BNE")
    cond_branches = sum(1 for i in branchy.instructions
                        if i.info.kind.name == "BRANCH")
    assert loop_branches >= 5
    assert cond_branches >= 5
