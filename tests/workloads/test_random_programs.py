"""Unit tests for the random program generator."""

import os
import subprocess
import sys

import repro
from repro.isa.interpreter import run_program
from repro.workloads.random_programs import RandomProgramConfig, random_program


def test_determinism():
    a = random_program(42)
    b = random_program(42)
    assert [str(i) for i in a.instructions] == [str(i) for i in b.instructions]
    assert a.initial_memory == b.initial_memory


def test_determinism_across_processes():
    """Fresh interpreter processes must build byte-identical programs."""
    code = (
        "import hashlib, json;"
        "from repro.workloads.random_programs import random_program;"
        "p = random_program(42);"
        "blob = json.dumps([[str(i) for i in p.instructions],"
        " sorted(p.initial_memory.items())]);"
        "print(hashlib.sha256(blob.encode()).hexdigest())")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    digests = set()
    for hashseed in ("1", "2"):       # different hash randomisation per run
        env["PYTHONHASHSEED"] = hashseed
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        digests.add(out.stdout.strip())
    assert len(digests) == 1, "random_program is process-dependent"


def test_different_seeds_differ():
    a = random_program(1)
    b = random_program(2)
    assert [str(i) for i in a.instructions] != [str(i) for i in b.instructions]


def test_every_program_halts():
    for seed in range(30):
        result = run_program(random_program(seed), max_instructions=500_000)
        assert result.halted, f"seed {seed} did not halt"


def test_memory_accesses_stay_in_allocated_heap():
    from repro.workloads.random_programs import _HEAP_WORDS, _MEM_BASE
    for seed in range(10):
        result = run_program(random_program(seed), max_instructions=500_000)
        for address in result.state.memory:
            assert _MEM_BASE <= address < _MEM_BASE + _HEAP_WORDS * 8, \
                hex(address)


def test_checksum_slot_outside_random_window():
    from repro.workloads.random_programs import (_CHECKSUM_OFFSET,
                                                 _HEAP_WORDS, _MEM_MASK)
    # Random accesses reach byte offsets [0, _MEM_MASK + 16 + 8); the
    # checksum word must sit past them (but inside the allocation) so no
    # random store can clobber it.
    assert _CHECKSUM_OFFSET >= _MEM_MASK + 16 + 8
    assert _CHECKSUM_OFFSET + 8 <= _HEAP_WORDS * 8


def test_config_knobs_shape_the_program():
    loopy = random_program(5, RandomProgramConfig(blocks=20,
                                                  loop_probability=0.9,
                                                  branch_probability=0.0))
    branchy = random_program(5, RandomProgramConfig(blocks=20,
                                                    loop_probability=0.0,
                                                    branch_probability=0.9))
    loop_branches = sum(1 for i in loopy.instructions if i.op == "BNE")
    cond_branches = sum(1 for i in branchy.instructions
                        if i.info.kind.name == "BRANCH")
    assert loop_branches >= 5
    assert cond_branches >= 5
