"""Functional correctness of the constant-time kernels."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.interpreter import run_program
from repro.isa.opcodes import BRANCH_OPS
from repro.workloads.common import MASK32
from repro.workloads.crypto import aes_bitslice, chacha20, djbsort
from repro.workloads.crypto.chacha20 import reference_block
from repro.workloads.crypto.djbsort import batcher_pairs


def test_chacha20_matches_python_reference():
    program = chacha20.build(scale=1)
    result = run_program(program, max_instructions=100_000)
    state_in = [result.state.load(chacha20.SECRET_BASE + i * 8, 8)
                for i in range(16)]
    # The counter word was incremented twice (two blocks); reconstruct the
    # first block's input state.
    first_in = list(state_in)
    first_in[12] = (first_in[12] - 2) & MASK32
    expected = reference_block(first_in, double_rounds=2)
    keystream = [result.state.load(chacha20.OUT_BASE + i * 8, 8)
                 for i in range(16)]
    assert keystream == expected


@given(key=st.lists(st.integers(min_value=0, max_value=MASK32),
                    min_size=8, max_size=8))
@settings(max_examples=10, deadline=None)
def test_chacha20_any_key_matches_reference(key):
    program = chacha20.build(scale=1, key_words=key)
    result = run_program(program, max_instructions=100_000)
    constants = [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574]
    state_in = [result.state.load(chacha20.SECRET_BASE + i * 8, 8)
                for i in range(16)]
    assert state_in[4:12] == [k & MASK32 for k in key]
    first_in = list(state_in)
    first_in[12] = (first_in[12] - 2) & MASK32
    assert first_in[:4] == constants
    keystream = [result.state.load(chacha20.OUT_BASE + i * 8, 8)
                 for i in range(16)]
    assert keystream == reference_block(first_in, double_rounds=2)


def test_batcher_network_sorts_everything():
    pairs = batcher_pairs(16)
    import random
    rng = random.Random(0)
    for _ in range(200):
        values = [rng.randrange(100) for _ in range(16)]
        working = list(values)
        for i, j in pairs:
            if working[i] > working[j]:
                working[i], working[j] = working[j], working[i]
        assert working == sorted(values)


@given(values=st.lists(st.integers(min_value=0, max_value=MASK32),
                       min_size=16, max_size=16))
@settings(max_examples=10, deadline=None)
def test_djbsort_sorts_in_simulation(values):
    program = djbsort.build(scale=1, values=values)
    result = run_program(program, max_instructions=100_000)
    sorted_memory = [result.state.load(djbsort.BASE + i * 8, 8)
                     for i in range(16)]
    assert sorted_memory == sorted(v & MASK32 for v in values)


def test_aes_bitslice_is_a_permutation_of_state_bits():
    # Different keys must give different ciphertexts (sanity of diffusion).
    a = run_program(aes_bitslice.build(scale=1, key_planes=[1] * 8),
                    max_instructions=100_000)
    b = run_program(aes_bitslice.build(scale=1, key_planes=[2] * 8),
                    max_instructions=100_000)
    out_a = [a.state.load(aes_bitslice.OUT_BASE + i * 8, 8) for i in range(8)]
    out_b = [b.state.load(aes_bitslice.OUT_BASE + i * 8, 8) for i in range(8)]
    assert out_a != out_b


def _static_branch_predicates_are_counters(program):
    """No branch in the program reads a register that ever holds secrets.

    Heuristic check used for the CT kernels: the only branches are the loop
    back-edges produced by the builder (counter registers t4/t6/s7...).
    """
    for inst in program.instructions:
        if inst.op in BRANCH_OPS:
            assert inst.rs2 == 0, f"branch on data: {inst}"


def test_ct_kernels_only_branch_on_loop_counters():
    for program in (chacha20.build(), aes_bitslice.build(), djbsort.build()):
        _static_branch_predicates_are_counters(program)


def test_ct_kernels_never_index_by_loaded_data():
    # Static check: every load/store base register is written only by LI,
    # ADDI-from-LI chains — never by a load.  Simple dataflow over the
    # straight-line structure: collect registers ever written by loads and
    # ensure they are never used as address bases.
    for program in (chacha20.build(), aes_bitslice.build(), djbsort.build()):
        load_outputs = {inst.rd for inst in program.instructions
                        if inst.info.kind.name == "LOAD"}
        for inst in program.instructions:
            if inst.info.is_mem:
                assert inst.rs1 not in load_outputs, \
                    f"{program.name}: secret-dependent address {inst}"
