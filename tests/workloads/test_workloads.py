"""Every registered workload must run correctly on every relevant engine."""

import pytest

from repro.core.attack_model import AttackModel
from repro.harness.configs import make_engine
from repro.workloads.registry import (CATEGORY_CT, CATEGORY_SPEC, WORKLOADS,
                                      ct_workloads, get, spec_workloads)

from tests.conftest import assert_matches_interpreter


def test_registry_is_complete():
    assert len(spec_workloads()) >= 15
    assert len(ct_workloads()) == 3
    names = set(WORKLOADS)
    assert {"perlbench", "gcc", "mcf", "omnetpp", "xalancbmk", "x264",
            "deepsjeng", "leela", "exchange2", "xz", "bwaves", "cactuBSSN",
            "namd", "parest", "povray", "fotonik3d", "lbm"} <= names
    assert {"aes-bitslice", "chacha20", "djbsort"} <= names


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        get("nonexistent")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_matches_interpreter_on_unsafe(name):
    program = get(name).program(scale=1)
    sim = assert_matches_interpreter(program, max_instructions=60_000)
    assert sim.retired > 100, "workload too small to be meaningful"


@pytest.mark.parametrize("name", ["mcf", "xz", "chacha20", "djbsort",
                                  "omnetpp"])
@pytest.mark.parametrize("config", ["SPT{Bwd,ShadowL1}", "STT",
                                    "SecureBaseline"])
def test_key_workloads_match_under_protection(name, config):
    program = get(name).program(scale=1)
    engine = make_engine(config, AttackModel.FUTURISTIC)
    assert_matches_interpreter(program, engine=engine,
                               max_instructions=8_000)


def test_scale_parameter_scales_work():
    small = get("mcf").program(scale=1)
    from repro.isa.interpreter import run_program
    r1 = run_program(small, max_instructions=200_000)
    r2 = run_program(get("mcf").program(scale=2), max_instructions=400_000)
    assert r2.retired > 1.5 * r1.retired


def test_categories():
    for workload in spec_workloads():
        assert workload.category == CATEGORY_SPEC
    for workload in ct_workloads():
        assert workload.category == CATEGORY_CT
