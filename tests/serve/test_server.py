"""End-to-end tests: ServeApp + ServerClient over a real socket.

The server runs on the test's event loop; the synchronous client is
driven via ``asyncio.to_thread`` so its blocking HTTP reads never stall
the loop the server needs.
"""

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.harness.parallel import RunSpec, run_many
from repro.serve import scheduler as scheduler_mod
from repro.serve.client import ServerClient, ServerUnavailable
from repro.serve.server import PROTOCOL_VERSION, ServeApp

BUDGET = 300


def make_app(**kwargs) -> ServeApp:
    app = ServeApp(port=0, jobs=kwargs.pop("jobs", 2), **kwargs)
    # Threads keep the tests fast (no pool warm-up) and let
    # monkeypatched executors reach the workers.
    app.scheduler._force_threads = True
    return app


def fingerprint(results):
    return [(r.workload, r.config, r.cycles, r.retired, r.stats,
             r.untaint_by_kind) for r in results]


def grid():
    return [RunSpec(w, c, max_instructions=BUDGET)
            for w in ("mcf", "chacha20")
            for c in ("UnsafeBaseline", "STT")]


def test_sweep_bit_identical_to_run_many_and_spec_ordered():
    specs = grid()
    specs = [specs[0], specs[1], specs[0]]      # duplicates on purpose
    events = []

    async def scenario():
        app = make_app()
        await app.start()
        client = ServerClient(app.url)
        try:
            return await asyncio.to_thread(
                client.sweep, specs, "batch", events.append)
        finally:
            await app.stop()

    served = asyncio.run(scenario())
    local = run_many(specs, jobs=1, use_cache=False)
    assert fingerprint(served) == fingerprint(local)
    # Streaming protocol shape: planned → one result per unique cell → done.
    kinds = [event["event"] for event in events]
    assert kinds[0] == "planned"
    assert kinds[-1] == "done"
    assert kinds.count("result") == 2
    assert events[0]["cells"] == 3 and events[0]["unique"] == 2
    assert events[-1]["ok"] is True


def test_two_concurrent_clients_cold_grid_simulates_each_cell_once(
        monkeypatch):
    """The acceptance check: a cold grid hit by two clients at once runs
    every cell's simulation exactly once."""
    specs = grid()[:2]
    _, template = specs[0], run_many([specs[0]], jobs=1, use_cache=False)[0]
    gate = threading.Event()

    def slow_execute(_spec):
        gate.wait(5.0)      # hold until both sweeps are in flight
        return template

    monkeypatch.setattr(scheduler_mod, "_execute_spec", slow_execute)

    async def scenario():
        app = make_app(jobs=4, use_disk=False)
        await app.start()
        a = ServerClient(app.url, client_id="client-a")
        b = ServerClient(app.url, client_id="client-b")
        try:
            sweeps = asyncio.gather(asyncio.to_thread(a.sweep, specs),
                                    asyncio.to_thread(b.sweep, specs))
            await asyncio.sleep(0.3)    # let both requests reach the store
            gate.set()
            results_a, results_b = await sweeps
            return results_a, results_b, app.counters.snapshot()
        finally:
            gate.set()
            await app.stop()

    results_a, results_b, counters = asyncio.run(scenario())
    assert fingerprint(results_a) == fingerprint(results_b)
    assert counters["scheduler"]["started"] == 2      # one start per cell
    assert counters["store"]["computed"] == 2
    # The second client's cells were answered without new simulations:
    # coalesced onto in-flight futures (or, if timing slips, memory hits).
    shared = (counters["store"].get("coalesced", 0)
              + counters["memory"].get("hits", 0))
    assert shared == 2
    assert counters["server"]["sweeps"] == 2
    assert counters["server"]["cells"] == 4


def test_warm_sweep_is_served_from_memory():
    specs = grid()[:2]

    async def scenario():
        app = make_app()
        await app.start()
        client = ServerClient(app.url)
        try:
            first = await asyncio.to_thread(client.sweep, specs)
            second = await asyncio.to_thread(client.sweep, specs)
            return first, second, app.counters.snapshot()
        finally:
            await app.stop()

    first, second, counters = asyncio.run(scenario())
    assert fingerprint(first) == fingerprint(second)
    assert counters["memory"]["hits"] == 2
    assert counters["store"]["computed"] == 2


def test_health_and_stats_endpoints():
    async def scenario():
        app = make_app()
        await app.start()
        client = ServerClient(app.url)
        try:
            health = await asyncio.to_thread(client.health)
            stats = await asyncio.to_thread(client.stats)
            return health, stats
        finally:
            await app.stop()

    health, stats = asyncio.run(scenario())
    assert health == {"ok": True, "protocol": PROTOCOL_VERSION}
    assert stats["protocol"] == PROTOCOL_VERSION
    assert stats["scheduler"]["queue_depth"] == 0
    assert "counters" in stats


def _raw_request(host, port, method, path, body=b""):
    connection = HTTPConnection(host, port, timeout=5.0)
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def test_result_endpoint_peek_hit_miss_and_validation():
    spec = grid()[0]
    key = spec.key()

    async def scenario():
        app = make_app()
        await app.start()
        client = ServerClient(app.url)
        try:
            miss = await asyncio.to_thread(
                _raw_request, app.host, app.port, "GET", f"/v1/result/{key}")
            malformed = await asyncio.to_thread(
                _raw_request, app.host, app.port, "GET", "/v1/result/NOT-HEX")
            await asyncio.to_thread(client.sweep, [spec])
            hit = await asyncio.to_thread(
                _raw_request, app.host, app.port, "GET", f"/v1/result/{key}")
            return miss, malformed, hit
        finally:
            await app.stop()

    (miss_status, _), (bad_status, _), (hit_status, blob) = \
        asyncio.run(scenario())
    assert miss_status == 404
    assert bad_status == 400
    assert hit_status == 200
    assert blob["workload"] == spec.workload


def test_error_responses():
    async def scenario():
        app = make_app()
        await app.start()
        try:
            bad_body = await asyncio.to_thread(
                _raw_request, app.host, app.port, "POST", "/v1/sweep",
                b"this is not json")
            bad_cells = await asyncio.to_thread(
                _raw_request, app.host, app.port, "POST", "/v1/sweep",
                json.dumps({"cells": [{"workload": "nope"}]}).encode())
            not_found = await asyncio.to_thread(
                _raw_request, app.host, app.port, "GET", "/v1/nothing")
            bad_method = await asyncio.to_thread(
                _raw_request, app.host, app.port, "DELETE", "/healthz")
            return bad_body, bad_cells, not_found, bad_method
        finally:
            await app.stop()

    bad_body, bad_cells, not_found, bad_method = asyncio.run(scenario())
    assert bad_body[0] == 400
    assert bad_cells[0] == 400
    assert not_found[0] == 404
    assert bad_method[0] == 405


def test_cell_failure_streams_error_event_and_raises(monkeypatch):
    def boom(_spec):
        raise RuntimeError("simulated cell failure")

    monkeypatch.setattr(scheduler_mod, "_execute_spec", boom)
    events = []

    async def scenario():
        app = make_app(use_disk=False)
        await app.start()
        client = ServerClient(app.url)
        try:
            with pytest.raises(Exception) as excinfo:
                await asyncio.to_thread(
                    client.sweep, [grid()[0]], "batch", events.append)
            return excinfo.value
        finally:
            await app.stop()

    error = asyncio.run(scenario())
    assert "simulated cell failure" in str(error)
    assert any(event["event"] == "error" for event in events)


def test_stopped_server_refuses_connections():
    async def scenario():
        app = make_app()
        await app.start()
        url = app.url
        await app.stop()
        client = ServerClient(url, retries=0)
        with pytest.raises(ServerUnavailable):
            await asyncio.to_thread(client.health)

    asyncio.run(scenario())
