"""Client policy tests: retry/backoff, truncated streams, local fallback."""

import json
import socket
import threading

import pytest

from repro.harness.parallel import RunFailure, RunSpec, run_many
from repro.serve.client import ServerClient, ServerUnavailable, sweep_or_local

BUDGET = 300


def spec():
    return RunSpec("mcf", "UnsafeBaseline", max_instructions=BUDGET)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class FakeServer(threading.Thread):
    """Accepts sweep POSTs and answers each with a scripted NDJSON body.

    ``bodies`` is one byte-string per expected request; the connection is
    closed right after writing it, so a body without a ``done`` event
    models a server dying mid-sweep.
    """

    def __init__(self, bodies):
        super().__init__(daemon=True)
        self.bodies = list(bodies)
        self.requests = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(5.0)
        self.port = self._sock.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def run(self):
        try:
            while self.bodies:
                conn, _ = self._sock.accept()
                with conn:
                    conn.settimeout(5.0)
                    data = b""
                    while b"\r\n\r\n" not in data:
                        data += conn.recv(65536)
                    head, _, rest = data.partition(b"\r\n\r\n")
                    length = 0
                    for line in head.split(b"\r\n"):
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":")[1])
                    while len(rest) < length:
                        rest += conn.recv(65536)
                    self.requests += 1
                    conn.sendall(b"HTTP/1.1 200 OK\r\n"
                                 b"Content-Type: application/x-ndjson\r\n"
                                 b"Connection: close\r\n\r\n"
                                 + self.bodies.pop(0))
        except OSError:
            pass
        finally:
            self._sock.close()

    def close(self):
        self._sock.close()


def ndjson(*events) -> bytes:
    return b"".join(json.dumps(e).encode() + b"\n" for e in events)


def truncated_body() -> bytes:
    # planned, then the stream dies: no result, no done.
    return ndjson({"event": "planned", "protocol": 1,
                   "cells": 1, "unique": 1})


def test_retry_count_and_backoff(monkeypatch):
    client = ServerClient("http://127.0.0.1:1", retries=2, backoff=0.5)
    attempts = []
    naps = []
    def refuse(*_args):
        attempts.append(1)
        raise OSError("refused")

    monkeypatch.setattr(client, "_sweep_once", refuse)
    import repro.serve.client as client_mod
    monkeypatch.setattr(client_mod.time, "sleep", naps.append)
    with pytest.raises(ServerUnavailable, match="after 3 attempt"):
        client.sweep([spec()])
    assert len(attempts) == 3
    assert naps == [0.5, 1.0]       # exponential backoff between attempts


def test_truncated_stream_is_retried_then_unavailable():
    fake = FakeServer([truncated_body()] * 2)
    fake.start()
    client = ServerClient(fake.url, retries=1, backoff=0.01)
    try:
        with pytest.raises(ServerUnavailable, match="after 2 attempt"):
            client.sweep([spec()])
        assert fake.requests == 2
    finally:
        fake.close()


def test_fallback_when_server_unreachable():
    local = run_many([spec()], jobs=1, use_cache=False)
    results = sweep_or_local([spec()], server=f"http://127.0.0.1:{free_port()}",
                             jobs=1, use_cache=False,
                             client=ServerClient(
                                 f"http://127.0.0.1:{free_port()}",
                                 retries=0, backoff=0.01))
    assert results[0].cycles == local[0].cycles


def test_fallback_when_server_dies_mid_sweep():
    fake = FakeServer([truncated_body()])
    fake.start()
    client = ServerClient(fake.url, retries=0, backoff=0.01)
    local = run_many([spec()], jobs=1, use_cache=False)
    results = sweep_or_local([spec()], jobs=1, use_cache=False, client=client)
    assert results[0].cycles == local[0].cycles
    assert fake.requests == 1
    fake.close()


def test_no_fallback_propagates_unavailable():
    client = ServerClient(f"http://127.0.0.1:{free_port()}",
                          retries=0, backoff=0.01)
    with pytest.raises(ServerUnavailable):
        sweep_or_local([spec()], client=client, fallback=False)


def test_cell_failure_is_not_retried_and_not_fallen_back():
    """A failure *reported by the server* is a real run failure: retrying
    or silently recomputing locally would mask it."""
    body = ndjson(
        {"event": "planned", "protocol": 1, "cells": 1, "unique": 1},
        {"event": "error", "key": "ab", "indexes": [0],
         "error": "RuntimeError: cell exploded"},
        {"event": "done", "ok": False, "stats": {}})
    fake = FakeServer([body])
    fake.start()
    client = ServerClient(fake.url, retries=3, backoff=0.01)
    try:
        with pytest.raises(RunFailure, match="cell exploded"):
            sweep_or_local([spec()], client=client)
        assert fake.requests == 1       # no retry on a cell failure
    finally:
        fake.close()


def test_empty_sweep_never_contacts_server():
    client = ServerClient(f"http://127.0.0.1:{free_port()}", retries=0)
    assert client.sweep([]) == []


def test_rejects_non_http_urls():
    with pytest.raises(ValueError):
        ServerClient("ftp://example.org")
