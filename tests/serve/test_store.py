"""Tests for the tiered store: LRU budget, tier isolation, coalescing."""

import asyncio

import pytest

from repro.harness import cache
from repro.harness.parallel import RunSpec, run_many
from repro.obs.service import ServiceCounters
from repro.serve import scheduler as scheduler_mod
from repro.serve.scheduler import Scheduler
from repro.serve.store import MemoryTier, TieredStore

BUDGET = 300


def small_result():
    spec = RunSpec("mcf", "UnsafeBaseline", max_instructions=BUDGET)
    return spec, run_many([spec], jobs=1, use_cache=False)[0]


# ----------------------------------------------------------------- MemoryTier
def test_memory_tier_lru_eviction_by_bytes():
    tier = MemoryTier(max_bytes=250)
    tier.put("a", "ra", nbytes=100)
    tier.put("b", "rb", nbytes=100)
    assert tier.get("a") == "ra"          # refresh a; b is now LRU
    tier.put("c", "rc", nbytes=100)       # over budget: evict b
    assert tier.get("b") is None
    assert tier.get("a") == "ra"
    assert tier.get("c") == "rc"
    assert tier.used_bytes == 200


def test_memory_tier_oversized_entry_rejected():
    tier = MemoryTier(max_bytes=50)
    tier.put("big", "r", nbytes=100)
    assert tier.get("big") is None
    assert len(tier) == 0


def test_memory_tier_replace_updates_bytes():
    tier = MemoryTier(max_bytes=1000)
    tier.put("k", "v1", nbytes=100)
    tier.put("k", "v2", nbytes=300)
    assert tier.used_bytes == 300
    assert tier.get("k") == "v2"


def test_memory_tier_rejects_negative_budget():
    with pytest.raises(ValueError):
        MemoryTier(max_bytes=-1)


# ---------------------------------------------------------------- TieredStore
def _threaded_scheduler() -> Scheduler:
    sched = Scheduler(jobs=4, counters=ServiceCounters())
    sched._force_threads = True     # keep monkeypatches visible to workers
    return sched


def test_lru_hit_never_consults_disk(monkeypatch):
    """Cache-tier isolation: a memory hit must not touch lower tiers."""
    spec, result = small_result()
    key = spec.key()

    async def scenario():
        sched = _threaded_scheduler()
        await sched.start()
        store = TieredStore(sched, use_disk=True)
        store.memory.put(key, result)

        def explode(_key):
            raise AssertionError("disk tier consulted on a memory hit")

        monkeypatch.setattr(cache, "load", explode)
        got, source = await store.get_or_compute(key, spec)
        await sched.stop()
        return got, source

    got, source = asyncio.run(scenario())
    assert source == "memory"
    assert got is result


def test_disk_hit_promotes_to_memory():
    spec, result = small_result()
    key = spec.key()
    cache.store(key, result)

    async def scenario():
        sched = _threaded_scheduler()
        await sched.start()
        store = TieredStore(sched, use_disk=True)
        _, first = await store.get_or_compute(key, spec)
        _, second = await store.get_or_compute(key, spec)
        await sched.stop()
        return first, second, store

    first, second, store = asyncio.run(scenario())
    assert first == "disk"
    assert second == "memory"
    assert store.counters.get("disk", "hits") == 1
    assert store.counters.get("memory", "hits") == 1


def test_coalescing_one_simulation_n_waiters(monkeypatch):
    """N concurrent requests for one in-flight cell run it exactly once."""
    spec, result = small_result()
    key = spec.key()
    calls = []

    def slow_execute(_spec):
        calls.append(1)
        import time
        time.sleep(0.2)
        return result

    monkeypatch.setattr(scheduler_mod, "_execute_spec", slow_execute)

    async def scenario():
        sched = _threaded_scheduler()
        await sched.start()
        store = TieredStore(sched, use_disk=False)
        outcomes = await asyncio.gather(*[
            store.get_or_compute(key, spec) for _ in range(5)])
        await sched.stop()
        return outcomes, store

    outcomes, store = asyncio.run(scenario())
    assert len(calls) == 1
    sources = sorted(source for _, source in outcomes)
    assert sources == ["coalesced"] * 4 + ["computed"]
    assert all(got.cycles == result.cycles for got, _ in outcomes)
    assert store.counters.get("store", "coalesced") == 4
    assert store.counters.get("store", "computed") == 1
    assert store.counters.get("scheduler", "started") == 1


def test_failed_compute_shared_with_waiters_then_retryable(monkeypatch):
    spec, result = small_result()
    key = spec.key()
    attempts = []

    def flaky_execute(_spec):
        attempts.append(1)
        import time
        time.sleep(0.1)
        if len(attempts) == 1:
            raise RuntimeError("transient boom")
        return result

    monkeypatch.setattr(scheduler_mod, "_execute_spec", flaky_execute)

    async def scenario():
        sched = _threaded_scheduler()
        await sched.start()
        store = TieredStore(sched, use_disk=False)
        failures = await asyncio.gather(
            *[store.get_or_compute(key, spec) for _ in range(3)],
            return_exceptions=True)
        # The in-flight slot must be vacated: a retry can now succeed.
        got, source = await store.get_or_compute(key, spec)
        await sched.stop()
        return failures, got, source

    failures, got, source = asyncio.run(scenario())
    assert all(isinstance(f, RuntimeError) for f in failures)
    assert source == "computed"
    assert got.cycles == result.cycles
    assert len(attempts) == 2


def test_computed_result_lands_in_disk_and_memory():
    spec, _ = small_result()
    key = spec.key()
    cache.clear()

    async def scenario():
        sched = _threaded_scheduler()
        await sched.start()
        store = TieredStore(sched, use_disk=True)
        _, source = await store.get_or_compute(key, spec)
        await sched.stop()
        return source, store

    source, store = asyncio.run(scenario())
    assert source == "computed"
    assert store.memory.get(key) is not None
    assert cache.load(key) is not None      # write-through to disk
