"""Tests for the shared sweep-planning layer (``repro.serve.planner``)."""

import pytest

from repro.core.attack_model import AttackModel
from repro.harness import cache
from repro.harness.parallel import RunSpec, run_many
from repro.serve.planner import plan_sweep

BUDGET = 300


def specs_with_duplicates():
    spec = RunSpec("xz", "STT", max_instructions=BUDGET)
    other = RunSpec("mcf", "UnsafeBaseline", max_instructions=BUDGET)
    return [spec, other, spec, other, spec]


def test_dedup_one_miss_per_distinct_key():
    plan = plan_sweep(specs_with_duplicates(), use_cache=False)
    assert plan.unique_cells == 2
    assert len(plan.miss_specs) == 2
    assert plan.hits == 0


def test_model_independent_configs_share_a_cell():
    """UnsafeBaseline keys identically under both attack models."""
    plan = plan_sweep(
        [RunSpec("xz", "UnsafeBaseline", AttackModel.FUTURISTIC,
                 max_instructions=BUDGET),
         RunSpec("xz", "UnsafeBaseline", AttackModel.SPECTRE,
                 max_instructions=BUDGET)],
        use_cache=False)
    assert plan.unique_cells == 1
    assert len(plan.miss_specs) == 1


def test_results_come_back_in_spec_order():
    specs = specs_with_duplicates()
    plan = plan_sweep(specs, use_cache=False)
    for key, spec in zip(plan.miss_keys, plan.miss_specs):
        plan.record(key, f"result-for-{spec.workload}")
    assert plan.results() == ["result-for-xz", "result-for-mcf",
                              "result-for-xz", "result-for-mcf",
                              "result-for-xz"]


def test_incomplete_plan_raises():
    plan = plan_sweep(specs_with_duplicates(), use_cache=False)
    plan.record(plan.miss_keys[0], "only one")
    with pytest.raises(RuntimeError, match="incomplete"):
        plan.results()


def test_pending_shrinks_as_results_land():
    plan = plan_sweep(specs_with_duplicates(), use_cache=False)
    assert len(plan.pending()) == 2
    plan.record(plan.miss_keys[0], "done")
    assert len(plan.pending()) == 1


def test_cache_prefill_marks_hits():
    spec = RunSpec("mcf", "UnsafeBaseline", max_instructions=BUDGET)
    run_many([spec], jobs=1, use_cache=True)          # populate disk cache
    plan = plan_sweep([spec, spec], use_cache=True)
    assert plan.hits == 2
    assert not plan.miss_specs
    results = plan.results()
    assert results[0].workload == "mcf"
    assert results[0] is results[1]


def test_custom_lookup_overrides_cache(monkeypatch):
    spec = RunSpec("mcf", "UnsafeBaseline", max_instructions=BUDGET)

    def explode(_key):
        raise AssertionError("disk cache must not be consulted")

    monkeypatch.setattr(cache, "load", explode)
    plan = plan_sweep([spec], lookup=lambda key: "injected")
    assert plan.hits == 1
    assert plan.results() == ["injected"]


def test_indexes_for_names_every_duplicate_slot():
    specs = specs_with_duplicates()
    plan = plan_sweep(specs, use_cache=False)
    xz_key = specs[0].key()
    assert plan.indexes_for(xz_key) == [0, 2, 4]
