"""Tests for the fair-share scheduler (``repro.serve.scheduler``)."""

import asyncio
import time

import pytest

from repro.harness.parallel import RunSpec
from repro.obs.service import ServiceCounters
from repro.serve import scheduler as scheduler_mod
from repro.serve.scheduler import (PRIORITY_BATCH, PRIORITY_INTERACTIVE,
                                   RunTimeout, Scheduler)


def make_scheduler(jobs=1, timeout=None) -> Scheduler:
    sched = Scheduler(jobs=jobs, timeout=timeout,
                      counters=ServiceCounters())
    sched._force_threads = True     # monkeypatches must reach the workers
    return sched


def spec(tag: str) -> RunSpec:
    return RunSpec("mcf", "UnsafeBaseline", scale=1,
                   max_instructions=100 + len(tag))


def test_rejects_bad_jobs():
    with pytest.raises(ValueError):
        Scheduler(jobs=0)


def test_runs_and_returns_results(monkeypatch):
    monkeypatch.setattr(scheduler_mod, "_execute_spec",
                        lambda s: f"ran-{s.max_instructions}")

    async def scenario():
        sched = make_scheduler(jobs=2)
        await sched.start()
        results = await asyncio.gather(
            sched.run(spec("a")), sched.run(spec("bb")))
        await sched.stop()
        return results

    assert asyncio.run(scenario()) == ["ran-101", "ran-102"]


def test_failure_propagates_to_caller(monkeypatch):
    def boom(_spec):
        raise ValueError("simulated failure")

    monkeypatch.setattr(scheduler_mod, "_execute_spec", boom)

    async def scenario():
        sched = make_scheduler()
        await sched.start()
        try:
            with pytest.raises(ValueError, match="simulated failure"):
                await sched.run(spec("a"))
        finally:
            await sched.stop()
        assert sched.counters.get("scheduler", "failed") == 1

    asyncio.run(scenario())


def test_priority_bands_drain_interactive_first(monkeypatch):
    import threading
    order = []
    gate = threading.Event()

    def record(s):
        if s.max_instructions == 101:
            gate.wait(5.0)          # hold the worker until all are queued
        order.append(s.max_instructions)
        return s.max_instructions

    monkeypatch.setattr(scheduler_mod, "_execute_spec", record)

    async def scenario():
        sched = make_scheduler(jobs=1)
        await sched.start()
        blocker = asyncio.create_task(sched.run(spec("x")))
        await asyncio.sleep(0.05)   # blocker occupies the only worker
        batch = [asyncio.create_task(
            sched.run(spec("b" * n), priority=PRIORITY_BATCH))
            for n in (2, 3)]
        urgent = asyncio.create_task(
            sched.run(spec("iiii"), priority=PRIORITY_INTERACTIVE))
        await asyncio.sleep(0.05)   # everything enqueued behind the blocker
        gate.set()
        await asyncio.gather(blocker, urgent, *batch)
        await sched.stop()

    asyncio.run(scenario())
    # Batch cells were enqueued first, but the interactive cell (104)
    # still runs ahead of both of them.
    assert order == [101, 104, 102, 103]


def test_fair_share_round_robin_between_clients(monkeypatch):
    import threading
    order = []
    gate = threading.Event()

    def record(s):
        if s.max_instructions == 101:
            gate.wait(5.0)
        order.append(s.max_instructions)
        return s.max_instructions

    monkeypatch.setattr(scheduler_mod, "_execute_spec", record)

    async def scenario():
        sched = make_scheduler(jobs=1)
        await sched.start()
        blocker = asyncio.create_task(sched.run(spec("x"), client="flood"))
        await asyncio.sleep(0.05)
        # Client A floods 3 cells while the worker is held...
        flood = [asyncio.create_task(
            sched.run(spec("a" * n), client="flood")) for n in (2, 3, 4)]
        # ...then client B asks for a single cell.
        nimble = asyncio.create_task(
            sched.run(spec("bbbbb"), client="nimble"))
        await asyncio.sleep(0.05)
        gate.set()
        await asyncio.gather(blocker, nimble, *flood)
        await sched.stop()

    asyncio.run(scenario())
    # Fair share: nimble's cell (105) waits behind at most one flood
    # cell instead of the whole flood.
    position = order.index(105)
    assert position <= 2, f"fair share violated: order={order}"


def test_timeout_raises_and_abandons(monkeypatch):
    release = []

    def hang(_spec):
        deadline = time.time() + 5.0
        while not release and time.time() < deadline:
            time.sleep(0.01)
        return "late"

    monkeypatch.setattr(scheduler_mod, "_execute_spec", hang)

    async def scenario():
        sched = make_scheduler(jobs=1, timeout=0.2)
        await sched.start()
        start = time.perf_counter()
        try:
            with pytest.raises(RunTimeout, match="0.2s timeout"):
                await sched.run(spec("a"))
        finally:
            elapsed = time.perf_counter() - start
            release.append(1)       # let the abandoned thread finish
            await sched.stop()
        assert elapsed < 2.0, "timeout did not fire promptly"
        assert sched.counters.get("scheduler", "timeouts") == 1

    asyncio.run(scenario())


def test_stop_fails_queued_work(monkeypatch):
    def slow(_spec):
        time.sleep(0.3)
        return "slow"

    monkeypatch.setattr(scheduler_mod, "_execute_spec", slow)

    async def scenario():
        sched = make_scheduler(jobs=1)
        await sched.start()
        running = asyncio.create_task(sched.run(spec("a")))
        queued = asyncio.create_task(sched.run(spec("bb")))
        await asyncio.sleep(0.05)
        assert sched.depth() == 1
        await sched.stop()
        with pytest.raises(RuntimeError, match="scheduler stopped"):
            await queued
        running.cancel()
        try:
            await running
        except (asyncio.CancelledError, RuntimeError):
            pass

    asyncio.run(scenario())
