"""Tests for the ``repro sweep`` grid builder."""

import pytest

from repro.serve.cli import _build_sweep_parser, _sweep_grid


def grid_for(argv):
    return _sweep_grid(_build_sweep_parser().parse_args(argv))


def test_grid_shape_and_order():
    specs = grid_for(["--workloads", "mcf,chacha20",
                      "--configs", "UnsafeBaseline,STT",
                      "--models", "futuristic", "--budget", "123"])
    assert [(s.workload, s.config) for s in specs] == [
        ("mcf", "UnsafeBaseline"), ("mcf", "STT"),
        ("chacha20", "UnsafeBaseline"), ("chacha20", "STT")]
    assert all(s.max_instructions == 123 for s in specs)


def test_grid_accepts_brace_config_names():
    specs = grid_for(["--workloads", "mcf",
                      "--configs", "SPT{Bwd,ShadowL1},UnsafeBaseline",
                      "--models", "futuristic", "--budget", "100"])
    assert [s.config for s in specs] == ["SPT{Bwd,ShadowL1}",
                                        "UnsafeBaseline"]


def test_grid_figure7_set():
    specs = grid_for(["--workloads", "mcf", "--models", "futuristic",
                      "--budget", "100"])
    assert len(specs) == 7     # FIGURE7_ORDER


def test_grid_rejects_unknown_names():
    with pytest.raises(SystemExit, match="unknown workload"):
        grid_for(["--workloads", "nosuch", "--budget", "100"])
    with pytest.raises(SystemExit, match="unknown configuration"):
        grid_for(["--configs", "SPT{Bwd", "--budget", "100"])


def test_grid_backend_reaches_params():
    specs = grid_for(["--workloads", "mcf", "--configs", "UnsafeBaseline",
                      "--models", "futuristic", "--budget", "100",
                      "--backend", "vector"])
    assert specs[0].params.backend == "vector"
