"""Unit tests for machine parameters (Table 1)."""

import pytest

from repro.pipeline.params import MachineParams, table1_text


def test_defaults_match_paper_table1():
    params = MachineParams()
    assert params.fetch_width == 8
    assert params.rob_entries == 192
    assert params.lq_entries == 32 and params.sq_entries == 32
    assert params.hierarchy.mshrs == 16
    assert params.untaint_broadcast_width == 3
    h = params.hierarchy
    assert h.l1_params.size_bytes == 32 * 1024 and h.l1_params.ways == 8
    assert h.l2_params.size_bytes == 256 * 1024 and h.l2_params.latency == 20
    assert h.l3_params.size_bytes == 2 * 1024 * 1024
    assert h.l1_params.line_bytes == 64


def test_validate_rejects_bad_configs():
    with pytest.raises(ValueError):
        MachineParams(rob_entries=0).validate()
    with pytest.raises(ValueError):
        MachineParams(num_phys_regs=33).validate()
    with pytest.raises(ValueError):
        MachineParams(untaint_broadcast_width=0).validate()


def test_table1_text_mentions_key_parameters():
    text = table1_text()
    assert "192 ROB" in text
    assert "32 KB" in text
    assert "Untaint broadcast width" in text
    assert "16 MSHRs" in text
