"""Memory-dependence speculation tests (Section 6.7's companion mechanism)."""

import pytest

from repro.isa.assembler import assemble
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams
from repro.workloads.random_programs import RandomProgramConfig, random_program

from tests.conftest import assert_matches_interpreter


MDS = MachineParams(memory_dependence_speculation=True)

# A store whose address resolves late (mul chain) aliasing a younger load:
# with speculation the load issues early with stale data and must be
# squashed and re-executed when the store's address resolves.
VIOLATION_PROGRAM = """
    li s2, 0x4000
    li a0, 111
    sd a0, 0(s2)          # architectural initial value
    li t0, 3
    mul t1, t0, t0
    mul t1, t1, t1
    mul t1, t1, t1
    mul t1, t1, t1
    andi t1, t1, 0
    add t1, t1, s2        # t1 = 0x4000, computed slowly
    li a1, 222
    sd a1, 0(t1)          # store with late-resolving address
    ld a2, 0(s2)          # younger aliasing load
    halt
"""


def test_violation_is_detected_and_corrected():
    sim = assert_matches_interpreter(assemble(VIOLATION_PROGRAM), params=MDS)
    assert sim.reg(12) == 222                      # architecturally correct
    assert sim.stats["mem_order_violations"] >= 1


def test_conservative_mode_has_no_violations():
    sim = assert_matches_interpreter(assemble(VIOLATION_PROGRAM))
    assert sim.reg(12) == 222
    assert sim.stats["mem_order_violations"] == 0


def test_speculation_speeds_up_independent_loads():
    # A late-resolving store address that does NOT alias: with speculation
    # the younger load does not wait for it.
    source = """
        li s2, 0x4000
        li s3, 0x8000
        li a0, 7
        sd a0, 0(s3)
        ld a3, 0(s3)
        li t0, 3
        mul t1, a3, t0
        mul t1, t1, t1
        mul t1, t1, t1
        mul t1, t1, t1
        andi t1, t1, 0xFF8
        add t1, t1, s3
        sd a0, 0(t1)      # slow store, different region
        ld a2, 0(s2)      # independent load
        ld a4, 0(a2)
        halt
    """
    fast = OoOCore(assemble(source), params=MDS).run()
    slow = OoOCore(assemble(source)).run()
    assert fast.cycles <= slow.cycles


@pytest.mark.parametrize("seed", range(10))
def test_differential_with_speculation(seed):
    config = RandomProgramConfig(blocks=14, mem_probability=0.7)
    assert_matches_interpreter(random_program(8000 + seed, config),
                               params=MachineParams(
                                   memory_dependence_speculation=True))


def test_secure_engines_force_conservative_disambiguation():
    from repro.core.attack_model import AttackModel
    from repro.core.spt import SPTEngine
    program = assemble(VIOLATION_PROGRAM)
    engine = SPTEngine(AttackModel.FUTURISTIC)
    sim = OoOCore(program, engine=engine, params=MDS).run()
    # The engine's scope disables the speculative issue path entirely, so a
    # violation squash (an unprotected implicit channel) can never occur.
    assert sim.stats["mem_order_violations"] == 0
    assert sim.reg(12) == 222
