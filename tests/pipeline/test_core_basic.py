"""Behavioural tests for the out-of-order core."""

from repro.isa.assembler import assemble
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams

from tests.conftest import assert_matches_interpreter


def test_dependent_chain():
    sim = assert_matches_interpreter(assemble("""
        li a0, 1
        add a1, a0, a0
        add a2, a1, a1
        add a3, a2, a2
        halt
    """))
    assert sim.reg(13) == 8


def test_independent_ops_overlap():
    # 8 independent adds should take far fewer cycles than 8 dependent ones.
    independent = assemble("\n".join(
        [f"li a{i}, {i}" for i in range(6)]
        + [f"addi a{i}, a{i}, 1" for i in range(6)] + ["halt"]))
    dependent = assemble("li a0, 0\n" + "\n".join(
        ["addi a0, a0, 1"] * 11) + "\nhalt")
    sim_ind = OoOCore(independent).run()
    sim_dep = OoOCore(dependent).run()
    assert sim_ind.retired == sim_dep.retired == 13
    assert sim_ind.cycles < sim_dep.cycles


def test_store_to_load_forwarding_exact_match():
    sim = assert_matches_interpreter(assemble("""
        li a0, 77
        sd a0, 0x100(zero)
        ld a1, 0x100(zero)
        halt
    """))
    assert sim.reg(11) == 77
    assert sim.stats["loads_forwarded"] >= 1


def test_partial_overlap_store_blocks_until_retire():
    sim = assert_matches_interpreter(assemble("""
        li a0, -1
        sd a0, 0x100(zero)
        li a1, 0
        sb a1, 0x104(zero)
        ld a2, 0x100(zero)
        halt
    """))
    assert sim.reg(12) == 0xFFFFFF00FFFFFFFF


def test_loop_with_mispredictions_recovers():
    sim = assert_matches_interpreter(assemble("""
        li t0, 20
        li a0, 0
    loop:
        addi a0, a0, 3
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """))
    assert sim.reg(10) == 60
    assert sim.stats["mispredicts"] >= 1       # at least the loop exit


def test_wrong_path_execution_touches_cache():
    # A mispredicted branch transiently executes a load; the cache access
    # happens even though the load squashes (the Spectre channel).
    program = assemble("""
        li t0, 1
        li t1, 1
        li s2, 0x4000
        mul t2, t0, t1
        mul t2, t2, t1
        mul t2, t2, t1
        mul t2, t2, t1
        beq t2, t1, skip      # taken, but predicted not-taken (cold counter)
        ld a0, 0(s2)
        ld a0, 0(s2)
    skip:
        halt
    """)
    sim = OoOCore(program).run()
    assert sim.halted
    assert sim.stats["mispredicts"] >= 1
    assert 0x4000 in sim.observer.lines_touched()   # transient access visible


def test_jalr_untrained_btb_stalls_then_resolves():
    sim = assert_matches_interpreter(assemble("""
        li t0, target
        jalr zero, t0, 0
        halt
    target:
        li a0, 5
        halt
    """))
    assert sim.reg(10) == 5


def test_call_return_with_ras():
    sim = assert_matches_interpreter(assemble("""
        li a0, 0
        jal ra, fn
        jal ra, fn
        jal ra, fn
        halt
    fn:
        addi a0, a0, 1
        jalr zero, ra, 0
    """))
    assert sim.reg(10) == 3


def test_halt_on_wrong_path_is_not_fatal():
    sim = assert_matches_interpreter(assemble("""
        li t0, 5
        li t1, 5
        mul t2, t0, t1
        mul t2, t2, t2
        bne t0, t1, bad       # not taken, but may mispredict via aliasing
        li a0, 1
        halt
    bad:
        halt
    """))
    assert sim.reg(10) == 1


def test_rob_capacity_limits_inflight():
    params = MachineParams(rob_entries=8, rs_entries=8, num_phys_regs=48,
                           lq_entries=4, sq_entries=4)
    sim = assert_matches_interpreter(
        assemble("li a0, 0\n" + "\n".join(["addi a0, a0, 1"] * 40) + "\nhalt"),
        params=params)
    assert sim.reg(10) == 40


def test_instruction_budget_stops_run():
    program = assemble("loop: addi a0, a0, 1\njal zero, loop\nhalt")
    sim = OoOCore(program).run(max_instructions=50)
    assert not sim.halted
    assert sim.retired >= 50


def test_ipc_reported():
    sim = OoOCore(assemble("li a0, 1\nhalt")).run()
    assert 0 < sim.ipc <= 8
