"""Differential tests: the OoO core must match the golden interpreter.

This is the master correctness property of the whole substrate: protection
engines may change *timing* only, never architectural results.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attack_model import AttackModel
from repro.harness.configs import CONFIGURATIONS, make_engine
from repro.workloads.random_programs import RandomProgramConfig, random_program

from tests.conftest import BOTH_MODELS, assert_matches_interpreter


@pytest.mark.parametrize("seed", range(25))
def test_unsafe_matches_interpreter(seed):
    assert_matches_interpreter(random_program(seed))


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
def test_every_engine_matches_interpreter(seed, config):
    program = random_program(1000 + seed)
    engine = make_engine(config, AttackModel.FUTURISTIC)
    assert_matches_interpreter(program, engine=engine)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("model", BOTH_MODELS)
def test_spt_both_models_match_interpreter(seed, model):
    program = random_program(2000 + seed)
    engine = make_engine("SPT{Bwd,ShadowL1}", model)
    assert_matches_interpreter(program, engine=engine)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       blocks=st.integers(min_value=2, max_value=20))
def test_hypothesis_random_programs_match(seed, blocks):
    config = RandomProgramConfig(blocks=blocks)
    assert_matches_interpreter(random_program(seed, config))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_hypothesis_spt_matches(seed):
    engine = make_engine("SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC)
    assert_matches_interpreter(random_program(seed), engine=engine)


def test_small_machine_matches(small_params):
    for seed in range(5):
        assert_matches_interpreter(random_program(3000 + seed),
                                   params=small_params)


def test_memory_heavy_programs():
    config = RandomProgramConfig(blocks=15, mem_probability=0.8)
    for seed in range(8):
        assert_matches_interpreter(random_program(4000 + seed, config))


def test_branch_heavy_programs():
    config = RandomProgramConfig(blocks=15, branch_probability=0.6,
                                 loop_probability=0.3)
    for seed in range(8):
        assert_matches_interpreter(random_program(5000 + seed, config))
