"""Differential tests: the OoO core must match the golden interpreter.

This is the master correctness property of the whole substrate: protection
engines may change *timing* only, never architectural results.

The checked-sweep tests additionally run under ``check_level="full"``, so
every random program is simultaneously validated by the differential
harness (final state) and by the repro.check lockstep sanitizer (every
cycle).  A failing seed is shrunk over the generator's knobs and the
minimized reproducer is written into ``examples/shrunk/``.
"""

import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attack_model import AttackModel
from repro.harness.configs import CONFIGURATIONS, make_engine
from repro.pipeline.params import MachineParams
from repro.workloads.random_programs import RandomProgramConfig, random_program

from tests.conftest import BOTH_MODELS, assert_matches_interpreter


@pytest.mark.parametrize("seed", range(25))
def test_unsafe_matches_interpreter(seed):
    assert_matches_interpreter(random_program(seed))


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
def test_every_engine_matches_interpreter(seed, config):
    program = random_program(1000 + seed)
    engine = make_engine(config, AttackModel.FUTURISTIC)
    assert_matches_interpreter(program, engine=engine)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("model", BOTH_MODELS)
def test_spt_both_models_match_interpreter(seed, model):
    program = random_program(2000 + seed)
    engine = make_engine("SPT{Bwd,ShadowL1}", model)
    assert_matches_interpreter(program, engine=engine)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       blocks=st.integers(min_value=2, max_value=20))
def test_hypothesis_random_programs_match(seed, blocks):
    config = RandomProgramConfig(blocks=blocks)
    assert_matches_interpreter(random_program(seed, config))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_hypothesis_spt_matches(seed):
    engine = make_engine("SPT{Bwd,ShadowL1}", AttackModel.FUTURISTIC)
    assert_matches_interpreter(random_program(seed), engine=engine)


def test_small_machine_matches(small_params):
    for seed in range(5):
        assert_matches_interpreter(random_program(3000 + seed),
                                   params=small_params)


def test_memory_heavy_programs():
    config = RandomProgramConfig(blocks=15, mem_probability=0.8)
    for seed in range(8):
        assert_matches_interpreter(random_program(4000 + seed, config))


def test_branch_heavy_programs():
    config = RandomProgramConfig(blocks=15, branch_probability=0.6,
                                 loop_probability=0.3)
    for seed in range(8):
        assert_matches_interpreter(random_program(5000 + seed, config))


# ------------------------------------------------------- checked generator sweep
# One representative per protection family; every run is double-checked by
# the lockstep sanitizer.
CHECKED_SWEEP_CONFIGS = ("UnsafeBaseline", "SecureBaseline", "STT",
                         "SPT{Bwd,ShadowL1}")
SHRUNK_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples" / "shrunk"


def _run_checked(seed, config_name, gen_config=None,
                 model=AttackModel.FUTURISTIC):
    program = random_program(seed, gen_config)
    engine = make_engine(config_name, model)
    assert_matches_interpreter(program, engine=engine,
                               params=MachineParams(check_level="full"))


def _render_case(seed, config_name, gen_config, error):
    program = random_program(seed, gen_config)
    lines = [
        "# Shrunk failing seed for the checked generator sweep.",
        f"# seed={seed} config={config_name}",
        f"# blocks={gen_config.blocks} "
        f"loop_p={gen_config.loop_probability} "
        f"branch_p={gen_config.branch_probability} "
        f"call_p={gen_config.call_probability} "
        f"mem_p={gen_config.mem_probability}",
        f"# error: {type(error).__name__}: {error}",
        "#",
    ]
    lines.extend(f"{pc:4d}: {inst}" for pc, inst in enumerate(program))
    return "\n".join(lines) + "\n"


def shrink_failing_seed(seed, config_name, run=_run_checked,
                        out_dir=SHRUNK_DIR):
    """Hypothesis-style shrink over the generator knobs.

    Greedily minimizes ``blocks``, then zeroes each structural probability,
    re-running after every candidate step and keeping only changes that
    still fail.  The minimized reproducer (knobs + instruction listing +
    error) is written under ``out_dir`` and the path returned.
    """
    def fails(gen_config):
        try:
            run(seed, config_name, gen_config)
        except Exception as error:    # noqa: BLE001 - any failure counts
            return error
        return None

    best = RandomProgramConfig()
    error = fails(best)
    if error is None:
        return None
    blocks = best.blocks
    while blocks > 1:
        candidate = RandomProgramConfig(
            blocks=blocks - 1, loop_probability=best.loop_probability,
            branch_probability=best.branch_probability,
            call_probability=best.call_probability,
            mem_probability=best.mem_probability)
        candidate_error = fails(candidate)
        if candidate_error is None:
            break
        best, error, blocks = candidate, candidate_error, blocks - 1
    for knob in ("loop_probability", "call_probability",
                 "branch_probability", "mem_probability"):
        candidate = RandomProgramConfig(
            blocks=best.blocks, loop_probability=best.loop_probability,
            branch_probability=best.branch_probability,
            call_probability=best.call_probability,
            mem_probability=best.mem_probability)
        setattr(candidate, knob, 0.0)
        candidate_error = fails(candidate)
        if candidate_error is not None:
            best, error = candidate, candidate_error
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    safe_config = "".join(c if c.isalnum() else "_" for c in config_name)
    path = out_dir / f"checked_sweep_{safe_config}_seed{seed}.txt"
    path.write_text(_render_case(seed, config_name, best, error))
    return path


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("config", CHECKED_SWEEP_CONFIGS)
def test_checked_generator_sweep(seed, config):
    """N random programs per protection family under check_level=full."""
    try:
        _run_checked(6000 + seed, config)
    except Exception:
        path = shrink_failing_seed(6000 + seed, config)
        pytest.fail(f"seed {6000 + seed} failed under {config} at "
                    f"check_level=full; shrunk reproducer: {path}")


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_hypothesis_checked_spt(seed):
    """Sanitized SPT runs over hypothesis-chosen seeds (shrinking free)."""
    _run_checked(seed, "SPT{Bwd,ShadowL1}")


def test_shrinker_minimizes_and_records(tmp_path):
    """The knob shrinker converges on a small config and writes the case."""
    def fake_run(seed, config_name, gen_config=None, model=None):
        gen_config = gen_config or RandomProgramConfig()
        # An artificial bug that any program with >= 2 blocks triggers.
        if gen_config.blocks >= 2:
            raise AssertionError("seeded failure for the shrinker")

    path = shrink_failing_seed(42, "STT", run=fake_run, out_dir=tmp_path)
    assert path is not None and path.exists()
    text = path.read_text()
    assert "seed=42" in text and "blocks=2" in text
    assert "seeded failure for the shrinker" in text
    # Healthy runs shrink to nothing and record nothing.
    assert shrink_failing_seed(43, "STT", run=lambda *a, **k: None,
                               out_dir=tmp_path) is None
