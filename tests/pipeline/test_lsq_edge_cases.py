"""LSQ edge cases: queue capacity, forwarding widths, ordering."""


from repro.isa.assembler import assemble
from repro.pipeline.params import MachineParams

from tests.conftest import assert_matches_interpreter


def test_sq_capacity_throttles_but_stays_correct():
    params = MachineParams(sq_entries=2, lq_entries=2, rob_entries=32,
                           rs_entries=16, num_phys_regs=80)
    source = "li s2, 0x4000\n"
    for index in range(12):
        source += f"li a0, {index}\nsd a0, {index * 8}(s2)\n"
    for index in range(12):
        source += f"ld a1, {index * 8}(s2)\n"
    source += "halt\n"
    sim = assert_matches_interpreter(assemble(source), params=params)
    assert sim.word(0x4000 + 11 * 8) == 11


def test_forwarding_from_narrow_store_is_conservative():
    # A byte store partially overlapping a word load: the load must wait for
    # the store to drain (no partial forwarding).
    sim = assert_matches_interpreter(assemble("""
        li s2, 0x4000
        li a0, -1
        sd a0, 0(s2)
        li a1, 0xAB
        sb a1, 2(s2)
        ld a2, 0(s2)
        halt
    """))
    assert sim.reg(12) == 0xFFFFFFFFFFAB_FFFF


def test_wide_store_forwards_to_narrow_load():
    sim = assert_matches_interpreter(assemble("""
        li s2, 0x4000
        li a0, 0x1122334455667788
        sd a0, 0(s2)
        lb a1, 0(s2)
        lh a2, 0(s2)
        lw a3, 0(s2)
        halt
    """))
    assert sim.reg(11) == 0x88
    assert sim.reg(12) == 0x7788
    assert sim.reg(13) == 0x55667788


def test_youngest_matching_store_wins():
    sim = assert_matches_interpreter(assemble("""
        li s2, 0x4000
        li a0, 1
        sd a0, 0(s2)
        li a0, 2
        sd a0, 0(s2)
        ld a1, 0(s2)
        halt
    """))
    assert sim.reg(11) == 2


def test_load_does_not_forward_from_younger_store():
    sim = assert_matches_interpreter(assemble("""
        li s2, 0x4000
        li a0, 7
        sd a0, 0(s2)
        ld a1, 0(s2)
        li a0, 9
        sd a0, 0(s2)
        ld a2, 0(s2)
        halt
    """))
    assert sim.reg(11) == 7
    assert sim.reg(12) == 9


def test_unaligned_word_access_roundtrip():
    sim = assert_matches_interpreter(assemble("""
        li s2, 0x4003
        li a0, 0xDEADBEEF
        sw a0, 0(s2)
        lw a1, 0(s2)
        halt
    """))
    assert sim.reg(11) == 0xDEADBEEF


def test_many_outstanding_misses_respect_mshrs():
    params = MachineParams()
    params.hierarchy.mshrs = 2
    source = "li s2, 0x100000\n"
    for index in range(8):
        source += f"ld a0, {index * 4096}(s2)\n"    # 8 distinct cold lines
    source += "halt\n"
    sim = assert_matches_interpreter(assemble(source), params=params)
    assert sim.halted
