"""Tests for the pipeline tracer."""

from repro.core.attack_model import AttackModel
from repro.core.spt import SPTEngine
from repro.isa.assembler import assemble
from repro.pipeline.trace import PipelineTracer, trace_program
from repro.pipeline.core import OoOCore


SIMPLE = """
    li a0, 1
    addi a1, a0, 2
    sd a1, 0x100(zero)
    ld a2, 0x100(zero)
    halt
"""


def test_trace_captures_all_retired_instructions():
    tracer = trace_program(assemble(SIMPLE))
    retired = [e for e in tracer.entries if not e.squashed and e.retire >= 0]
    assert len(retired) == 5


def test_lifecycle_ordering():
    tracer = trace_program(assemble(SIMPLE))
    for entry in tracer.entries:
        if entry.retire >= 0:
            assert entry.fetch <= entry.dispatch <= entry.retire
            if entry.issue >= 0:
                assert entry.dispatch <= entry.issue
            if entry.complete >= 0 and entry.issue >= 0:
                assert entry.issue <= entry.complete <= entry.retire


def test_render_contains_stage_markers():
    tracer = trace_program(assemble(SIMPLE))
    text = tracer.render()
    assert "F" in text and "D" in text and "R" in text
    assert "li x10, 1" in text


def test_squashed_wrong_path_instructions_are_traced():
    source = """
        li t0, 5
        li t1, 0
    loop:
        addi t1, t1, 1
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """
    tracer = trace_program(assemble(source))
    assert tracer.squashed_count() >= 1
    text = tracer.render(count=100)
    assert "X" in text


def test_delayed_transmitters_visible_under_spt():
    source = """
        ld a0, 0x4000(zero)
        ld a1, 0(a0)
        halt
    """
    unprotected = trace_program(assemble(source))
    protected = trace_program(assemble(source),
                              engine=SPTEngine(AttackModel.FUTURISTIC))
    assert len(protected.delayed_transmitters(threshold=3)) >= \
        len(unprotected.delayed_transmitters(threshold=3))


def test_entry_cap():
    tracer = PipelineTracer(OoOCore(assemble(SIMPLE)), max_entries=2)
    tracer.run()
    assert len(tracer.entries) <= 3      # cap is approximate per harvest


def test_render_empty():
    tracer = PipelineTracer(OoOCore(assemble(SIMPLE)))
    assert "no trace entries" in tracer.render()
