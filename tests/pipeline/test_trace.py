"""Tests for the pipeline tracer."""

from repro.core.attack_model import AttackModel
from repro.core.spt import SPTEngine
from repro.isa.assembler import assemble
from repro.pipeline.trace import PipelineTracer, trace_program
from repro.pipeline.core import OoOCore


SIMPLE = """
    li a0, 1
    addi a1, a0, 2
    sd a1, 0x100(zero)
    ld a2, 0x100(zero)
    halt
"""


def test_trace_captures_all_retired_instructions():
    tracer = trace_program(assemble(SIMPLE))
    retired = [e for e in tracer.entries if not e.squashed and e.retire >= 0]
    assert len(retired) == 5


def test_lifecycle_ordering():
    tracer = trace_program(assemble(SIMPLE))
    for entry in tracer.entries:
        if entry.retire >= 0:
            assert entry.fetch <= entry.dispatch <= entry.retire
            if entry.issue >= 0:
                assert entry.dispatch <= entry.issue
            if entry.complete >= 0 and entry.issue >= 0:
                assert entry.issue <= entry.complete <= entry.retire


def test_render_contains_stage_markers():
    tracer = trace_program(assemble(SIMPLE))
    text = tracer.render()
    assert "F" in text and "D" in text and "R" in text
    assert "li x10, 1" in text


def test_squashed_wrong_path_instructions_are_traced():
    source = """
        li t0, 5
        li t1, 0
    loop:
        addi t1, t1, 1
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """
    tracer = trace_program(assemble(source))
    assert tracer.squashed_count() >= 1
    text = tracer.render(count=100)
    assert "X" in text


def test_delayed_transmitters_visible_under_spt():
    source = """
        ld a0, 0x4000(zero)
        ld a1, 0(a0)
        halt
    """
    unprotected = trace_program(assemble(source))
    protected = trace_program(assemble(source),
                              engine=SPTEngine(AttackModel.FUTURISTIC))
    assert len(protected.delayed_transmitters(threshold=3)) >= \
        len(unprotected.delayed_transmitters(threshold=3))


def test_entry_cap():
    tracer = PipelineTracer(OoOCore(assemble(SIMPLE)), max_entries=2)
    tracer.run()
    assert len(tracer.entries) <= 3      # cap is approximate per harvest


def test_render_empty():
    tracer = PipelineTracer(OoOCore(assemble(SIMPLE)))
    assert "no trace entries" in tracer.render()


def test_beyond_window_marker():
    """Events past the rendered window collapse onto a '>' in the last column."""
    tracer = trace_program(assemble(SIMPLE))
    narrow = tracer.render(width=4)
    lanes = [line.split()[-1] for line in narrow.splitlines()[1:]]
    assert any(lane.endswith(">") for lane in lanes)
    # A window wide enough for the whole run renders no overflow marker.
    wide = tracer.render(width=512)
    assert ">" not in wide.split("pipeline", 1)[1]


def test_issue_delay_of_unissued_entry_is_zero():
    entry = PipelineTracer(OoOCore(assemble(SIMPLE))).entries
    assert entry == []
    from repro.pipeline.trace import TraceEntry
    never_issued = TraceEntry(seq=0, pc=0, text="ld", fetch=0, dispatch=1,
                              issue=-1, complete=-1, retire=-1, squashed=False)
    assert never_issued.issue_delay == 0


def test_delayed_transmitters_threshold_monotonic():
    source = """
        ld a0, 0x4000(zero)
        ld a1, 0(a0)
        halt
    """
    tracer = trace_program(assemble(source),
                           engine=SPTEngine(AttackModel.FUTURISTIC))
    loose = tracer.delayed_transmitters(threshold=0)
    tight = tracer.delayed_transmitters(threshold=10_000)
    assert len(loose) >= len(tracer.delayed_transmitters()) >= len(tight)
    assert tight == []
    assert all(not e.squashed for e in loose)


def test_squashed_count_matches_entries():
    source = """
        li t0, 5
        li t1, 0
    loop:
        addi t1, t1, 1
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """
    tracer = trace_program(assemble(source))
    assert tracer.squashed_count() == \
        sum(1 for e in tracer.entries if e.squashed)
    assert tracer.squashed_count() >= 1


def test_render_window_slicing():
    tracer = trace_program(assemble(SIMPLE))
    full = tracer.render()
    window = tracer.render(first=1, count=2)
    assert len(window.splitlines()) == 3      # header + two entries
    assert len(full.splitlines()) > len(window.splitlines())


def test_max_entries_bounds_memory():
    for cap in (1, 3, 100):
        tracer = PipelineTracer(OoOCore(assemble(SIMPLE)), max_entries=cap)
        tracer.run()
        # The cap is checked per harvest, so one batch may overshoot it,
        # but it can never grow past cap + one dispatch-width batch.
        assert len(tracer.entries) <= cap + 4
