"""Regression tests: wrong-path fetch must not corrupt speculative
predictor state (RAS entries, gshare history).

The predictor pushes/pops the return-address stack at *fetch* time, i.e.
speculatively.  Before the checkpoint/restore fix, a squash left those
wrong-path mutations in place: a wrong-path call left a stale return
target on the stack and a wrong-path return consumed a live one, so a
later real return predicted garbage.
"""

from repro.isa.builder import ProgramBuilder
from repro.pipeline.core import OoOCore


def _delay(b: ProgramBuilder, dst: str, mults: int = 8) -> None:
    """dst = 0, ready only after a multiply chain (delays a comparison)."""
    b.li(dst, 0)
    b.li("t4", 1)
    for _ in range(mults):
        b.mul(dst, dst, "t4")


def test_wrong_path_return_does_not_eat_live_ras_entry():
    b = ProgramBuilder("ras-wrong-path-return")
    outer = b.forward_label("outer")
    taken = b.forward_label("taken")
    done = b.forward_label("done")
    b.li("t1", 0)
    b.jal("ra", outer)            # push the live return address R0
    b.jal(0, done)                # R0
    b.place(outer)
    b.mov("s10", "ra")
    _delay(b, "t3")               # beq operand arrives late: wide wrong path
    b.beq("t1", "t3", taken)      # 0 == 0: taken; cold gshare predicts NT
    b.jalr(0, "ra", 0)            # wrong-path return: pops R0 speculatively
    b.place(taken)
    b.mov("ra", "s10")
    b.jalr(0, "ra", 0)            # the real return: must still predict R0
    b.place(done)
    b.halt()

    core = OoOCore(b.build())
    sim = core.run(max_instructions=10_000)
    assert sim.halted
    # Only the trained-cold bounds branch mispredicts.  Before the fix the
    # wrong-path pop emptied the RAS, the real return fell through to an
    # untrained BTB, and a second misprediction showed up here.
    assert sim.stats["mispredicts"] == 1
    assert core.predictor.ras.depth() == 0


def test_wrong_path_calls_leave_no_stale_ras_entries():
    b = ProgramBuilder("ras-wrong-path-call")
    taken = b.forward_label("taken")
    h1 = b.forward_label("h1")
    h2 = b.forward_label("h2")
    b.li("t1", 0)
    _delay(b, "t3")
    b.beq("t1", "t3", taken)      # taken; predicted not-taken when cold
    b.jal("ra", h1)               # wrong-path call #1
    b.place(taken)
    b.halt()
    b.place(h1)
    b.jal("ra", h2)               # wrong-path call #2 (nested)
    b.place(h2)
    b.halt()

    core = OoOCore(b.build())
    sim = core.run(max_instructions=10_000)
    assert sim.halted
    # Both wrong-path pushes must be rolled back by the squash.
    assert core.predictor.ras.depth() == 0
    assert sim.stats["mispredicts"] == 1
    assert sim.stats["squashed_insts"] > 0
