"""Guard the ``__slots__`` declarations on the hot in-flight classes.

These classes are allocated (DynInst, AccessResult) or indexed (RenameUnit)
millions of times per simulation; a dropped ``__slots__`` silently
reintroduces a per-instance ``__dict__`` and costs both memory and speed.
"""

import pytest

from repro.isa.instructions import Instruction
from repro.isa.opcodes import OPCODES, Kind
from repro.memory.hierarchy import AccessResult
from repro.pipeline.dyninst import DynInst
from repro.pipeline.rename import RenameUnit


def make_dyninst() -> DynInst:
    return DynInst(0, 0, Instruction("ADD", rd=1, rs1=2, rs2=3))


def test_dyninst_rejects_arbitrary_attributes():
    di = make_dyninst()
    with pytest.raises(AttributeError):
        di.not_a_real_field = 1
    assert not hasattr(di, "__dict__")


def test_dyninst_kind_predicates_are_precomputed():
    di = make_dyninst()
    assert not di.is_load and not di.is_store and not di.is_transmitter
    load = DynInst(1, 0, Instruction("LD", rd=1, rs1=2))
    assert load.is_load and load.is_transmitter and not load.is_store
    store = DynInst(2, 0, Instruction("SD", rs1=1, rs2=2))
    assert store.is_store and store.is_transmitter and not store.is_load
    branch = DynInst(3, 0, Instruction("BEQ", rs1=1, rs2=2))
    assert branch.is_control and branch.is_predicted_control


@pytest.mark.parametrize("name", sorted(OPCODES))
def test_precomputed_predicates_match_kind_for_every_opcode(name):
    # The hot-path booleans baked into DynInst at construction must agree
    # with the Kind-derived definitions for the whole ISA, so a new opcode
    # cannot ship with stale precomputes (both backends consume these).
    info = OPCODES[name]
    di = DynInst(0, 0, Instruction(name, rd=1, rs1=2, rs2=3))
    assert di.is_load == (info.kind == Kind.LOAD)
    assert di.is_store == (info.kind == Kind.STORE)
    assert di.is_transmitter == info.is_transmitter
    assert di.is_transmitter == (info.kind in (Kind.LOAD, Kind.STORE))
    assert di.is_control == (info.kind in (Kind.BRANCH, Kind.JUMP,
                                           Kind.JUMP_REG))
    assert di.is_predicted_control == (info.kind in (Kind.BRANCH,
                                                     Kind.JUMP_REG))


def test_renameunit_rejects_arbitrary_attributes():
    unit = RenameUnit(64)
    with pytest.raises(AttributeError):
        unit.scratch = object()
    assert not hasattr(unit, "__dict__")


def test_accessresult_rejects_arbitrary_attributes():
    access = AccessResult(2, "L1D", None)
    with pytest.raises(AttributeError):
        access.extra = True
    assert not hasattr(access, "__dict__")
