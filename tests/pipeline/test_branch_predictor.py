"""Unit tests for the composite branch predictor."""

from repro.isa.instructions import Instruction
from repro.pipeline.branch_predictor import (BranchPredictor,
                                             BranchTargetBuffer,
                                             GsharePredictor,
                                             ReturnAddressStack)


def test_gshare_learns_a_bias():
    predictor = GsharePredictor(history_bits=8)
    pc = 0x40
    # The global history register saturates to all-taken after 8 iterations;
    # further training then hits a stable table index.
    for _ in range(12):
        taken, snapshot = predictor.predict(pc)
        predictor.update(pc, snapshot, True)
        predictor.repair_history(snapshot, True)
    taken, _ = predictor.predict(pc)
    assert taken


def test_gshare_initially_predicts_not_taken():
    predictor = GsharePredictor()
    taken, _ = predictor.predict(123)
    assert not taken


def test_gshare_history_repair():
    predictor = GsharePredictor(history_bits=4)
    _, snapshot = predictor.predict(7)
    predictor.repair_history(snapshot, True)
    assert predictor.history == ((snapshot << 1) | 1) & 0xF


def test_btb_stores_and_overwrites():
    btb = BranchTargetBuffer(entries=16)
    assert btb.predict(5) is None
    btb.update(5, 100)
    assert btb.predict(5) == 100
    btb.update(5, 200)
    assert btb.predict(5) == 200


def test_btb_aliasing():
    btb = BranchTargetBuffer(entries=16)
    btb.update(1, 100)
    assert btb.predict(17) == 100     # 17 % 16 == 1: intentional aliasing


def test_ras_lifo_and_bound():
    ras = ReturnAddressStack(entries=2)
    ras.push(10)
    ras.push(20)
    ras.push(30)                      # overflows: drops the oldest
    assert ras.pop() == 30
    assert ras.pop() == 20
    assert ras.pop() is None


def test_composite_branch_prediction_flow():
    predictor = BranchPredictor()
    branch = Instruction("BNE", rs1=1, rs2=2, imm=50)
    taken, target, snapshot = predictor.predict(10, branch)
    assert target in (50, 11)
    predictor.resolve(10, branch, True, 50, snapshot, mispredicted=not taken)
    for _ in range(16):     # saturate history, then saturate the counter
        t, target, snapshot = predictor.predict(10, branch)
        predictor.resolve(10, branch, True, 50, snapshot,
                          mispredicted=(t is not True))
    taken, target, _ = predictor.predict(10, branch)
    assert taken and target == 50


def test_composite_jal_pushes_ras_for_calls():
    predictor = BranchPredictor()
    call = Instruction("JAL", rd=1, imm=99)            # rd = ra: a call
    taken, target, _ = predictor.predict(5, call)
    assert taken and target == 99
    ret = Instruction("JALR", rd=0, rs1=1, imm=0)      # jalr zero, ra: return
    taken, target, _ = predictor.predict(99, ret)
    assert target == 6                                  # return address


def test_composite_jalr_uses_btb():
    predictor = BranchPredictor()
    jump = Instruction("JALR", rd=0, rs1=5, imm=0)
    _, target, _ = predictor.predict(20, jump)
    assert target is None                               # untrained
    predictor.resolve(20, jump, True, 77, 0, mispredicted=True)
    _, target, _ = predictor.predict(20, jump)
    assert target == 77


def test_train_direction_attack_interface():
    predictor = BranchPredictor()
    predictor.train_direction(42, taken=True, repeats=4)
    branch = Instruction("BEQ", rs1=1, rs2=2, imm=9)
    taken, _, _ = predictor.predict(42, branch)
    assert taken


def test_train_btb_attack_interface():
    predictor = BranchPredictor()
    predictor.train_btb(13, 0xBEEF & 0xFFFF)
    jump = Instruction("JALR", rd=0, rs1=6, imm=0)
    _, target, _ = predictor.predict(13, jump)
    assert target == 0xBEEF & 0xFFFF
