"""Unit tests for the composite branch predictor."""

from repro.isa.instructions import Instruction
from repro.pipeline.branch_predictor import (BranchPredictor,
                                             BranchTargetBuffer,
                                             GsharePredictor,
                                             ReturnAddressStack)


def test_gshare_learns_a_bias():
    predictor = GsharePredictor(history_bits=8)
    pc = 0x40
    # The global history register saturates to all-taken after 8 iterations;
    # further training then hits a stable table index.
    for _ in range(12):
        taken, snapshot = predictor.predict(pc)
        predictor.update(pc, snapshot, True)
        predictor.repair_history(snapshot, True)
    taken, _ = predictor.predict(pc)
    assert taken


def test_gshare_initially_predicts_not_taken():
    predictor = GsharePredictor()
    taken, _ = predictor.predict(123)
    assert not taken


def test_gshare_history_repair():
    predictor = GsharePredictor(history_bits=4)
    _, snapshot = predictor.predict(7)
    predictor.repair_history(snapshot, True)
    assert predictor.history == ((snapshot << 1) | 1) & 0xF


def test_btb_stores_and_overwrites():
    btb = BranchTargetBuffer(entries=16)
    assert btb.predict(5) is None
    btb.update(5, 100)
    assert btb.predict(5) == 100
    btb.update(5, 200)
    assert btb.predict(5) == 200


def test_btb_tag_rejects_aliased_lookup():
    btb = BranchTargetBuffer(entries=16)
    btb.update(1, 100)
    assert btb.predict(1) == 100
    assert btb.predict(17) is None    # 17 % 16 == 1, but the tag mismatches


def test_btb_alias_ok_plants_wildcard_entry():
    btb = BranchTargetBuffer(entries=16)
    # The attacker trains from its own, aliased address (33 % 16 == 1) and
    # the victim's branch at PC 1 picks the planted target up.
    btb.update(33, 0x900, alias_ok=True)
    assert btb.predict(1) == 0x900
    assert btb.predict(17) == 0x900
    # A tagged resolution-time update evicts the wildcard entry.
    btb.update(1, 0x700)
    assert btb.predict(1) == 0x700
    assert btb.predict(17) is None


def test_ras_lifo_and_bound():
    ras = ReturnAddressStack(entries=2)
    ras.push(10)
    ras.push(20)
    ras.push(30)                      # overflows: drops the oldest
    assert ras.depth() == 2
    assert ras.pop() == 30
    assert ras.pop() == 20
    assert ras.pop() is None          # underflow is explicit, not an error


def test_ras_snapshot_restore_roundtrip():
    ras = ReturnAddressStack(entries=4)
    ras.push(10)
    ras.push(20)
    state = ras.snapshot()
    ras.pop()
    ras.push(30)
    ras.push(40)
    ras.restore(state)
    assert ras.pop() == 20
    assert ras.pop() == 10
    assert ras.pop() is None


def test_composite_branch_prediction_flow():
    predictor = BranchPredictor()
    branch = Instruction("BNE", rs1=1, rs2=2, imm=50)
    taken, target, snapshot = predictor.predict(10, branch)
    assert target in (50, 11)
    predictor.resolve(10, branch, True, 50, snapshot, mispredicted=not taken)
    for _ in range(16):     # saturate history, then saturate the counter
        t, target, snapshot = predictor.predict(10, branch)
        predictor.resolve(10, branch, True, 50, snapshot,
                          mispredicted=(t is not True))
    taken, target, _ = predictor.predict(10, branch)
    assert taken and target == 50


def test_composite_jal_pushes_ras_for_calls():
    predictor = BranchPredictor()
    call = Instruction("JAL", rd=1, imm=99)            # rd = ra: a call
    taken, target, _ = predictor.predict(5, call)
    assert taken and target == 99
    ret = Instruction("JALR", rd=0, rs1=1, imm=0)      # jalr zero, ra: return
    taken, target, _ = predictor.predict(99, ret)
    assert target == 6                                  # return address


def test_composite_jalr_uses_btb():
    predictor = BranchPredictor()
    jump = Instruction("JALR", rd=0, rs1=5, imm=0)
    _, target, _ = predictor.predict(20, jump)
    assert target is None                               # untrained
    predictor.resolve(20, jump, True, 77, 0, mispredicted=True)
    _, target, _ = predictor.predict(20, jump)
    assert target == 77


def test_train_direction_attack_interface():
    predictor = BranchPredictor()
    predictor.train_direction(42, taken=True, repeats=4)
    branch = Instruction("BEQ", rs1=1, rs2=2, imm=9)
    taken, _, _ = predictor.predict(42, branch)
    assert taken


def test_train_direction_repeats_saturate():
    predictor = BranchPredictor()
    branch = Instruction("BEQ", rs1=1, rs2=2, imm=9)
    # One training nudges the weakly-not-taken counter to weakly-taken;
    # the prediction must already flip, and more repeats keep it stable.
    predictor.train_direction(42, taken=True, repeats=1)
    taken, _, _ = predictor.predict(42, branch)
    assert taken
    predictor.train_direction(42, taken=False, repeats=4)
    taken, _, _ = predictor.predict(42, branch)
    assert not taken


def test_train_btb_attack_interface():
    predictor = BranchPredictor()
    predictor.train_btb(13, 0xBEEF & 0xFFFF)
    jump = Instruction("JALR", rd=0, rs1=6, imm=0)
    _, target, _ = predictor.predict(13, jump)
    assert target == 0xBEEF & 0xFFFF


def test_train_btb_alias_ok_hits_congruent_victim_pc():
    predictor = BranchPredictor(btb_entries=64)
    jump = Instruction("JALR", rd=0, rs1=6, imm=0)
    # Tagged training from an aliased PC must NOT redirect the victim...
    predictor.train_btb(13 + 64, 0x500)
    _, target, _ = predictor.predict(13, jump)
    assert target is None
    # ...but alias_ok training (Spectre-BTB) must.
    predictor.train_btb(13 + 64, 0x500, alias_ok=True)
    _, target, _ = predictor.predict(13, jump)
    assert target == 0x500


def test_speculative_state_snapshot_restores_ras_and_history():
    predictor = BranchPredictor()
    call = Instruction("JAL", rd=1, imm=99)
    branch = Instruction("BNE", rs1=1, rs2=2, imm=50)
    predictor.predict(5, call)                  # RAS: [6]
    state = predictor.speculative_state()
    predictor.predict(10, branch)               # speculative history bit
    predictor.predict(20, call)                 # wrong-path push: RAS [6, 21]
    ret = Instruction("JALR", rd=0, rs1=1, imm=0)
    predictor.predict(99, ret)                  # wrong-path pop
    predictor.restore_speculative_state(state)
    assert predictor.direction.history == state[0]
    _, target, _ = predictor.predict(99, ret)
    assert target == 6                          # the pre-wrong-path entry
