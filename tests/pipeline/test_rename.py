"""Unit tests for the rename unit (RAT / free list / PRF)."""

import pytest

from repro.isa.instructions import Instruction
from repro.pipeline.dyninst import DynInst
from repro.pipeline.rename import OutOfPhysRegs, RenameUnit


def di(op, seq=0, **kwargs) -> DynInst:
    return DynInst(seq, 0, Instruction(op, **kwargs))


def test_initial_identity_mapping():
    unit = RenameUnit(64)
    assert unit.rat[:4] == [0, 1, 2, 3]
    assert unit.arch_value(5) == 0


def test_rename_allocates_and_tracks_old_mapping():
    unit = RenameUnit(64)
    inst = di("ADD", rd=3, rs1=1, rs2=2)
    unit.rename(inst)
    assert inst.prs1 == 1 and inst.prs2 == 2
    assert inst.prd == 32                    # first free physical register
    assert inst.old_prd == 3
    assert unit.rat[3] == 32
    assert not unit.ready[32]


def test_write_result_and_read():
    unit = RenameUnit(64)
    inst = di("LI", rd=4, imm=9)
    unit.rename(inst)
    unit.write_result(inst, 9)
    assert unit.ready[inst.prd]
    assert unit.read(inst.prd) == 9
    assert unit.arch_value(4) == 9


def test_x0_never_renamed():
    unit = RenameUnit(64)
    inst = di("LI", rd=0, imm=5)
    unit.rename(inst)
    assert inst.prd == -1
    assert unit.arch_value(0) == 0


def test_undo_restores_rat_and_frees():
    unit = RenameUnit(64)
    first = di("LI", rd=7, imm=1, seq=0)
    second = di("LI", rd=7, imm=2, seq=1)
    unit.rename(first)
    unit.rename(second)
    free_before = unit.free_count()
    unit.undo(second)
    assert unit.rat[7] == first.prd
    assert unit.free_count() == free_before + 1
    # The freed register is reused first (appendleft).
    third = di("LI", rd=8, imm=3, seq=2)
    unit.rename(third)
    assert third.prd == second.old_prd or third.prd >= 32


def test_undo_youngest_first_restores_chain():
    unit = RenameUnit(64)
    writes = [di("LI", rd=5, imm=i, seq=i) for i in range(3)]
    for inst in writes:
        unit.rename(inst)
    for inst in reversed(writes):
        unit.undo(inst)
    assert unit.rat[5] == 5                   # back to the identity mapping


def test_commit_reclaims_previous_mapping():
    unit = RenameUnit(64)
    first = di("LI", rd=6, imm=1, seq=0)
    second = di("LI", rd=6, imm=2, seq=1)
    unit.rename(first)
    unit.rename(second)
    free_before = unit.free_count()
    unit.commit(first)                        # frees the identity reg 6
    unit.commit(second)                       # frees first.prd
    assert unit.free_count() == free_before + 2


def test_commit_never_frees_phys_zero():
    unit = RenameUnit(64)
    # Write to x1..: old_prd for the first x1 write is phys 1, not 0; x0 is
    # never renamed so phys 0 can never appear as old_prd.  Simulate commit
    # of a write whose old mapping is 0 anyway (defensive).
    inst = di("LI", rd=1, imm=1)
    unit.rename(inst)
    inst.old_prd = 0
    unit.commit(inst)
    assert 0 not in unit.free


def test_out_of_phys_regs():
    unit = RenameUnit(34)                     # only 2 spare registers
    unit.rename(di("LI", rd=1, imm=0, seq=0))
    unit.rename(di("LI", rd=2, imm=0, seq=1))
    with pytest.raises(OutOfPhysRegs):
        unit.rename(di("LI", rd=3, imm=0, seq=2))


def test_operand_ready_for_unrenamed_operand():
    unit = RenameUnit(64)
    assert unit.operand_ready(-1)
    assert unit.operand_ready(0)
