#!/usr/bin/env python3
"""Artifact-compatible helper script (paper Appendix A.4).

Thin wrapper over :mod:`repro.cli`; accepts the same parameters as the
paper's gem5 helper, e.g.::

    python run_spt.py mcf --enable-spt --threat-model futuristic \
        --untaint-method bwd --enable-shadow-l1
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
