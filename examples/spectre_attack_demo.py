"""Penetration-test demo: who leaks what (paper Section 9.1).

Runs the Spectre V1 gadget (leaks speculatively-accessed data) and the
non-speculative-secret gadget (the attack that motivates SPT) against every
configuration, printing the leak matrix.  The punchline is the STT row of the
second attack: STT blocks Spectre V1 but NOT the non-speculative secret.

Run with::

    python examples/spectre_attack_demo.py
"""

from repro.core.attack_model import AttackModel
from repro.security.attacks import nonspec_secret, spectre_v1
from repro.security.pentest import run_attack

CONFIGS = ["UnsafeBaseline", "STT", "SPT{Fwd,NoShadowL1}",
           "SPT{Bwd,ShadowL1}", "SecureBaseline"]


def show(attack_maker, title: str) -> None:
    print(f"\n=== {title} ===")
    attack = attack_maker()
    print(f"secret byte: {attack.secret:#04x}; "
          f"leak line: {attack.leaked_line():#x}")
    header = f"{'configuration':<22}" + "".join(
        f"{m.value:>13}" for m in AttackModel)
    print(header)
    for config in CONFIGS:
        cells = []
        for model in AttackModel:
            leaked, sim = run_attack(attack, config, model)
            cells.append("LEAKED" if leaked else "safe")
        print(f"{config:<22}" + "".join(f"{c:>13}" for c in cells))


def main() -> None:
    show(spectre_v1,
         "Spectre V1: bounds-check bypass (speculatively-accessed data)")
    show(nonspec_secret,
         "Non-speculative secret via mis-trained indirect branch")
    print("\nNote the STT row of the second attack: data that was accessed"
          "\nnon-speculatively is outside STT's protection scope (paper"
          "\nSection 3) - exactly the gap SPT closes.")


if __name__ == "__main__":
    main()
