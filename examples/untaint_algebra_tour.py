"""A tour of the untaint algebra (paper Section 5), at the gate level.

Reproduces the worked examples of Figures 2 and 3 with the standalone
circuit model, then demonstrates the soundness checker: every untainted wire
is provably inferable from declassified values alone.

Run with::

    python examples/untaint_algebra_tour.py
"""

from repro.core.gates import Circuit
from repro.core.inferability import consistent_assignments, soundness_violation


def taint_map(circuit: Circuit) -> str:
    return "  ".join(f"{n}={'T' if w.tainted else 'public'}"
                     for n, w in circuit.wires.items())


def figure2() -> None:
    print("=== Figure 2: backward inference through an AND gate ===")
    c = Circuit()
    c.input("in1", 1, tainted=True)
    c.input("in2", 1, tainted=True)
    c.gate("AND", "in1", "in2", name="out")
    print("before declassification:", taint_map(c))
    newly = c.declassify("out")
    print("declassify(out): out = 1, so in1 = in2 = 1")
    print("after:                  ", taint_map(c))
    print("untainted wires:", newly)
    assert soundness_violation(c) is None


def figure3() -> None:
    print("\n=== Figure 3: composition through OR -> AND ===")
    c = Circuit()
    c.input("x", 0, tainted=True)
    c.input("y", 0, tainted=True)
    c.input("in2", 1, tainted=False)
    c.gate("OR", "x", "y", name="t0")
    c.gate("AND", "t0", "in2", name="out")
    print("before:", taint_map(c))
    c.declassify("out")
    print("declassify(out): out=0 and in2=1 imply t0=0;")
    print("                 t0=0 through the OR implies x=y=0")
    print("after: ", taint_map(c))
    assert not c.tainted("x") and not c.tainted("y")
    assert soundness_violation(c) is None


def attacker_view() -> None:
    print("\n=== What can the attacker actually deduce? ===")
    c = Circuit()
    c.input("a", 1, tainted=True)
    c.input("b", 0, tainted=True)
    c.gate("XOR", "a", "b", name="out")
    print("out = a XOR b, everything secret")
    before = consistent_assignments(c, {})
    print(f"consistent input assignments before any leak: {len(before)}")
    c.declassify("out")
    mid = consistent_assignments(c, {})
    print(f"after declassify(out=1): {len(mid)} -> a,b still ambiguous, "
          f"both stay tainted: {taint_map(c)}")
    c.declassify("b")
    after = consistent_assignments(c, {})
    print(f"after declassify(b=0):   {len(after)} -> a is pinned, algebra "
          f"untaints it: {taint_map(c)}")
    assert not c.tainted("a")


def main() -> None:
    figure2()
    figure3()
    attacker_view()
    print("\nAll untaints verified sound by brute-force inferability check.")


if __name__ == "__main__":
    main()
