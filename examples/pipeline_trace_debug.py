"""Visualising protection delays with the pipeline tracer.

Traces a dependent-load snippet under UnsafeBaseline and under full SPT and
prints the pipeline diagrams side by side: the D->I gap on the second load
is SPT's delayed-execution protection policy waiting for declassification.

Run with::

    python examples/pipeline_trace_debug.py
"""

from repro.core.attack_model import AttackModel
from repro.core.spt import SPTEngine
from repro.isa import assemble
from repro.pipeline import trace_program

SOURCE = """
    ld a0, 0x4000(zero)    # pointer from cold memory: tainted under SPT
    add a1, a0, a0
    ld a2, 0(a0)           # transmitter with a tainted address
    add a3, a2, a1
    sd a3, 0x100(zero)
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="trace-demo")

    print("=== UnsafeBaseline ===")
    unsafe = trace_program(program)
    print(unsafe.render(count=12, width=72))

    print("\n=== SPT {Bwd, ShadowL1}, Futuristic model ===")
    spt = trace_program(program, engine=SPTEngine(AttackModel.FUTURISTIC))
    print(spt.render(count=12, width=72))

    delayed = spt.delayed_transmitters(threshold=3)
    print(f"\ninstructions delayed >3 cycles between dispatch and issue: "
          f"{len(delayed)}")
    for entry in delayed:
        print(f"  seq {entry.seq}: {entry.text} "
              f"(D->I gap {entry.issue_delay} cycles)")


if __name__ == "__main__":
    main()
