"""Constant-time code under SPT: the paper's headline use case.

Shows two things on the ChaCha20 kernel:

1. **Performance** — SecureBaseline (delay every transmitter to the
   visibility point) is several times slower than the insecure machine,
   while SPT runs at almost native speed: constant-time code computes its
   addresses from public values, so SPT's taint tracking never has to delay
   anything.

2. **Security** — the full attacker-visible trace (every cache access with
   its cycle, every predictor update) is bit-identical across two different
   keys, i.e. the key cannot leak — speculatively or otherwise.

Run with::

    python examples/constant_time_protection.py
"""

from repro.core.attack_model import AttackModel
from repro.harness.configs import make_engine
from repro.pipeline import OoOCore
from repro.security.observer import traces_equal
from repro.workloads.crypto import chacha20

CONFIGS = ["UnsafeBaseline", "SecureBaseline", "SPT{Bwd,ShadowL1}", "STT"]


def run(config: str, model: AttackModel, key):
    program = chacha20.build(scale=1, key_words=key)
    core = OoOCore(program, engine=make_engine(config, model))
    return core.run()


def main() -> None:
    model = AttackModel.FUTURISTIC
    key_a = [0x11111111] * 8
    key_b = [0xCAFEBABE] * 8

    print("ChaCha20 keystream kernel, Futuristic attack model\n")
    print(f"{'configuration':<22}{'cycles':>9}{'slowdown':>10}"
          f"{'key-independent trace?':>25}")
    baseline_cycles = None
    for config in CONFIGS:
        sim_a = run(config, model, key_a)
        sim_b = run(config, model, key_b)
        if baseline_cycles is None:
            baseline_cycles = sim_a.cycles
        equal = traces_equal(sim_a.observer, sim_b.observer)
        print(f"{config:<22}{sim_a.cycles:>9}"
              f"{sim_a.cycles / baseline_cycles:>9.2f}x"
              f"{'yes' if equal else 'NO':>25}")

    print("\nSPT keeps the kernel at near-native speed while guaranteeing"
          "\nthat the speculative execution leaks nothing the constant-time"
          "\ndiscipline did not already leak (Definition 1 of the paper).")


if __name__ == "__main__":
    main()
