"""Author a custom kernel with the builder and sweep it across Table 2.

The kernel is a tiny hash-join: build a hash table from one relation in
memory, then probe it with a second relation.  It mixes program-written data
(public under SPT, thanks to the shadow L1) with cold input data (tainted),
so every protection mechanism is visible in the sweep.

Run with::

    python examples/custom_workload_sweep.py
"""

from repro.core.attack_model import AttackModel
from repro.harness.configs import FIGURE7_ORDER, make_engine
from repro.isa import ProgramBuilder
from repro.pipeline import OoOCore


def build_hash_join(rows: int = 32):
    b = ProgramBuilder("hash-join", data_base=0x10000)
    build_keys = b.alloc_words("build_keys", (i * 7 % 64 for i in range(rows)))
    probe_keys = b.alloc_words("probe_keys", (i * 3 % 64 for i in range(rows)))
    table = b.reserve("table", 64 * 8)

    b.li("s2", build_keys)
    b.li("s3", probe_keys)
    b.li("s4", table)
    # Build phase: table[key] = key + 1 (stores of loaded-but-hashed data).
    b.li("a0", 0)
    with b.loop(count=rows, counter="t0"):
        b.add("t1", "a0", "s2")
        b.ld("a1", "t1", 0)             # build key (cold input: tainted)
        b.andi("a2", "a1", 63)
        b.slli("a2", "a2", 3)
        b.add("a2", "a2", "s4")         # slot address depends on input!
        b.addi("a3", "a1", 1)
        b.sd("a3", "a2", 0)
        b.addi("a0", "a0", 8)
    # Probe phase.
    b.li("a0", 0)
    b.li("a5", 0)                       # match accumulator
    with b.loop(count=rows, counter="t0"):
        b.add("t1", "a0", "s3")
        b.ld("a1", "t1", 0)             # probe key
        b.andi("a2", "a1", 63)
        b.slli("a2", "a2", 3)
        b.add("a2", "a2", "s4")
        b.ld("a4", "a2", 0)             # table lookup
        b.add("a5", "a5", "a4")
        b.addi("a0", "a0", 8)
    b.sd("a5", "zero", 0x300)
    b.halt()
    return b.build()


def main() -> None:
    program = build_hash_join()
    unsafe = OoOCore(program).run()
    print(f"hash-join: {unsafe.retired} instructions, "
          f"{unsafe.cycles} cycles on UnsafeBaseline "
          f"(checksum {unsafe.word(0x300)})\n")
    print(f"{'configuration':<24}{'futuristic':>12}{'spectre':>12}")
    for config in FIGURE7_ORDER:
        cells = []
        for model in (AttackModel.FUTURISTIC, AttackModel.SPECTRE):
            sim = OoOCore(program, engine=make_engine(config, model)).run()
            assert sim.word(0x300) == unsafe.word(0x300)
            cells.append(f"{sim.cycles / unsafe.cycles:.2f}x")
        print(f"{config:<24}{cells[0]:>12}{cells[1]:>12}")


if __name__ == "__main__":
    main()
