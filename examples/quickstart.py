"""Quickstart: assemble a program, run it under SPT, inspect the results.

Run with::

    python examples/quickstart.py
"""

from repro.core.attack_model import AttackModel
from repro.core.spt import SPTEngine
from repro.isa import assemble, run_program
from repro.pipeline import OoOCore

SOURCE = """
    # Sum an array of 8 words through a pointer loaded from memory.
    li   s2, 0x1000        # address of the array pointer
    ld   a0, 0(s2)         # the array base (loaded -> tainted under SPT)
    li   a1, 0             # accumulator
    li   t0, 8             # loop count
loop:
    ld   a2, 0(a0)         # data load: address is tainted at first
    add  a1, a1, a2
    addi a0, a0, 8
    addi t0, t0, -1
    bne  t0, zero, loop
    sd   a1, 0x200(zero)   # publish the sum
    halt

    .data ptr 0x1000
    .word ptr 0x2000       # the array lives at 0x2000
    .word 0x2000 10
    .word 0x2008 20
    .word 0x2010 30
    .word 0x2018 40
    .word 0x2020 50
    .word 0x2028 60
    .word 0x2030 70
    .word 0x2038 80
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")

    # 1. Functional semantics: the golden interpreter.
    reference = run_program(program)
    print(f"interpreter: sum = {reference.word(0x200)} "
          f"({reference.retired} instructions)")

    # 2. Timing on the insecure out-of-order core.
    unsafe = OoOCore(program).run()
    print(f"UnsafeBaseline:     {unsafe.cycles:5d} cycles "
          f"(IPC {unsafe.ipc:.2f})")

    # 3. The same program under full SPT protection, both attack models.
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC):
        engine = SPTEngine(model)
        protected = OoOCore(program, engine=engine).run()
        assert protected.word(0x200) == reference.word(0x200)
        slowdown = protected.cycles / unsafe.cycles
        print(f"SPT ({model.value:11s}): {protected.cycles:5d} cycles "
              f"({slowdown:.2f}x), untaint events: {engine.untaint.as_dict()}")


if __name__ == "__main__":
    main()
