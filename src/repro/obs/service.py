"""Service-side counters for ``repro serve``.

The sweep service accounts every cell it resolves to exactly one source
(memory / disk / remote tier hit, coalesced onto an in-flight cell, or
computed) plus scheduler lifecycle events (queued, started, completed,
timed out).  Counters are grouped two levels deep (``tier.event``),
thread-safe (the HTTP loop, the scheduler, and test probes may all
touch them), and snapshot to a JSON-safe nested dict for the server's
``/v1/stats`` endpoint — the same shape :class:`repro.obs.metrics.Metrics`
would flatten to, kept separate because these are live mutable service
counters, not per-run simulation output.
"""

from __future__ import annotations

import threading

__all__ = ["ServiceCounters"]


class ServiceCounters:
    """Thread-safe two-level counter tree: ``group -> event -> count``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._groups: dict = {}

    def incr(self, group: str, event: str, amount: int = 1) -> None:
        with self._lock:
            bucket = self._groups.setdefault(group, {})
            bucket[event] = bucket.get(event, 0) + amount

    def get(self, group: str, event: str) -> int:
        with self._lock:
            return self._groups.get(group, {}).get(event, 0)

    def snapshot(self) -> dict:
        """A JSON-safe deep copy of every counter."""
        with self._lock:
            return {group: dict(events)
                    for group, events in self._groups.items()}

    def reset(self) -> None:
        with self._lock:
            self._groups.clear()
