"""Performance-trajectory snapshots: ``repro bench record`` / ``compare``.

A snapshot (``BENCH_<date>.json``) freezes everything CI needs to detect a
performance regression in one schema-versioned JSON file:

* **Simulator throughput** — wall-clock and retired instructions/second of
  an uncached reference simulation (best of several repetitions, which
  absorbs scheduler noise on shared CI runners).
* **Headline Figure-7 overheads** — the Section 9.2 numbers from a full
  (workload, configuration, model) sweep at the snapshot budget.  These
  are *model outputs*, not timings: the simulation is deterministic
  integer arithmetic, so they must match a committed baseline to within
  float-printing noise, and any drift means the modelled microarchitecture
  changed.
* **Stall-cause breakdown** — the fraction of cycles per
  :class:`~repro.obs.stall.StallCause` for the reference cell (mcf under
  full SPT, FUTURISTIC model): the shape of *where the overhead goes*.
  Recorded under both backends (``stall`` / ``stall_vector``): the two
  must agree exactly, so the snapshot itself witnesses the vector
  backend's bit-identity contract.
* **Per-backend protected throughput** — the same protected cell timed
  under ``backend="reference"`` and ``backend="vector"``, plus the
  resulting ``vector_speedup`` ratio, which ``compare`` can gate with a
  floor (``--min-vector-speedup``).

``compare`` diffs two snapshots under configurable tolerances and returns
non-zero on regression; the CI ``perf-regression`` job gates on it against
``benchmarks/baselines/BENCH_baseline.json``.
"""

from __future__ import annotations

import datetime
import json
import os
import time
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.experiments import figure7
from repro.harness.configs import FIGURE7_ORDER, FULL_SPT
from repro.harness.runner import bench_budget, bench_scale, run_one
from repro.obs.stall import stall_breakdown
from repro.pipeline.params import MachineParams

# v2: per-backend protected throughput cells + vector speedup + a second
# stall shape recorded under the vector backend.
SCHEMA_VERSION = 2

# The reference cell for throughput and the stall-shape snapshot: mcf is
# the paper's canonical memory-bound victim and the workload where SPT's
# overhead mechanisms (delayed loads, broadcast pressure) bite hardest.
THROUGHPUT_WORKLOAD = "mcf"
STALL_WORKLOAD = "mcf"
STALL_CONFIG = FULL_SPT
STALL_MODEL = AttackModel.FUTURISTIC

# The protected cell both backends are timed on: the full SPT design is
# where the vector engine's packed-bitmask rules matter most.
SPEEDUP_WORKLOAD = "mcf"
SPEEDUP_CONFIG = FULL_SPT
SPEEDUP_MODEL = AttackModel.FUTURISTIC
BACKENDS = ("reference", "vector")


def default_snapshot_name(today: Optional[datetime.date] = None) -> str:
    day = today or datetime.date.today()
    return f"BENCH_{day.strftime('%Y%m%d')}.json"


def _throughput_probe(budget: int, scale: int, reps: int) -> dict:
    """Best-of-``reps`` uncached simulation speed (instructions/second)."""
    best = None
    instructions = 0
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        result = run_one(THROUGHPUT_WORKLOAD, "UnsafeBaseline",
                         model=AttackModel.FUTURISTIC, scale=scale,
                         max_instructions=budget)
        elapsed = time.perf_counter() - start
        instructions = result.retired
        if best is None or elapsed < best:
            best = elapsed
    return {
        "workload": THROUGHPUT_WORKLOAD,
        "reps": max(1, reps),
        "instructions": instructions,
        "best_wall_seconds": best,
        "instr_per_sec": instructions / best if best else 0.0,
    }


def _backend_cell(budget: int, scale: int, reps: int, backend: str) -> dict:
    """Best-of-``reps`` protected-cell speed under one backend."""
    params = MachineParams(backend=backend)
    best = None
    instructions = 0
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        result = run_one(SPEEDUP_WORKLOAD, SPEEDUP_CONFIG,
                         model=SPEEDUP_MODEL, scale=scale,
                         max_instructions=budget, params=params)
        elapsed = time.perf_counter() - start
        instructions = result.retired
        if best is None or elapsed < best:
            best = elapsed
    return {
        "backend": backend,
        "reps": max(1, reps),
        "instructions": instructions,
        "best_wall_seconds": best,
        "instr_per_sec": instructions / best if best else 0.0,
    }


def _spt_throughput(budget: int, scale: int, reps: int) -> dict:
    """The same protected cell timed under every backend."""
    cells = {backend: _backend_cell(budget, scale, reps, backend)
             for backend in BACKENDS}
    ref = cells["reference"]["instr_per_sec"]
    vec = cells["vector"]["instr_per_sec"]
    return {
        "workload": SPEEDUP_WORKLOAD,
        "config": SPEEDUP_CONFIG,
        "model": SPEEDUP_MODEL.value,
        "backends": cells,
        "vector_speedup": vec / ref if ref else 0.0,
    }


def backend_canary(budget: Optional[int] = None,
                   scale: Optional[int] = None, reps: int = 3) -> dict:
    """Time the CI bench cell under both backends (the PR-time canary).

    Much cheaper than a full snapshot: one protected cell, best-of-reps
    per backend.  CI fails the run when ``vector_speedup`` drops below
    its floor (1.0 = the vector backend must never be *slower* than the
    reference), catching fast-path regressions long before the nightly
    full bench.
    """
    budget = budget or bench_budget()
    scale = scale or bench_scale()
    canary = _spt_throughput(budget, scale, reps)
    canary["budget"] = budget
    canary["scale"] = scale
    return canary


def render_canary(canary: dict) -> str:
    cells = canary["backends"]
    lines = [
        f"backend canary: {canary['workload']} under {canary['config']} "
        f"({canary['model']}), budget {canary['budget']}, "
        f"best of {cells['reference']['reps']}",
    ]
    for backend in BACKENDS:
        cell = cells[backend]
        lines.append(f"  {backend:<10} {cell['instr_per_sec']:>10,.0f} "
                     f"instr/s  ({cell['best_wall_seconds'] * 1e3:.1f} ms)")
    lines.append(f"  speedup    {canary['vector_speedup']:>9.2f}x")
    return "\n".join(lines)


def profile_speedup_cell(path: str, budget: Optional[int] = None,
                         scale: Optional[int] = None, runs: int = 3,
                         backend: str = "vector", top: int = 25) -> str:
    """cProfile the CI bench cell, dump pstats to ``path``, return a summary.

    CI uploads the dump as the ``profile-artifact`` whenever the
    perf-regression gate goes red, so the profile that explains a
    throughput drop ships with the failing run instead of requiring a
    local reproduction.
    """
    import cProfile
    import io
    import pstats

    budget = budget or bench_budget()
    scale = scale or bench_scale()
    params = MachineParams(backend=backend)
    # One warm-up run keeps import/first-touch costs out of the profile.
    run_one(SPEEDUP_WORKLOAD, SPEEDUP_CONFIG, model=SPEEDUP_MODEL,
            scale=scale, max_instructions=budget, params=params)
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(max(1, runs)):
        run_one(SPEEDUP_WORKLOAD, SPEEDUP_CONFIG, model=SPEEDUP_MODEL,
                scale=scale, max_instructions=budget, params=params)
    profiler.disable()
    profiler.dump_stats(path)
    out = io.StringIO()
    out.write(f"cProfile of {SPEEDUP_WORKLOAD}/{SPEEDUP_CONFIG} "
              f"({SPEEDUP_MODEL.value}), backend={backend}, "
              f"budget={budget}, runs={max(1, runs)}\n")
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def _stall_shape(budget: int, scale: int, backend: str = "reference") -> dict:
    """Per-cause cycle fractions for the reference protection cell."""
    result = run_one(STALL_WORKLOAD, STALL_CONFIG, model=STALL_MODEL,
                     scale=scale, max_instructions=budget,
                     params=MachineParams(backend=backend))
    cycles = stall_breakdown(result.metrics)
    total = max(1, sum(cycles.values()))
    return {
        "workload": STALL_WORKLOAD,
        "config": STALL_CONFIG,
        "model": STALL_MODEL.value,
        "backend": backend,
        "total_cycles": sum(cycles.values()),
        "cycles": cycles,
        "fractions": {cause: count / total for cause, count in cycles.items()},
    }


def record_snapshot(budget: Optional[int] = None,
                    scale: Optional[int] = None,
                    jobs: Optional[int] = None,
                    use_cache: Optional[bool] = None,
                    reps: int = 3,
                    workloads: Optional[list] = None) -> dict:
    """Measure everything and return the snapshot dict (not yet written).

    ``workloads`` restricts the overhead sweep (tests use a small subset);
    snapshots record their workload set and ``compare`` refuses to diff
    snapshots whose sets differ.
    """
    budget = budget or bench_budget()
    scale = scale or bench_scale()
    data = figure7.collect(workloads=workloads, scale=scale, budget=budget,
                           jobs=jobs, use_cache=use_cache)
    return {
        "schema_version": SCHEMA_VERSION,
        "recorded_at": datetime.datetime.now().isoformat(timespec="seconds"),
        "budget": budget,
        "scale": scale,
        "workloads": list(data.workloads),
        "configs": ["UnsafeBaseline"] + list(FIGURE7_ORDER),
        "throughput": _throughput_probe(budget, scale, reps),
        "spt_throughput": _spt_throughput(budget, scale, reps),
        "overheads": figure7.headline(data),
        "stall": _stall_shape(budget, scale),
        "stall_vector": _stall_shape(budget, scale, backend="vector"),
    }


def write_snapshot(snapshot: dict, path: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> dict:
    with open(path) as handle:
        snapshot = json.load(handle)
    version = snapshot.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: snapshot schema {version!r} is not the supported "
            f"schema {SCHEMA_VERSION} (re-record the baseline)")
    return snapshot


def compare_snapshots(baseline: dict, current: dict,
                      throughput_tolerance: float = 0.30,
                      overhead_tolerance: float = 1e-6,
                      stall_tolerance: float = 1e-6,
                      min_vector_speedup: Optional[float] = None) -> list:
    """Diff two snapshots; returns the list of regression descriptions.

    * Throughput is a one-sided check per cell and backend: ``current``
      may be up to ``throughput_tolerance`` (a fraction) slower than
      ``baseline``; being faster never fails.
    * ``min_vector_speedup`` additionally floors the current snapshot's
      vector/reference speedup ratio (an absolute property of ``current``,
      not a diff — the ratio is wall-clock-noise-resistant because both
      backends are timed in the same process on the same machine).
    * Overheads and stall fractions are two-sided (absolute difference):
      the simulation is deterministic, so with the default near-zero
      tolerances any drift flags a modelling change that must be
      acknowledged by re-recording the baseline.  The vector backend's
      stall shape must also match the reference backend's within the
      same tolerance — the snapshot carries its own bit-identity witness.
    """
    failures: list = []
    if baseline.get("budget") != current.get("budget"):
        # A budget mismatch would otherwise surface as a wall of
        # deterministic overhead/stall diffs; name the knob instead.
        failures.append(
            f"incomparable snapshots: baseline was recorded at budget "
            f"{baseline.get('budget')!r} but current at "
            f"{current.get('budget')!r} — record both under the same "
            f"REPRO_BENCH_BUDGET (or pass the same --budget)")
    for field in ("scale", "workloads"):
        if baseline.get(field) != current.get(field):
            failures.append(
                f"incomparable snapshots: {field} differs "
                f"({baseline.get(field)!r} vs {current.get(field)!r})")
    if failures:
        return failures

    base_tp = baseline["throughput"]["instr_per_sec"]
    cur_tp = current["throughput"]["instr_per_sec"]
    floor = base_tp * (1.0 - throughput_tolerance)
    if cur_tp < floor:
        failures.append(
            f"throughput regression: {cur_tp:,.0f} instr/s is below "
            f"{floor:,.0f} (baseline {base_tp:,.0f} "
            f"- {throughput_tolerance:.0%} tolerance)")

    for backend in BACKENDS:
        base_cell = baseline["spt_throughput"]["backends"][backend]
        cur_cell = current["spt_throughput"]["backends"][backend]
        floor = base_cell["instr_per_sec"] * (1.0 - throughput_tolerance)
        if cur_cell["instr_per_sec"] < floor:
            failures.append(
                f"protected throughput regression ({backend} backend): "
                f"{cur_cell['instr_per_sec']:,.0f} instr/s is below "
                f"{floor:,.0f} (baseline "
                f"{base_cell['instr_per_sec']:,.0f} "
                f"- {throughput_tolerance:.0%} tolerance)")
    if min_vector_speedup is not None:
        speedup = current["spt_throughput"]["vector_speedup"]
        if speedup < min_vector_speedup:
            failures.append(
                f"vector speedup below floor: {speedup:.2f}x < "
                f"{min_vector_speedup:.2f}x on "
                f"{current['spt_throughput']['config']}")

    base_frac = baseline["stall"]["fractions"]
    vec_frac = current.get("stall_vector", {}).get("fractions", {})
    for cause in sorted(set(base_frac) | set(vec_frac)):
        old = current["stall"]["fractions"].get(cause, 0.0)
        new = vec_frac.get(cause, 0.0)
        if abs(new - old) > stall_tolerance:
            failures.append(
                f"backend divergence: stall fraction {cause} is {old:.6f} "
                f"under reference but {new:.6f} under vector "
                f"(tolerance {stall_tolerance})")

    base_over = baseline["overheads"]
    cur_over = current["overheads"]
    for key in sorted(set(base_over) | set(cur_over)):
        old = base_over.get(key)
        new = cur_over.get(key)
        if old is None or new is None:
            failures.append(f"overhead {key}: present in only one snapshot")
            continue
        if abs(new - old) > overhead_tolerance:
            failures.append(
                f"overhead shape changed: {key} {old:.6f} -> {new:.6f} "
                f"(tolerance {overhead_tolerance})")

    base_frac = baseline["stall"]["fractions"]
    cur_frac = current["stall"]["fractions"]
    for cause in sorted(set(base_frac) | set(cur_frac)):
        old = base_frac.get(cause, 0.0)
        new = cur_frac.get(cause, 0.0)
        if abs(new - old) > stall_tolerance:
            failures.append(
                f"stall shape changed: {cause} {old:.6f} -> {new:.6f} "
                f"of cycles (tolerance {stall_tolerance})")
    return failures


def render_snapshot(snapshot: dict) -> str:
    """Human-readable one-screen summary of a snapshot."""
    tp = snapshot["throughput"]
    lines = [
        f"bench snapshot (schema {snapshot['schema_version']}, "
        f"recorded {snapshot['recorded_at']})",
        f"  budget {snapshot['budget']} instructions, "
        f"scale {snapshot['scale']}, {len(snapshot['workloads'])} workloads",
        f"  throughput: {tp['instr_per_sec']:,.0f} instr/s "
        f"({tp['workload']}, best of {tp['reps']})",
    ]
    spt = snapshot.get("spt_throughput")
    if spt:
        cells = spt["backends"]
        lines.append(
            f"  protected throughput ({spt['workload']} under "
            f"{spt['config']}, {spt['model']}):")
        for backend in BACKENDS:
            cell = cells[backend]
            lines.append(f"    {backend:10s} "
                         f"{cell['instr_per_sec']:>10,.0f} instr/s")
        lines.append(f"    speedup    {spt['vector_speedup']:>9.2f}x")
    lines.append("  overheads:")
    for key, value in sorted(snapshot["overheads"].items()):
        lines.append(f"    {key:38s} = {value:8.4f}")
    stall = snapshot["stall"]
    lines.append(f"  stall breakdown ({stall['workload']} under "
                 f"{stall['config']}, {stall['model']}):")
    for cause, fraction in sorted(stall["fractions"].items(),
                                  key=lambda item: -item[1]):
        if fraction > 0:
            lines.append(f"    {cause:28s} {fraction:7.2%}")
    return "\n".join(lines)
