"""Stall-cause cycle accounting (the paper's Figures 7-9, explained).

Every core cycle is attributed to exactly one cause, so the per-cause
cycle counts always sum to ``sim.cycles`` — the identity the test suite
asserts on every cell of a Figure-7 sweep.  The taxonomy mirrors where
SPT's overhead goes in the paper's evaluation:

=========================== ==================================================
``retiring``                at least one instruction retired this cycle, or
                            the oldest in-flight instruction was executing
                            normally (useful work in flight)
``fetch-starved``           empty window, frontend not supplying instructions
``rob-full``                dispatch blocked on ROB (or physical-register)
                            occupancy while the window head was healthy
``rs-full``                 dispatch blocked on reservation-station occupancy
``lsq-full``                dispatch blocked on LQ/SQ occupancy
``memory-miss``             the critical (oldest blocking) instruction was a
                            load in memory flight or blocked on
                            disambiguation / MSHRs
``squash-recovery``         empty window inside the redirect + refill shadow
                            of a squash
``engine-delayed-transmitter``  the critical instruction was a transmitter
                            the protection engine refused to issue
``engine-delayed-resolution``   the critical instruction was a resolved
                            branch the engine refused to apply
``untaint-broadcast-wait``  the critical instruction waited on an operand
                            whose untaint sat in SPT's broadcast queue
=========================== ==================================================

Attribution is commit-centric: a non-retiring cycle is blamed on the
oldest in-flight instruction, following its blocking operand through the
producer chain (bounded) until a terminal cause is found; cycles with a
healthy head fall back to the recorded dispatch backpressure cause, then
to ``retiring`` (execution latency in flight).  See DESIGN.md for the
mapping onto the paper's Figure 8 untaint-event breakdown.
"""

from __future__ import annotations

import enum
from typing import Optional


class StallCause(enum.IntEnum):
    """Exclusive per-cycle attribution buckets (list-index friendly)."""

    RETIRING = 0
    FETCH_STARVED = 1
    ROB_FULL = 2
    RS_FULL = 3
    LSQ_FULL = 4
    MEMORY_MISS = 5
    SQUASH_RECOVERY = 6
    DELAYED_TRANSMITTER = 7
    DELAYED_RESOLUTION = 8
    UNTAINT_BROADCAST_WAIT = 9

    @property
    def key(self) -> str:
        return _KEYS[self]


_KEYS = [
    "retiring", "fetch-starved", "rob-full", "rs-full", "lsq-full",
    "memory-miss", "squash-recovery", "engine-delayed-transmitter",
    "engine-delayed-resolution", "untaint-broadcast-wait",
]

STALL_CAUSES = list(StallCause)
NUM_CAUSES = len(STALL_CAUSES)

# Bound on the producer-chain walk; dependence chains through the blocking
# operand are short in practice (they terminate at a load, a delayed
# transmitter, or an executing instruction within a few hops).
_MAX_CHAIN = 16


def attribute_cycle(core) -> StallCause:
    """Attribute one non-retiring cycle of ``core`` to a stall cause.

    Called by the core at the end of every :meth:`~OoOCore.step` that
    retired nothing (retiring cycles are counted inline — the common,
    cheap case).
    """
    rob = core.rob
    head = core.rob_head
    if head >= len(rob):
        # Empty window: either the squash shadow or a starved frontend.
        recovery = core.params.redirect_penalty + core.params.frontend_delay
        if core.cycle <= core.last_squash_cycle + recovery:
            return StallCause.SQUASH_RECOVERY
        return StallCause.FETCH_STARVED
    cause = _classify_chain(core, rob[head])
    if cause is not None:
        return cause
    if core.dispatch_block >= 0:
        return StallCause(core.dispatch_block)
    # Healthy head in normal execution flight: useful work, no stall.
    return StallCause.RETIRING


def _classify_chain(core, di) -> Optional[StallCause]:
    """Follow the blocking-operand chain from ``di`` to a terminal cause."""
    engine = core.engine
    ready = core.rename.ready
    for _ in range(_MAX_CHAIN):
        if (di.is_predicted_control and di.complete
                and not di.resolution_applied):
            if di.resolution_delayed:
                # More specific than "the engine said no": the predicate's
                # untaint is already decided and sits in the broadcast
                # queue, so the width limit is what the cycle waits on.
                if _waits_on_broadcast(engine, di):
                    return StallCause.UNTAINT_BROADCAST_WAIT
                return StallCause.DELAYED_RESOLUTION
            return None     # one-resolution-per-cycle contention
        if not di.issued:
            blocked = -1
            prs1 = di.prs1
            if prs1 >= 0 and not ready[prs1]:
                blocked = prs1
            elif not di.is_store:
                prs2 = di.prs2
                if prs2 >= 0 and not ready[prs2]:
                    blocked = prs2
            if blocked < 0:
                # Operands ready but unissued: the engine held it back, or
                # plain issue-width contention (no stall cause).
                if di.engine_delayed:
                    if _waits_on_broadcast(engine, di):
                        return StallCause.UNTAINT_BROADCAST_WAIT
                    return StallCause.DELAYED_TRANSMITTER
                return None
            if engine.untaint_pending(blocked):
                return StallCause.UNTAINT_BROADCAST_WAIT
            producer = _producer_of(core, blocked, di.seq)
            if producer is None:
                return None
            di = producer
            continue
        if di.is_load:
            if not di.mem_complete:
                # Address computed (or computing) but the data has not
                # arrived: cache/DRAM latency, MSHR stalls, or conservative
                # disambiguation against older stores.
                return StallCause.MEMORY_MISS
            return None
        if di.is_store and not di.complete:
            prs2 = di.prs2
            if prs2 >= 0 and not ready[prs2]:
                if engine.untaint_pending(prs2):
                    return StallCause.UNTAINT_BROADCAST_WAIT
                producer = _producer_of(core, prs2, di.seq)
                if producer is None:
                    return None
                di = producer
                continue
            return None
        return None          # ALU/branch execution latency in flight
    return None


def _waits_on_broadcast(engine, di) -> bool:
    """Is an engine-delayed instruction really waiting on the untaint
    broadcast queue?  True when the untaint of one of its source
    registers is already decided but stuck behind the broadcast width."""
    return ((di.prs1 >= 0 and engine.untaint_pending(di.prs1))
            or (di.prs2 >= 0 and engine.untaint_pending(di.prs2)))


def _producer_of(core, preg: int, younger_than: int):
    """The in-flight instruction producing ``preg`` (older than a seq)."""
    for di in core.rob[core.rob_head:]:
        if di.seq >= younger_than:
            break
        if di.prd == preg and not di.squashed:
            return di
    return None


def stall_breakdown(metrics) -> dict:
    """Per-cause cycle counts from a metrics tree or its ``as_dict`` form.

    Accepts either a :class:`~repro.obs.metrics.Metrics` instance or the
    nested dict stored on :class:`~repro.harness.runner.RunResult`;
    returns ``{cause-key: cycles}`` over all ten causes.
    """
    if isinstance(metrics, dict):
        scalars = (metrics.get("groups", {}).get("stalls", {})
                   .get("scalars", {}))
    else:
        group = metrics.group("stalls")
        scalars = group.scalars if group is not None else {}
    return {cause.key: int(scalars.get(cause.key, 0))
            for cause in STALL_CAUSES}
