"""Observability layer: hierarchical metrics, stall-cause cycle accounting,
and the performance-trajectory snapshot tooling.

The subsystem replaces the flat per-run ``stats`` dicts that used to be
scattered across the pipeline and the protection engines:

* :mod:`repro.obs.metrics` — the hierarchical :class:`Metrics` tree every
  simulation emits (scalars, histograms, nested groups; JSON round-trip;
  gem5-``stats.txt``-style rendering).
* :mod:`repro.obs.stall` — the stall-cause taxonomy: every core cycle is
  attributed to exactly one cause, with an enforced sum-to-total identity.
* :mod:`repro.obs.bench` — ``repro bench record`` / ``repro bench compare``:
  schema-versioned ``BENCH_<date>.json`` performance snapshots and the
  tolerance-gated diff CI uses to catch perf regressions.
* :mod:`repro.obs.cli` — the ``repro stats`` and ``repro bench``
  subcommands.
"""

from repro.obs.metrics import Metrics
from repro.obs.stall import (STALL_CAUSES, StallCause, attribute_cycle,
                             stall_breakdown)

__all__ = ["Metrics", "StallCause", "STALL_CAUSES", "attribute_cycle",
           "stall_breakdown"]
