"""Hierarchical simulation metrics.

A :class:`Metrics` node holds scalar counters, integer-bucketed
distributions, and named child groups, forming a tree such as::

    sim.cycles                 3846
    stalls.retiring            2101
    stalls.memory-miss          904
    engine.untaint.forward      312
    engine.broadcast.width::2    57

The tree is the single source of truth for everything a run measures.  It
serialises to a nested JSON-safe dict (:meth:`as_dict` /
:meth:`from_dict`) so results parallelise across processes and memoise in
the on-disk result cache, flattens to dotted keys for programmatic access
(:meth:`flatten`), and renders gem5-``stats.txt``-style text
(:meth:`render`) for the ``repro stats`` subcommand.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

Number = Union[int, float]


class Metrics:
    """One node of the metrics hierarchy."""

    __slots__ = ("name", "scalars", "dists", "groups")

    def __init__(self, name: str = "metrics"):
        self.name = name
        self.scalars: dict[str, Number] = {}
        self.dists: dict[str, dict[int, int]] = {}
        self.groups: dict[str, "Metrics"] = {}

    # ------------------------------------------------------------- building
    def child(self, name: str) -> "Metrics":
        """Return the named child group, creating it on first use."""
        node = self.groups.get(name)
        if node is None:
            node = Metrics(name)
            self.groups[name] = node
        return node

    def set(self, name: str, value: Number) -> None:
        self.scalars[name] = value

    def add(self, name: str, amount: Number = 1) -> None:
        self.scalars[name] = self.scalars.get(name, 0) + amount

    def get(self, name: str, default: Number = 0) -> Number:
        return self.scalars.get(name, default)

    def add_dist(self, name: str, bucket: int, amount: int = 1) -> None:
        """Add ``amount`` to an integer bucket of a named distribution."""
        dist = self.dists.get(name)
        if dist is None:
            dist = {}
            self.dists[name] = dist
        dist[bucket] = dist.get(bucket, 0) + amount

    def set_dist(self, name: str, histogram: dict) -> None:
        self.dists[name] = {int(k): int(v) for k, v in histogram.items()}

    # ------------------------------------------------------------ traversal
    def flatten(self, prefix: str = "") -> dict:
        """Dotted-key view of every scalar (and dist bucket as ``k::b``)."""
        out: dict = {}
        for key, value in self.scalars.items():
            out[prefix + key] = value
        for key, dist in self.dists.items():
            for bucket, count in sorted(dist.items()):
                out[f"{prefix}{key}::{bucket}"] = count
        for name, group in self.groups.items():
            out.update(group.flatten(f"{prefix}{name}."))
        return out

    def walk(self, prefix: str = "") -> Iterator[tuple]:
        """Yield (dotted-path, node) depth-first, self first."""
        yield prefix + self.name if not prefix else prefix.rstrip("."), self
        for name, group in self.groups.items():
            yield from group.walk(f"{prefix}{name}.")

    def group(self, path: str) -> Optional["Metrics"]:
        """Resolve a dotted group path (``"engine.untaint"``), or None."""
        node: Optional[Metrics] = self
        for part in path.split("."):
            if node is None:
                return None
            node = node.groups.get(part)
        return node

    # -------------------------------------------------------- serialisation
    def as_dict(self) -> dict:
        """Nested JSON-safe dict (dist buckets stringified for JSON)."""
        out: dict = {}
        if self.scalars:
            out["scalars"] = dict(self.scalars)
        if self.dists:
            out["dists"] = {name: {str(b): c for b, c in sorted(d.items())}
                            for name, d in self.dists.items()}
        if self.groups:
            out["groups"] = {name: g.as_dict()
                             for name, g in self.groups.items()}
        return out

    @classmethod
    def from_dict(cls, blob: dict, name: str = "metrics") -> "Metrics":
        """Rebuild a tree from :meth:`as_dict` output (bucket keys re-int'd)."""
        node = cls(name)
        node.scalars = dict(blob.get("scalars", {}))
        node.dists = {dist_name: {int(b): int(c) for b, c in d.items()}
                      for dist_name, d in blob.get("dists", {}).items()}
        node.groups = {child_name: cls.from_dict(child, child_name)
                       for child_name, child in blob.get("groups", {}).items()}
        return node

    # ------------------------------------------------------------ rendering
    def render(self, title: str = "Simulation Metrics") -> str:
        """gem5-``stats.txt``-style flat rendering of the whole hierarchy."""
        lines = [f"---------- Begin {title} ----------"]
        for key, value in self.flatten().items():
            if isinstance(value, float):
                text = format(value, ".6f")
            else:
                text = str(value)
            lines.append(f"{key} {text:>{max(1, 56 - len(key))}} #")
        lines.append(f"---------- End {title}   ----------")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (f"<Metrics {self.name!r}: {len(self.scalars)} scalars, "
                f"{len(self.dists)} dists, {len(self.groups)} groups>")
