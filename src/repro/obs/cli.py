"""``repro stats`` and ``repro bench`` subcommands.

``stats`` runs one (workload, configuration, model) cell and renders the
hierarchical metrics tree — gem5-``stats.txt``-style text by default,
``--json`` for the raw nested form.  The legacy Appendix A.4 artifact
interface (``python -m repro.cli <workload> ...``) is unchanged and keeps
emitting the flat compatibility view.

``bench record`` writes a schema-versioned performance snapshot;
``bench compare`` diffs two snapshots and exits non-zero on regression
(see :mod:`repro.obs.bench`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.harness.configs import CONFIGURATIONS
from repro.harness.runner import run_one
from repro.obs import bench
from repro.obs.metrics import Metrics


def _build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Run one simulation and render its metrics hierarchy.")
    parser.add_argument("workload", help="registered workload name")
    parser.add_argument("--config", default="UnsafeBaseline",
                        choices=sorted(CONFIGURATIONS),
                        help="Table 2 configuration (default: UnsafeBaseline)")
    parser.add_argument("--threat-model", choices=["spectre", "futuristic"],
                        default="futuristic")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--max-instructions", type=int, default=100_000)
    parser.add_argument("--json", action="store_true",
                        help="emit the nested JSON form instead of text")
    return parser


def stats_main(argv: Optional[list] = None) -> int:
    args = _build_stats_parser().parse_args(argv)
    result = run_one(args.workload, args.config,
                     model=AttackModel(args.threat_model),
                     scale=args.scale,
                     max_instructions=args.max_instructions)
    if args.json:
        print(json.dumps(result.metrics, indent=2, sort_keys=True))
        return 0
    tree = Metrics.from_dict(result.metrics, name="sim")
    title = (f"Simulation Metrics: {result.workload} under {result.config} "
             f"({result.model.value})")
    sys.stdout.write(tree.render(title))
    return 0


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Record and compare performance-trajectory snapshots.")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="measure and write a snapshot")
    record.add_argument("-o", "--output", default=None,
                        help="output path (default: BENCH_<date>.json)")
    record.add_argument("--budget", type=int, default=None,
                        help="retired-instruction budget per run "
                             "(default: REPRO_BENCH_BUDGET or 2500)")
    record.add_argument("--scale", type=int, default=None)
    record.add_argument("--jobs", type=int, default=None)
    record.add_argument("--reps", type=int, default=3,
                        help="throughput-probe repetitions (best wins)")
    record.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")

    compare = sub.add_parser(
        "compare", help="diff two snapshots; non-zero exit on regression")
    compare.add_argument("baseline", help="baseline BENCH_*.json")
    compare.add_argument("current", help="current BENCH_*.json")
    compare.add_argument("--throughput-tolerance", type=float, default=0.30,
                         help="allowed fractional throughput loss "
                              "(default: 0.30)")
    compare.add_argument("--overhead-tolerance", type=float, default=1e-6,
                         help="allowed absolute drift per headline overhead")
    compare.add_argument("--stall-tolerance", type=float, default=1e-6,
                         help="allowed absolute drift per stall fraction")
    compare.add_argument("--min-vector-speedup", type=float, default=None,
                         help="fail unless the current snapshot's vector/"
                              "reference speedup meets this floor")

    canary = sub.add_parser(
        "canary", help="time the CI bench cell under both backends; "
                       "non-zero exit if the vector backend is too slow")
    canary.add_argument("--budget", type=int, default=None,
                        help="retired-instruction budget "
                             "(default: REPRO_BENCH_BUDGET or 2500)")
    canary.add_argument("--scale", type=int, default=None)
    canary.add_argument("--reps", type=int, default=3,
                        help="repetitions per backend (best wins)")
    canary.add_argument("--min-ratio", type=float, default=1.0,
                        help="minimum vector/reference throughput ratio "
                             "(default 1.0: vector must never be slower)")

    profile = sub.add_parser(
        "profile", help="cProfile the CI bench cell and dump pstats")
    profile.add_argument("-o", "--output", default="BENCH_profile.pstats",
                         help="pstats dump path "
                              "(default: BENCH_profile.pstats)")
    profile.add_argument("--budget", type=int, default=None)
    profile.add_argument("--scale", type=int, default=None)
    profile.add_argument("--runs", type=int, default=3,
                         help="profiled repetitions (default: 3)")
    profile.add_argument("--backend", choices=["reference", "vector"],
                         default="vector")
    profile.add_argument("--top", type=int, default=25,
                         help="rows per sort order in the text summary")

    show = sub.add_parser("show", help="summarise a snapshot")
    show.add_argument("snapshot", help="BENCH_*.json to render")
    return parser


def bench_main(argv: Optional[list] = None) -> int:
    args = _build_bench_parser().parse_args(argv)
    if args.command == "record":
        snapshot = bench.record_snapshot(
            budget=args.budget, scale=args.scale, jobs=args.jobs,
            use_cache=False if args.no_cache else None, reps=args.reps)
        path = bench.write_snapshot(
            snapshot, args.output or bench.default_snapshot_name())
        print(bench.render_snapshot(snapshot))
        print(f"snapshot written to {path}")
        return 0
    if args.command == "compare":
        try:
            baseline = bench.load_snapshot(args.baseline)
            current = bench.load_snapshot(args.current)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        failures = bench.compare_snapshots(
            baseline, current,
            throughput_tolerance=args.throughput_tolerance,
            overhead_tolerance=args.overhead_tolerance,
            stall_tolerance=args.stall_tolerance,
            min_vector_speedup=args.min_vector_speedup)
        if failures:
            print(f"{len(failures)} regression(s) against {args.baseline}:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"no regressions against {args.baseline}")
        return 0
    if args.command == "canary":
        canary = bench.backend_canary(budget=args.budget, scale=args.scale,
                                      reps=args.reps)
        print(bench.render_canary(canary))
        if canary["vector_speedup"] < args.min_ratio:
            print(f"canary: vector/reference ratio "
                  f"{canary['vector_speedup']:.2f}x is below the "
                  f"{args.min_ratio:.2f}x floor", file=sys.stderr)
            return 1
        return 0
    if args.command == "profile":
        summary = bench.profile_speedup_cell(
            args.output, budget=args.budget, scale=args.scale,
            runs=args.runs, backend=args.backend, top=args.top)
        print(summary)
        print(f"pstats written to {args.output}")
        return 0
    try:
        snapshot = bench.load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(bench.render_snapshot(snapshot))
    return 0
