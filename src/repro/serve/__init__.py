"""Simulation-as-a-service: the sweep server, its store, and its clients.

``repro serve`` turns the harness into a long-running service so that
concurrent consumers (CI, nightly campaigns, interactive figure runs)
share one memoisation and scheduling substrate instead of each owning a
ProcessPoolExecutor and racing the disk cache:

* :mod:`repro.serve.planner` — the sweep-planning layer (dedup, cache
  prefill, spec-order reassembly) shared by ``run_many``, the CLI, and
  the server.
* :mod:`repro.serve.store` — the tiered content-addressed result store:
  in-process byte-budgeted LRU → disk cache → optional remote instance,
  with single-flight coalescing of identical in-flight cells.
* :mod:`repro.serve.scheduler` — fair-share/priority queueing of cache
  misses onto a worker pool with hang-abandoning per-run timeouts.
* :mod:`repro.serve.server` — the hand-rolled asyncio HTTP server and
  its NDJSON streaming sweep protocol (zero dependencies).
* :mod:`repro.serve.client` — ``repro sweep --server URL``: retrying
  client with graceful fallback to local execution.

The cache-key discipline built for the disk cache (CACHE_VERSION, source
fingerprint, check_level, backend — see ``harness/cache.py``) is what
makes sharing results across processes and machines sound: a key names
the simulation's full input set, so any two holders of the same key hold
bit-identical results.
"""

from repro.serve.planner import SweepPlan, plan_sweep

__all__ = ["SweepPlan", "plan_sweep"]
