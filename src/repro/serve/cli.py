"""The ``repro serve`` and ``repro sweep`` subcommands.

``repro serve`` stands up the long-running service; ``repro sweep``
drives a (by default Figure-7-shaped) grid either locally through
``run_many`` or — with ``--server URL`` — through a running service,
rendering per-cell progress as the NDJSON events stream in.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.harness.configs import (FIGURE7_ORDER,
                                   parse_config_names)
from repro.harness.parallel import RunFailure, RunSpec, default_timeout
from repro.harness.report import format_table
from repro.harness.runner import bench_budget, bench_scale
from repro.pipeline.params import MachineParams
from repro.serve.client import ServerClient, ServerUnavailable, sweep_or_local
from repro.serve.store import DEFAULT_MEMORY_BYTES
from repro.workloads.registry import WORKLOADS

DEFAULT_PORT = 8737


# ---------------------------------------------------------------- repro serve
def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the sweep service: a shared tiered result store "
                    "with request coalescing and fair-share scheduling.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; "
                             f"0 picks an ephemeral port)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS/CPUs)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run timeout in seconds "
                             "(default: REPRO_RUN_TIMEOUT)")
    parser.add_argument("--memory-mb", type=int, default=None,
                        help="in-process LRU tier budget in MiB "
                             f"(default {DEFAULT_MEMORY_BYTES // 2**20})")
    parser.add_argument("--no-disk", action="store_true",
                        help="disable the disk cache tier")
    parser.add_argument("--remote", default=None, metavar="URL",
                        help="another repro serve instance to consult as a "
                             "read-through tier on local misses")
    parser.add_argument("--gc-max-bytes", type=int, default=None,
                        help="periodically bound the disk tier to this "
                             "many bytes (mtime-LRU eviction)")
    parser.add_argument("--gc-interval", type=float, default=300.0,
                        help="seconds between disk gc passes")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    from repro.harness import cache
    from repro.serve.server import ServeApp

    app = ServeApp(
        host=args.host, port=args.port, jobs=args.jobs,
        timeout=(args.timeout if args.timeout is not None
                 else default_timeout()),
        memory_bytes=(args.memory_mb * 2**20 if args.memory_mb is not None
                      else DEFAULT_MEMORY_BYTES),
        use_disk=not args.no_disk,
        remote_url=args.remote)
    await app.start()
    print(f"repro serve listening on {app.url} "
          f"(jobs={app.scheduler.jobs}, "
          f"memory={app.store.memory.max_bytes // 2**20}MiB, "
          f"disk={'on' if app.store.use_disk else 'off'}, "
          f"remote={args.remote or 'none'})", flush=True)

    async def gc_loop() -> None:
        while True:
            await asyncio.sleep(args.gc_interval)
            swept = await asyncio.to_thread(cache.gc, args.gc_max_bytes)
            if swept["evicted"] or swept["tmp_removed"]:
                print(f"disk gc: evicted {swept['evicted']} entries "
                      f"({swept['evicted_bytes']} B), "
                      f"{swept['tmp_removed']} stale tmp", flush=True)

    gc_task = (asyncio.create_task(gc_loop())
               if args.gc_max_bytes is not None and not args.no_disk
               else None)
    try:
        await app.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if gc_task is not None:
            gc_task.cancel()
        await app.stop()
    return 0


def serve_main(argv: Optional[list] = None) -> int:
    args = _build_serve_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("repro serve: shutting down")
        return 0


# ---------------------------------------------------------------- repro sweep
def _build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a (workload x config x model) grid — locally, or "
                    "through a repro serve instance with --server.")
    parser.add_argument("--workloads", default="all",
                        help="comma-separated workload names, or 'all'")
    parser.add_argument("--configs", default="figure7",
                        help="comma-separated Table 2 configuration names, "
                             "or 'figure7' for the Figure 7 set")
    parser.add_argument("--models", default="futuristic,spectre",
                        help="comma-separated attack models")
    parser.add_argument("--budget", type=int, default=None,
                        help="max retired instructions per cell "
                             "(default: REPRO_BENCH_BUDGET)")
    parser.add_argument("--scale", type=int, default=None,
                        help="workload scale (default: REPRO_BENCH_SCALE)")
    parser.add_argument("--backend", choices=["reference", "vector"],
                        default="reference")
    parser.add_argument("--collect-trace", action="store_true",
                        help="also hash the attacker-visible trace per cell")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="drive the sweep through a repro serve "
                             "instance instead of a local pool")
    parser.add_argument("--priority", choices=["interactive", "batch"],
                        default="batch")
    parser.add_argument("--no-fallback", action="store_true",
                        help="fail if the server is unreachable instead of "
                             "falling back to local execution")
    parser.add_argument("--jobs", type=int, default=None,
                        help="local worker count (no-server or fallback)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the local result cache (local path)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    return parser


def _sweep_grid(args: argparse.Namespace) -> list:
    workloads = (sorted(WORKLOADS) if args.workloads == "all"
                 else args.workloads.split(","))
    for name in workloads:
        if name not in WORKLOADS:
            raise SystemExit(f"error: unknown workload {name!r}")
    configs = (list(FIGURE7_ORDER) if args.configs == "figure7"
               else parse_config_names(args.configs))
    models = [AttackModel(name) for name in args.models.split(",")]
    budget = args.budget if args.budget is not None else bench_budget()
    scale = args.scale if args.scale is not None else bench_scale()
    params = MachineParams(backend=args.backend)
    return [RunSpec(workload, config, model, scale=scale,
                    max_instructions=budget, params=params,
                    collect_trace=args.collect_trace)
            for model in models
            for workload in workloads
            for config in configs]


def sweep_main(argv: Optional[list] = None) -> int:
    args = _build_sweep_parser().parse_args(argv)
    specs = _sweep_grid(args)
    print(f"sweep: {len(specs)} cells "
          f"({'server ' + args.server if args.server else 'local'})")

    landed = [0]

    def on_event(event: dict) -> None:
        if args.quiet:
            return
        kind = event.get("event")
        if kind == "planned":
            print(f"  planned: {event['cells']} cells, "
                  f"{event['unique']} unique")
        elif kind == "result":
            landed[0] += len(event["indexes"])
            print(f"  [{landed[0]}/{len(specs)}] "
                  f"{event['source']}: {event['key'][:12]}...")
        elif kind == "error":
            print(f"  FAILED {event['key'][:12]}...: {event['error']}")

    try:
        results = sweep_or_local(
            specs, server=args.server, jobs=args.jobs,
            use_cache=False if args.no_cache else None,
            priority=args.priority, on_event=on_event,
            fallback=not args.no_fallback)
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except RunFailure as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    headers = ["workload", "config", "model", "cycles", "retired", "IPC"]
    rows = [[r.workload, r.config, r.model.value, r.cycles, r.retired,
             round(r.ipc, 3)] for r in results]
    print(format_table(headers, rows, title="Sweep results"))
    return 0


def probe_server(url: str) -> dict:
    """Convenience: health + stats for scripts (raises ServerUnavailable)."""
    client = ServerClient(url)
    health = client.health()
    stats = client.stats()
    return {"health": health, "stats": stats}
