"""Sweep planning: one shared dedup/cache-lookup/ordering path.

Every consumer of the harness — ``run_many`` for the CLI and CI, the
``repro serve`` server for remote clients — faces the same bookkeeping:
a sweep arrives as an ordered list of :class:`RunSpec` cells, identical
cells must be simulated once, cells already known (disk cache, store
tier) must not be simulated at all, and results must come back in spec
order regardless of completion order.  :class:`SweepPlan` is that
bookkeeping, factored out so the executors only differ in *how* they
satisfy the misses (a local pool vs. the tiered store + scheduler).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.harness import cache


class SweepPlan:
    """The execution plan for one sweep: unique misses plus hit prefill.

    Build with :func:`plan_sweep`.  ``miss_keys``/``miss_specs`` list the
    distinct cells that still need simulating (in first-appearance
    order); feed each computed result back with :meth:`record` and
    collect the full spec-ordered result list from :meth:`results`.
    """

    def __init__(self, specs: Sequence, keys: Sequence[str]):
        self.specs = list(specs)
        self.keys = list(keys)
        self._by_key: dict = {}         # key -> RunResult (hits + recorded)
        self.miss_keys: list = []
        self.miss_specs: list = []
        self.hits = 0                   # specs satisfied at plan time

    @property
    def unique_cells(self) -> int:
        """Distinct simulations this sweep names (hit or miss)."""
        return len(set(self.keys))

    def prefill(self, key: str, result) -> None:
        """Mark ``key`` as already known (a cache/store hit)."""
        self._by_key[key] = result

    def record(self, key: str, result) -> None:
        """Feed back the computed result for a planned miss."""
        self._by_key[key] = result

    def pending(self) -> list:
        """The ``(key, spec)`` pairs not yet recorded."""
        return [(key, spec) for key, spec in zip(self.miss_keys,
                                                 self.miss_specs)
                if key not in self._by_key]

    def results(self) -> list:
        """All results in spec order; raises if any cell is unrecorded."""
        missing = [key for key in self.keys if key not in self._by_key]
        if missing:
            raise RuntimeError(
                f"sweep plan incomplete: {len(missing)} cell(s) never "
                f"recorded (first: {missing[0][:16]}...)")
        return [self._by_key[key] for key in self.keys]

    def indexes_for(self, key: str) -> list:
        """Spec positions satisfied by ``key`` (for per-cell streaming)."""
        return [index for index, k in enumerate(self.keys) if k == key]


def plan_sweep(specs: Sequence, use_cache: Optional[bool] = None,
               lookup: Optional[Callable] = None) -> SweepPlan:
    """Plan a sweep: compute keys, prefill known results, list misses.

    ``lookup`` maps a cache key to a known ``RunResult`` or None; the
    default consults the persistent disk cache when caching is enabled
    (``use_cache=None`` reads ``REPRO_NO_CACHE``).  The server passes
    ``use_cache=False`` and resolves misses through its tiered store
    instead, so a hit is counted per tier rather than at plan time.
    """
    keys = [spec.key() for spec in specs]
    plan = SweepPlan(specs, keys)
    if lookup is None:
        if use_cache is None:
            use_cache = cache.cache_enabled()
        lookup = cache.load if use_cache else None

    seen: set = set()
    for spec, key in zip(plan.specs, keys):
        if key in plan._by_key:
            plan.hits += 1
            continue
        if key in seen:
            continue
        if lookup is not None:
            known = lookup(key)
            if known is not None:
                plan.prefill(key, known)
                plan.hits += 1
                continue
        seen.add(key)
        plan.miss_keys.append(key)
        plan.miss_specs.append(spec)
    return plan
