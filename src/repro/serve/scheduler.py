"""Miss scheduling: fair-share priority queueing onto a worker pool.

The store resolves every sweep cell it cannot serve from a tier into a
:meth:`Scheduler.run` call.  The scheduler keeps one queue per
``(priority, client)``: lower priority numbers drain first (interactive
ahead of batch), and within a priority band clients are served
round-robin, so a 10 000-cell batch sweep cannot starve a 4-cell
interactive figure run that arrives behind it.

Execution reuses the harness's process-pool semantics, including
hang abandonment: a run exceeding its timeout poisons the pool, which is
dropped without joining (the wedged worker is orphaned) and replaced
lazily for subsequent work — the same deadline discipline as
``harness.parallel._run_pool``, adapted to a long-running service where
"fail the sweep" must not mean "stall every other client".  Where a
process pool cannot start at all (sandboxed semaphores, no fork), a
thread pool substitutes; timeouts there abandon a thread, best-effort,
like the serial path.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
from collections import OrderedDict, deque
from typing import Optional

from repro.harness.parallel import _execute_spec, default_jobs
from repro.obs.service import ServiceCounters

__all__ = ["RunTimeout", "Scheduler", "PRIORITY_INTERACTIVE",
           "PRIORITY_BATCH"]

PRIORITY_INTERACTIVE = 0
PRIORITY_BATCH = 1


class RunTimeout(RuntimeError):
    """A scheduled run exceeded its wall-clock bound."""

    def __init__(self, spec, timeout: float):
        super().__init__(f"run exceeded the {timeout}s timeout "
                         f"({spec.describe()})")
        self.spec = spec


class Scheduler:
    """Async fair-share scheduler over a (process, else thread) pool."""

    def __init__(self, jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 counters: Optional[ServiceCounters] = None):
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.timeout = timeout
        self.counters = counters or ServiceCounters()
        self._pool: Optional[concurrent.futures.Executor] = None
        self._force_threads = False
        self._active = 0
        # priority -> client -> deque[(spec, future)]; OrderedDict gives
        # the round-robin rotation order within the band.
        self._queues: dict = {}
        self._cond: Optional[asyncio.Condition] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._stopping = False

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self._cond = asyncio.Condition()
        self._stopping = False
        self._dispatcher = asyncio.create_task(self._dispatch_loop(),
                                               name="repro-serve-dispatch")
        # Warm the pool before any connection exists.  With a fork-based
        # pool, workers forked mid-request would inherit the accepted
        # socket fd and hold the client's connection open long after the
        # server closes it; the spawn/forkserver context (below) prevents
        # that structurally, and warming here additionally starts the
        # forkserver daemon from a clean, socket-free process state.
        pool = self._ensure_pool()
        if isinstance(pool, concurrent.futures.ProcessPoolExecutor):
            try:
                await asyncio.get_running_loop().run_in_executor(
                    pool, int, 0)
            except BaseException:       # noqa: BLE001 — degrade to threads
                # Workers provably cannot start here (sandbox, an
                # un-reimportable __main__ under spawn, ...): run
                # in-process threads for the life of the service.
                self._abandon_pool(wait=False)
                self._force_threads = True
                self.counters.incr("scheduler", "pool_degraded")

    async def stop(self) -> None:
        self._stopping = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for band in self._queues.values():
            for queue in band.values():
                while queue:
                    _, future = queue.popleft()
                    if not future.done():
                        future.set_exception(
                            RuntimeError("scheduler stopped"))
        self._queues.clear()
        self._abandon_pool(wait=self._active == 0)

    # ------------------------------------------------------------ interface
    async def run(self, spec, client: str = "anon",
                  priority: int = PRIORITY_BATCH):
        """Queue ``spec`` and await its ``RunResult``."""
        if self._cond is None:
            raise RuntimeError("scheduler not started")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        async with self._cond:
            band = self._queues.setdefault(priority, OrderedDict())
            band.setdefault(client, deque()).append((spec, future))
            self.counters.incr("scheduler", "queued")
            self._cond.notify_all()
        return await future

    def depth(self) -> int:
        """Cells queued but not yet started (for the stats endpoint)."""
        return sum(len(queue) for band in self._queues.values()
                   for queue in band.values())

    # ------------------------------------------------------------- internal
    def _take_next(self):
        """Pop the next (spec, future): lowest priority, fair by client."""
        for priority in sorted(self._queues):
            band = self._queues[priority]
            for client in list(band):
                queue = band[client]
                if not queue:
                    del band[client]
                    continue
                item = queue.popleft()
                # Rotate the client to the back of the band.
                band.move_to_end(client)
                if not queue:
                    del band[client]
                return item
        return None

    async def _dispatch_loop(self) -> None:
        assert self._cond is not None
        while True:
            async with self._cond:
                await self._cond.wait_for(
                    lambda: self._active < self.jobs
                    and self._take_peek())
                item = self._take_next()
                if item is None:
                    continue
                self._active += 1
            spec, future = item
            asyncio.create_task(self._execute(spec, future))

    def _take_peek(self) -> bool:
        return any(queue for band in self._queues.values()
                   for queue in band.values())

    async def _execute(self, spec, future: asyncio.Future) -> None:
        self.counters.incr("scheduler", "started")
        loop = asyncio.get_running_loop()
        try:
            result = None
            for attempt in (0, 1, 2):
                pool = self._ensure_pool()
                try:
                    result = await asyncio.wait_for(
                        loop.run_in_executor(pool, _execute_spec, spec),
                        timeout=self.timeout)
                    break
                except concurrent.futures.process.BrokenProcessPool:
                    # Workers died under this run (OOM, signal): drop the
                    # pool and retry on a fresh one; a second consecutive
                    # failure means process pools do not work here at
                    # all, so degrade to threads for the final attempt.
                    self._abandon_pool(wait=False)
                    if attempt == 1:
                        self._force_threads = True
                        self.counters.incr("scheduler", "pool_degraded")
                    elif attempt == 2:
                        raise
            self.counters.incr("scheduler", "completed")
            if not future.done():
                future.set_result(result)
        except asyncio.TimeoutError:
            self.counters.incr("scheduler", "timeouts")
            self._abandon_pool(wait=False)
            if not future.done():
                future.set_exception(RunTimeout(spec, self.timeout))
        except asyncio.CancelledError:
            if not future.done():
                future.set_exception(
                    RuntimeError("scheduler stopped mid-run"))
            raise
        except BaseException as exc:      # noqa: BLE001 — forwarded
            self.counters.incr("scheduler", "failed")
            if not future.done():
                future.set_exception(exc)
        finally:
            self._active -= 1
            if self._cond is not None and not self._stopping:
                async with self._cond:
                    self._cond.notify_all()

    def _ensure_pool(self) -> concurrent.futures.Executor:
        if self._pool is None:
            if self._force_threads:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="repro-serve-worker")
                return self._pool
            try:
                # Never fork: a forked worker would inherit whatever
                # connection fds happen to be open at (re)creation time
                # and keep those sockets alive past the server's close.
                try:
                    context = multiprocessing.get_context("forkserver")
                except ValueError:
                    context = multiprocessing.get_context("spawn")
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=context)
            except (OSError, ValueError, NotImplementedError, ImportError):
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="repro-serve-worker")
        return self._pool

    def _abandon_pool(self, wait: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
