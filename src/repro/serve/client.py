"""Sweep client: drive a ``repro serve`` instance, or fall back locally.

The client speaks the NDJSON sweep protocol with per-request
connections, retries transport failures with exponential backoff, and
exposes :func:`sweep_or_local` — the policy layer ``repro sweep
--server`` uses: a server that is down or dies mid-sweep degrades to
local :func:`~repro.harness.parallel.run_many` execution (results are
bit-identical by the cache-key contract), while a *cell* failure
reported by the server is a real failure and raises
:class:`~repro.harness.parallel.RunFailure` exactly as a local sweep
would.

The server names result cells by spec index, so the client never needs
to recompute cache keys — it works even against a server running from a
different checkout (whose keys embed a different source fingerprint and
would simply never match locally computed ones).
"""

from __future__ import annotations

import json
import time
import urllib.parse
from http.client import HTTPConnection, HTTPException
from typing import Callable, Optional, Sequence

from repro.harness.parallel import RunFailure, run_many
from repro.serve.wire import WireError, result_from_wire, spec_to_wire

__all__ = ["ServerClient", "ServerUnavailable", "sweep_or_local"]


class ServerUnavailable(RuntimeError):
    """The server could not be reached (after retries)."""


class ServerClient:
    """HTTP client for one server, with retry/backoff on transport errors."""

    def __init__(self, url: str, retries: int = 3, backoff: float = 0.25,
                 timeout: Optional[float] = None,
                 client_id: str = "repro-client"):
        split = urllib.parse.urlsplit(url if "//" in url else f"//{url}",
                                      scheme="http")
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"unsupported server URL: {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.client_id = client_id

    # ------------------------------------------------------------- plumbing
    def _connect(self, timeout: Optional[float]) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=timeout)

    def _get_json(self, path: str, timeout: Optional[float] = 5.0) -> dict:
        connection = self._connect(timeout)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        except (OSError, HTTPException, ValueError) as exc:
            raise ServerUnavailable(
                f"GET {path} on {self.host}:{self.port} failed: "
                f"{type(exc).__name__}: {exc}") from exc
        finally:
            connection.close()
        if response.status != 200:
            raise ServerUnavailable(
                f"GET {path}: HTTP {response.status}: {payload}")
        return payload

    def health(self) -> dict:
        return self._get_json("/healthz")

    def stats(self) -> dict:
        return self._get_json("/v1/stats")

    # ---------------------------------------------------------------- sweep
    def sweep(self, specs: Sequence, priority: str = "batch",
              on_event: Optional[Callable] = None) -> list:
        """Run ``specs`` on the server; results in spec order.

        Transport failures (connection refused, stream truncated
        mid-sweep) are retried with exponential backoff and raise
        :class:`ServerUnavailable` once retries are exhausted.  A cell
        the server reports as failed raises :class:`RunFailure`.
        """
        specs = list(specs)
        if not specs:
            return []
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                return self._sweep_once(specs, priority, on_event)
            except (OSError, HTTPException, _TruncatedStream) as exc:
                last_error = exc
        raise ServerUnavailable(
            f"sweep against {self.host}:{self.port} failed after "
            f"{self.retries + 1} attempt(s): "
            f"{type(last_error).__name__}: {last_error}")

    def _sweep_once(self, specs: list, priority: str,
                    on_event: Optional[Callable]) -> list:
        body = json.dumps({
            "cells": [spec_to_wire(spec) for spec in specs],
            "client": self.client_id,
            "priority": priority,
        }).encode("utf-8")
        connection = self._connect(self.timeout)
        try:
            connection.request(
                "POST", "/v1/sweep", body=body,
                headers={"Content-Type": "application/json",
                         "Content-Length": str(len(body))})
            response = connection.getresponse()
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace")
                raise RunFailure(specs[0],
                                 f"server rejected the sweep "
                                 f"(HTTP {response.status}): {detail}")
            results: list = [None] * len(specs)
            done = False
            while True:
                line = response.readline()
                if not line:
                    break
                event = json.loads(line.decode("utf-8"))
                if on_event is not None:
                    on_event(event)
                kind = event.get("event")
                if kind == "result":
                    result = result_from_wire(event["result"])
                    for index in event["indexes"]:
                        results[index] = result
                elif kind == "error":
                    index = event["indexes"][0]
                    raise RunFailure(specs[index], event["error"])
                elif kind == "done":
                    done = True
            if not done or any(result is None for result in results):
                raise _TruncatedStream(
                    "server stream ended before the sweep completed")
            return results
        except (ValueError, WireError) as exc:
            # Undecodable stream content: treat as a transport failure so
            # the retry/backoff loop gets another attempt.
            raise _TruncatedStream(f"undecodable stream: {exc}") from exc
        finally:
            connection.close()


class _TruncatedStream(HTTPException):
    """The NDJSON stream died before ``done`` — retryable."""


def sweep_or_local(specs: Sequence, server: Optional[str] = None,
                   jobs: Optional[int] = None,
                   use_cache: Optional[bool] = None,
                   priority: str = "batch",
                   on_event: Optional[Callable] = None,
                   fallback: bool = True,
                   client: Optional[ServerClient] = None) -> list:
    """Run a sweep through a server when one is given, else locally.

    With ``fallback=True`` (default) an unreachable or mid-sweep-dead
    server degrades to :func:`run_many`; ``fallback=False`` propagates
    :class:`ServerUnavailable` (what CI's bit-identity smoke wants, so a
    broken server cannot silently pass as a local run).
    """
    if server or client is not None:
        if client is None:
            client = ServerClient(server)
        try:
            return client.sweep(specs, priority=priority, on_event=on_event)
        except ServerUnavailable:
            if not fallback:
                raise
    return run_many(specs, jobs=jobs, use_cache=use_cache)
