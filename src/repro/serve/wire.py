"""JSON wire forms for ``RunSpec`` and ``RunResult``.

The sweep protocol ships specs to the server and results back as plain
JSON.  Results reuse the disk cache's blob codec
(:func:`repro.harness.cache.result_to_blob`), so a result is encoded
identically whether it is cached on disk, held in the memory tier, or
streamed over HTTP — one codec, one notion of bit-identity.  Specs need
their own codec because :class:`MachineParams` nests dataclasses
(``HierarchyParams`` → ``CacheParams``) that ``asdict`` flattens to
dicts and the server must rebuild exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.harness.cache import result_from_blob, result_to_blob
from repro.harness.parallel import RunSpec
from repro.harness.runner import RunResult
from repro.memory.cache import CacheParams
from repro.memory.hierarchy import HierarchyParams
from repro.pipeline.params import MachineParams

__all__ = ["spec_to_wire", "spec_from_wire", "result_to_wire",
           "result_from_wire", "WireError"]


class WireError(ValueError):
    """A request cell that cannot be decoded into a valid RunSpec."""


def spec_to_wire(spec: RunSpec) -> dict:
    """Encode one sweep cell as a JSON-safe dict."""
    return {
        "workload": spec.workload,
        "config": spec.config,
        "model": spec.model.value,
        "scale": spec.scale,
        "max_instructions": spec.max_instructions,
        "params": (dataclasses.asdict(spec.params)
                   if spec.params is not None else None),
        "collect_trace": spec.collect_trace,
    }


def _params_from_wire(blob: Optional[dict]) -> Optional[MachineParams]:
    if blob is None:
        return None
    blob = dict(blob)
    hierarchy = blob.pop("hierarchy", None)
    if hierarchy is not None:
        hierarchy = dict(hierarchy)
        for level in ("l1_params", "l2_params", "l3_params"):
            if hierarchy.get(level) is not None:
                hierarchy[level] = CacheParams(**hierarchy[level])
        hierarchy = HierarchyParams(**hierarchy)
        blob["hierarchy"] = hierarchy
    params = MachineParams(**blob)
    params.validate()
    return params


def spec_from_wire(blob: dict) -> RunSpec:
    """Decode one sweep cell; raises :class:`WireError` on bad input."""
    if not isinstance(blob, dict):
        raise WireError(f"cell must be an object, got {type(blob).__name__}")
    try:
        return RunSpec(
            workload=blob["workload"],
            config=blob["config"],
            model=AttackModel(blob.get("model",
                                       AttackModel.FUTURISTIC.value)),
            scale=int(blob.get("scale", 1)),
            max_instructions=blob.get("max_instructions"),
            params=_params_from_wire(blob.get("params")),
            collect_trace=bool(blob.get("collect_trace", False)),
        )
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad cell: {type(exc).__name__}: {exc}") from exc


def result_to_wire(result: RunResult) -> dict:
    return result_to_blob(result)


def result_from_wire(blob: dict) -> RunResult:
    result = result_from_blob(blob)
    if result is None:
        raise WireError("undecodable result blob")
    return result
