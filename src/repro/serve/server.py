"""The sweep server: a zero-dependency asyncio HTTP/1.1 service.

Hand-rolled over ``asyncio.start_server`` — no aiohttp, no frameworks —
because the protocol surface is four endpoints and the reference path
must run on a bare CPython:

* ``GET /healthz`` — liveness probe.
* ``GET /v1/stats`` — tier/scheduler/server counters as JSON.
* ``GET /v1/result/<key>`` — non-computing store lookup (memory → disk);
  this is the endpoint a downstream instance's remote tier reads.
* ``POST /v1/sweep`` — the sweep protocol: a JSON body of wire-encoded
  cells, answered with a streamed NDJSON event sequence (``planned``,
  one ``result``/``error`` per unique cell as it lands, ``done``), so a
  320-cell grid renders incrementally instead of after the slowest cell.

Every connection serves one request and closes (``Connection: close``);
clients reconnect per request, which keeps the parser trivial and makes
client retry logic stateless.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.obs.service import ServiceCounters
from repro.serve.planner import plan_sweep
from repro.serve.scheduler import (PRIORITY_BATCH, PRIORITY_INTERACTIVE,
                                   Scheduler)
from repro.serve.store import (DEFAULT_MEMORY_BYTES, RemoteTier, TieredStore)
from repro.serve.wire import WireError, result_to_wire, spec_from_wire

__all__ = ["ServeApp", "PROTOCOL_VERSION"]

PROTOCOL_VERSION = 1
MAX_BODY_BYTES = 64 * 1024 * 1024
_PRIORITY_NAMES = {"interactive": PRIORITY_INTERACTIVE,
                   "batch": PRIORITY_BATCH}


class _BadRequest(Exception):
    """Maps to a 400 response with the message as the error body."""


class ServeApp:
    """One server instance: HTTP front end + store + scheduler."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 memory_bytes: int = DEFAULT_MEMORY_BYTES,
                 use_disk: bool = True,
                 remote_url: Optional[str] = None):
        self.host = host
        self.port = port
        self.counters = ServiceCounters()
        self.scheduler = Scheduler(jobs=jobs, timeout=timeout,
                                   counters=self.counters)
        remote = RemoteTier(remote_url) if remote_url else None
        self.store = TieredStore(self.scheduler, memory_bytes=memory_bytes,
                                 use_disk=use_disk, remote=remote,
                                 counters=self.counters)
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        await self.scheduler.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        # With port=0 the OS picked an ephemeral port; expose it.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------- HTTP plumbing
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as exc:
                await self._respond_json(writer, 400, {"error": str(exc)})
                return
            await self._dispatch(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass    # client went away mid-exchange; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> tuple:
        try:
            request_line = await reader.readline()
        except ValueError as exc:
            raise _BadRequest(f"oversized request line: {exc}") from exc
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest("bad Content-Length") from None
        if content_length > MAX_BODY_BYTES:
            raise _BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path, body

    async def _respond_json(self, writer: asyncio.StreamWriter, status: int,
                            payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "Error")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + body)
        await writer.drain()

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond_json(writer, 200, {
                "ok": True, "protocol": PROTOCOL_VERSION})
        elif path == "/v1/stats" and method == "GET":
            await self._respond_json(writer, 200, self._stats())
        elif path.startswith("/v1/result/") and method == "GET":
            await self._handle_result(path[len("/v1/result/"):], writer)
        elif path == "/v1/sweep" and method == "POST":
            await self._handle_sweep(body, writer)
        elif path in ("/healthz", "/v1/stats", "/v1/sweep") or \
                path.startswith("/v1/result/"):
            await self._respond_json(writer, 405, {
                "error": f"{method} not allowed on {path}"})
        else:
            await self._respond_json(writer, 404, {
                "error": f"no such endpoint: {path}"})

    # ----------------------------------------------------------- endpoints
    def _stats(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "counters": self.store.stats(),
            "scheduler": {"jobs": self.scheduler.jobs,
                          "timeout": self.scheduler.timeout,
                          "queue_depth": self.scheduler.depth()},
        }

    async def _handle_result(self, key: str,
                             writer: asyncio.StreamWriter) -> None:
        if not key or any(c not in "0123456789abcdef" for c in key):
            await self._respond_json(writer, 400,
                                     {"error": "malformed result key"})
            return
        result = self.store.peek(key)
        self.counters.incr("server", "peek_hits" if result is not None
                           else "peek_misses")
        if result is None:
            await self._respond_json(writer, 404, {"error": "miss"})
            return
        await self._respond_json(writer, 200, result_to_wire(result))

    async def _handle_sweep(self, body: bytes,
                            writer: asyncio.StreamWriter) -> None:
        try:
            request = json.loads(body.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("sweep body must be a JSON object")
            cells = request.get("cells")
            if not isinstance(cells, list):
                raise ValueError("sweep body needs a 'cells' list")
            specs = [spec_from_wire(cell) for cell in cells]
        except (ValueError, WireError) as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        client = str(request.get("client") or "anon")
        priority = request.get("priority", "batch")
        if isinstance(priority, str):
            priority = _PRIORITY_NAMES.get(priority, PRIORITY_BATCH)
        self.counters.incr("server", "sweeps")
        self.counters.incr("server", "cells", len(specs))

        # Streamed response: no Content-Length, read-until-close framing.
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")

        async def emit(event: dict) -> None:
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()

        # Dedup happens in the shared planner; the store's tiers (not the
        # plan) decide hit vs. compute, so plan with lookups disabled.
        plan = plan_sweep(specs, use_cache=False)
        await emit({"event": "planned", "protocol": PROTOCOL_VERSION,
                    "cells": len(specs), "unique": plan.unique_cells})

        async def resolve(key: str, spec) -> tuple:
            try:
                result, source = await self.store.get_or_compute(
                    key, spec, client=client, priority=priority)
                return key, result, source, None
            except Exception as exc:    # noqa: BLE001 — reported inline
                return key, None, None, exc

        tasks = [asyncio.create_task(resolve(key, spec))
                 for key, spec in zip(plan.miss_keys, plan.miss_specs)]
        failed = False
        try:
            for done in asyncio.as_completed(tasks):
                key, result, source, exc = await done
                if exc is not None:
                    failed = True
                    await emit({"event": "error", "key": key,
                                "indexes": plan.indexes_for(key),
                                "error": f"{type(exc).__name__}: {exc}"})
                    continue
                await emit({"event": "result", "key": key,
                            "indexes": plan.indexes_for(key),
                            "source": source,
                            "result": result_to_wire(result)})
            await emit({"event": "done", "ok": not failed,
                        "stats": self.store.stats()})
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
