"""Tiered content-addressed result store with single-flight coalescing.

Lookup order for a sweep cell, cheapest first:

1. **memory** — an in-process LRU over decoded ``RunResult``s with a
   byte budget (sizes measured in wire-blob bytes, the same bytes the
   disk tier would hold).
2. **disk** — the persistent harness cache (``harness/cache.py``),
   shared with every local ``run_many`` on the machine.
3. **remote** — optionally, another ``repro serve`` instance's
   ``/v1/result/<key>`` endpoint: a read-through tier that lets a fleet
   share one warm store.
4. **compute** — scheduled onto the worker pool via the
   :class:`~repro.serve.scheduler.Scheduler`.

The store is **single-flight**: while a cell's simulation (or tier
probe) is in flight, every further request for the same key awaits the
same future instead of re-entering the tiers — N concurrent clients
asking for one cold grid trigger each simulation exactly once, which is
the property the service exists to provide.  Cache keys make this sound:
a key names the simulation's full input set (CACHE_VERSION, source
fingerprint, params, check level, backend), so sharing a result between
requests can never change what any requester observes.

All store methods run on the server's event loop; blocking tier probes
(disk reads, remote HTTP) are pushed to worker threads so a slow disk or
peer cannot stall unrelated requests.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from typing import Optional

from repro.harness import cache
from repro.harness.cache import result_from_blob, result_to_blob
from repro.obs.service import ServiceCounters
from repro.serve.scheduler import PRIORITY_BATCH, Scheduler

__all__ = ["MemoryTier", "RemoteTier", "TieredStore",
           "DEFAULT_MEMORY_BYTES"]

DEFAULT_MEMORY_BYTES = 256 * 1024 * 1024


class MemoryTier:
    """Byte-budgeted LRU of decoded results, keyed by cache key."""

    def __init__(self, max_bytes: int = DEFAULT_MEMORY_BYTES):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.used_bytes = 0
        self._entries: OrderedDict = OrderedDict()   # key -> (result, nbytes)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: str, result, nbytes: Optional[int] = None) -> None:
        if nbytes is None:
            nbytes = len(json.dumps(result_to_blob(result)))
        if nbytes > self.max_bytes:
            return                      # would evict the whole tier for one cell
        old = self._entries.pop(key, None)
        if old is not None:
            self.used_bytes -= old[1]
        self._entries[key] = (result, nbytes)
        self.used_bytes += nbytes
        while self.used_bytes > self.max_bytes and self._entries:
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self.used_bytes -= evicted_bytes

    def stats(self) -> dict:
        return {"entries": len(self._entries),
                "bytes": self.used_bytes,
                "max_bytes": self.max_bytes}


class RemoteTier:
    """Read-through tier over another ``repro serve`` instance.

    ``get`` is synchronous (called via ``asyncio.to_thread``); failures
    of any kind are misses — a dead or mismatched peer degrades the
    store, never breaks it.  Keys embed the source fingerprint, so a
    peer running different simulator code simply never hits.
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def get(self, key: str):
        import urllib.error
        import urllib.request
        url = f"{self.base_url}/v1/result/{key}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                blob = json.loads(resp.read().decode("utf-8"))
        except (OSError, ValueError, urllib.error.URLError):
            return None
        return result_from_blob(blob)


class TieredStore:
    """memory → disk → remote → compute, with request coalescing."""

    def __init__(self, scheduler: Scheduler,
                 memory_bytes: int = DEFAULT_MEMORY_BYTES,
                 use_disk: bool = True,
                 remote: Optional[RemoteTier] = None,
                 counters: Optional[ServiceCounters] = None):
        self.memory = MemoryTier(memory_bytes)
        self.use_disk = use_disk
        self.remote = remote
        self.scheduler = scheduler
        self.counters = counters or scheduler.counters
        self._inflight: dict = {}       # key -> asyncio.Future

    def peek(self, key: str):
        """Non-computing lookup (memory, then disk): for ``/v1/result``.

        Deliberately skips the remote tier so two instances pointing at
        each other cannot ping-pong a miss forever.
        """
        result = self.memory.get(key)
        if result is not None:
            return result
        if self.use_disk:
            result = cache.load(key)
            if result is not None:
                self.memory.put(key, result)
        return result

    async def get_or_compute(self, key: str, spec, client: str = "anon",
                             priority: int = PRIORITY_BATCH) -> tuple:
        """Resolve one cell; returns ``(result, source)``.

        ``source`` names where the result came from: ``memory``,
        ``disk``, ``remote``, ``computed``, or ``coalesced`` (this
        request awaited a cell another request already had in flight).
        """
        result = self.memory.get(key)
        if result is not None:
            self.counters.incr("memory", "hits")
            return result, "memory"
        self.counters.incr("memory", "misses")

        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters.incr("store", "coalesced")
            return await inflight, "coalesced"

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result, source = await self._resolve_miss(key, spec, client,
                                                      priority)
        except BaseException as exc:     # noqa: BLE001 — shared with waiters
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # Coalesced waiters consume the exception; if none are
                # waiting, keep it from surfacing as "never retrieved".
                future.exception()
            raise
        self._inflight.pop(key, None)
        future.set_result(result)
        return result, source

    async def _resolve_miss(self, key: str, spec, client: str,
                            priority: int) -> tuple:
        if self.use_disk:
            result = await asyncio.to_thread(cache.load, key)
            if result is not None:
                self.counters.incr("disk", "hits")
                self.memory.put(key, result)
                return result, "disk"
            self.counters.incr("disk", "misses")
        if self.remote is not None:
            result = await asyncio.to_thread(self.remote.get, key)
            if result is not None:
                self.counters.incr("remote", "hits")
                self.memory.put(key, result)
                if self.use_disk:
                    await asyncio.to_thread(cache.store, key, result)
                return result, "remote"
            self.counters.incr("remote", "misses")
        result = await self.scheduler.run(spec, client=client,
                                          priority=priority)
        self.counters.incr("store", "computed")
        self.memory.put(key, result)
        if self.use_disk:
            await asyncio.to_thread(cache.store, key, result)
        return result, "computed"

    def stats(self) -> dict:
        snapshot = self.counters.snapshot()
        snapshot["memory_tier"] = self.memory.stats()
        snapshot["inflight"] = len(self._inflight)
        return snapshot
