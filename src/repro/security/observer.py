"""Attacker observation model.

The observer records everything a microarchitectural attacker could possibly
see, as a strict superset of the channels enumerated in Section 2.1 of the
paper:

* every cache access issued by a load (including transient, doomed-to-squash
  loads — the Spectre channel), with its cycle, line address and hit level;
* every store address computation and retirement-time cache write;
* every branch-predictor update (resolution effects, the implicit channel);
* every squash, with its cycle;
* total execution time.

Security tests assert *trace equivalence*: for a program whose secret is a
non-speculative secret, the full observer trace must be identical across
secret values under every secure configuration.  This is stronger than the
paper's penetration test (which checks a specific exfiltration gadget).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Observation:
    """One attacker-visible event."""

    cycle: int
    kind: str          # "load", "store-addr", "store-write", "bp-update", "squash"
    value: int         # line address, branch pc, ...
    detail: str = ""   # hit level / taken-ness


class Observer:
    """Accumulates attacker-visible events during one simulation."""

    def __init__(self, record_cycles: bool = True):
        self.record_cycles = record_cycles
        self.events: list[Observation] = []

    def _cycle(self, cycle: int) -> int:
        return cycle if self.record_cycles else 0

    def load_access(self, cycle: int, line: int, level: str) -> None:
        self.events.append(Observation(self._cycle(cycle), "load", line, level))

    def store_address(self, cycle: int, line: int) -> None:
        self.events.append(Observation(self._cycle(cycle), "store-addr", line))

    def store_write(self, cycle: int, line: int, level: str) -> None:
        self.events.append(Observation(self._cycle(cycle), "store-write", line, level))

    def predictor_update(self, cycle: int, pc: int, taken: bool) -> None:
        self.events.append(Observation(
            self._cycle(cycle), "bp-update", pc, "T" if taken else "N"))

    def squash(self, cycle: int, pc: int) -> None:
        self.events.append(Observation(self._cycle(cycle), "squash", pc))

    # ------------------------------------------------------------- analysis
    def lines_touched(self, kind: Optional[str] = None) -> set:
        """Set of cache lines appearing in the trace (Flush+Reload view)."""
        kinds = {"load", "store-write"} if kind is None else {kind}
        return {e.value for e in self.events if e.kind in kinds}

    def trace(self) -> tuple:
        """The full trace as a hashable tuple (for equality comparisons)."""
        return tuple(self.events)

    def __len__(self) -> int:
        return len(self.events)


def traces_equal(a: Observer, b: Observer) -> bool:
    """Whether two runs are indistinguishable to the attacker."""
    return a.trace() == b.trace()


# --------------------------------------------------------------- channels
#
# The trace decomposes into named side channels so a divergence can be
# triaged: two runs may agree on every cache line yet differ in hit levels
# (an eviction channel) or only in event cycles (a pure timing channel).
# ``channel_digests`` reduces each projection to a content hash, which is
# what the fuzzing oracle compares — digests survive pickling, caching and
# process boundaries without shipping whole traces around.

CHANNELS = ("load-line", "load-level", "store-addr", "store-write",
            "bp-update", "squash", "timing")

_CHANNEL_PROJECTIONS = {
    "load-line": lambda e: e.value if e.kind == "load" else None,
    "load-level": lambda e: e.detail if e.kind == "load" else None,
    "store-addr": lambda e: e.value if e.kind == "store-addr" else None,
    "store-write": lambda e: ((e.value, e.detail)
                              if e.kind == "store-write" else None),
    "bp-update": lambda e: ((e.value, e.detail)
                            if e.kind == "bp-update" else None),
    "squash": lambda e: ((e.cycle, e.value)
                         if e.kind == "squash" else None),
}


def channel_projection(observer: Observer, channel: str) -> tuple:
    """The sub-trace a single channel exposes, as a hashable tuple."""
    if channel == "timing":
        return tuple(e.cycle for e in observer.events)
    project = _CHANNEL_PROJECTIONS[channel]
    return tuple(p for p in map(project, observer.events) if p is not None)


def channel_digests(observer: Observer,
                    total_cycles: Optional[int] = None) -> dict:
    """Per-channel content hashes of one run's attacker-visible trace.

    ``total_cycles`` folds the run's overall execution time into the
    ``timing`` channel (two traces with identical events can still differ
    in when the program halts).
    """
    digests = {}
    for channel in CHANNELS:
        payload = repr(channel_projection(observer, channel))
        if channel == "timing" and total_cycles is not None:
            payload += f"|total={total_cycles}"
        digests[channel] = hashlib.sha256(payload.encode()).hexdigest()
    return digests


def differing_channels(a: dict, b: dict) -> list:
    """Channels whose digests differ between two runs (trace order)."""
    return [c for c in CHANNELS if a.get(c) != b.get(c)]


def differing_events(a: Observer, b: Observer, limit: int = 10) -> list:
    """First few positions where two traces diverge (diagnostics)."""
    differences = []
    for index, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea != eb:
            differences.append((index, ea, eb))
            if len(differences) >= limit:
                return differences
    if len(a.events) != len(b.events):
        differences.append((min(len(a.events), len(b.events)), "length",
                            (len(a.events), len(b.events))))
    return differences
