"""``repro pentest``: run the attack scenario matrix from the command line.

Examples::

    python -m repro.cli pentest                          # the full matrix
    python -m repro.cli pentest --scenario spectre-rsb
    python -m repro.cli pentest --configs UnsafeBaseline,STT --jobs 4
    python -m repro.cli pentest --json

Exit status is 0 when every cell matches the declarative expectation table
of :mod:`repro.security.scenarios`, 1 otherwise — so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.harness.configs import parse_config_names
from repro.security.scenarios import (ALIASES, SCENARIOS, render_matrix,
                                      scenario_matrix)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro pentest",
        description="Run attack scenarios against the Table 2 "
                    "configurations and check the leak matrix.")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME",
                        help="scenario to run (repeatable; default: all). "
                             f"Known: {', '.join(sorted(SCENARIOS))}")
    parser.add_argument("--configs", default="all",
                        help="comma-separated Table 2 configuration names "
                             "(default: all)")
    parser.add_argument("--models", default="spectre,futuristic",
                        help="attack models to run under "
                             "(default: spectre,futuristic)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the matrix (default: 1)")
    parser.add_argument("--json", action="store_true",
                        help="emit the matrix as JSON instead of a table")
    parser.add_argument("--list", action="store_true",
                        help="list the registered scenarios and exit")
    return parser


def _parse_models(text: str) -> list:
    models = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            models.append(AttackModel(part))
        except ValueError:
            raise SystemExit(
                f"error: unknown attack model {part!r}; "
                f"known: {', '.join(m.value for m in AttackModel)}")
    if not models:
        raise SystemExit("error: --models selected nothing")
    return models


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        width = max(len(name) for name in SCENARIOS)
        for name, s in SCENARIOS.items():
            print(f"{name:<{width}}  [{s.variant}; {s.exposure}] {s.summary}")
        return 0
    names = args.scenarios or list(SCENARIOS)
    for name in names:
        if ALIASES.get(name, name) not in SCENARIOS:
            print(f"error: unknown scenario {name!r}; known: "
                  f"{', '.join(sorted(SCENARIOS))}", file=sys.stderr)
            return 2
    results = scenario_matrix(scenarios=names,
                              configs=parse_config_names(args.configs),
                              models=_parse_models(args.models),
                              jobs=args.jobs)
    failures = [r for r in results if not r.passed]
    if args.json:
        print(json.dumps([{
            "scenario": r.scenario, "config": r.config, "model": r.model,
            "leaked": r.leaked, "expected": r.expected, "passed": r.passed,
        } for r in results], indent=2))
    else:
        print(render_matrix(results))
        print(f"\n{len(results)} cells, {len(results) - len(failures)} "
              f"matching the expectation table.")
    if failures:
        for r in failures:
            print(f"MISMATCH: {r.scenario} under {r.config}/{r.model}: "
                  f"leaked={r.leaked}, expected={r.expected}",
                  file=sys.stderr)
        return 1
    return 0
