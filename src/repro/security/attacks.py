"""Attack gadgets for penetration testing (paper Section 9.1).

Two attacks, matching the paper's pen-test matrix:

* :func:`spectre_v1` — the classic bounds-check-bypass universal read gadget.
  A transient out-of-bounds load reads a secret byte and transmits it through
  a probe-array cache line.  Leaks *speculatively-accessed* data: blocked by
  STT, SPT and SecureBaseline, observable on UnsafeBaseline.

* :func:`nonspec_secret` — the attack that motivates SPT (Section 3).  A
  constant-time victim holds a secret in a register *non-speculatively*; a
  mis-trained indirect branch transiently redirects execution into a transmit
  gadget that leaks the register.  Because the secret was non-speculatively
  accessed, STT does **not** protect it — only SPT and SecureBaseline block
  the leak.

Both builders take the secret byte as a parameter so trace-equivalence tests
can diff runs across secrets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program

PROBE_LINE_BYTES = 64
ATTACK_BASE = 0x400000


@dataclass(frozen=True)
class AttackProgram:
    """A victim program plus how to detect the leak in the observer trace."""

    program: Program
    probe_base: int
    secret: int

    def leaked_line(self) -> int:
        """The probe-array cache line that only the secret can select."""
        return self.probe_base + self.secret * PROBE_LINE_BYTES

    def leaked(self, observer) -> bool:
        """Did the run transmit the secret over the cache channel?"""
        return self.leaked_line() in observer.lines_touched()


def _slow_copy(b: ProgramBuilder, dst: str, src: str, mults: int = 30) -> None:
    """dst = src via a long multiply chain (delays whatever consumes dst).

    This widens the speculation window exactly the way real attacks do by
    evicting the bound/target from the cache.
    """
    b.mov(dst, src)
    b.li("t3", 1)
    for _ in range(mults):
        b.mul(dst, dst, "t3")


def spectre_v1(secret: int = 0xA7, in_bounds: int = 16,
               trainings: int = 3) -> AttackProgram:
    """Bounds-check bypass: ``if (i < N) leak(A[i])`` with i = N transient.

    The index sequence holds ``trainings`` passes over in-bounds indices and
    ends with the out-of-bounds index N, whose bounds check mispredicts after
    training.  The bound comparison is delayed by a multiply chain so the
    transient window is wide enough for both dependent loads.
    """
    if not 0 <= secret <= 0xFF:
        raise ValueError("secret must be a byte")
    b = ProgramBuilder("spectre-v1", data_base=ATTACK_BASE)
    array = b.alloc_bytes("victim_array",
                          [v % 8 for v in range(in_bounds)] + [secret])
    probe = b.reserve("probe", 256 * PROBE_LINE_BYTES, align=PROBE_LINE_BYTES)
    indices = []
    for _ in range(trainings):
        indices.extend(range(in_bounds))
    indices.append(in_bounds)        # the out-of-bounds attack access
    index_base = b.alloc_words("indices", indices)

    b.li("s2", array)
    b.li("s3", probe)
    b.li("s4", in_bounds)            # the bound
    b.li("s5", index_base)
    b.li("s6", 0)                    # sink
    # Warm the index array (the attacker controls it and touches it freely),
    # so the attack iteration's index load is an L1 hit and the bounds check
    # — delayed by the multiply chain — resolves well after the gadget runs.
    b.mov("t0", "s5")
    with b.loop(count=(len(indices) * 8 + 63) // 64 + 1, counter="t1"):
        b.ld("zero", "t0", 0)
        b.addi("t0", "t0", 64)
    with b.loop(count=len(indices), counter="s7"):
        b.ld("a0", "s5", 0)
        b.addi("s5", "s5", 8)
        _slow_copy(b, "t2", "s4")    # slow bound (widens the window)
        skip = b.forward_label()
        b.bge("a0", "t2", skip)      # the bounds check
        b.add("t0", "s2", "a0")
        b.lb("a1", "t0", 0)          # the (possibly out-of-bounds) access
        b.slli("a2", "a1", 6)        # select a probe line by the value
        b.add("a2", "a2", "s3")
        b.lb("a3", "a2", 0)          # the transmitter
        b.add("s6", "s6", "a3")
        b.place(skip)
    b.halt()
    return AttackProgram(b.build(), probe, secret)


def nonspec_secret(secret: int = 0x5C, trainings: int = 4) -> AttackProgram:
    """Leak a *non-speculative secret* through a mis-trained indirect branch.

    The victim loads a secret byte into a register and computes over it in
    constant time (never passing it to a transmitter or branch).  An indirect
    jump, previously trained to target a transmit gadget, transiently
    executes the gadget with the secret still in the register.  STT does not
    block this (the secret is non-speculatively accessed data); SPT does.
    """
    if not 0 <= secret <= 0xFF:
        raise ValueError("secret must be a byte")
    b = ProgramBuilder("nonspec-secret", data_base=ATTACK_BASE)
    probe = b.reserve("probe", 256 * PROBE_LINE_BYTES, align=PROBE_LINE_BYTES)
    # Per-call-site state: which handler the polymorphic call dispatches to
    # and which byte the victim computes over.  The first ``trainings``
    # entries call the (harmless-looking) gadget with a public zero byte;
    # the final entry carries the real secret and dispatches to `legit`.
    value_bytes = b.alloc_bytes("values", [0] * trainings + [secret])

    gadget = b.forward_label("gadget")
    legit = b.forward_label("legit")
    done = b.forward_label("done")

    b.li("s3", probe)
    b.li("s4", value_bytes)
    b.li("s5", 0)                     # target-table cursor (filled below)
    b.li("s9", 0)                     # sink
    calls = trainings + 1
    with b.loop(count=calls, counter="s7"):
        # The byte the victim holds in a register; during the final call this
        # is the secret, loaded and retired *non-speculatively*.
        b.add("t0", "s4", "s5")
        b.lb("s6", "t0", 0)
        # Constant-time computation over the byte (never leaks it).
        b.xori("s8", "s6", 0x3C)
        b.add("s8", "s8", "s8")
        b.xor("s8", "s8", "s6")
        # Dispatch target: the gadget while training, `legit` on the last
        # call.  A multiply chain delays resolution so the mispredicted
        # transient gadget has a wide window.
        b.add("t1", "s5", "zero")
        is_last = b.forward_label()
        pick_done = b.forward_label()
        b.li("t4", trainings)
        b.beq("s5", "t4", is_last)
        b.li("t1", "gadget")
        b.jal(0, pick_done)
        b.place(is_last)
        b.li("t1", "legit")
        b.place(pick_done)
        _slow_copy(b, "t2", "t1")
        b.jalr("ra", "t2", 0)         # the polymorphic call site
        b.addi("s5", "s5", 1)
    b.jal(0, done)

    b.place(gadget)
    # transmit(s6): select a probe line by the register value and load it.
    b.slli("a2", "s6", 6)
    b.add("a2", "a2", "s3")
    b.lb("a3", "a2", 0)
    b.add("s9", "s9", "a3")
    b.jalr(0, "ra", 0)                # return to the call site

    b.place(legit)
    b.addi("s8", "s8", 1)
    b.jalr(0, "ra", 0)

    b.place(done)
    b.halt()
    return AttackProgram(b.build(), probe, secret)
