"""Attack gadgets for penetration testing (paper Section 9.1).

The original pen-test pair, matching the paper's matrix:

* :func:`spectre_v1` — the classic bounds-check-bypass universal read gadget
  (Spectre-PHT).  A transient out-of-bounds load reads a secret byte and
  transmits it through a probe-array cache line.  Leaks *speculatively-
  accessed* data: blocked by STT, SPT and SecureBaseline, observable on
  UnsafeBaseline.

* :func:`nonspec_secret` — the attack that motivates SPT (Section 3).  A
  constant-time victim holds a secret in a register *non-speculatively*; a
  mis-trained indirect branch transiently redirects execution into a transmit
  gadget that leaks the register.  Because the secret was non-speculatively
  accessed, STT does **not** protect it — only SPT and SecureBaseline block
  the leak.

Plus one builder per remaining Spectre variant (Kocher et al. taxonomy),
registered and documented in :mod:`repro.security.scenarios`:

* :func:`spectre_btb`  — indirect-target injection via BTB index aliasing
  (variant 2); the attacker plants a wildcard-tag entry with
  ``train_btb(..., alias_ok=True)`` before the run.
* :func:`spectre_rsb`  — return-stack misdirection (variant 5): a callee
  overwrites its return address, so the RAS-predicted return transiently
  executes the instructions after the call site — the transmit gadget.
* :func:`spectre_stl`  — speculative store bypass (variant 4): a load
  issues past an older store whose address is still unresolved and reads
  the stale secret the store was about to overwrite.  Needs
  ``memory_dependence_speculation=True`` (carried in ``overrides``).
* :func:`uninit_transient` — pitchfork's ``SpectreOOBState`` policy made
  concrete: never-written heap bytes read as a keyed hash of
  ``uninit_secret_seed``, and a bounds-bypass gadget transiently reads one.

All builders take the secret (byte or seed) as a parameter so
trace-equivalence tests can diff runs across secrets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.memory.main_memory import uninit_byte

PROBE_LINE_BYTES = 64
ATTACK_BASE = 0x400000


@dataclass(frozen=True)
class AttackProgram:
    """A victim program plus how to detect the leak in the observer trace.

    ``setup`` (when present) runs against the constructed core before the
    simulation starts — the attacker's out-of-band preparation step, e.g.
    planting an aliased BTB entry.  ``overrides`` are MachineParams field
    overrides the attack depends on (e.g. memory-dependence speculation).
    """

    program: Program
    probe_base: int
    secret: int
    setup: Optional[Callable] = None
    overrides: Optional[dict] = None

    def leaked_line(self) -> int:
        """The probe-array cache line that only the secret can select."""
        return self.probe_base + self.secret * PROBE_LINE_BYTES

    def leaked(self, observer) -> bool:
        """Did the run transmit the secret over the cache channel?"""
        return self.leaked_line() in observer.lines_touched()


def _slow_copy(b: ProgramBuilder, dst: str, src: str, mults: int = 30) -> None:
    """dst = src via a long multiply chain (delays whatever consumes dst).

    This widens the speculation window exactly the way real attacks do by
    evicting the bound/target from the cache.
    """
    b.mov(dst, src)
    b.li("t3", 1)
    for _ in range(mults):
        b.mul(dst, dst, "t3")


def _transmit(b: ProgramBuilder, value_reg: str, probe_reg: str = "s3",
              sink_reg: str = "s9") -> None:
    """Load the probe line selected by ``value_reg`` (the covert send)."""
    b.slli("a2", value_reg, 6)
    b.add("a2", "a2", probe_reg)
    b.lb("a3", "a2", 0)
    b.add(sink_reg, sink_reg, "a3")


def spectre_v1(secret: int = 0xA7, in_bounds: int = 16,
               trainings: int = 3, widen: int = 30) -> AttackProgram:
    """Bounds-check bypass: ``if (i < N) leak(A[i])`` with i = N transient.

    The index sequence holds ``trainings`` passes over in-bounds indices and
    ends with the out-of-bounds index N, whose bounds check mispredicts after
    training.  The bound comparison is delayed by a ``widen``-long multiply
    chain so the transient window is wide enough for both dependent loads.
    """
    if not 0 <= secret <= 0xFF:
        raise ValueError("secret must be a byte")
    b = ProgramBuilder("spectre-v1", data_base=ATTACK_BASE)
    array = b.alloc_bytes("victim_array",
                          [v % 8 for v in range(in_bounds)] + [secret])
    probe = b.reserve("probe", 256 * PROBE_LINE_BYTES, align=PROBE_LINE_BYTES)
    indices = []
    for _ in range(trainings):
        indices.extend(range(in_bounds))
    indices.append(in_bounds)        # the out-of-bounds attack access
    index_base = b.alloc_words("indices", indices)

    b.li("s2", array)
    b.li("s3", probe)
    b.li("s4", in_bounds)            # the bound
    b.li("s5", index_base)
    b.li("s6", 0)                    # sink
    # Warm the index array (the attacker controls it and touches it freely),
    # so the attack iteration's index load is an L1 hit and the bounds check
    # — delayed by the multiply chain — resolves well after the gadget runs.
    b.mov("t0", "s5")
    with b.loop(count=(len(indices) * 8 + 63) // 64 + 1, counter="t1"):
        b.ld("zero", "t0", 0)
        b.addi("t0", "t0", 64)
    with b.loop(count=len(indices), counter="s7"):
        b.ld("a0", "s5", 0)
        b.addi("s5", "s5", 8)
        _slow_copy(b, "t2", "s4", widen)   # slow bound (widens the window)
        skip = b.forward_label()
        b.bge("a0", "t2", skip)      # the bounds check
        b.add("t0", "s2", "a0")
        b.lb("a1", "t0", 0)          # the (possibly out-of-bounds) access
        b.slli("a2", "a1", 6)        # select a probe line by the value
        b.add("a2", "a2", "s3")
        b.lb("a3", "a2", 0)          # the transmitter
        b.add("s6", "s6", "a3")
        b.place(skip)
    b.halt()
    return AttackProgram(b.build(), probe, secret)


def nonspec_secret(secret: int = 0x5C, trainings: int = 4) -> AttackProgram:
    """Leak a *non-speculative secret* through a mis-trained indirect branch.

    The victim loads a secret byte into a register and computes over it in
    constant time (never passing it to a transmitter or branch).  An indirect
    jump, previously trained to target a transmit gadget, transiently
    executes the gadget with the secret still in the register.  STT does not
    block this (the secret is non-speculatively accessed data); SPT does.
    """
    if not 0 <= secret <= 0xFF:
        raise ValueError("secret must be a byte")
    b = ProgramBuilder("nonspec-secret", data_base=ATTACK_BASE)
    probe = b.reserve("probe", 256 * PROBE_LINE_BYTES, align=PROBE_LINE_BYTES)
    # Per-call-site state: which handler the polymorphic call dispatches to
    # and which byte the victim computes over.  The first ``trainings``
    # entries call the (harmless-looking) gadget with a public zero byte;
    # the final entry carries the real secret and dispatches to `legit`.
    value_bytes = b.alloc_bytes("values", [0] * trainings + [secret])

    gadget = b.forward_label("gadget")
    legit = b.forward_label("legit")
    done = b.forward_label("done")

    b.li("s3", probe)
    b.li("s4", value_bytes)
    b.li("s5", 0)                     # target-table cursor (filled below)
    b.li("s9", 0)                     # sink
    calls = trainings + 1
    with b.loop(count=calls, counter="s7"):
        # The byte the victim holds in a register; during the final call this
        # is the secret, loaded and retired *non-speculatively*.
        b.add("t0", "s4", "s5")
        b.lb("s6", "t0", 0)
        # Constant-time computation over the byte (never leaks it).
        b.xori("s8", "s6", 0x3C)
        b.add("s8", "s8", "s8")
        b.xor("s8", "s8", "s6")
        # Dispatch target: the gadget while training, `legit` on the last
        # call.  A multiply chain delays resolution so the mispredicted
        # transient gadget has a wide window.
        b.add("t1", "s5", "zero")
        is_last = b.forward_label()
        pick_done = b.forward_label()
        b.li("t4", trainings)
        b.beq("s5", "t4", is_last)
        b.li("t1", "gadget")
        b.jal(0, pick_done)
        b.place(is_last)
        b.li("t1", "legit")
        b.place(pick_done)
        _slow_copy(b, "t2", "t1")
        b.jalr("ra", "t2", 0)         # the polymorphic call site
        b.addi("s5", "s5", 1)
    b.jal(0, done)

    b.place(gadget)
    # transmit(s6): select a probe line by the register value and load it.
    b.slli("a2", "s6", 6)
    b.add("a2", "a2", "s3")
    b.lb("a3", "a2", 0)
    b.add("s9", "s9", "a3")
    b.jalr(0, "ra", 0)                # return to the call site

    b.place(legit)
    b.addi("s8", "s8", 1)
    b.jalr(0, "ra", 0)

    b.place(done)
    b.halt()
    return AttackProgram(b.build(), probe, secret)


def spectre_btb(secret: int = 0x6D, widen: int = 64) -> AttackProgram:
    """Spectre variant 2: indirect-target injection via BTB aliasing.

    The victim makes one legitimate indirect call through a register that a
    multiply chain delays.  Before the run (the ``setup`` hook), the
    attacker plants a BTB entry *from an aliased PC* (``callsite + one BTB
    wrap``) with ``alias_ok=True``, so fetch predicts the victim's call
    straight into the transmit gadget.  The secret sits in a register,
    loaded non-speculatively — so STT does not protect it, SPT does.
    """
    if not 0 <= secret <= 0xFF:
        raise ValueError("secret must be a byte")
    b = ProgramBuilder("spectre-btb", data_base=ATTACK_BASE)
    probe = b.reserve("probe", 256 * PROBE_LINE_BYTES, align=PROBE_LINE_BYTES)
    values = b.alloc_bytes("values", [secret])
    gadget = b.forward_label("gadget")
    legit = b.forward_label("legit")
    done = b.forward_label("done")

    b.li("s3", probe)
    b.li("s9", 0)                     # sink
    b.li("t0", values)
    b.lb("zero", "t0", 0)             # warm the secret line (public address)
    b.lb("s6", "t0", 0)               # the non-speculative secret
    b.xori("s8", "s6", 0x3C)          # constant-time computation over it
    b.add("s8", "s8", "s8")
    b.li("t1", "legit")
    _slow_copy(b, "t2", "t1", widen)  # delay the call's resolution
    b.label("callsite")
    b.jalr("ra", "t2", 0)             # the victim's only indirect call
    b.jal(0, done)

    b.place(gadget)                   # never architecturally reached
    _transmit(b, "s6")
    b.jalr(0, "ra", 0)

    b.place(legit)
    b.addi("s8", "s8", 1)
    b.jalr(0, "ra", 0)

    b.place(done)
    b.halt()
    program = b.build()

    def setup(core) -> None:
        # Train from the attacker's congruent PC, one BTB wrap away; the
        # wildcard tag is what index aliasing gives a real attacker.
        aliased_pc = program.symbols["callsite"] + core.params.btb_entries
        core.predictor.train_btb(aliased_pc, program.symbols["gadget"],
                                 alias_ok=True)

    return AttackProgram(program, probe, secret, setup=setup)


def spectre_rsb(secret: int = 0x3B, widen: int = 64) -> AttackProgram:
    """Spectre variant 5: return-stack (RAS) misdirection.

    ``main`` calls ``outer``, which calls ``f``; ``f`` overwrites its return
    address (retpoline-style mismatch) so its return *architecturally* goes
    to ``skip`` — but the RAS predicts the instruction after the call site,
    where the transmit gadget sits.  The wrong path then executes a return
    of its own, consuming ``outer``'s live RAS entry: exactly the
    under/overflow corruption the predictor-state checkpoint fix repairs.
    The secret is non-speculative (register), so STT leaks and SPT blocks.
    """
    if not 0 <= secret <= 0xFF:
        raise ValueError("secret must be a byte")
    b = ProgramBuilder("spectre-rsb", data_base=ATTACK_BASE)
    probe = b.reserve("probe", 256 * PROBE_LINE_BYTES, align=PROBE_LINE_BYTES)
    values = b.alloc_bytes("values", [secret])
    outer = b.forward_label("outer")
    f = b.forward_label("f")
    skip = b.forward_label("skip")
    done = b.forward_label("done")

    b.li("s3", probe)
    b.li("s9", 0)
    b.li("t0", values)
    b.lb("zero", "t0", 0)             # warm the secret line
    b.lb("s6", "t0", 0)               # the non-speculative secret
    b.xori("s8", "s6", 0x11)          # constant-time use
    b.jal("ra", outer)                # RAS: [main_ret]
    b.jal(0, done)                    # main_ret

    b.place(outer)
    b.mov("s10", "ra")                # save the real return address
    b.jal("ra", f)                    # RAS: [main_ret, outer_ret]
    # outer_ret: the RAS-predicted (transient) return target of ``f``.
    _transmit(b, "s6")                # the gadget — architecturally skipped
    b.jalr(0, "ra", 0)                # wrong-path return: pops main_ret!
    b.place(skip)
    b.addi("s8", "s8", 2)
    b.mov("ra", "s10")
    b.jalr(0, "ra", 0)                # outer's real return -> main_ret

    b.place(f)
    b.li("ra", "skip")                # overwrite the return address...
    _slow_copy(b, "ra", "ra", widen)  # ...and delay its availability
    b.jalr(0, "ra", 0)                # return: RAS says outer_ret (gadget)

    b.place(done)
    b.halt()
    return AttackProgram(b.build(), probe, secret)


def spectre_stl(secret: int = 0x51, widen: int = 24) -> AttackProgram:
    """Spectre variant 4: speculative store bypass (store-to-load).

    Memory at ``slot`` initially holds the stale secret.  The victim stores
    a public value over it, but the store's *address* arrives late (multiply
    chain); with memory-dependence speculation enabled, the younger load
    issues past the unresolved store, reads the stale secret, and the
    dependent transmit fires before the violation squash.  Architecturally
    the load forwards the public value, so every run retires identically.
    ``overrides`` carries ``memory_dependence_speculation=True`` — engines
    that protect speculative data disable MDS, so only UnsafeBaseline leaks.
    """
    if not 0 <= secret <= 0xFF:
        raise ValueError("secret must be a byte")
    public = (secret + 1) & 0xFF      # never selects the secret's probe line
    b = ProgramBuilder("spectre-stl", data_base=ATTACK_BASE)
    probe = b.reserve("probe", 256 * PROBE_LINE_BYTES, align=PROBE_LINE_BYTES)
    slot = b.alloc_bytes("slot", [secret])

    b.li("s3", probe)
    b.li("s9", 0)
    b.li("t0", slot)
    b.lb("zero", "t0", 0)             # warm the slot line (public address)
    b.li("t5", public)
    _slow_copy(b, "t1", "t0", widen)  # the store address arrives late
    b.sb("t5", "t1", 0)               # store public over the stale secret
    b.lb("a1", "t0", 0)               # the bypassing load (address ready now)
    _transmit(b, "a1")
    b.halt()
    return AttackProgram(b.build(), probe, secret,
                         overrides={"memory_dependence_speculation": True})


def uninit_transient(seed: int = 0x5EED, in_bounds: int = 8,
                     trainings: int = 3, widen: int = 30) -> AttackProgram:
    """Uninitialised-memory-is-secret: a bounds bypass into unwritten heap.

    Under ``uninit_secret_seed=seed`` every never-written byte reads as
    ``uninit_byte(seed, address)``.  The victim array holds only zeros; the
    out-of-bounds index reaches a *reserved but never initialised* heap
    region, so the transient load observes pure uninitialised state — the
    policy pitchfork's ``SpectreOOBState`` treats as secret.  Transmitted
    values are displaced by +1 so the training passes (value 0 -> line 1)
    can never collide with the leaked line.

    The heap line is cache-resident when the attack iteration runs — a
    recently-freed allocation, warmed by a discarding touch (``lb zero``)
    whose line address is seed-independent — so the transient read is an L1
    hit and fits the same speculation window as :func:`spectre_v1`.  The
    uninit byte itself is read only transiently, so every protection scheme
    blocks the leak (STT included: the exposure is speculative).
    """
    b = ProgramBuilder("uninit-transient", data_base=ATTACK_BASE)
    array = b.alloc_bytes("victim_array", [0] * in_bounds)
    heap = b.reserve("uninit_heap", PROBE_LINE_BYTES,
                     align=PROBE_LINE_BYTES)
    probe = b.reserve("probe", 257 * PROBE_LINE_BYTES,
                      align=PROBE_LINE_BYTES)
    leaked = uninit_byte(seed, heap)
    if leaked == 0:
        raise ValueError(f"seed {seed:#x} hashes to byte 0 at the heap "
                         f"address; pick another seed")
    indices = []
    for _ in range(trainings):
        indices.extend(range(in_bounds))
    indices.append(heap - array)      # the out-of-bounds attack access
    index_base = b.alloc_words("indices", indices)

    b.li("s2", array)
    b.li("s3", probe)
    b.li("s4", in_bounds)
    b.li("s5", index_base)
    b.li("s9", 0)
    b.li("t0", heap)                  # the freed allocation: touch its line
    b.lb("zero", "t0", 0)             # (value discarded; address is public)
    b.mov("t0", "s5")                 # warm the index array
    with b.loop(count=(len(indices) * 8 + 63) // 64 + 1, counter="t1"):
        b.ld("zero", "t0", 0)
        b.addi("t0", "t0", 64)
    with b.loop(count=len(indices), counter="s7"):
        b.ld("a0", "s5", 0)
        b.addi("s5", "s5", 8)
        _slow_copy(b, "t2", "s4", widen)   # slow bound (widens the window)
        skip = b.forward_label()
        b.bge("a0", "t2", skip)
        b.add("t0", "s2", "a0")
        b.lb("a1", "t0", 0)           # in training: 0; transient: uninit byte
        b.addi("a1", "a1", 1)         # displace so line 0 values can't alias
        _transmit(b, "a1")
        b.place(skip)
    b.halt()
    return AttackProgram(b.build(), probe, leaked + 1,
                         overrides={"uninit_secret_seed": seed})
