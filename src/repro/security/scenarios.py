"""The Spectre-variant attack scenario library (paper Section 9.1, extended).

Every named scenario bundles an attack builder from
:mod:`repro.security.attacks` with its *declarative expectation row*: for
each Table 2 configuration, whether the covert-channel probe line must be
touched.  The rows encode the paper's protection-scope argument:

* ``speculative`` exposure — the secret only ever exists transiently
  (bounds bypass, store bypass, uninitialised heap).  Everything except
  UnsafeBaseline blocks the leak: STT and SPT both taint
  speculatively-accessed data, and SecureBaseline delays the transmitter.

* ``nonspeculative`` exposure — the secret was loaded and *retired* before
  the transient window (a register the victim computes over).  STT's scope
  excludes such data, so STT leaks alongside UnsafeBaseline; SPT's
  taint-everything start state and SecureBaseline still block it.

The expectation is model-independent: scenarios are built so the verdict
holds under both the Spectre and Futuristic attack models (the builders'
speculation windows are wide enough to cover the Futuristic VP delays).

``scenario_matrix`` runs the full scenario x config x model grid, optionally
across worker processes, and ``render_matrix`` pretty-prints it.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.core.attack_model import AttackModel
from repro.harness.configs import CONFIGURATIONS, make_engine
from repro.pipeline.core import OoOCore, SimResult
from repro.pipeline.params import MachineParams
from repro.security import attacks
from repro.security.attacks import AttackProgram

SPECULATIVE = "speculative"
NONSPECULATIVE = "nonspeculative"


def _expected_row(exposure: str) -> dict[str, bool]:
    """The per-config leak expectation for an exposure class."""
    if exposure == SPECULATIVE:
        return {name: name == "UnsafeBaseline" for name in CONFIGURATIONS}
    if exposure == NONSPECULATIVE:
        return {name: name in ("UnsafeBaseline", "STT")
                for name in CONFIGURATIONS}
    raise ValueError(exposure)


@dataclass(frozen=True)
class Scenario:
    """A named attack scenario with its declarative expectation row."""

    name: str
    variant: str                  # Kocher et al. taxonomy label
    exposure: str                 # SPECULATIVE or NONSPECULATIVE
    summary: str
    build: Callable[[], AttackProgram]
    expected: Mapping[str, bool]  # config name -> must the probe line leak?


def _scenario(name: str, variant: str, exposure: str, summary: str,
              build: Callable[[], AttackProgram]) -> Scenario:
    return Scenario(name, variant, exposure, summary, build,
                    _expected_row(exposure))


SCENARIOS: dict[str, Scenario] = {s.name: s for s in (
    _scenario(
        "spectre-pht", "v1 (PHT)", SPECULATIVE,
        "Bounds-check bypass: trained direction predictor lets a transient "
        "out-of-bounds load read and transmit a secret byte.",
        attacks.spectre_v1),
    _scenario(
        "spectre-btb", "v2 (BTB)", NONSPECULATIVE,
        "Indirect-target injection: an aliased wildcard BTB entry redirects "
        "the victim's call into a gadget that leaks a retired register.",
        attacks.spectre_btb),
    _scenario(
        "spectre-rsb", "v5 (RSB)", NONSPECULATIVE,
        "Return-stack misdirection: a callee overwrites its return address, "
        "so the RAS-predicted return transiently runs the transmit gadget.",
        attacks.spectre_rsb),
    _scenario(
        "spectre-stl", "v4 (STL)", SPECULATIVE,
        "Speculative store bypass: a load issues past an unresolved older "
        "store and reads the stale secret it was about to overwrite.",
        attacks.spectre_stl),
    _scenario(
        "nonspec-secret", "SPT motivation", NONSPECULATIVE,
        "A constant-time victim holds a secret register non-speculatively; "
        "a mis-trained indirect branch transiently transmits it.",
        attacks.nonspec_secret),
    _scenario(
        "uninit-transient", "SpectreOOBState", SPECULATIVE,
        "Uninitialised-memory-is-secret policy: a bounds bypass transiently "
        "reads a never-written heap byte (keyed-hash fill).",
        attacks.uninit_transient),
)}

# Historical names used by the original pen-test pair keep working.
ALIASES = {"spectre-v1": "spectre-pht"}


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name or alias (KeyError when unknown)."""
    return SCENARIOS[ALIASES.get(name, name)]


def expected_to_leak(scenario: str, config: str,
                     model: Optional[AttackModel] = None) -> bool:
    """The declarative expectation table, replacing the old hard-coding.

    ``model`` is accepted for symmetry with ``run_scenario`` but ignored:
    the expectation rows are attack-model independent by construction.
    """
    if config not in CONFIGURATIONS:
        raise KeyError(config)
    return get_scenario(scenario).expected[config]


def scenario_params(attack: AttackProgram,
                    params: Optional[MachineParams] = None) -> MachineParams:
    """Machine parameters with the attack's overrides applied."""
    params = params or MachineParams()
    if attack.overrides:
        params = dataclasses.replace(params, **attack.overrides)
    return params


def run_scenario(scenario: str, config: str, model: AttackModel,
                 params: Optional[MachineParams] = None,
                 ) -> tuple[bool, SimResult]:
    """Run one scenario cell; returns (leaked, sim_result)."""
    attack = get_scenario(scenario).build()
    core = OoOCore(attack.program, engine=make_engine(config, model),
                   params=scenario_params(attack, params))
    if attack.setup:
        attack.setup(core)
    sim = core.run(max_instructions=500_000)
    if not sim.halted:
        raise RuntimeError(
            f"scenario {scenario} did not halt under {config}/{model.name}")
    return attack.leaked(sim.observer), sim


@dataclass(frozen=True)
class ScenarioResult:
    """Leakage verdict for one (scenario, config, model) cell."""

    scenario: str
    config: str
    model: str                    # AttackModel name (picklable)
    leaked: bool
    expected: bool

    @property
    def passed(self) -> bool:
        return self.leaked == self.expected


def _run_cell(cell: tuple[str, str, str]) -> ScenarioResult:
    """Worker for one matrix cell (module-level: picklable)."""
    scenario, config, model_name = cell
    model = AttackModel[model_name]
    leaked, _ = run_scenario(scenario, config, model)
    return ScenarioResult(scenario, config, model_name, leaked,
                          expected_to_leak(scenario, config))


def scenario_matrix(scenarios: Optional[Sequence[str]] = None,
                    configs: Optional[Sequence[str]] = None,
                    models: Optional[Sequence[AttackModel]] = None,
                    jobs: int = 1) -> list[ScenarioResult]:
    """Run the scenario x config x model grid, optionally in parallel.

    Results are deterministic and ordering-stable regardless of ``jobs``:
    every cell simulation is self-contained, so worker processes return
    bit-identical verdicts to an in-process run.
    """
    names = [ALIASES.get(n, n) for n in (scenarios or SCENARIOS)]
    for name in names:
        if name not in SCENARIOS:
            raise KeyError(name)
    configs = list(configs or CONFIGURATIONS)
    models = list(models or (AttackModel.SPECTRE, AttackModel.FUTURISTIC))
    cells = [(name, config, model.name)
             for name in names for model in models for config in configs]
    if jobs <= 1:
        return [_run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_run_cell, cells))


def render_matrix(results: Sequence[ScenarioResult]) -> str:
    """Text table: one row per scenario x model, one column per config."""
    configs = list(dict.fromkeys(r.config for r in results))
    rows: dict[tuple[str, str], dict[str, ScenarioResult]] = {}
    for r in results:
        rows.setdefault((r.scenario, r.model), {})[r.config] = r

    def short(config: str) -> str:
        return (config.replace("Baseline", "").replace("Shadow", "Sh")
                .replace("SPT{", "SPT:").rstrip("}"))

    headers = ["scenario", "model"] + [short(c) for c in configs]
    table = [headers]
    for (scenario, model), cells in rows.items():
        row = [scenario, model]
        for config in configs:
            cell = cells.get(config)
            if cell is None:
                row.append("-")
            else:
                verdict = "LEAK" if cell.leaked else "none"
                row.append(verdict if cell.passed else f"{verdict}(!)")
        table.append(row)
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in table]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)
