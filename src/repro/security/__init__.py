"""Attacker observation model and penetration-test gadgets."""

from repro.security.observer import (Observation, Observer, differing_events,
                                     traces_equal)

__all__ = ["Observation", "Observer", "differing_events", "traces_equal"]
