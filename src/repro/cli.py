"""Artifact-compatible command-line interface.

The paper's artifact drives gem5 through a helper script ``run_spt.py``
(Appendix A.4).  This CLI accepts the same parameters against this
reproduction's simulator and emits a gem5-style ``stats.txt``:

========================  =======================================
Artifact parameter        Here
========================  =======================================
``executable``            a registered workload name, or a path to
                          an ``.asm`` file in this ISA
``--enable-spt``          enable SPT's protection mechanism
``--threat-model``        ``spectre`` or ``futuristic``
``--untaint-method``      ``none`` (SecureBaseline), ``fwd``,
                          ``bwd`` or ``ideal``
``--enable-shadow-l1``    L1D taint tracking
``--enable-shadow-mem``   all-memory taint tracking
``--track-insts``         print the untaint-event breakdown
``--output-dir``          where ``stats.txt`` is written
========================  =======================================

Examples::

    python -m repro.cli mcf --enable-spt --threat-model futuristic \\
        --untaint-method bwd --enable-shadow-l1
    python -m repro.cli chacha20 --stt --threat-model spectre
    python -m repro.cli program.asm          # InsecureBaseline
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.core.baselines import SecureBaseline, UnsafeBaseline
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.core.stt import STTEngine
from repro.harness.configs import CONFIGURATIONS
from repro.harness.parallel import RunSpec, run_many
from repro.harness.runner import RunResult, build_core
from repro.isa.assembler import assemble
from repro.isa.instructions import Program
from repro.pipeline.engine_api import ProtectionEngine
from repro.pipeline.params import MachineParams
from repro.workloads.registry import WORKLOADS, get as get_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_spt",
        description="Run a program on the SPT reproduction simulator "
                    "(parameters mirror the paper's artifact).")
    parser.add_argument("executable", nargs="+",
                        help="registered workload name(s) or path(s) to "
                             ".asm files; several run as one parallel sweep")
    parser.add_argument("--enable-spt", action="store_true",
                        help="enable SPT's protection mechanism")
    parser.add_argument("--stt", action="store_true",
                        help="run the STT baseline instead of SPT")
    parser.add_argument("--threat-model", choices=["spectre", "futuristic"],
                        help="required with --enable-spt or --stt")
    parser.add_argument("--untaint-method",
                        choices=["none", "fwd", "bwd", "ideal"],
                        help="required with --enable-spt")
    parser.add_argument("--enable-shadow-l1", action="store_true")
    parser.add_argument("--enable-shadow-mem", action="store_true")
    parser.add_argument("--track-insts", action="store_true",
                        help="output detailed taint tracking information")
    parser.add_argument("--output-dir", default="m5out",
                        help="directory for stats.txt (default: m5out)")
    parser.add_argument("--max-instructions", type=int, default=1_000_000)
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor")
    parser.add_argument("--untaint-broadcast-width", type=int, default=3)
    parser.add_argument("--backend", choices=["reference", "vector"],
                        default="reference",
                        help="simulation backend: the reference model or "
                             "the vectorised fast path (bit-identical; "
                             "requires numpy)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             "(also: REPRO_NO_CACHE=1)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for multi-workload sweeps "
                             "(default: REPRO_JOBS or CPU count)")
    return parser


def validate_args(args: argparse.Namespace) -> Optional[str]:
    """Returns an error message for invalid combinations, or None."""
    if args.enable_shadow_l1 and args.enable_shadow_mem:
        return "cannot specify both --enable-shadow-l1 and --enable-shadow-mem"
    if args.enable_spt and args.stt:
        return "cannot specify both --enable-spt and --stt"
    if args.enable_spt and not args.threat_model:
        return "--threat-model is required when --enable-spt is specified"
    if args.enable_spt and not args.untaint_method:
        return "--untaint-method is required when --enable-spt is specified"
    if args.stt and not args.threat_model:
        return "--threat-model is required when --stt is specified"
    if args.track_insts and not args.enable_spt:
        return "--track-insts can only be specified with --enable-spt"
    if not args.enable_spt and (args.enable_shadow_l1
                                or args.enable_shadow_mem
                                or args.untaint_method):
        return "shadow/untaint options require --enable-spt"
    return None


def make_engine_from_args(args: argparse.Namespace) -> ProtectionEngine:
    if not args.enable_spt and not args.stt:
        return UnsafeBaseline()
    model = AttackModel(args.threat_model)
    if args.stt:
        return STTEngine(model)
    if args.untaint_method == "none":
        return SecureBaseline(model)
    if args.enable_shadow_mem:
        shadow = ShadowMode.FULL_MEMORY
    elif args.enable_shadow_l1:
        shadow = ShadowMode.L1
    else:
        shadow = ShadowMode.NONE
    return SPTEngine(model,
                     backward=args.untaint_method in ("bwd", "ideal"),
                     shadow=shadow,
                     ideal=args.untaint_method == "ideal")


def config_name_from_args(args: argparse.Namespace) -> Optional[str]:
    """Map the artifact flags onto a Table 2 configuration name.

    Returns None for combinations outside Table 2 (those run directly
    rather than through the cached ``run_many`` path).
    """
    if not args.enable_spt and not args.stt:
        return "UnsafeBaseline"
    if args.stt:
        return "STT"
    if args.untaint_method == "none":
        return "SecureBaseline"
    if args.enable_shadow_mem:
        shadow = "ShadowMem"
    elif args.enable_shadow_l1:
        shadow = "ShadowL1"
    else:
        shadow = "NoShadowL1"
    untaint = {"fwd": "Fwd", "bwd": "Bwd", "ideal": "Ideal"}[
        args.untaint_method]
    name = f"SPT{{{untaint},{shadow}}}"
    return name if name in CONFIGURATIONS else None


def load_program(executable: str, scale: int) -> Program:
    if executable in WORKLOADS:
        return get_workload(executable).program(scale)
    if os.path.exists(executable):
        with open(executable) as handle:
            return assemble(handle.read(),
                            name=os.path.basename(executable))
    raise SystemExit(
        f"error: {executable!r} is neither a registered workload "
        f"({', '.join(sorted(WORKLOADS))}) nor an existing .asm file")


def format_stats(sim, engine: ProtectionEngine) -> str:
    """gem5-style stats.txt body."""
    lines = [
        "---------- Begin Simulation Statistics ----------",
        f"numCycles {sim.cycles:>40} # total cycles simulated",
        f"committedInsts {sim.retired:>36} # instructions retired",
        f"ipc {format(sim.ipc, '.6f'):>47} # committed IPC",
        f"configName {sim.config_name:>40} # protection configuration",
    ]
    for key in sorted(sim.stats):
        lines.append(f"{key} {sim.stats[key]:>{max(1, 50 - len(key))}} #")
    if isinstance(engine, SPTEngine):
        for kind, count in sorted(engine.untaint.as_dict().items()):
            name = f"untaint::{kind}"
            lines.append(f"{name} {count:>{max(1, 50 - len(name))}} #")
        lines.append(f"untaint::total {engine.untaint.total:>36} #")
    lines.append("---------- End Simulation Statistics   ----------")
    return "\n".join(lines) + "\n"


def format_stats_result(result: RunResult) -> str:
    """gem5-style stats.txt body from a harness ``RunResult``.

    Mirrors :func:`format_stats`; ``result.stats`` already carries the
    engine counters merged in by ``SimResult``.
    """
    lines = [
        "---------- Begin Simulation Statistics ----------",
        f"numCycles {result.cycles:>40} # total cycles simulated",
        f"committedInsts {result.retired:>36} # instructions retired",
        f"ipc {format(result.ipc, '.6f'):>47} # committed IPC",
        f"configName {result.config:>40} # protection configuration",
    ]
    for key in sorted(result.stats):
        lines.append(f"{key} {result.stats[key]:>{max(1, 50 - len(key))}} #")
    if result.untaint_by_kind:
        for kind, count in sorted(result.untaint_by_kind.items()):
            name = f"untaint::{kind}"
            lines.append(f"{name} {count:>{max(1, 50 - len(name))}} #")
        total = sum(result.untaint_by_kind.values())
        lines.append(f"untaint::total {total:>36} #")
    lines.append("---------- End Simulation Statistics   ----------")
    return "\n".join(lines) + "\n"


def _print_track_insts(untaint_by_kind: dict, untaints_per_cycle: dict) -> None:
    print("untaint events:")
    for kind, count in sorted(untaint_by_kind.items()):
        print(f"  {kind:<16} {count}")
    if untaints_per_cycle:
        print("registers untainted per untainting cycle:")
        for width in sorted(untaints_per_cycle):
            print(f"  {width:>3}: {untaints_per_cycle[width]}")


def _stats_filename(executable: str, multiple: bool) -> str:
    if not multiple:
        return "stats.txt"
    stem = os.path.splitext(os.path.basename(executable))[0]
    return f"stats_{stem}.txt"


def _run_direct(args: argparse.Namespace, executable: str,
                params: MachineParams) -> tuple:
    """The uncached path: .asm files and non-Table-2 flag combinations."""
    program = load_program(executable, args.scale)
    engine = make_engine_from_args(args)
    core = build_core(program, engine=engine, params=params)
    engine = core.engine    # the vector backend may have wrapped it
    sim = core.run(max_instructions=args.max_instructions)
    untaint_by_kind: dict = {}
    untaints_per_cycle: dict = {}
    if isinstance(engine, SPTEngine):
        untaint_by_kind = engine.untaint.as_dict()
        untaints_per_cycle = dict(engine.untaint.untaints_per_cycle)
    result = RunResult(program.name, engine.name,
                       AttackModel(args.threat_model) if args.threat_model
                       else AttackModel.FUTURISTIC,
                       sim.cycles, sim.retired, sim.stats,
                       untaint_by_kind, untaints_per_cycle)
    return result, format_stats(sim, engine)


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommands ride in front of the artifact-compatible interface.
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import main as fuzz_main
        return fuzz_main(argv[1:])
    if argv and argv[0] == "stats":
        from repro.obs.cli import stats_main
        return stats_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.obs.cli import bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "pentest":
        from repro.security.cli import main as pentest_main
        return pentest_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.check.cli import main as check_main
        return check_main(argv[1:])
    if argv and argv[0] == "verify":
        from repro.verify.cli import main as verify_main
        return verify_main(argv[1:])
    if argv and argv[0] == "backend-diff":
        from repro.fastpath.diff import main as diff_main
        return diff_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "sweep":
        from repro.serve.cli import sweep_main
        return sweep_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.harness.cache_cli import cache_main
        return cache_main(argv[1:])
    args = build_parser().parse_args(argv)
    error = validate_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    params = MachineParams(
        untaint_broadcast_width=args.untaint_broadcast_width,
        backend=args.backend)
    model = (AttackModel(args.threat_model) if args.threat_model
             else AttackModel.FUTURISTIC)
    config_name = config_name_from_args(args)
    use_cache = False if args.no_cache else None

    # Registered workloads under a Table 2 configuration go through the
    # cached parallel harness as one spec list; everything else (.asm
    # files, off-table flag combinations) runs directly.
    sweep: list = []            # (executable, RunSpec)
    direct: list = []           # executable
    for executable in args.executable:
        if config_name is not None and executable in WORKLOADS:
            sweep.append((executable, RunSpec(
                executable, config_name, model, scale=args.scale,
                max_instructions=args.max_instructions, params=params)))
        else:
            load_program(executable, args.scale)    # fail fast on bad input
            direct.append(executable)

    outputs: list = []          # (executable, RunResult, stats text)
    if sweep:
        results = run_many([spec for _, spec in sweep], jobs=args.jobs,
                           use_cache=use_cache)
        for (executable, _), result in zip(sweep, results):
            outputs.append((executable, result, format_stats_result(result)))
    for executable in direct:
        result, text = _run_direct(args, executable, params)
        outputs.append((executable, result, text))

    os.makedirs(args.output_dir, exist_ok=True)
    multiple = len(args.executable) > 1
    for executable, result, text in outputs:
        stats_path = os.path.join(args.output_dir,
                                  _stats_filename(executable, multiple))
        with open(stats_path, "w") as handle:
            handle.write(text)
        print(f"{result.workload}: {result.retired} instructions, "
              f"{result.cycles} cycles (IPC {result.ipc:.2f}) "
              f"under {result.config}")
        print(f"stats written to {stats_path}")
        if args.track_insts and result.untaint_by_kind:
            _print_track_insts(result.untaint_by_kind,
                               result.untaints_per_cycle)
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): exit quietly with
        # the conventional SIGPIPE status instead of a traceback.
        import os as _os
        _os.dup2(_os.open(_os.devnull, _os.O_WRONLY), 1)
        raise SystemExit(141)
