"""Branch prediction: gshare direction predictor + BTB + return address stack.

Stands in for the paper's LTAGE (Table 1).  Two properties matter for the
reproduction:

* it mispredicts realistically, so transient (wrong-path) execution happens;
* its state is updated **only at branch resolution time** and is part of the
  attacker-observable trace, so the implicit-channel rule of STT/SPT
  ("tainted data must not affect predictor state", Section 2.2.1) is
  faithfully testable — delayed resolution delays the update.

Attack harnesses use :meth:`train_direction` / :meth:`train_btb` to mis-train
the predictor the way Spectre attackers do.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Kind


class GsharePredictor:
    """Global-history XOR PC indexed 2-bit counter table."""

    def __init__(self, history_bits: int = 12):
        self.history_bits = history_bits
        self._table = [1] * (1 << history_bits)   # weakly not-taken
        self._mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc: int, history: int) -> int:
        return (pc ^ history) & self._mask

    def predict(self, pc: int) -> tuple[bool, int]:
        """Predict direction; returns (taken, history_snapshot)."""
        snapshot = self.history
        taken = self._table[self._index(pc, snapshot)] >= 2
        # Speculative history update (standard for global-history predictors).
        self.history = ((snapshot << 1) | (1 if taken else 0)) & self._mask
        return taken, snapshot

    def update(self, pc: int, history_snapshot: int, taken: bool) -> None:
        index = self._index(pc, history_snapshot)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)

    def repair_history(self, history_snapshot: int, taken: bool) -> None:
        """Restore history after a direction misprediction."""
        self.history = ((history_snapshot << 1) | (1 if taken else 0)) & self._mask


class BranchTargetBuffer:
    """Direct-mapped, tagged BTB for indirect jump targets.

    Each entry stores ``(tag, target)``: a lookup hits only when the stored
    tag matches the full PC, so two branches that alias in the index
    (``pc % entries``) no longer silently share a target.  Attack harnesses
    can still plant an entry that hits *any* PC mapping to the index
    (``alias_ok=True`` stores a wildcard tag) — this models the partial-tag
    aliasing that Spectre-BTB exploits without inflicting it on every
    workload that happens to collide.
    """

    def __init__(self, entries: int = 512):
        self._entries = entries
        self._table: dict[int, tuple[Optional[int], int]] = {}

    def predict(self, pc: int) -> Optional[int]:
        entry = self._table.get(pc % self._entries)
        if entry is None:
            return None
        tag, target = entry
        if tag is not None and tag != pc:
            return None
        return target

    def update(self, pc: int, target: int, alias_ok: bool = False) -> None:
        self._table[pc % self._entries] = (None if alias_ok else pc, target)


class ReturnAddressStack:
    """Bounded RAS; JALR with rs1=ra pops, JAL/JALR with rd=ra pushes."""

    def __init__(self, entries: int = 16):
        self._entries = entries
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self._entries:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def snapshot(self) -> tuple:
        """The stack contents (immutable, oldest first)."""
        return tuple(self._stack)

    def restore(self, state: tuple) -> None:
        self._stack = list(state)

    def depth(self) -> int:
        return len(self._stack)


class BranchPredictor:
    """Composite frontend predictor used by the fetch stage."""

    def __init__(self, history_bits: int = 12, btb_entries: int = 512,
                 ras_entries: int = 16):
        self.direction = GsharePredictor(history_bits)
        self.btb = BranchTargetBuffer(btb_entries)
        self.ras = ReturnAddressStack(ras_entries)
        self.lookups = 0
        self.updates = 0

    def predict(self, pc: int, inst: Instruction) -> tuple[bool, Optional[int], int]:
        """Predict one control instruction at fetch.

        Returns (predicted_taken, predicted_target, history_snapshot).
        ``predicted_target`` is None when no target is known (untrained BTB),
        in which case fetch falls through and waits for resolution.
        """
        kind = inst.info.kind
        self.lookups += 1
        if kind == Kind.BRANCH:
            taken, snapshot = self.direction.predict(pc)
            return taken, inst.imm if taken else pc + 1, snapshot
        if kind == Kind.JUMP:
            if inst.rd == 1:   # call: push return address
                self.ras.push(pc + 1)
            return True, inst.imm, 0
        if kind == Kind.JUMP_REG:
            if inst.rd == 1:
                self.ras.push(pc + 1)
            if inst.rs1 == 1 and inst.rd != 1:   # return
                target = self.ras.pop()
                if target is not None:
                    return True, target, 0
            return True, self.btb.predict(pc), 0
        raise ValueError(f"{inst.op} is not a control instruction")

    # ------------------------------------------------- speculative state
    # ``predict`` mutates the RAS and the gshare history *at fetch time*,
    # i.e. speculatively.  The core snapshots this state before every
    # prediction and restores it when a squash kills the predicted
    # instruction, so wrong-path calls/returns cannot permanently corrupt
    # the stack (the bug that used to break Spectre-RSB gadgets).
    def speculative_state(self) -> tuple:
        return (self.direction.history, self.ras.snapshot())

    def restore_speculative_state(self, state: tuple) -> None:
        self.direction.history = state[0]
        self.ras.restore(state[1])

    def resolve(self, pc: int, inst: Instruction, taken: bool, target: int,
                history_snapshot: int, mispredicted: bool) -> None:
        """Apply the resolution-time update (delayed by STT/SPT rules)."""
        self.updates += 1
        kind = inst.info.kind
        if kind == Kind.BRANCH:
            self.direction.update(pc, history_snapshot, taken)
            if mispredicted:
                self.direction.repair_history(history_snapshot, taken)
        elif kind == Kind.JUMP_REG:
            self.btb.update(pc, target)

    # ----------------------------------------------------- attack interfaces
    def train_direction(self, pc: int, taken: bool, repeats: int = 4) -> None:
        """Mis-train the direction predictor for a given PC (Spectre-style)."""
        for _ in range(repeats):
            snapshot = self.direction.history
            self.direction.update(pc, snapshot, taken)

    def train_btb(self, pc: int, target: int, alias_ok: bool = False) -> None:
        """Plant an indirect-branch target (SmotherSpectre-style).

        With ``alias_ok=True`` the planted entry hits *any* PC that maps to
        the same BTB index — the attacker trains from its own, aliased
        branch address, the way Spectre-BTB injects victim targets.
        """
        self.btb.update(pc, target, alias_ok=alias_ok)
