"""Cycle-approximate out-of-order core with real transient execution.

The model implements the baseline microarchitecture of Section 7.1 of the
paper: in-order fetch/rename/dispatch into a ROB, a unified reservation
station issuing out of order, a load/store queue with store-to-load
forwarding, retire-time stores (TSO), and branch prediction with genuine
wrong-path execution and squash — the substrate every protection scheme
(UnsafeBaseline, SecureBaseline, STT, SPT) plugs into via
:class:`~repro.pipeline.engine_api.ProtectionEngine`.

Timing is approximate (no explicit functional-unit contention beyond issue
width, perfect I-cache), but every mechanism SPT interacts with is modelled
faithfully: the visibility point, delayed branch resolution, delayed
transmitter execution, forwarding visibility, and cache state changes by
transient instructions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.isa.instructions import Program
from repro.isa.opcodes import Kind, NUM_ARCH_REGS, WORD_MASK
from repro.isa.semantics import alu_result, branch_taken, effective_address
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.obs.metrics import Metrics
from repro.obs.stall import NUM_CAUSES, STALL_CAUSES, StallCause, attribute_cycle
from repro.pipeline.branch_predictor import BranchPredictor
from repro.pipeline.dyninst import DynInst
from repro.pipeline.engine_api import ProtectionEngine
from repro.pipeline.params import MachineParams
from repro.pipeline.rename import RenameUnit
from repro.security.observer import Observer

_RETIRING = int(StallCause.RETIRING)


class SimulationError(Exception):
    """Raised when the simulation wedges (deadlock / cycle cap)."""


class SimResult:
    """Outcome of one simulation run.

    ``metrics`` is the hierarchical :class:`~repro.obs.metrics.Metrics`
    tree (stall accounting, taint lifecycle, engine counters); ``stats``
    is the flat compatibility view the pre-observability code consumed
    (original key names, engine counters under an ``engine.`` prefix).
    """

    def __init__(self, core: "OoOCore", halted: bool):
        self.metrics = core.build_metrics()
        self.cycles = core.cycle
        self.retired = core.retired_count
        self.halted = halted
        self.arch_regs = [core.rename.arch_value(i) for i in range(NUM_ARCH_REGS)]
        self.memory = core.memory
        self.observer = core.observer
        self.stats = core.legacy_stats()
        engine_tree = self.metrics.groups.get("engine")
        if engine_tree is not None:
            self.stats.update({f"engine.{k}": v
                               for k, v in engine_tree.flatten().items()})
        self.config_name = core.engine.name
        self.retired_pcs = core.retired_pcs

    def reg(self, index: int) -> int:
        return self.arch_regs[index]

    def word(self, address: int) -> int:
        return self.memory.load(address, 8)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


class OoOCore:
    """The out-of-order core simulator."""

    def __init__(self, program: Program,
                 engine: Optional[ProtectionEngine] = None,
                 params: Optional[MachineParams] = None,
                 observer: Optional[Observer] = None,
                 predictor: Optional[BranchPredictor] = None,
                 record_retired_pcs: bool = False):
        self.program = program
        self.params = params or MachineParams()
        self.params.validate()
        self.engine = engine or ProtectionEngine()
        self.observer = observer or Observer()
        self.memory = MainMemory(program.initial_memory,
                                 uninit_seed=self.params.uninit_secret_seed)
        self.hierarchy = MemoryHierarchy(self.params.hierarchy)
        self.predictor = predictor or BranchPredictor(
            self.params.bp_history_bits, self.params.btb_entries,
            self.params.ras_entries)
        self.rename = RenameUnit(self.params.num_phys_regs)

        self.cycle = 0
        self.seq = 0
        self.retired_count = 0
        self.halted = False
        self.retired_pcs: Optional[list] = [] if record_retired_pcs else None

        # In-flight structures.  ``rob`` is program-ordered; the head pointer
        # avoids O(n) pops and is compacted periodically.
        self.rob: list[DynInst] = []
        self.rob_head = 0
        self.rs: list[DynInst] = []
        self.lsq: list[DynInst] = []
        self.pending_control: list[DynInst] = []
        self._completion_buckets: dict[int, list[DynInst]] = {}
        self._pending_mds_checks: list[DynInst] = []

        # Frontend.
        self.fetch_pc = 0
        self.fetch_buffer: list[tuple[int, DynInst]] = []   # (ready_cycle, di)
        self.fetch_halted = False          # HALT fetched / off-program
        self.fetch_wait_for: Optional[DynInst] = None   # JALR with no BTB target
        self.fetch_resume_cycle = 0
        # Speculative predictor-state checkpoints, one per predicted
        # control-flow instruction, appended in fetch (= seq) order:
        # (seq, state-before-this-prediction).  A squash restores the
        # checkpoint of the oldest squashed prediction — only control
        # instructions mutate RAS/history, so that state equals the state
        # at the squash anchor.  Entries are pruned at retire (a retired
        # instruction can never be squashed).
        self._bp_checkpoints: deque = deque()
        self._vp_scan = 0                  # absolute rob index of VP frontier
        # Optional sink for squashed instructions (used by the tracer).
        self.squash_sink: Optional[list] = None

        # Event counters as plain attributes (a dict increment per delayed
        # transmitter per cycle dominates the issue loop otherwise); the
        # metrics hierarchy is built from them at collection time.
        self.n_squashes = 0
        self.n_mispredicts = 0
        self.n_squashed_insts = 0
        self.n_fetched = 0
        self.n_loads_forwarded = 0
        self.n_loads_forwarded_cache = 0
        self.n_mem_order_violations = 0
        self._transmitters_delayed = 0
        self._resolutions_delayed = 0
        self._lq_used = 0
        self._sq_used = 0

        # Activity counter for the fast path (repro.fastpath): bumped at
        # every site that mutates machine state beyond the per-cycle
        # monotone counters.  A step that leaves it unchanged proved the
        # cycle was a pure no-op, so the vector backend may fast-forward
        # time to the next scheduled event.  Over-bumping is safe (it only
        # costs skip opportunities); a missed bump would be unsound.
        self._activity = 0

        # Stall-cause cycle accounting (repro.obs.stall): one bucket per
        # cycle, indexed by StallCause; the sum equals ``cycle`` always.
        self.stall_counts: list[int] = [0] * NUM_CAUSES
        self.dispatch_block = -1          # StallCause index or -1, per cycle
        self.last_squash_cycle = -(10 ** 9)
        self.engine.attach(self)
        # Explicit flushes (attack-harness clflush) must reach the shadow L1
        # like demand evictions do, or it tracks non-resident lines.
        self.hierarchy.on_l1_invalidate = self.engine.on_l1_evict

        # Lockstep invariant sanitizer (repro.check).  ``None`` when
        # checking is off: every hook site below guards on ``is not None``,
        # so an unchecked run pays one attribute test per event and nothing
        # else.  Imported lazily to keep the hot path import-free.
        self.checker = None
        if self.params.check_level != "off":
            from repro.check.sanitizer import Sanitizer
            self.checker = Sanitizer(self, self.params.check_level)

    # ------------------------------------------------------------- metrics
    def legacy_stats(self) -> dict:
        """Flat compatibility view with the pre-observability key names."""
        return {
            "squashes": self.n_squashes,
            "mispredicts": self.n_mispredicts,
            "squashed_insts": self.n_squashed_insts,
            "fetched": self.n_fetched,
            "transmitters_delayed_cycles": self._transmitters_delayed,
            "resolutions_delayed_cycles": self._resolutions_delayed,
            "loads_forwarded": self.n_loads_forwarded,
            "loads_forwarded_with_cache_access": self.n_loads_forwarded_cache,
            "mem_order_violations": self.n_mem_order_violations,
        }

    def build_metrics(self) -> Metrics:
        """Assemble the hierarchical metrics tree for this run.

        Idempotent (derived values are ``set``, never accumulated): the
        tracer and :class:`SimResult` may both collect it.
        """
        m = Metrics("sim")
        sim = m.child("sim")
        sim.set("cycles", self.cycle)
        sim.set("retired", self.retired_count)
        sim.set("ipc", self.retired_count / self.cycle if self.cycle else 0.0)
        frontend = m.child("frontend")
        frontend.set("fetched", self.n_fetched)
        spec = m.child("speculation")
        spec.set("squashes", self.n_squashes)
        spec.set("mispredicts", self.n_mispredicts)
        spec.set("squashed_insts", self.n_squashed_insts)
        spec.set("mem_order_violations", self.n_mem_order_violations)
        mem = m.child("memory")
        mem.set("loads_forwarded", self.n_loads_forwarded)
        mem.set("loads_forwarded_with_cache_access",
                self.n_loads_forwarded_cache)
        for cache in (self.hierarchy.l1, self.hierarchy.l2, self.hierarchy.l3):
            level = mem.child(cache.params.name.lower())
            level.set("hits", cache.stats.hits)
            level.set("misses", cache.stats.misses)
        protection = m.child("protection")
        protection.set("transmitters_delayed_cycles",
                       self._transmitters_delayed)
        protection.set("resolutions_delayed_cycles",
                       self._resolutions_delayed)
        stalls = m.child("stalls")
        for cause in STALL_CAUSES:
            stalls.set(cause.key, self.stall_counts[cause])
        stalls.set("total", sum(self.stall_counts))
        m.groups["engine"] = self.engine.metrics_tree()
        if self.checker is not None:
            m.groups["check"] = self.checker.metrics_tree()
        return m

    # ----------------------------------------------------------------- utils
    def rob_occupancy(self) -> int:
        return len(self.rob) - self.rob_head

    def in_flight(self):
        """The live window, oldest first (a snapshot list: the engines
        iterate it several times per cycle and a slice beats a generator)."""
        return self.rob[self.rob_head:]

    def head_inst(self) -> Optional[DynInst]:
        if self.rob_head < len(self.rob):
            return self.rob[self.rob_head]
        return None

    # ------------------------------------------------------------------ run
    def run(self, max_instructions: int = 1_000_000) -> SimResult:
        """Simulate until HALT retires, the budget is hit, or deadlock."""
        budget = max_instructions
        last_progress_cycle = 0
        last_retired = 0
        while not self.halted and self.retired_count < budget:
            self.step()
            if self.retired_count != last_retired:
                last_retired = self.retired_count
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > 100_000:
                raise SimulationError(
                    f"{self.engine.name}/{self.program.name}: no retirement "
                    f"for 100k cycles at cycle {self.cycle} "
                    f"(head={self.head_inst()!r})")
            if self.cycle >= self.params.max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded max_cycles")
        if self.checker is not None:
            self.checker.on_finish(self.halted)
        return SimResult(self, self.halted)

    def step(self) -> None:
        """Advance the machine by one clock cycle."""
        self.cycle += 1
        retired_before = self.retired_count
        self._writeback()
        self._memory_stage()
        self._resolve_control()
        self._commit()
        self._issue()
        self._dispatch()
        self._fetch()
        self.engine.tick()
        # Attribute the cycle (repro.obs.stall).  Retiring cycles — the
        # common case — are counted inline without the classifier.
        if self.retired_count != retired_before:
            self.stall_counts[_RETIRING] += 1
        else:
            self.stall_counts[attribute_cycle(self)] += 1
        if self.checker is not None:
            self.checker.on_cycle()

    # ------------------------------------------------------------- writeback
    def _writeback(self) -> None:
        done = self._completion_buckets.pop(self.cycle, None)
        if not done:
            return
        for di in done:
            if di.squashed:
                continue
            self._activity += 1
            di.complete = True
            di.complete_cycle = self.cycle
            if di.result is not None:
                self.rename.write_result(di, di.result)

    def _schedule_completion(self, di: DynInst, latency: int) -> None:
        di.ready_cycle = self.cycle + max(1, latency)
        self._completion_buckets.setdefault(di.ready_cycle, []).append(di)

    # ------------------------------------------------------------------ issue
    def _issue(self) -> None:
        issued = 0
        width = self.params.issue_width
        remaining: list[DynInst] = []
        append = remaining.append
        # Hoisted out of the loop: the readiness test runs once per RS entry
        # per cycle, so the RAT's ready list is indexed directly instead of
        # going through two attribute lookups and a method call.
        ready = self.rename.ready
        may_compute_address = self.engine.may_compute_address
        checker = self.checker
        delayed = 0
        for di in self.rs:
            if di.squashed:
                continue
            if issued >= width:
                append(di)
                continue
            prs1 = di.prs1
            if not (prs1 < 0 or ready[prs1]):
                append(di)
                continue
            if not di.is_store:
                prs2 = di.prs2
                if not (prs2 < 0 or ready[prs2]):
                    append(di)
                    continue
            # Stores split address (rs1) from data (rs2): address issue only
            # needs rs1; data is captured in the LSQ when it becomes ready.
            if di.is_transmitter and not (di.reached_vp
                                          or may_compute_address(di)):
                delayed += 1
                di.engine_delayed = True
                append(di)
                continue
            if checker is not None and di.is_transmitter:
                checker.on_transmit(di)
            self._execute(di)
            issued += 1
        self._transmitters_delayed += delayed
        self.rs = remaining

    def _operands_ready_for_issue(self, di: DynInst) -> bool:
        rename = self.rename
        if di.is_store:
            # Stores split address (rs1) from data (rs2): address issue only
            # needs rs1; data is captured in the LSQ when it becomes ready.
            return rename.operand_ready(di.prs1)
        return (rename.operand_ready(di.prs1)
                and rename.operand_ready(di.prs2))

    def _execute(self, di: DynInst) -> None:
        """Begin execution of an RS entry (operands are ready)."""
        self._activity += 1
        di.issued = True
        di.issue_cycle = self.cycle
        if di.engine_delayed:
            di.engine_delayed = False
        rename = self.rename
        kind = di.kind
        if di.info.reads_rs1:
            di.rs1_value = rename.read(di.prs1)
        if not di.is_store and di.info.reads_rs2:
            di.rs2_value = rename.read(di.prs2)
        if kind in (Kind.ALU, Kind.ALU_IMM, Kind.MOVE, Kind.LOAD_IMM):
            di.result = alu_result(di.inst, di.rs1_value or 0, di.rs2_value or 0)
            self._schedule_completion(di, di.info.latency)
            return
        if kind == Kind.BRANCH:
            di.actual_taken = branch_taken(di.inst, di.rs1_value, di.rs2_value)
            di.actual_target = di.inst.imm if di.actual_taken else di.pc + 1
            di.mispredicted = di.actual_taken != di.predicted_taken
            self._schedule_completion(di, 1)
            self.pending_control.append(di)
            return
        if kind == Kind.JUMP_REG:
            di.actual_taken = True
            di.actual_target = (di.rs1_value + di.inst.imm) & WORD_MASK
            di.mispredicted = di.actual_target != di.predicted_target
            di.result = (di.pc + 1) & WORD_MASK
            self._schedule_completion(di, 1)
            self.pending_control.append(di)
            return
        if kind == Kind.LOAD:
            di.address = effective_address(di.inst, di.rs1_value)
            di.addr_ready = True
            return
        if kind == Kind.STORE:
            di.address = effective_address(di.inst, di.rs1_value)
            di.addr_ready = True
            # The address computation itself is the transmitting event for a
            # store (TLB lookup etc.), visible to the attacker immediately.
            self.observer.store_address(
                self.cycle, self.hierarchy.l1.line_address(di.address))
            if self._mds_enabled():
                # Deferred to the next memory stage: squashing here would
                # invalidate the issue loop's view of the RS.
                self._pending_mds_checks.append(di)
            return
        raise SimulationError(f"unexpected kind in RS: {kind}")

    # ----------------------------------------------------------- memory stage
    def _memory_stage(self) -> None:
        if self._pending_mds_checks:
            for store in self._pending_mds_checks:
                if not store.squashed:
                    self._check_memory_order_violation(store)
            self._pending_mds_checks.clear()
        if not self.lsq:
            return
        ready = self.rename.ready
        value = self.rename.value
        for di in self.lsq:
            if di.squashed:
                continue
            if di.is_store:
                if not di.complete and di.addr_ready:
                    prs2 = di.prs2
                    if prs2 < 0 or ready[prs2]:
                        di.rs2_value = 0 if prs2 < 0 else value[prs2]
                        di.complete = True
                        self._activity += 1
                continue
            # Loads.
            if di.mem_complete or not di.addr_ready or di.mem_issued:
                continue
            self._try_issue_load(di)

    def _try_issue_load(self, load: DynInst) -> None:
        blocker, forward_store = self._memory_dependences(load)
        if blocker:
            return
        if forward_store is not None and not forward_store.complete:
            return    # forwarding needed but the store data is not ready yet
        if forward_store is not None:
            self.n_loads_forwarded += 1
            load.forwarded_from = forward_store
            load.fwding_st = forward_store.seq
            if self.engine.skip_cache_for_forwarding(load, forward_store):
                if self.checker is not None:
                    self.checker.on_forward_skip(load, forward_store)
                load.load_value = self._truncate(forward_store.rs2_value,
                                                 load.info.mem_size)
                load.access_level = "FWD"
                load.mem_issued = True
                self._activity += 1
                self._schedule_load_completion(load, 1)
                return
            self.n_loads_forwarded_cache += 1
        if self.checker is not None:
            self.checker.on_cache_access(load)
        access = self.hierarchy.access(load.address, self.cycle)
        if access.stalled:
            return    # MSHRs exhausted; retry next cycle
        if access.l1_evicted_line is not None:
            self.engine.on_l1_evict(access.l1_evicted_line)
        line = self.hierarchy.l1.line_address(load.address)
        self.observer.load_access(self.cycle, line, access.level)
        if forward_store is not None:
            load.load_value = self._truncate(forward_store.rs2_value,
                                             load.info.mem_size)
        else:
            load.load_value = self.memory.load(load.address,
                                               load.info.mem_size)
        load.access_level = access.level
        load.mem_issued = True
        self._activity += 1
        self._schedule_load_completion(load, access.latency)

    def _memory_dependences(self, load: DynInst):
        """Scan older stores in the LSQ.

        Returns (blocked, forwarding_store).  Conservative memory disambiguation
        by default: a load waits until every older store address is known.
        With memory-dependence speculation enabled, unknown older addresses
        are ignored (violations squash later).
        """
        speculate = self._mds_enabled()
        forward: Optional[DynInst] = None
        size = load.info.mem_size
        for st in self.lsq:
            if st.seq >= load.seq:
                break
            if not st.is_store or st.squashed:
                continue
            if not st.addr_ready:
                if speculate:
                    continue
                return True, None
            if self._overlaps(st, load):
                if st.address == load.address and st.info.mem_size >= size:
                    forward = st   # youngest exact-covering store wins
                else:
                    # Partial overlap: wait for the store to retire and drain.
                    return True, None
        return False, forward

    def _mds_enabled(self) -> bool:
        """Memory-dependence speculation (Section 6.7, "Memory dependence
        speculation").

        Enabled by the machine parameter, but only on the insecure baseline:
        the protection engines in this reproduction use conservative
        disambiguation, because a speculatively issued load's violation
        squash is itself an implicit channel that would have to be delayed
        until STLPublic — delaying the *issue* is equivalent and simpler.
        """
        return (self.params.memory_dependence_speculation
                and not self.engine.protects_speculative_data)

    def _check_memory_order_violation(self, store: DynInst) -> None:
        """A store's address just resolved: squash any younger load that
        speculatively read stale data for an overlapping address."""
        for load in self.lsq:
            if load.seq <= store.seq or not load.is_load or load.squashed:
                continue
            if not load.mem_issued or load.address is None:
                continue
            if not self._overlaps(store, load):
                continue
            if (load.forwarded_from is not None
                    and load.forwarded_from.seq >= store.seq):
                continue        # took its data from this store or younger
            self.n_mem_order_violations += 1
            self._squash_from(load)
            return

    def _squash_from(self, victim: DynInst) -> None:
        """Flush ``victim`` and everything younger; refetch from its PC."""
        target_seq = victim.seq - 1
        anchor = None
        for di in self.in_flight():
            if di.seq == target_seq:
                anchor = di
                break
        if anchor is None:
            # The victim is the oldest in-flight instruction: emulate by
            # squashing younger-than a synthetic anchor.
            class _Anchor:
                seq = target_seq
                pc = victim.pc
            anchor = _Anchor()
        self._squash_after(anchor)
        self._redirect_fetch(victim.pc)

    @staticmethod
    def _overlaps(a: DynInst, b: DynInst) -> bool:
        a0, a1 = a.address, a.address + a.info.mem_size
        b0, b1 = b.address, b.address + b.info.mem_size
        return a0 < b1 and b0 < a1

    @staticmethod
    def _truncate(value: int, size: int) -> int:
        return value & ((1 << (8 * size)) - 1)

    def _schedule_load_completion(self, load: DynInst, latency: int) -> None:
        load.ready_cycle = self.cycle + max(1, latency)
        self._completion_buckets.setdefault(load.ready_cycle, []).append(load)
        # Loads complete through the normal writeback path; hook data arrival.
        load.result = load.load_value

    # ------------------------------------------------------------ resolution
    def _resolve_control(self) -> None:
        # Also finalise load data arrival (engine hook) before resolution.
        self._finish_loads()
        if not self.pending_control:
            return
        still_pending: list[DynInst] = []
        resolved_any = False
        pending = self.pending_control
        if len(pending) > 1:
            pending = sorted(pending, key=lambda d: d.seq)
        for di in pending:
            if di.squashed or di.resolution_applied:
                continue
            if resolved_any or not di.complete:
                still_pending.append(di)
                continue
            if not (di.reached_vp or self.engine.may_resolve(di)):
                self._resolutions_delayed += 1
                di.resolution_delayed = True
                still_pending.append(di)
                continue
            self._apply_resolution(di)
            if di.mispredicted:
                resolved_any = True   # squash invalidates younger pending ones
        self.pending_control = [d for d in still_pending
                                if not d.squashed and not d.resolution_applied]

    def _finish_loads(self) -> None:
        if not self.lsq:
            return
        for di in self.lsq:
            if (di.is_load and di.complete and not di.mem_complete
                    and not di.squashed):
                di.mem_complete = True
                self._activity += 1
                self.engine.on_load_data(di)

    def _apply_resolution(self, di: DynInst) -> None:
        self._activity += 1
        if self.checker is not None:
            self.checker.on_resolve(di)
        di.resolution_applied = True
        di.resolution_delayed = False
        # Squash *before* the predictor update: the squash restores the
        # speculative RAS/history checkpoint taken at this prediction, and
        # ``resolve`` then applies the authoritative repair (the corrected
        # history bit) on top of the restored state.
        if di.mispredicted:
            self.n_mispredicts += 1
            self._squash_after(di)
            self._redirect_fetch(di.actual_target)
        self.predictor.resolve(di.pc, di.inst, di.actual_taken,
                               di.actual_target, di.history_snapshot,
                               di.mispredicted)
        self.observer.predictor_update(self.cycle, di.pc, di.actual_taken)

    def _squash_after(self, di: DynInst) -> None:
        """Flush every instruction younger than ``di``."""
        self._activity += 1
        self.n_squashes += 1
        self.last_squash_cycle = self.cycle
        self.observer.squash(self.cycle, di.pc)
        # Undo wrong-path speculative predictor updates (RAS pushes/pops,
        # gshare history bits) by restoring the checkpoint taken before the
        # oldest squashed prediction.  Checkpoints are seq-ordered, so
        # popping from the right leaves ``restore`` holding the oldest one.
        checkpoints = self._bp_checkpoints
        restore = None
        while checkpoints and checkpoints[-1][0] > di.seq:
            restore = checkpoints.pop()
        if restore is not None:
            self.predictor.restore_speculative_state(restore[1])
        squashed: list[DynInst] = []
        while len(self.rob) > self.rob_head and self.rob[-1].seq > di.seq:
            victim = self.rob.pop()
            victim.squashed = True
            squashed.append(victim)
        self.n_squashed_insts += len(squashed)
        if squashed:
            dead = {d.seq for d in squashed}
            self.rs = [d for d in self.rs if d.seq not in dead]
            self.lsq = [d for d in self.lsq if d.seq not in dead]
            self._sq_used = sum(1 for d in self.lsq if d.is_store)
            self._lq_used = len(self.lsq) - self._sq_used
            self.pending_control = [d for d in self.pending_control
                                    if d.seq not in dead]
            # The engine sees victims before rename-undo recycles their
            # destination registers (it must drop pending taint broadcasts).
            self.engine.on_squash(squashed)
            if self.squash_sink is not None:
                self.squash_sink.extend(squashed)
            for victim in squashed:    # youngest-first, as popped
                self.rename.undo(victim)
        self.fetch_buffer.clear()
        self.fetch_wait_for = None
        self._vp_scan = min(self._vp_scan, len(self.rob))
        if self.checker is not None:
            self.checker.on_squash(di, squashed)

    def _redirect_fetch(self, target: int) -> None:
        self.fetch_pc = target
        self.fetch_halted = False
        self.fetch_resume_cycle = self.cycle + self.params.redirect_penalty

    # ---------------------------------------------------------------- commit
    def _commit(self) -> None:
        for _ in range(self.params.commit_width):
            di = self.head_inst()
            if di is None or not self._can_retire(di):
                break
            self._retire(di)
            if di.kind == Kind.HALT:
                self.halted = True
                break
        if self.rob_head > 4096:
            del self.rob[:self.rob_head]
            self._vp_scan -= self.rob_head
            self.rob_head = 0

    def _can_retire(self, di: DynInst) -> bool:
        if di.kind in (Kind.HALT, Kind.NOP):
            return True
        if di.is_load:
            return di.mem_complete
        if di.is_store:
            return di.complete
        if di.is_predicted_control:
            return di.complete and di.resolution_applied
        return di.complete

    def _retire(self, di: DynInst) -> None:
        self._activity += 1
        if self.checker is not None:
            self.checker.on_retire(di)
        if di.is_store:
            self.memory.store(di.address, di.rs2_value, di.info.mem_size)
            access = self.hierarchy.access(di.address, self.cycle, is_write=True)
            if access.l1_evicted_line is not None:
                self.engine.on_l1_evict(access.l1_evicted_line)
            self.observer.store_write(
                self.cycle, self.hierarchy.l1.line_address(di.address),
                access.level)
            self.engine.on_store_retire(di)
            self.lsq.remove(di)
            self._sq_used -= 1
        elif di.is_load:
            self.lsq.remove(di)
            self._lq_used -= 1
        di.retired = True
        di.retire_cycle = self.cycle
        di.reached_vp = True
        # Retired instructions can never be squashed: their predictor-state
        # checkpoints are dead.  Retire is in seq order, so pruning from the
        # left keeps the deque bounded by the in-flight window.
        checkpoints = self._bp_checkpoints
        while checkpoints and checkpoints[0][0] <= di.seq:
            checkpoints.popleft()
        self.rename.commit(di)
        self.engine.on_retire(di)
        self.retired_count += 1
        if self.retired_pcs is not None:
            self.retired_pcs.append(di.pc)
        self.rob_head += 1
        if self._vp_scan < self.rob_head:
            self._vp_scan = self.rob_head

    # -------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        width = self.params.issue_width
        dispatched = 0
        # Record why dispatch stalled (if it did) for the cycle accountant;
        # phys-reg exhaustion is folded into rob-full (both are window-size
        # backpressure in this model).
        self.dispatch_block = -1
        while (self.fetch_buffer and dispatched < width
               and self.fetch_buffer[0][0] <= self.cycle):
            di = self.fetch_buffer[0][1]
            if self.rob_occupancy() >= self.params.rob_entries:
                self.dispatch_block = int(StallCause.ROB_FULL)
                break
            if self.rename.free_count() == 0 and di.inst.dest_reg() is not None:
                self.dispatch_block = int(StallCause.ROB_FULL)
                break
            needs_rs = di.kind not in (Kind.HALT, Kind.NOP, Kind.JUMP)
            if needs_rs and len(self.rs) >= self.params.rs_entries:
                self.dispatch_block = int(StallCause.RS_FULL)
                break
            if di.is_load and self._lsq_count(is_store=False) >= self.params.lq_entries:
                self.dispatch_block = int(StallCause.LSQ_FULL)
                break
            if di.is_store and self._lsq_count(is_store=True) >= self.params.sq_entries:
                self.dispatch_block = int(StallCause.LSQ_FULL)
                break
            self.fetch_buffer.pop(0)
            self._activity += 1
            di.dispatch_cycle = self.cycle
            self.rename.rename(di)
            self.engine.on_rename(di)
            if self.checker is not None:
                self.checker.on_rename(di)
            self.rob.append(di)
            if di.kind in (Kind.HALT, Kind.NOP):
                di.complete = True
            elif di.kind == Kind.JUMP:   # JAL: exact target, completes now
                di.result = (di.pc + 1) & WORD_MASK
                di.actual_taken = True
                di.actual_target = di.inst.imm
                di.resolution_applied = True
                self.rename.write_result(di, di.result)
                di.complete = True
            else:
                self.rs.append(di)
                if di.is_transmitter:
                    self.lsq.append(di)
                    if di.is_store:
                        self._sq_used += 1
                    else:
                        self._lq_used += 1
            dispatched += 1

    def _lsq_count(self, is_store: bool) -> int:
        return self._sq_used if is_store else self._lq_used

    # -------------------------------------------------------- visibility point
    def advance_vp(self, is_obstacle: Callable[[DynInst], bool]) -> list:
        """Advance the visibility-point frontier (paper Section 7.3).

        ``is_obstacle`` encodes the attack model: an instruction blocks
        younger instructions from reaching the VP while the predicate holds.
        Returns the instructions that newly reached the VP this cycle, oldest
        first.  The frontier is monotone: once an instruction reaches the VP
        it stays there (squashes only remove instructions beyond a resolved
        branch, which is itself at or before the frontier blocker).
        """
        newly: list[DynInst] = []
        scan_start = self._vp_scan
        while self._vp_scan < len(self.rob):
            di = self.rob[self._vp_scan]
            if not di.reached_vp:
                di.reached_vp = True
                newly.append(di)
            if is_obstacle(di):
                break
            self._vp_scan += 1
        if newly or self._vp_scan != scan_start:
            self._activity += 1
        return newly

    # ----------------------------------------------------------------- fetch
    def _fetch(self) -> None:
        if (self.fetch_halted or self.fetch_wait_for is not None
                or self.cycle < self.fetch_resume_cycle):
            self._maybe_release_fetch_wait()
            return
        if len(self.fetch_buffer) >= 4 * self.params.fetch_width:
            return
        for _ in range(self.params.fetch_width):
            inst = self.program.fetch(self.fetch_pc)
            if inst is None:
                self.fetch_halted = True
                self._activity += 1
                return
            di = DynInst(self.seq, self.fetch_pc, inst)
            di.fetch_cycle = self.cycle
            self.seq += 1
            self.n_fetched += 1
            self._activity += 1
            ready = self.cycle + self.params.frontend_delay
            kind = inst.info.kind
            if kind == Kind.HALT:
                self.fetch_buffer.append((ready, di))
                self.fetch_halted = True
                return
            if kind in (Kind.BRANCH, Kind.JUMP, Kind.JUMP_REG):
                # Checkpoint the speculative predictor state (RAS, gshare
                # history) before the prediction mutates it; restored by
                # ``_squash_after`` if this instruction gets squashed.
                self._bp_checkpoints.append(
                    (di.seq, self.predictor.speculative_state()))
                taken, target, snapshot = self.predictor.predict(self.fetch_pc, inst)
                di.predicted_taken = taken
                di.predicted_target = target
                di.history_snapshot = snapshot
                self.fetch_buffer.append((ready, di))
                if target is None:
                    di.prediction_missing = True
                    di.mispredicted = True
                    self.fetch_wait_for = di
                    return
                self.fetch_pc = target
                continue
            self.fetch_buffer.append((ready, di))
            self.fetch_pc += 1

    def _maybe_release_fetch_wait(self) -> None:
        di = self.fetch_wait_for
        if di is None:
            return
        if di.squashed:
            self.fetch_wait_for = None
            self._activity += 1
