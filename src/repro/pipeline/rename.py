"""Register renaming: RAT, free list, and the physical register file.

Squash recovery walks the squashed instructions youngest-first and undoes
each rename (restoring the RAT entry to ``old_prd`` and freeing the allocated
register), which is equivalent to — and simpler than — per-branch RAT
checkpoints.
"""

from __future__ import annotations

from collections import deque

from repro.isa.opcodes import NUM_ARCH_REGS
from repro.pipeline.dyninst import DynInst


class OutOfPhysRegs(Exception):
    """Raised when rename runs out of physical registers (a sizing bug)."""


class RenameUnit:
    """RAT + free list + physical register file (values and ready bits)."""

    __slots__ = ("num_phys_regs", "rat", "free", "ready", "value")

    def __init__(self, num_phys_regs: int):
        if num_phys_regs <= NUM_ARCH_REGS:
            raise ValueError("need more physical than architectural registers")
        self.num_phys_regs = num_phys_regs
        # Identity mapping at reset: arch i -> phys i.
        self.rat: list[int] = list(range(NUM_ARCH_REGS))
        self.free: deque[int] = deque(range(NUM_ARCH_REGS, num_phys_regs))
        self.ready: list[bool] = [True] * num_phys_regs
        self.value: list[int] = [0] * num_phys_regs

    def free_count(self) -> int:
        return len(self.free)

    def rename(self, di: DynInst) -> None:
        """Map source operands and allocate a destination register."""
        inst = di.inst
        info = inst.info
        if info.reads_rs1:
            di.prs1 = self.rat[inst.rs1]
        if info.reads_rs2:
            di.prs2 = self.rat[inst.rs2]
        if info.writes_rd and inst.rd != 0:
            if not self.free:
                raise OutOfPhysRegs("free list empty at rename")
            preg = self.free.popleft()
            di.old_prd = self.rat[inst.rd]
            di.prd = preg
            self.rat[inst.rd] = preg
            self.ready[preg] = False
            self.value[preg] = 0

    def write_result(self, di: DynInst, value: int) -> None:
        """Publish a result to the PRF (bypass is implicit: same cycle)."""
        if di.prd >= 0:
            self.value[di.prd] = value
            self.ready[di.prd] = True

    def undo(self, di: DynInst) -> None:
        """Reverse one rename during squash (call youngest-first)."""
        if di.prd >= 0:
            self.rat[di.inst.rd] = di.old_prd
            self.free.appendleft(di.prd)
            self.ready[di.prd] = True
            di.prd = -1

    def commit(self, di: DynInst) -> None:
        """Retire-time reclamation of the previous mapping."""
        if di.prd >= 0 and di.old_prd >= NUM_ARCH_REGS:
            self.free.append(di.old_prd)
        elif di.prd >= 0 and 0 <= di.old_prd < NUM_ARCH_REGS:
            # Initial identity registers are reclaimed once overwritten, but
            # phys 0 stays pinned as the architectural zero register.
            if di.old_prd != 0 and di.old_prd not in self.free:
                self.free.append(di.old_prd)

    def operand_ready(self, preg: int) -> bool:
        return preg < 0 or self.ready[preg]

    def read(self, preg: int) -> int:
        return 0 if preg < 0 else self.value[preg]

    def arch_value(self, arch_reg: int) -> int:
        """Architectural read through the RAT (valid when pipeline drained)."""
        if arch_reg == 0:
            return 0
        return self.value[self.rat[arch_reg]]
