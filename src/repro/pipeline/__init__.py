"""Out-of-order pipeline substrate."""

from repro.pipeline.branch_predictor import (BranchPredictor,
                                             BranchTargetBuffer,
                                             GsharePredictor,
                                             ReturnAddressStack)
from repro.pipeline.core import OoOCore, SimResult, SimulationError
from repro.pipeline.dyninst import DynInst
from repro.pipeline.engine_api import ProtectionEngine
from repro.pipeline.params import MachineParams, table1_text
from repro.pipeline.rename import OutOfPhysRegs, RenameUnit
from repro.pipeline.trace import PipelineTracer, TraceEntry, trace_program

__all__ = [
    "BranchPredictor", "BranchTargetBuffer", "GsharePredictor",
    "ReturnAddressStack", "OoOCore", "SimResult", "SimulationError",
    "DynInst", "ProtectionEngine", "MachineParams", "table1_text",
    "OutOfPhysRegs", "RenameUnit", "PipelineTracer", "TraceEntry",
    "trace_program",
]
