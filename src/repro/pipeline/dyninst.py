"""Dynamic (in-flight) instruction record shared by pipeline and taint engines."""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Kind


class DynInst:
    """One dynamic instruction travelling through the pipeline.

    Carries rename state, scheduling state, control/memory state, and the
    per-slot taint bits used by SPT's reservation-station untaint logic
    (paper Section 7.2-7.3).
    """

    __slots__ = (
        "seq", "pc", "inst", "kind", "info",
        # Kind predicates, fixed at construction (attributes, not
        # properties: these are read millions of times in the per-cycle
        # scheduler and engine loops).
        "is_control", "is_predicted_control", "is_load", "is_store",
        "is_transmitter",
        # Rename.
        "prs1", "prs2", "prd", "old_prd",
        # Values (filled as operands become ready / result computed).
        "rs1_value", "rs2_value", "result",
        # Scheduling.
        "issued", "complete", "ready_cycle", "retired", "squashed",
        # Stall attribution (repro.obs.stall): why this instruction is
        # currently held back, if the protection engine is the reason.
        "engine_delayed", "resolution_delayed",
        # Lifecycle timestamps (for the pipeline tracer).
        "fetch_cycle", "dispatch_cycle", "issue_cycle", "complete_cycle",
        "retire_cycle",
        # Control flow.
        "predicted_taken", "predicted_target", "history_snapshot",
        "actual_taken", "actual_target", "mispredicted", "resolution_applied",
        "prediction_missing",
        # Memory.
        "address", "addr_ready", "mem_issued", "mem_complete", "lsq_index",
        "forwarded_from", "fwding_st", "num_st_untaint_pending", "stl_public",
        "load_value", "access_level",
        # Visibility point / declassification.
        "reached_vp", "declassified",
        # STT s-taint (youngest root of taint).
        "stt_root",
        # SPT per-slot taint bits + untaint-broadcast-pending flags (7.3).
        "t_src1", "t_src2", "t_dst", "pend_src1", "pend_src2", "pend_dst",
        # Fast-path window slot (repro.fastpath): index of this entry's bit
        # in the vector backend's packed bitmask vectors, -1 outside it.
        "fp_slot",
        # Fast-path wakeup state: number of source operands this entry still
        # waits on before it becomes an issue candidate (vector backend's
        # event-driven scheduler; unused by the reference issue loop).
        "fp_wait",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction):
        self.reinit(seq, pc, inst, inst.info)

    def reinit(self, seq: int, pc: int, inst: Instruction,
               info) -> None:
        """(Re)initialise every field, recycling the allocation.

        The vector backend pools squashed instances and re-stamps them for
        new fetches (allocation is a hot-path cost under wrong-path
        overfetch); ``info`` is passed in so the pool's tight fetch loop can
        reuse the decode table's :class:`~repro.isa.opcodes.OpInfo` instead
        of paying the ``inst.info`` property per instruction.  Any structure
        that may hold a stale reference across a squash therefore tags it
        with the seq it saw and revalidates ``di.seq`` before trusting it —
        seqs are never reused.
        """
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.info = info
        kind = info.kind
        self.kind = kind
        self.is_control = kind in (Kind.BRANCH, Kind.JUMP, Kind.JUMP_REG)
        self.is_predicted_control = kind in (Kind.BRANCH, Kind.JUMP_REG)
        self.is_load = kind == Kind.LOAD
        self.is_store = kind == Kind.STORE
        self.is_transmitter = kind in (Kind.LOAD, Kind.STORE)
        self.prs1 = -1
        self.prs2 = -1
        self.prd = -1
        self.old_prd = -1
        self.rs1_value: Optional[int] = None
        self.rs2_value: Optional[int] = None
        self.result: Optional[int] = None
        self.issued = False
        self.complete = False
        self.ready_cycle = -1
        self.retired = False
        self.squashed = False
        self.engine_delayed = False
        self.resolution_delayed = False
        self.fetch_cycle = -1
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.retire_cycle = -1
        self.predicted_taken = False
        self.predicted_target: Optional[int] = None
        self.history_snapshot = 0
        self.actual_taken = False
        self.actual_target: Optional[int] = None
        self.mispredicted = False
        self.resolution_applied = False
        self.prediction_missing = False
        self.address: Optional[int] = None
        self.addr_ready = False
        self.mem_issued = False
        self.mem_complete = False
        self.lsq_index = -1
        self.forwarded_from: Optional["DynInst"] = None
        self.fwding_st = -1
        self.num_st_untaint_pending = -1
        self.stl_public = False
        self.load_value: Optional[int] = None
        self.access_level: Optional[str] = None
        self.reached_vp = False
        self.declassified = False
        self.stt_root: Optional["DynInst"] = None
        self.t_src1 = False
        self.t_src2 = False
        self.t_dst = False
        self.pend_src1 = False
        self.pend_src2 = False
        self.pend_dst = False
        self.fp_slot = -1
        self.fp_wait = 0

    def reinit_recycled(self, seq: int, tier: int) -> None:
        """Slim re-stamp for a pooled carcass reused at the *same pc*.

        The vector backend keeps its recycling pools keyed by pc, so a
        recycled instance is always re-fetched as the same static
        instruction.  Every field :meth:`reinit` resets but this method
        skips is then provably dead state, in one of three ways:

        * *identical by construction*: ``pc``/``inst``/``info``/``kind``
          and the kind predicates depend only on the pc;
        * *written before read on every path of this kind*: rename fields
          (``prs1``/``prs2``/``prd``/``old_prd`` — ``undo`` restores
          ``prd = -1`` on squash, and the same-pc read/write flags re-set
          exactly the same subset at dispatch), operand/result values
          (captured in ``_execute``/``_memory_stage``/load completion
          before any consumer), control outcomes (``predicted_*``/
          ``history_snapshot`` at fetch, ``actual_*``/``mispredicted`` at
          execute), and SPT slot bits (``t_*`` at rename);
        * *reader-free in fast mode*: the lifecycle timestamps, the
          ``pend_*`` broadcast bookkeeping, ``lsq_index``, ``stt_root``,
          ``prediction_missing``, ``load_value``/``access_level`` are only
          read by the tracer/sanitizer, which disable the fast path.

        ``tier`` widens the reset set for kinds with cross-life hazards:
        1 (loads/stores) clears the memory-disambiguation and
        store-to-load-forwarding state read *before* the address resolves,
        plus ``declassified`` (transmitters leak operands at the VP);
        2 (branches/indirect jumps) clears ``resolution_applied`` (read by
        the visibility-point predicate before execute re-sets it) and
        ``declassified``.  The batched fetch loop inlines these stores —
        this method is the specification it mirrors (and the path the
        per-instruction control fetch takes).
        """
        self.seq = seq
        self.issued = False
        self.complete = False
        self.ready_cycle = -1
        self.retired = False
        self.squashed = False
        self.engine_delayed = False
        self.resolution_delayed = False
        self.reached_vp = False
        if tier:
            self.declassified = False
            if tier == 1:
                self.addr_ready = False
                self.mem_issued = False
                self.mem_complete = False
                self.forwarded_from = None
                self.fwding_st = -1
                self.stl_public = False
            else:
                self.resolution_applied = False

    def __repr__(self) -> str:
        flags = "".join((
            "I" if self.issued else ".",
            "C" if self.complete else ".",
            "V" if self.reached_vp else ".",
            "R" if self.retired else ".",
            "X" if self.squashed else ".",
        ))
        return f"<#{self.seq} pc={self.pc} {self.inst} [{flags}]>"
