"""Pipeline tracing: per-instruction lifecycle capture and rendering.

Wraps an :class:`~repro.pipeline.core.OoOCore` run, capturing every dynamic
instruction (including squashed wrong-path ones) with its lifecycle
timestamps, and renders a text pipeline diagram::

    seq  pc  instruction          F....D..I...C.....R
    #12   4  ld a1, 0(a0)         |F..D.I......C...R|

Legend: F fetch, D dispatch/rename, I issue, C complete, R retire,
X squashed.  Useful for debugging protection-policy delays: a long D->I gap
on a load is a delayed transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.core import OoOCore, SimResult
from repro.pipeline.dyninst import DynInst


@dataclass
class TraceEntry:
    """Lifecycle of one dynamic instruction."""

    seq: int
    pc: int
    text: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    retire: int
    squashed: bool

    @classmethod
    def from_dyninst(cls, di: DynInst) -> "TraceEntry":
        return cls(di.seq, di.pc, str(di.inst), di.fetch_cycle,
                   di.dispatch_cycle, di.issue_cycle, di.complete_cycle,
                   di.retire_cycle, di.squashed)

    @property
    def issue_delay(self) -> int:
        """Cycles between dispatch and issue (protection delays show here)."""
        if self.issue < 0 or self.dispatch < 0:
            return 0
        return self.issue - self.dispatch


class PipelineTracer:
    """Runs a core while recording every dynamic instruction's lifecycle."""

    def __init__(self, core: OoOCore, max_entries: int = 10_000):
        self.core = core
        self.max_entries = max_entries
        self.entries: list[TraceEntry] = []
        self._seen: set = set()
        self._squashed: list[DynInst] = []
        core.squash_sink = self._squashed

    def run(self, max_instructions: int = 100_000) -> SimResult:
        core = self.core
        while not core.halted and core.retired_count < max_instructions:
            core.step()
            self._harvest()
            if core.cycle >= core.params.max_cycles:
                break
        self._harvest(final=True)
        return SimResult(core, core.halted)

    def _harvest(self, final: bool = False) -> None:
        if len(self.entries) >= self.max_entries:
            return
        for di in self._squashed:
            if di.seq not in self._seen:
                self._record(di)
        self._squashed.clear()
        for di in list(self.core.in_flight()):
            if (di.retired or di.squashed or final) and di.seq not in self._seen:
                self._record(di)
        # Retired instructions leave the window; catch them via the ROB head
        # region before compaction by scanning the raw list.
        for di in self.core.rob[:self.core.rob_head]:
            if di.seq not in self._seen:
                self._record(di)

    def _record(self, di: DynInst) -> None:
        self._seen.add(di.seq)
        self.entries.append(TraceEntry.from_dyninst(di))

    # ------------------------------------------------------------- rendering
    def render(self, first: int = 0, count: int = 40, width: int = 64) -> str:
        """Text pipeline diagram for ``count`` entries starting at ``first``."""
        entries = sorted(self.entries, key=lambda e: e.seq)[first:first + count]
        if not entries:
            return "(no trace entries)"
        start = min(e.fetch for e in entries if e.fetch >= 0)
        lines = [f"{'seq':>6} {'pc':>5}  {'instruction':<28} "
                 f"pipeline (cycle {start}+)"]
        for entry in entries:
            lane = self._lane(entry, start, width)
            marker = "X" if entry.squashed else " "
            lines.append(f"{entry.seq:>6} {entry.pc:>5}{marker} "
                         f"{entry.text:<28} {lane}")
        return "\n".join(lines)

    @staticmethod
    def _lane(entry: TraceEntry, start: int, width: int) -> str:
        lane = ["."] * width
        def mark(cycle: int, symbol: str) -> None:
            if cycle >= 0:
                index = cycle - start
                if 0 <= index < width:
                    lane[index] = symbol
                elif index >= width:
                    lane[width - 1] = ">"     # event beyond the window
        mark(entry.fetch, "F")
        mark(entry.dispatch, "D")
        mark(entry.issue, "I")
        mark(entry.complete, "C")
        mark(entry.retire, "R")
        return "".join(lane)

    # ------------------------------------------------------------- analysis
    def delayed_transmitters(self, threshold: int = 5) -> list:
        """Entries whose dispatch-to-issue gap exceeds ``threshold`` cycles."""
        return [e for e in self.entries
                if e.issue_delay > threshold and not e.squashed]

    def squashed_count(self) -> int:
        return sum(1 for e in self.entries if e.squashed)


def trace_program(program, engine=None, params=None,
                  max_instructions: int = 50_000) -> PipelineTracer:
    """Convenience: build a core, trace a full run, return the tracer."""
    tracer = PipelineTracer(OoOCore(program, engine=engine, params=params))
    tracer.run(max_instructions=max_instructions)
    return tracer
