"""Protection-engine interface between the OoO core and the taint engines.

The pipeline is agnostic of *why* an instruction is delayed: it consults the
attached :class:`ProtectionEngine` at three gating points (transmitter address
computation, branch resolution, store-to-load-forwarding visibility) and
notifies it of every microarchitectural event it needs for taint tracking.
The engines in :mod:`repro.core` (STT, SPT, baselines) subclass this.

Each engine owns a :class:`~repro.obs.metrics.Metrics` node; the core grafts
it into the run's metrics hierarchy under ``engine.`` when the simulation
finishes.  ``bump`` is the cheap hot-path counter API; subclasses with
richer state (SPT's untaint machinery) override :meth:`metrics_tree` to
fold it in at collection time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import Metrics

if TYPE_CHECKING:
    from repro.pipeline.core import OoOCore
    from repro.pipeline.dyninst import DynInst


class ProtectionEngine:
    """Default engine: no protection (UnsafeBaseline)."""

    name = "UnsafeBaseline"
    protects_speculative_data = False
    protects_nonspeculative_secrets = False
    # The attack model's visibility-point obstacle predicate, or None for
    # engines that never advance the VP frontier (UnsafeBaseline).  Public
    # so external observers — the repro.check sanitizer in particular — can
    # recompute the frontier independently of advance_vp.
    vp_predicate = None

    def __init__(self) -> None:
        self.core: Optional["OoOCore"] = None
        self.metrics = Metrics("engine")

    def attach(self, core: "OoOCore") -> None:
        self.core = core

    def bump(self, stat: str, amount: int = 1) -> None:
        self.metrics.add(stat, amount)

    def metrics_tree(self) -> Metrics:
        """The engine's contribution to the run's metrics hierarchy.

        Idempotent: collection may happen more than once per run (e.g. a
        tracer building an intermediate result), so subclasses must only
        ``set``/``set_dist`` derived values, never accumulate here.
        """
        return self.metrics

    # ------------------------------------------------------------- gating
    def may_compute_address(self, di: "DynInst") -> bool:
        """May this load/store start executing (address calc, TLB, cache)?"""
        return True

    def may_resolve(self, di: "DynInst") -> bool:
        """May this control instruction apply its resolution effects?"""
        return True

    def skip_cache_for_forwarding(self, load: "DynInst", store: "DynInst") -> bool:
        """May a forwarded load skip its cache access?

        Returning False hides the forwarding decision (the load accesses the
        cache anyway and silently uses the forwarded value), which is STT's
        store-to-load-forwarding protection (paper Section 6.7).
        """
        return True

    # ----------------------------------------------------------- accounting
    def untaint_pending(self, preg: int) -> bool:
        """Is an untaint of ``preg`` queued behind the broadcast width?

        Consulted by the stall accountant to attribute cycles where the
        critical instruction waits on a register whose untaint sits in the
        (width-limited) broadcast queue.  Engines without a broadcast
        queue never stall on it.
        """
        return False

    # -------------------------------------------------------------- events
    def on_rename(self, di: "DynInst") -> None:
        """Instruction renamed: initialise its taint state."""

    def on_load_data(self, di: "DynInst") -> None:
        """Load data arrived (di.load_value / di.address / di.access_level set)."""

    def on_store_retire(self, di: "DynInst") -> None:
        """Store wrote the L1D at retirement."""

    def on_l1_evict(self, line: int) -> None:
        """The L1D evicted or invalidated ``line``."""

    def on_squash(self, squashed: list) -> None:
        """Instructions removed from the window (youngest first)."""

    def on_retire(self, di: "DynInst") -> None:
        """Instruction retired (left the window)."""

    def tick(self) -> None:
        """End-of-cycle hook: VP advance, declassification, untaint rules."""

    # ------------------------------------------------- quiescent fast-forward
    def quiet_state(self) -> tuple:
        """Snapshot of per-cycle monotone engine counters.

        The vector backend (repro.fastpath) fast-forwards over provably
        quiescent cycles.  Engines whose :meth:`tick`/gating hooks mutate
        *monotone counters* even on quiescent cycles (STT's per-cycle
        delayed-check bumps) return them here so the skipped cycles can be
        accounted for in batch; engines with no such counters return ``()``.
        """
        return ()

    def on_quiet_cycles(self, skipped: int, before: tuple) -> None:
        """``skipped`` quiescent cycles were fast-forwarded.

        ``before`` is the :meth:`quiet_state` snapshot taken immediately
        before the detection cycle ran; the current state therefore holds
        one extra cycle's worth of counter deltas, which the engine must
        replicate ``skipped`` more times.
        """
