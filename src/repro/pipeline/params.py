"""Machine parameters (paper Table 1).

The defaults mirror the simulated machine of the paper: 8-wide
fetch/decode/issue/commit, 192-entry ROB, 32/32 LQ/SQ entries, 16 MSHRs, and
the L1D/L2/L3/DRAM latencies of Table 1.  The LTAGE predictor of the paper is
substituted by a gshare + BTB + RAS predictor (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory.hierarchy import HierarchyParams


@dataclass
class MachineParams:
    """All knobs of the simulated core."""

    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 192
    rs_entries: int = 96
    lq_entries: int = 32
    sq_entries: int = 32
    num_phys_regs: int = 300
    frontend_delay: int = 3          # fetch-to-rename latency (cycles)
    redirect_penalty: int = 2        # extra bubble after squash
    # Branch predictor.
    bp_history_bits: int = 12
    btb_entries: int = 512
    ras_entries: int = 16
    # Memory.
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)
    memory_dependence_speculation: bool = False
    # Uninitialised-memory policy (pitchfork's SpectreOOBState): when set,
    # bytes that were never written read as a deterministic keyed hash of
    # (seed, address) instead of zero — "uninitialised memory is secret".
    # Two runs differing only in the seed must then produce identical
    # attacker-visible traces unless uninitialised bytes leak.
    uninit_secret_seed: Optional[int] = None
    # SPT (paper Table 1: untaint broadcast width 3).
    untaint_broadcast_width: int = 3
    # Execution backend: "reference" is the canonical per-DynInst Python
    # model; "vector" is the struct-of-arrays fast path (repro.fastpath),
    # bit-identical by construction and by the differential test suite.
    backend: str = "reference"
    # Simulation safety net.
    max_cycles: int = 5_000_000
    # Lockstep invariant sanitizer (repro.check): "off" (no checking, zero
    # overhead), "commit" (retire-time lockstep with the golden
    # interpreter), or "full" (adds the per-cycle window scans).
    check_level: str = "off"

    def validate(self) -> None:
        if self.rob_entries <= 0 or self.rs_entries <= 0:
            raise ValueError("ROB/RS must be non-empty")
        if self.num_phys_regs < 32 + self.rob_entries // 2:
            raise ValueError("too few physical registers for the ROB size")
        if self.untaint_broadcast_width < 1:
            raise ValueError("untaint broadcast width must be >= 1")
        if self.check_level not in ("off", "commit", "full"):
            raise ValueError(
                f"check_level must be off, commit, or full "
                f"(got {self.check_level!r})")
        if self.uninit_secret_seed is not None and (
                not isinstance(self.uninit_secret_seed, int)
                or self.uninit_secret_seed < 0):
            raise ValueError("uninit_secret_seed must be a non-negative int")
        if self.backend not in ("reference", "vector"):
            raise ValueError(
                f"backend must be 'reference' or 'vector' "
                f"(got {self.backend!r})")


def table1_text() -> str:
    """Render the simulated-machine table (paper Table 1 analogue)."""
    params = MachineParams()
    h = params.hierarchy
    rows = [
        ("Pipeline", f"{params.fetch_width} fetch/decode/issue/commit, "
                     f"{params.sq_entries}/{params.lq_entries} SQ/LQ entries, "
                     f"{params.rob_entries} ROB, {h.mshrs} MSHRs, "
                     f"gshare({params.bp_history_bits}b)+BTB+RAS predictor"),
        ("L1 D-Cache", f"{h.l1_params.size_bytes // 1024} KB, "
                       f"{h.l1_params.line_bytes} B line, {h.l1_params.ways}-way, "
                       f"{h.l1_params.latency}-cycle latency"),
        ("L2 Cache", f"{h.l2_params.size_bytes // 1024} KB, "
                     f"{h.l2_params.line_bytes} B line, {h.l2_params.ways}-way, "
                     f"{h.l2_params.latency}-cycle latency"),
        ("L3 Cache", f"{h.l3_params.size_bytes // 1024 // 1024} MB, "
                     f"{h.l3_params.line_bytes} B line, {h.l3_params.ways}-way, "
                     f"{h.l3_params.latency}-cycle latency"),
        ("DRAM", f"{h.dram_latency} cycles after L3"),
        ("Untaint broadcast width (SPT only)", str(params.untaint_broadcast_width)),
    ]
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)
