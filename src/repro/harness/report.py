"""ASCII table / series rendering shared by the experiment modules."""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width ASCII table."""
    columns = len(headers)
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) if i else
                               row[i].ljust(widths[i])
                               for i in range(columns)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_bar(fraction: float, width: int = 30) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)
