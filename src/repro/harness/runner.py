"""Experiment runner: one (workload, configuration, attack model) simulation."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.core.spt import SPTEngine
from repro.harness.configs import make_engine
from repro.pipeline.core import OoOCore, SimResult
from repro.pipeline.params import MachineParams
from repro.security.observer import channel_digests
from repro.workloads.registry import get as get_workload


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    """Read a positive integer from the environment with a clear error."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def bench_budget(default: int = 2500) -> int:
    """Per-run retired-instruction budget (env: REPRO_BENCH_BUDGET)."""
    return _env_int("REPRO_BENCH_BUDGET", default)


def bench_scale(default: int = 1) -> int:
    """Workload scale factor (env: REPRO_BENCH_SCALE)."""
    return _env_int("REPRO_BENCH_SCALE", default)


def build_core(program, engine=None, params: Optional[MachineParams] = None,
               **kwargs) -> OoOCore:
    """Construct the core for ``params.backend``.

    The fastpath package (and its numpy dependency) is only imported when
    the vector backend is actually requested, so the reference backend
    works on a bare interpreter.  The vector core may wrap ``engine`` in
    its struct-of-arrays twin — callers must use ``core.engine``, not the
    engine they passed in.
    """
    params = params or MachineParams()
    if params.backend == "vector":
        from repro.fastpath.vector_core import VectorCore
        return VectorCore(program, engine=engine, params=params, **kwargs)
    return OoOCore(program, engine=engine, params=params, **kwargs)


@dataclass
class RunResult:
    """Everything the experiment modules need from one simulation."""

    workload: str
    config: str
    model: AttackModel
    cycles: int
    retired: int
    stats: dict
    # Hierarchical metrics in Metrics.as_dict() form (JSON-safe: dist
    # buckets stringified); rebuild with Metrics.from_dict for rendering.
    metrics: dict = field(default_factory=dict)
    untaint_by_kind: dict = field(default_factory=dict)
    untaints_per_cycle: dict = field(default_factory=dict)
    sim: Optional[SimResult] = None
    # Per-channel hashes of the attacker-visible trace (see
    # repro.security.observer.channel_digests); filled when the run was
    # requested with collect_trace=True.
    trace_digests: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


def run_one(workload: str, config: str,
            model: AttackModel = AttackModel.FUTURISTIC,
            scale: int = 1, max_instructions: Optional[int] = None,
            params: Optional[MachineParams] = None,
            keep_sim: bool = False, collect_trace: bool = False) -> RunResult:
    """Simulate ``workload`` under ``config`` and collect statistics.

    ``collect_trace=True`` additionally hashes the attacker-visible trace
    per channel into ``RunResult.trace_digests`` (the non-interference
    oracle's comparison unit; cheap and cacheable, unlike the trace).
    """
    program = get_workload(workload).program(scale)
    engine = make_engine(config, model)
    core = build_core(program, engine=engine, params=params or MachineParams())
    engine = core.engine    # the vector backend may have wrapped it
    sim = core.run(max_instructions=max_instructions or 10_000_000)
    untaint_by_kind: dict = {}
    untaints_per_cycle: dict = {}
    if isinstance(engine, SPTEngine):
        untaint_by_kind = engine.untaint.as_dict()
        untaints_per_cycle = dict(engine.untaint.untaints_per_cycle)
    trace_digests: dict = {}
    if collect_trace:
        if not sim.halted:
            raise RuntimeError(
                f"{workload} did not halt under {config}; its trace digests "
                f"would describe a truncated run")
        trace_digests = channel_digests(sim.observer, sim.cycles)
    return RunResult(workload, config, model, sim.cycles, sim.retired,
                     sim.stats, metrics=sim.metrics.as_dict(),
                     untaint_by_kind=untaint_by_kind,
                     untaints_per_cycle=untaints_per_cycle,
                     sim=sim if keep_sim else None,
                     trace_digests=trace_digests)


def normalized_time(result: RunResult, baseline: RunResult) -> float:
    """Execution time relative to a baseline run of the same workload.

    Both runs retire the same instruction stream prefix (same program, same
    budget), so cycles are directly comparable; we still normalise per
    retired instruction defensively in case a budget cut the runs at
    slightly different points.
    """
    if baseline.retired == result.retired:
        return result.cycles / baseline.cycles
    return (result.cycles / max(1, result.retired)) / \
        (baseline.cycles / max(1, baseline.retired))
