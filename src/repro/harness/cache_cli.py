"""The ``repro cache`` subcommand: stats / gc / clear for the disk tier."""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.harness import cache

_SUFFIXES = {"k": 2**10, "m": 2**20, "g": 2**30}


def parse_bytes(text: str) -> int:
    """``"500M"`` → bytes; bare integers pass through."""
    text = text.strip().lower()
    factor = 1
    if text and text[-1] in _SUFFIXES:
        factor = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte count like 1048576 or 500M, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError("byte count must be >= 0")
    return value


def _human(num_bytes: int) -> str:
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.1f} {unit}" if unit != "B"
                    else f"{int(value)} {unit}")
        value /= 1024
    return f"{value:.1f} GiB"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect and bound the persistent result cache.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("stats", help="entry count and byte occupancy")
    gc = sub.add_parser(
        "gc", help="sweep stale tmp files and evict mtime-LRU entries")
    gc.add_argument("--max-bytes", type=parse_bytes, default=None,
                    help="evict oldest entries until the cache fits "
                         "(accepts K/M/G suffixes)")
    gc.add_argument("--tmp-age", type=float, default=3600.0,
                    help="age in seconds beyond which *.tmp files left by "
                         "killed writers are removed (default 3600)")
    sub.add_parser("clear", help="delete every cached result")
    return parser


def cache_main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        info = cache.stats()
        print(f"cache dir:  {info['dir']}")
        print(f"entries:    {info['entries']} ({_human(info['bytes'])})")
        print(f"tmp files:  {info['tmp_files']} "
              f"({_human(info['tmp_bytes'])})")
        return 0
    if args.command == "gc":
        swept = cache.gc(max_bytes=args.max_bytes, tmp_max_age=args.tmp_age)
        print(f"removed {swept['tmp_removed']} stale tmp file(s); "
              f"evicted {swept['evicted']} entr(ies) "
              f"({_human(swept['evicted_bytes'])})")
        print(f"remaining: {swept['remaining_entries']} entr(ies), "
              f"{_human(swept['remaining_bytes'])}")
        return 0
    if args.command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s)")
        return 0
    print(f"error: unknown cache command {args.command!r}", file=sys.stderr)
    return 2
