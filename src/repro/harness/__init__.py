"""Configuration registry, runner, and reporting."""

from repro.harness.configs import (CONFIGURATIONS, FIGURE7_ORDER, FULL_SPT,
                                   SECURE_CONFIGS, SPT_CONFIGS, Configuration,
                                   make_engine, table2_text)
from repro.harness.report import format_bar, format_table, geomean, mean
from repro.harness.runner import (RunResult, bench_budget, bench_scale,
                                  normalized_time, run_one)

__all__ = [
    "CONFIGURATIONS", "FIGURE7_ORDER", "FULL_SPT", "SECURE_CONFIGS",
    "SPT_CONFIGS", "Configuration", "make_engine", "table2_text",
    "format_bar", "format_table", "geomean", "mean",
    "RunResult", "bench_budget", "bench_scale", "normalized_time", "run_one",
]
