"""Configuration registry, runner, parallel fan-out, cache, and reporting."""

from repro.harness.configs import (CONFIGURATIONS, FIGURE7_ORDER, FULL_SPT,
                                   SECURE_CONFIGS, SPT_CONFIGS, Configuration,
                                   make_engine, table2_text)
from repro.harness.parallel import (RunFailure, RunSpec, default_jobs,
                                    run_many)
from repro.harness.report import format_bar, format_table, geomean, mean
from repro.harness.runner import (RunResult, bench_budget, bench_scale,
                                  normalized_time, run_one)

__all__ = [
    "CONFIGURATIONS", "FIGURE7_ORDER", "FULL_SPT", "SECURE_CONFIGS",
    "SPT_CONFIGS", "Configuration", "make_engine", "table2_text",
    "format_bar", "format_table", "geomean", "mean",
    "RunResult", "bench_budget", "bench_scale", "normalized_time", "run_one",
    "RunFailure", "RunSpec", "default_jobs", "run_many",
]
