"""Parallel experiment fan-out with result caching.

Every paper artefact (Figures 7/8/9, the CLI sweeps, the benches) is a
sweep of independent (workload, configuration, attack model) simulations.
:func:`run_many` is the shared substrate: it expresses a sweep as a list
of :class:`RunSpec` values, deduplicates identical specs, satisfies what
it can from the persistent result cache, fans the misses across a
``ProcessPoolExecutor`` (worker count from ``REPRO_JOBS``, default
``os.cpu_count()``), and returns results in spec order regardless of
completion order.

Degradation is graceful at every layer: ``REPRO_JOBS=1`` runs serially
in-process (the debuggable path), and a pool that cannot start (no
``fork``/``spawn`` support, sandboxed semaphores, ...) falls back to the
serial path rather than failing the sweep.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.attack_model import AttackModel
from repro.harness import cache
from repro.harness.runner import RunResult, _env_int, run_one
from repro.pipeline.params import MachineParams


@dataclass(frozen=True)
class RunSpec:
    """One simulation request: the full input set of ``run_one``."""

    workload: str
    config: str
    model: AttackModel = AttackModel.FUTURISTIC
    scale: int = 1
    max_instructions: Optional[int] = None
    params: Optional[MachineParams] = None
    collect_trace: bool = False

    def describe(self) -> str:
        return (f"workload={self.workload} config={self.config} "
                f"model={self.model.value} scale={self.scale} "
                f"budget={self.max_instructions}")

    def key(self) -> str:
        return cache.result_key(self.workload, self.config, self.model,
                                self.scale, self.max_instructions,
                                self.params, self.collect_trace)


class RunFailure(RuntimeError):
    """A simulation in a sweep failed; names the offending spec."""

    def __init__(self, spec: RunSpec, cause: str):
        super().__init__(f"run failed ({spec.describe()}): {cause}")
        self.spec = spec
        self.cause = cause


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` (validated) or ``os.cpu_count()``."""
    return _env_int("REPRO_JOBS", os.cpu_count() or 1)


def default_timeout() -> Optional[float]:
    """Per-run timeout in seconds (``REPRO_RUN_TIMEOUT``; unset = none)."""
    raw = os.environ.get("REPRO_RUN_TIMEOUT")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_RUN_TIMEOUT must be a number of seconds, got {raw!r}")
    if value <= 0:
        raise ValueError(
            f"REPRO_RUN_TIMEOUT must be positive, got {value}")
    return value


def _execute_spec(spec: RunSpec) -> RunResult:
    """Worker entry point (module-level so it pickles)."""
    return run_one(spec.workload, spec.config, spec.model,
                   scale=spec.scale, max_instructions=spec.max_instructions,
                   params=spec.params, collect_trace=spec.collect_trace)


def _run_one_bounded(spec: RunSpec, timeout: float) -> RunResult:
    """Run ``spec`` in a daemon thread with a wall-clock bound.

    The serial path has no worker process to abandon, so the bound is
    best-effort: on timeout the simulation thread keeps running in the
    background (daemonised, so it cannot block interpreter exit) but the
    sweep fails promptly with :class:`RunFailure` instead of stalling for
    as long as the hang lasts.
    """
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = _execute_spec(spec)
        except BaseException as exc:     # noqa: BLE001 — reraised below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True,
                              name=f"repro-serial-{spec.workload}")
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise RunFailure(spec, f"exceeded the {timeout}s run timeout "
                               f"(serial path: run abandoned in a "
                               f"daemon thread)")
    if "error" in box:
        exc = box["error"]
        raise RunFailure(spec, f"{type(exc).__name__}: {exc}") from exc
    return box["result"]


def _run_serial(specs: Sequence[RunSpec],
                timeout: Optional[float] = None) -> list:
    results = []
    for spec in specs:
        if timeout is not None:
            results.append(_run_one_bounded(spec, timeout))
            continue
        try:
            results.append(_execute_spec(spec))
        except Exception as exc:
            raise RunFailure(spec, f"{type(exc).__name__}: {exc}") from exc
    return results


def _run_pool(specs: Sequence[RunSpec], jobs: int,
              timeout: Optional[float]) -> Optional[list]:
    """Fan ``specs`` across a process pool; None if the pool cannot start.

    The per-run ``timeout`` is enforced as a bound on each future's result,
    collected in submission order: while earlier runs are being awaited the
    later ones execute concurrently, so a run that exceeds its bound is
    caught within ``timeout`` seconds of becoming the collection head
    (approximate when more runs are queued than workers, exact otherwise).
    """
    try:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
    except (OSError, ValueError, NotImplementedError, ImportError):
        return None
    results: list = []
    try:
        try:
            futures = [pool.submit(_execute_spec, spec) for spec in specs]
        except (OSError, RuntimeError):
            return None        # pool died before accepting work
        for spec, future in zip(specs, futures):
            try:
                results.append(future.result(timeout=timeout))
            except concurrent.futures.process.BrokenProcessPool:
                return None    # workers died (OOM, signal): retry serially
            except concurrent.futures.TimeoutError:
                raise RunFailure(spec,
                                 f"exceeded the {timeout}s run timeout")
            except Exception as exc:
                raise RunFailure(
                    spec, f"{type(exc).__name__}: {exc}") from exc
    finally:
        # On success every future is done, so a waiting shutdown is free.
        # On any other exit a worker may be wedged mid-simulation (that is
        # how a timeout gets here); joining it — the executor's default
        # exit behaviour — would stall the sweep for as long as the hang
        # lasts, defeating the deadline.  Drop the queue and abandon the
        # pool without waiting instead.
        done = len(results) == len(specs)
        pool.shutdown(wait=done, cancel_futures=not done)
    return results


def run_many(specs: Sequence[RunSpec],
             jobs: Optional[int] = None,
             timeout: Optional[float] = None,
             use_cache: Optional[bool] = None) -> list:
    """Run every spec and return ``RunResult``s in spec order.

    Identical specs are simulated once.  ``use_cache=None`` consults the
    environment (``REPRO_NO_CACHE``); pass an explicit bool to override.
    ``jobs=None`` reads ``REPRO_JOBS`` / CPU count; ``jobs=1`` forces the
    in-process serial path.

    Dedup, cache prefill, and spec-order reassembly live in the shared
    planning layer (:mod:`repro.serve.planner`); this function is the
    local executor of a plan — the ``repro serve`` server executes the
    same plan shape through its tiered store and scheduler instead.
    """
    from repro.serve.planner import plan_sweep

    specs = list(specs)
    if not specs:
        return []
    if jobs is None:
        jobs = default_jobs()
    elif jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if timeout is None:
        timeout = default_timeout()
    if use_cache is None:
        use_cache = cache.cache_enabled()

    plan = plan_sweep(specs, use_cache=use_cache)
    if plan.miss_specs:
        computed = None
        if jobs > 1 and len(plan.miss_specs) > 1:
            computed = _run_pool(plan.miss_specs, jobs, timeout)
        if computed is None:
            computed = _run_serial(plan.miss_specs, timeout)
        for key, result in zip(plan.miss_keys, computed):
            plan.record(key, result)
            if use_cache:
                cache.store(key, result)
    return plan.results()
