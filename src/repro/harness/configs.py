"""The evaluated design variants (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.attack_model import AttackModel
from repro.core.baselines import SecureBaseline, UnsafeBaseline
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.core.stt import STTEngine
from repro.pipeline.engine_api import ProtectionEngine


@dataclass(frozen=True)
class Configuration:
    """One Table 2 row: a named engine factory."""

    name: str
    description: str
    make: Callable[[AttackModel], ProtectionEngine]
    needs_model: bool = True


def _unsafe(model: AttackModel) -> ProtectionEngine:
    return UnsafeBaseline()


CONFIGURATIONS: dict[str, Configuration] = {
    "UnsafeBaseline": Configuration(
        "UnsafeBaseline", "An unmodified, insecure processor.",
        _unsafe, needs_model=False),
    "SecureBaseline": Configuration(
        "SecureBaseline", "Loads and stores delayed until reaching the VP.",
        SecureBaseline),
    "SPT{Fwd,NoShadowL1}": Configuration(
        "SPT{Fwd,NoShadowL1}",
        "Forward untainting only (in RS). No shadow L1.",
        lambda m: SPTEngine(m, backward=False, shadow=ShadowMode.NONE)),
    "SPT{Bwd,NoShadowL1}": Configuration(
        "SPT{Bwd,NoShadowL1}",
        "Forward and backward untainting (in RS). No shadow L1.",
        lambda m: SPTEngine(m, backward=True, shadow=ShadowMode.NONE)),
    "SPT{Bwd,ShadowL1}": Configuration(
        "SPT{Bwd,ShadowL1}",
        "Forward and backward untainting (in RS) plus shadow L1 "
        "(L1D taint tracking). The full SPT design.",
        lambda m: SPTEngine(m, backward=True, shadow=ShadowMode.L1)),
    "SPT{Bwd,ShadowMem}": Configuration(
        "SPT{Bwd,ShadowMem}",
        "Forward and backward untainting (in RS) plus all-memory taint "
        "tracking.",
        lambda m: SPTEngine(m, backward=True, shadow=ShadowMode.FULL_MEMORY)),
    "SPT{Ideal,ShadowMem}": Configuration(
        "SPT{Ideal,ShadowMem}",
        "Ideal forward and backward untainting (in RS) plus all-memory "
        "taint tracking.",
        lambda m: SPTEngine(m, ideal=True, shadow=ShadowMode.FULL_MEMORY)),
    "STT": Configuration(
        "STT", "Only protects speculatively-accessed data.",
        STTEngine),
}

# The full SPT design referenced throughout the evaluation.
FULL_SPT = "SPT{Bwd,ShadowL1}"

# Figure 7 plots every configuration in this order.
FIGURE7_ORDER = [
    "SecureBaseline",
    "SPT{Fwd,NoShadowL1}",
    "SPT{Bwd,NoShadowL1}",
    "SPT{Bwd,ShadowL1}",
    "SPT{Bwd,ShadowMem}",
    "SPT{Ideal,ShadowMem}",
    "STT",
]

SECURE_CONFIGS = [name for name in CONFIGURATIONS if name != "UnsafeBaseline"]
SPT_CONFIGS = [name for name in CONFIGURATIONS if name.startswith("SPT")]


def parse_config_names(text: str) -> list:
    """Split a comma-separated ``--configs`` value into Table 2 names.

    Configuration names themselves contain commas (``SPT{Bwd,ShadowL1}``),
    so fragments are re-merged until their braces balance.  ``"all"``
    selects every configuration.  Unknown names and an empty selection
    raise ``SystemExit`` with a CLI-shaped error message.
    """
    if text == "all":
        return list(CONFIGURATIONS)
    names: list = []
    pending = ""
    for part in text.split(","):
        pending = f"{pending},{part}" if pending else part
        if pending.count("{") == pending.count("}"):
            if pending.strip():
                names.append(pending.strip())
            pending = ""
    if pending.strip():
        names.append(pending.strip())
    for name in names:
        if name not in CONFIGURATIONS:
            raise SystemExit(
                f"error: unknown configuration {name!r}; "
                f"known: {', '.join(CONFIGURATIONS)}")
    if not names:
        raise SystemExit("error: --configs selected nothing")
    return names


def make_engine(name: str, model: AttackModel) -> ProtectionEngine:
    """Instantiate the engine for a Table 2 configuration name."""
    config = CONFIGURATIONS[name]
    return config.make(model)


def table2_text() -> str:
    """Render Table 2."""
    width = max(len(c.name) for c in CONFIGURATIONS.values())
    lines = [f"{'Configuration':<{width}}  Description",
             "-" * (width + 50)]
    for config in CONFIGURATIONS.values():
        lines.append(f"{config.name:<{width}}  {config.description}")
    return "\n".join(lines)
