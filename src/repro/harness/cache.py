"""Persistent on-disk result cache for experiment runs.

Every simulation is a pure function of (workload, scale, configuration,
attack model, budget, machine parameters, simulator source).  The cache
keys a :class:`~repro.harness.runner.RunResult` by a content hash of all
of those inputs, so re-rendering a table after a sweep — or sharing the
``UnsafeBaseline`` runs between Figure 7 and Figure 8 — costs zero
simulation time, while any change to ``src/repro`` invalidates cleanly
through the source fingerprint.

Layout: one JSON blob per result under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``).  Opt out with ``REPRO_NO_CACHE=1`` or the
``cache=False`` argument to :func:`~repro.harness.parallel.run_many`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from typing import Optional

import repro
from repro.core.attack_model import AttackModel
from repro.harness.configs import CONFIGURATIONS
from repro.harness.runner import RunResult
from repro.pipeline.params import MachineParams

# Bump when the cached-blob layout changes (keys everything to a new slot).
# v4: MachineParams grew check_level (sanitized and unsanitized runs must
# never share a cache entry, even across versions where the field is new).
# v5: MachineParams grew backend; reference and vector runs key separately
# (bit-identical by contract, but a backend bug must never hide behind a
# cache hit from the other backend).
CACHE_VERSION = 5

_FINGERPRINT: Optional[str] = None


def cache_dir() -> str:
    """Cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a non-empty, non-zero value."""
    flag = os.environ.get("REPRO_NO_CACHE", "")
    return flag in ("", "0")


def source_fingerprint() -> str:
    """Content hash of every ``.py`` file under ``src/repro``.

    Memoised per process: the source tree does not change mid-run, and the
    full walk costs a few milliseconds we do not want on every lookup.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        digest = hashlib.sha256()
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def result_key(workload: str, config: str, model: AttackModel,
               scale: int, max_instructions: Optional[int],
               params: Optional[MachineParams],
               collect_trace: bool = False) -> str:
    """Content hash identifying one simulation's full input set.

    Model-independent configurations (``needs_model=False``, e.g.
    ``UnsafeBaseline``) hash to the same key under every attack model, so
    the baseline runs are simulated once and shared across sweep panels.
    The ``model`` field of a result served from such a shared slot
    reflects whichever request ran first.
    """
    model_value = model.value
    known = CONFIGURATIONS.get(config)
    if known is not None and not known.needs_model:
        model_value = "model-independent"
    payload = {
        "version": CACHE_VERSION,
        "workload": workload,
        "config": config,
        "model": model_value,
        "scale": scale,
        "max_instructions": max_instructions,
        "params": dataclasses.asdict(params or MachineParams()),
        "collect_trace": collect_trace,
        "source": source_fingerprint(),
    }
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def _path_for(key: str) -> str:
    return os.path.join(cache_dir(), f"{key}.json")


def result_to_blob(result: RunResult) -> dict:
    """The JSON-safe wire/disk form of a ``RunResult``.

    Shared by the on-disk cache and the ``repro.serve`` wire protocol, so
    a result round-trips identically whether it came from the local disk
    tier or over HTTP from a remote instance.
    """
    return {
        "workload": result.workload,
        "config": result.config,
        "model": result.model.value,
        "cycles": result.cycles,
        "retired": result.retired,
        "stats": result.stats,
        "metrics": result.metrics,
        "untaint_by_kind": result.untaint_by_kind,
        "untaints_per_cycle": result.untaints_per_cycle,
        "trace_digests": result.trace_digests,
    }


def result_from_blob(blob: dict) -> Optional[RunResult]:
    """Rebuild a ``RunResult`` from :func:`result_to_blob` form.

    Returns None for stale or corrupt blobs (callers treat it as a miss).
    """
    try:
        return RunResult(
            workload=blob["workload"],
            config=blob["config"],
            model=AttackModel(blob["model"]),
            cycles=blob["cycles"],
            retired=blob["retired"],
            stats=blob["stats"],
            metrics=blob["metrics"],
            untaint_by_kind=blob["untaint_by_kind"],
            # JSON stringifies integer keys; restore them.
            untaints_per_cycle={int(k): v for k, v
                                in blob["untaints_per_cycle"].items()},
            trace_digests=blob.get("trace_digests", {}),
        )
    except (KeyError, ValueError, TypeError):
        return None


def load(key: str) -> Optional[RunResult]:
    """Return the cached result for ``key``, or None on a miss."""
    try:
        with open(_path_for(key)) as handle:
            blob = json.load(handle)
    except (OSError, ValueError):
        return None
    return result_from_blob(blob)


def store(key: str, result: RunResult) -> None:
    """Persist ``result`` under ``key`` (atomic, best-effort)."""
    blob = result_to_blob(result)
    directory = cache_dir()
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(blob, handle)
            os.replace(tmp, _path_for(key))
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass    # a read-only or full cache dir must never fail the run


def clear() -> int:
    """Delete every cached result; returns the number removed."""
    removed = 0
    try:
        entries = os.listdir(cache_dir())
    except OSError:
        return 0
    for filename in entries:
        if filename.endswith(".json"):
            try:
                os.unlink(os.path.join(cache_dir(), filename))
                removed += 1
            except OSError:
                pass
    return removed


def _scan() -> tuple:
    """List ``(path, size, mtime)`` for entries and stray tmp files."""
    entries: list = []
    tmp_files: list = []
    directory = cache_dir()
    try:
        names = os.listdir(directory)
    except OSError:
        return entries, tmp_files
    for name in names:
        path = os.path.join(directory, name)
        try:
            info = os.stat(path)
        except OSError:
            continue    # deleted by a concurrent gc/clear
        if name.endswith(".json"):
            entries.append((path, info.st_size, info.st_mtime))
        elif name.endswith(".tmp"):
            tmp_files.append((path, info.st_size, info.st_mtime))
    return entries, tmp_files


def stats() -> dict:
    """Size/occupancy summary of the disk cache (for ``repro cache stats``)."""
    entries, tmp_files = _scan()
    return {
        "dir": cache_dir(),
        "entries": len(entries),
        "bytes": sum(size for _, size, _ in entries),
        "tmp_files": len(tmp_files),
        "tmp_bytes": sum(size for _, size, _ in tmp_files),
    }


def gc(max_bytes: Optional[int] = None, tmp_max_age: float = 3600.0,
       now: Optional[float] = None) -> dict:
    """Bound the disk tier: sweep stale tmp files, then evict mtime-LRU.

    ``*.tmp`` files are partially written blobs left behind by killed
    writers (``store`` writes to a tempfile and renames); any older than
    ``tmp_max_age`` seconds is garbage by construction.  When the entry
    set exceeds ``max_bytes``, oldest-``mtime`` entries are deleted until
    it fits — mtime-LRU, since ``load`` never touches entries.  A
    long-running ``repro serve`` calls this periodically so its disk tier
    cannot grow without bound.
    """
    if now is None:
        now = time.time()
    entries, tmp_files = _scan()
    removed = {"tmp_removed": 0, "evicted": 0, "evicted_bytes": 0}
    for path, _, mtime in tmp_files:
        if now - mtime >= tmp_max_age:
            try:
                os.unlink(path)
                removed["tmp_removed"] += 1
            except OSError:
                pass
    if max_bytes is not None:
        total = sum(size for _, size, _ in entries)
        for path, size, _ in sorted(entries, key=lambda item: item[2]):
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed["evicted"] += 1
            removed["evicted_bytes"] += size
    remaining, _ = _scan()
    removed["remaining_entries"] = len(remaining)
    removed["remaining_bytes"] = sum(size for _, size, _ in remaining)
    return removed
