"""Three-level cache hierarchy with MSHR-limited misses.

Latencies follow Table 1 of the paper: L1D 2 cycles, L2 20, L3 40, DRAM a
fixed latency beyond that.  An access walks L1D -> L2 -> L3 -> DRAM, filling
every level it missed in (inclusive hierarchy), and reports which L1 line (if
any) was evicted so the shadow L1 can mirror the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory.cache import Cache, CacheParams


@dataclass
class HierarchyParams:
    """Latency/geometry knobs for the whole hierarchy (paper Table 1)."""

    l1 = None  # placeholder for dataclass default workaround
    l1_params: CacheParams = field(default_factory=lambda: CacheParams(
        "L1D", size_bytes=32 * 1024, line_bytes=64, ways=8, latency=2))
    l2_params: CacheParams = field(default_factory=lambda: CacheParams(
        "L2", size_bytes=256 * 1024, line_bytes=64, ways=16, latency=20))
    l3_params: CacheParams = field(default_factory=lambda: CacheParams(
        "L3", size_bytes=2 * 1024 * 1024, line_bytes=64, ways=16, latency=40))
    dram_latency: int = 90
    mshrs: int = 16


class AccessResult:
    """Outcome of one hierarchy access (slotted: one is built per access)."""

    __slots__ = ("latency", "level", "l1_evicted_line", "stalled")

    def __init__(self, latency: int, level: str,
                 l1_evicted_line: Optional[int], stalled: bool = False):
        self.latency = latency
        self.level = level                      # "L1D", "L2", "L3" or "DRAM"
        self.l1_evicted_line = l1_evicted_line
        self.stalled = stalled                  # MSHRs exhausted; retry


class MemoryHierarchy:
    """L1D/L2/L3/DRAM timing model with a finite MSHR pool."""

    def __init__(self, params: Optional[HierarchyParams] = None):
        self.params = params or HierarchyParams()
        self.l1 = Cache(self.params.l1_params)
        self.l2 = Cache(self.params.l2_params)
        self.l3 = Cache(self.params.l3_params)
        self._mshr_busy_until: list[int] = []
        # Notified with the line address of every L1 line dropped by an
        # explicit flush (clflush-style harness helpers below).  Demand
        # evictions flow through AccessResult.l1_evicted_line instead; the
        # core wires this to the engine so the shadow L1 never tracks a
        # non-resident line (the shadow-residency invariant).
        self.on_l1_invalidate = None

    @property
    def line_bytes(self) -> int:
        return self.params.l1_params.line_bytes

    def access(self, address: int, now: int, is_write: bool = False) -> AccessResult:
        """Perform a timed access at cycle ``now``.

        Returns the latency until data is available and which level supplied
        it.  A miss consumes an MSHR until completion; if all MSHRs are busy
        the access stalls (no state is changed) and must be retried.
        """
        if not self.l1.probe(address):
            self._mshr_busy_until = [t for t in self._mshr_busy_until if t > now]
            if len(self._mshr_busy_until) >= self.params.mshrs:
                return AccessResult(0, "STALL", None, stalled=True)
        latency = self.params.l1_params.latency
        hit, l1_evicted = self.l1.access(address)
        if hit:
            return AccessResult(latency, "L1D", None)
        latency += self.params.l2_params.latency
        hit, _ = self.l2.access(address)
        if hit:
            level = "L2"
        else:
            latency += self.params.l3_params.latency
            hit, _ = self.l3.access(address)
            if hit:
                level = "L3"
            else:
                latency += self.params.dram_latency
                level = "DRAM"
        self._mshr_busy_until.append(now + latency)
        return AccessResult(latency, level, l1_evicted)

    def l1_resident(self, address: int) -> bool:
        """Tag-check the L1D without touching replacement state."""
        return self.l1.probe(address)

    def flush_l1_line(self, address: int) -> bool:
        """Invalidate one L1 line (used by attack harnesses, clflush-style)."""
        flushed = self.l1.invalidate(address)
        if flushed and self.on_l1_invalidate is not None:
            self.on_l1_invalidate(self.l1.line_address(address))
        return flushed

    def flush_all(self) -> None:
        """Invalidate every level (attack harness helper)."""
        for line in self.l1.resident_lines():
            self.l1.invalidate(line)
            if self.on_l1_invalidate is not None:
                self.on_l1_invalidate(line)
        for cache in (self.l2, self.l3):
            for line in cache.resident_lines():
                cache.invalidate(line)
