"""Memory substrate: main memory, caches, and the timed hierarchy."""

from repro.memory.cache import Cache, CacheParams, CacheStats
from repro.memory.hierarchy import AccessResult, HierarchyParams, MemoryHierarchy
from repro.memory.main_memory import MainMemory

__all__ = [
    "Cache", "CacheParams", "CacheStats",
    "AccessResult", "HierarchyParams", "MemoryHierarchy",
    "MainMemory",
]
