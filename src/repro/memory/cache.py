"""Set-associative cache model (tags + LRU only).

Caches in this simulator model *timing and presence*: architectural data
always lives in :class:`~repro.memory.main_memory.MainMemory`, which keeps the
functional semantics trivially correct, while the caches decide hit level and
latency and report L1 evictions (the shadow L1 mirrors those decisions,
Section 7.5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheParams:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    ways: int
    latency: int

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.ways)
        if sets <= 0:
            raise ValueError(f"{self.name}: size too small for geometry")
        return sets


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class Cache:
    """One level of set-associative, LRU, write-allocate cache."""

    def __init__(self, params: CacheParams):
        self.params = params
        self.stats = CacheStats()
        self._num_sets = params.num_sets
        # Per set: list of line addresses, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]

    def line_address(self, address: int) -> int:
        return address - address % self.params.line_bytes

    def _set_index(self, line: int) -> int:
        return (line // self.params.line_bytes) % self._num_sets

    def probe(self, address: int) -> bool:
        """Tag check without any state change."""
        line = self.line_address(address)
        return line in self._sets[self._set_index(line)]

    def access(self, address: int) -> tuple[bool, Optional[int]]:
        """Access ``address``; returns (hit, evicted_line_or_None).

        On a miss the line is filled, evicting the LRU line if the set is
        full.
        """
        line = self.line_address(address)
        ways = self._sets[self._set_index(line)]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        evicted = None
        if len(ways) >= self.params.ways:
            evicted = ways.pop(0)
            self.stats.evictions += 1
        ways.append(line)
        return False, evicted

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address``; returns whether it was present."""
        line = self.line_address(address)
        ways = self._sets[self._set_index(line)]
        if line in ways:
            ways.remove(line)
            return True
        return False

    def resident_lines(self) -> list[int]:
        return [line for ways in self._sets for line in ways]
