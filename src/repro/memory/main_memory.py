"""Flat byte-addressed backing store.

This is the architectural memory behind the cache hierarchy.  Values are kept
per byte in a dict so that sparse address spaces (attack gadgets probe far
apart lines) stay cheap.
"""

from __future__ import annotations

from repro.isa.opcodes import WORD_MASK


def uninit_byte(seed: int, address: int) -> int:
    """The byte an *unwritten* address reads as under the uninitialised-
    memory-is-secret policy (``MachineParams.uninit_secret_seed``).

    A splitmix64-style keyed mix: deterministic, process-independent, and
    address-sensitive, so two seeds give trace-indistinguishable fills
    unless the program actually observes an uninitialised byte.
    """
    x = (address * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9) & WORD_MASK
    x ^= x >> 30
    x = (x * 0x94D049BB133111EB) & WORD_MASK
    x ^= x >> 27
    return x & 0xFF


class MainMemory:
    """Byte-addressed main memory with little-endian multi-byte accessors.

    With ``uninit_seed`` set, never-written bytes read as
    :func:`uninit_byte` instead of zero (pitchfork's ``SpectreOOBState``
    policy: uninitialised memory carries secrets).  Writes behave
    identically in both modes.
    """

    def __init__(self, image: dict[int, int] | None = None,
                 uninit_seed: int | None = None):
        self._bytes: dict[int, int] = dict(image) if image else {}
        self._uninit_seed = uninit_seed

    def load(self, address: int, size: int) -> int:
        data = self._bytes
        value = 0
        if self._uninit_seed is None:
            for offset in range(size):
                value |= data.get((address + offset) & WORD_MASK, 0) << (8 * offset)
            return value
        seed = self._uninit_seed
        for offset in range(size):
            addr = (address + offset) & WORD_MASK
            byte = data.get(addr)
            if byte is None:
                byte = uninit_byte(seed, addr)
            value |= byte << (8 * offset)
        return value

    def store(self, address: int, value: int, size: int) -> None:
        data = self._bytes
        for offset in range(size):
            data[(address + offset) & WORD_MASK] = (value >> (8 * offset)) & 0xFF

    def snapshot(self) -> dict[int, int]:
        """A copy of all nonzero bytes (zero bytes are normalised away)."""
        return {a: b for a, b in self._bytes.items() if b}
