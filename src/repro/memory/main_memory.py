"""Flat byte-addressed backing store.

This is the architectural memory behind the cache hierarchy.  Values are kept
per byte in a dict so that sparse address spaces (attack gadgets probe far
apart lines) stay cheap.
"""

from __future__ import annotations

from repro.isa.opcodes import WORD_MASK


class MainMemory:
    """Byte-addressed main memory with little-endian multi-byte accessors."""

    def __init__(self, image: dict[int, int] | None = None):
        self._bytes: dict[int, int] = dict(image) if image else {}

    def load(self, address: int, size: int) -> int:
        data = self._bytes
        value = 0
        for offset in range(size):
            value |= data.get((address + offset) & WORD_MASK, 0) << (8 * offset)
        return value

    def store(self, address: int, value: int, size: int) -> None:
        data = self._bytes
        for offset in range(size):
            data[(address + offset) & WORD_MASK] = (value >> (8 * offset)) & 0xFF

    def snapshot(self) -> dict[int, int]:
        """A copy of all nonzero bytes (zero bytes are normalised away)."""
        return {a: b for a, b in self._bytes.items() if b}
