"""Workload registry: the benchmark suite of the paper's evaluation.

SPEC CPU2017 is substituted by behaviour-matched synthetic kernels (one per
benchmark the paper plots) and the three data-oblivious kernels are
re-implementations of the same algorithms (bitsliced AES, ChaCha20,
djbsort).  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.isa.instructions import Program
from repro.workloads.crypto import aes_bitslice, chacha20, djbsort
from repro.workloads.spec_like import (bwaves, cactu, deepsjeng, exchange2,
                                       fotonik, gcc, lbm, leela, mcf, namd,
                                       omnetpp, parest, perlbench, povray,
                                       x264, xalancbmk, xz)

CATEGORY_SPEC = "spec"
CATEGORY_CT = "data-oblivious"


# Built programs, keyed (name, scale).  Builders are deterministic and
# programs are immutable once assembled (MainMemory copies the image at
# core construction; nothing writes through to the Program), so repeated
# runs of one workload can share the build — and, with it, the vector
# backend's decode-table lowering cached on the program object.
_PROGRAM_CACHE: dict[tuple[str, int], Program] = {}


@dataclass(frozen=True)
class Workload:
    """One benchmark: a named, scalable program builder."""

    name: str
    category: str
    build: Callable[..., Program]
    description: str

    def program(self, scale: int = 1) -> Program:
        key = (self.name, scale)
        prog = _PROGRAM_CACHE.get(key)
        if prog is None:
            prog = _PROGRAM_CACHE[key] = self.build(scale)
        return prog


WORKLOADS: dict[str, Workload] = {}


def _register(name: str, category: str, build: Callable[..., Program],
              description: str) -> None:
    WORKLOADS[name] = Workload(name, category, build, description)


_register("perlbench", CATEGORY_SPEC, perlbench.build,
          "hash-table probing with counter write-back")
_register("gcc", CATEGORY_SPEC, gcc.build,
          "opcode dispatch with helper calls")
_register("mcf", CATEGORY_SPEC, mcf.build,
          "pointer chasing with cost branches")
_register("omnetpp", CATEGORY_SPEC, omnetpp.build,
          "binary-heap event queue")
_register("xalancbmk", CATEGORY_SPEC, xalancbmk.build,
          "binary-tree search walks")
_register("x264", CATEGORY_SPEC, x264.build,
          "SAD motion search")
_register("deepsjeng", CATEGORY_SPEC, deepsjeng.build,
          "bitboard scan and score")
_register("leela", CATEGORY_SPEC, leela.build,
          "board scan with liberty counting")
_register("exchange2", CATEGORY_SPEC, exchange2.build,
          "nested-loop block permutation")
_register("xz", CATEGORY_SPEC, xz.build,
          "LZ match-length scanning")
_register("bwaves", CATEGORY_SPEC, bwaves.build,
          "streaming triad beyond L1")
_register("cactuBSSN", CATEGORY_SPEC, cactu.build,
          "5-point stencil sweep")
_register("namd", CATEGORY_SPEC, namd.build,
          "compute-dense pair interactions")
_register("parest", CATEGORY_SPEC, parest.build,
          "CSR sparse matrix-vector product")
_register("povray", CATEGORY_SPEC, povray.build,
          "ray-sphere intersection tests")
_register("fotonik3d", CATEGORY_SPEC, fotonik.build,
          "FDTD field update stream")
_register("lbm", CATEGORY_SPEC, lbm.build,
          "lattice collide-and-stream")

_register("aes-bitslice", CATEGORY_CT, aes_bitslice.build,
          "bitsliced AES rounds (constant time)")
_register("chacha20", CATEGORY_CT, chacha20.build,
          "ChaCha20 keystream (constant time)")
_register("djbsort", CATEGORY_CT, djbsort.build,
          "constant-time sorting network")


def spec_workloads() -> list:
    return [w for w in WORKLOADS.values() if w.category == CATEGORY_SPEC]


def ct_workloads() -> list:
    return [w for w in WORKLOADS.values() if w.category == CATEGORY_CT]


# Dynamic workload families: names of the form ``<prefix>:<spec>`` resolve
# through a lazily-imported factory, so infinite families (every fuzzing
# seed is a workload) ride the same runner/cache/parallel machinery as the
# registered benchmarks without registering each member — and worker
# processes can rebuild them from the name alone.
DYNAMIC_FAMILIES: dict[str, str] = {
    "fuzz": "repro.fuzz.generator",
}


def _resolve_dynamic(name: str) -> Optional[Workload]:
    prefix = name.split(":", 1)[0]
    module_name = DYNAMIC_FAMILIES.get(prefix)
    if module_name is None:
        return None
    module = __import__(module_name, fromlist=["workload_from_name"])
    return module.workload_from_name(name)


def get(name: str) -> Workload:
    if name not in WORKLOADS:
        if ":" in name:
            workload = _resolve_dynamic(name)
            if workload is not None:
                return workload
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {sorted(WORKLOADS)}")
    return WORKLOADS[name]
