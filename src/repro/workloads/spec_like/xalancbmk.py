"""xalancbmk-like kernel: binary-search-tree walks with key compares.

SPEC's 523.xalancbmk (XSLT processing) is dominated by DOM-tree traversal.
The kernel descends a balanced binary tree stored as [key, left, right]
triples: every step loads a node, compares the search key (branch) and
follows a pointer — dependent loads steered by data-dependent control flow.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x50000
NODES = 255          # perfect tree of depth 8
NODE_BYTES = 24


def _build_tree(rng) -> tuple:
    keys = sorted(rng.sample(range(1 << 16), NODES))

    words = [0] * (NODES * 3)
    def fill(slot_iter, lo, hi, slot):
        if lo > hi:
            return -1
        mid = (lo + hi) // 2
        my_slot = slot[0]
        slot[0] += 1
        left = fill(slot_iter, lo, mid - 1, slot)
        right = fill(slot_iter, mid + 1, hi, slot)
        words[my_slot * 3] = keys[mid]
        words[my_slot * 3 + 1] = BASE + left * NODE_BYTES if left >= 0 else 0
        words[my_slot * 3 + 2] = BASE + right * NODE_BYTES if right >= 0 else 0
        return my_slot
    fill(None, 0, NODES - 1, [0])
    return words, keys


def build(scale: int = 1) -> Program:
    rng = data_rng("xalancbmk")
    b = ProgramBuilder("xalancbmk", data_base=BASE)
    words, keys = _build_tree(rng)
    tree_base = b.alloc_words("tree", words)
    probe_keys = [rng.choice(keys) if rng.random() < 0.7
                  else rng.getrandbits(16) for _ in range(64)]
    probes_base = b.alloc_words("probes", probe_keys)

    b.li("s2", tree_base)
    b.li("s3", probes_base)
    b.li("s4", 0)              # found counter
    with b.loop(count=30 * scale, counter="s5"):
        b.li("a0", 0)          # probe index
        with b.loop(count=16, counter="s6"):
            b.slli("t0", "a0", 3)
            b.add("t0", "t0", "s3")
            b.ld("a1", "t0", 0)          # search key
            b.mov("a2", "s2")            # current node
            with b.loop(count=8, counter="s7"):     # bounded descent
                deeper = b.forward_label()
                bottom = b.forward_label()
                b.beq("a2", "zero", bottom)
                b.ld("a3", "a2", 0)       # node key
                go_left = b.forward_label()
                found = b.forward_label()
                b.beq("a3", "a1", found)
                b.blt("a1", "a3", go_left)
                b.ld("a2", "a2", 16)      # right child (dependent load)
                b.jal(0, deeper)
                b.place(go_left)
                b.ld("a2", "a2", 8)       # left child (dependent load)
                b.jal(0, deeper)
                b.place(found)
                b.addi("s4", "s4", 1)
                b.li("a2", 0)
                b.place(bottom)
                b.place(deeper)
            b.addi("a0", "a0", 5)
            b.andi("a0", "a0", 63)
    checksum_and_halt(b, ["s4", "a0"])
    return b.build()
