"""namd-like kernel: compute-dense pairwise interaction loop.

SPEC's 508.namd computes molecular-dynamics pair forces: for each particle
pair, a handful of loads feed a long chain of multiplies and adds.  The
kernel has a very high arithmetic-to-memory ratio and predictable control
flow; its untaint events are almost entirely forward propagation.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import (checksum_and_halt, data_rng,
                                    emit_reload, emit_spill, setup_stack)

BASE = 0x180000
PARTICLES = 64


def build(scale: int = 1) -> Program:
    rng = data_rng("namd")
    b = ProgramBuilder("namd", data_base=BASE)
    coords = []
    for _ in range(PARTICLES):
        coords.extend((rng.randint(1, 1 << 20), rng.randint(1, 1 << 20),
                       rng.randint(1, 1 << 20)))
    coords_base = b.alloc_words("coords", coords)

    setup_stack(b)
    b.li("s2", coords_base)
    b.li("s3", 0)                # force accumulator
    emit_spill(b, ["s2"])        # prologue spill of the base pointer
    with b.loop(count=2 * scale, counter="s4"):
        emit_reload(b, ["s2"])   # reload across the "call" boundary
        b.li("a0", 0)            # particle i offset
        with b.loop(count=PARTICLES // 2, counter="s5"):
            b.add("t0", "a0", "s2")
            b.ld("a1", "t0", 0)
            b.ld("a2", "t0", 8)
            b.ld("a3", "t0", 16)
            b.ld("a4", "t0", 24)     # next particle x
            b.ld("a5", "t0", 32)
            b.ld("a6", "t0", 40)
            # dx,dy,dz then r2 = dx*dx+dy*dy+dz*dz and a force-ish chain.
            b.sub("a1", "a1", "a4")
            b.sub("a2", "a2", "a5")
            b.sub("a3", "a3", "a6")
            b.mul("a1", "a1", "a1")
            b.mul("a2", "a2", "a2")
            b.mul("a3", "a3", "a3")
            b.add("a1", "a1", "a2")
            b.add("a1", "a1", "a3")
            b.srli("a2", "a1", 9)
            b.mul("a2", "a2", "a2")
            b.srli("a2", "a2", 13)
            b.add("a2", "a2", "a1")
            b.mul("a2", "a2", "a2")
            b.srli("a2", "a2", 21)
            b.add("s3", "s3", "a2")
            b.addi("a0", "a0", 48)
    checksum_and_halt(b, ["s3", "a2"])
    return b.build()
