"""xz-like kernel: LZ match-length scanning with hash-chain probes.

SPEC's 557.xz spends its time comparing candidate match positions byte by
byte: the match loop exits on the first mismatching byte (a data-dependent,
frequently mispredicted branch) and candidates come from a hash chain
(dependent loads).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0xA0000
WINDOW = 1024


def build(scale: int = 1) -> Program:
    rng = data_rng("xz")
    b = ProgramBuilder("xz", data_base=BASE)
    # Compressible-ish data: repeated motifs with noise.
    motif = [rng.randint(0, 255) for _ in range(16)]
    data = []
    for i in range(WINDOW):
        if rng.random() < 0.8:
            data.append(motif[i % 16])
        else:
            data.append(rng.randint(0, 255))
    data_base_addr = b.alloc_bytes("window", data)
    chain = [rng.randrange(WINDOW - 64) for _ in range(64)]
    chain_base = b.alloc_words("chain", chain)

    b.li("s2", data_base_addr)
    b.li("s3", chain_base)
    b.li("s4", 0)              # total match length
    with b.loop(count=12 * scale, counter="s5"):
        b.li("a0", 0)          # chain index
        with b.loop(count=16, counter="s6"):
            b.slli("t0", "a0", 3)
            b.add("t0", "t0", "s3")
            b.ld("a1", "t0", 0)          # candidate offset (dependent)
            b.add("a1", "a1", "s2")      # candidate pointer
            b.li("a2", 0)                # match length
            b.mov("a3", "s2")            # cursor at window start
            mismatch = b.forward_label()
            with b.loop(count=24, counter="s7"):
                b.lb("t1", "a3", 0)
                b.lb("t2", "a1", 0)
                b.bne("t1", "t2", mismatch)   # unpredictable early exit
                b.addi("a2", "a2", 1)
                b.addi("a3", "a3", 1)
                b.addi("a1", "a1", 1)
            b.place(mismatch)
            b.add("s4", "s4", "a2")
            b.addi("a0", "a0", 3)
            b.andi("a0", "a0", 63)
    checksum_and_halt(b, ["s4", "a2"])
    return b.build()
