"""parest-like kernel: sparse matrix-vector product (CSR).

SPEC's 510.parest solves PDE-constrained optimisation with sparse linear
algebra.  The kernel is a CSR SpMV: row-pointer loads, column-index loads
feeding *indirect* vector loads, multiply-accumulate, result store — the
classic two-level dependent-load pattern of sparse codes.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x1C0000
ROWS = 64
NNZ_PER_ROW = 8


def build(scale: int = 1) -> Program:
    rng = data_rng("parest")
    b = ProgramBuilder("parest", data_base=BASE)
    cols, vals = [], []
    for _ in range(ROWS * NNZ_PER_ROW):
        cols.append(rng.randrange(ROWS))
        vals.append(rng.randint(1, 100))
    cols_base = b.alloc_words("cols", cols)
    vals_base = b.alloc_words("vals", vals)
    x_base = b.alloc_words("x", (rng.randint(1, 100) for _ in range(ROWS)))
    y_base = b.reserve("y", ROWS * 8)

    b.li("s2", cols_base)
    b.li("s3", vals_base)
    b.li("s4", x_base)
    b.li("s5", y_base)
    with b.loop(count=3 * scale, counter="s6"):
        b.li("a0", 0)                   # nonzero cursor (bytes)
        b.li("a1", 0)                   # row index
        with b.loop(count=ROWS, counter="s7"):
            b.li("a2", 0)               # row dot product
            with b.loop(count=NNZ_PER_ROW, counter="t6"):
                b.add("t0", "a0", "s2")
                b.ld("a3", "t0", 0)         # column index
                b.add("t1", "a0", "s3")
                b.ld("a4", "t1", 0)         # matrix value
                b.slli("a3", "a3", 3)
                b.add("a3", "a3", "s4")
                b.ld("a5", "a3", 0)         # x[col]: indirect load
                b.mul("a4", "a4", "a5")
                b.add("a2", "a2", "a4")
                b.addi("a0", "a0", 8)
            b.slli("t2", "a1", 3)
            b.add("t2", "t2", "s5")
            b.sd("a2", "t2", 0)             # y[row]
            b.addi("a1", "a1", 1)
    checksum_and_halt(b, ["a2", "a1"])
    return b.build()
