"""x264-like kernel: sum-of-absolute-differences motion search.

SPEC's 525.x264 spends most cycles in SAD/SATD loops: streaming loads from
two pixel blocks and branch-free absolute-difference accumulation, with an
outer loop picking the best candidate (one predictable compare per block).
A bandwidth-bound, easily-predicted workload — the opposite end of the
spectrum from mcf.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import (checksum_and_halt, data_rng, emit_abs_diff,
                                    emit_reload, emit_spill, setup_stack)

BASE = 0x60000
REF_BLOCKS = 8
BLOCK = 64           # words per block


def build(scale: int = 1) -> Program:
    rng = data_rng("x264")
    b = ProgramBuilder("x264", data_base=BASE)
    current = [rng.randint(0, 255) for _ in range(BLOCK)]
    cur_base = b.alloc_words("current", current)
    refs = []
    for _ in range(REF_BLOCKS):
        refs.extend(rng.randint(0, 255) for _ in range(BLOCK))
    ref_base = b.alloc_words("refs", refs)

    setup_stack(b)
    b.li("s2", cur_base)
    b.li("s6", (1 << 62))        # best SAD
    emit_spill(b, ["s2"])        # current-block pointer lives on the stack
    with b.loop(count=2 * scale, counter="s7"):
        b.li("s3", ref_base)
        with b.loop(count=REF_BLOCKS, counter="s4"):
            b.li("a0", 0)            # SAD accumulator
            emit_reload(b, ["a1"])   # reload the spilled block pointer
            b.mov("a2", "s3")
            with b.loop(count=BLOCK // 2, counter="s5"):
                b.ld("a3", "a1", 0)
                b.ld("a4", "a2", 0)
                emit_abs_diff(b, "a5", "a3", "a4")
                b.add("a0", "a0", "a5")
                b.ld("a3", "a1", 8)
                b.ld("a4", "a2", 8)
                emit_abs_diff(b, "a5", "a3", "a4")
                b.add("a0", "a0", "a5")
                b.addi("a1", "a1", 16)
                b.addi("a2", "a2", 16)
            keep = b.forward_label()
            b.bge("a0", "s6", keep)      # mostly predictable compare
            b.mov("s6", "a0")
            b.place(keep)
            b.addi("s3", "s3", BLOCK * 8)
    checksum_and_halt(b, ["s6", "a0"])
    return b.build()
