"""leela-like kernel: Go board scanning with liberty counting.

SPEC's 541.leela evaluates Go positions: scanning board arrays, testing
neighbour cells (branches on loaded bytes) and tallying liberties.  The
kernel sweeps a 19x19-ish board stored as bytes, loads the four neighbours
of every stone and counts empties — byte loads with short-range reuse and
moderately predictable branches.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x80000
DIM = 16               # padded board, power of two for cheap wrapping
CELLS = DIM * DIM


def build(scale: int = 1) -> Program:
    rng = data_rng("leela")
    b = ProgramBuilder("leela", data_base=BASE)
    board = [rng.choice([0, 0, 1, 2]) for _ in range(CELLS)]
    board_base = b.alloc_bytes("board", board)

    b.li("s2", board_base)
    b.li("s3", 0)          # liberties
    b.li("s4", 0)          # stones
    with b.loop(count=4 * scale, counter="s5"):
        b.li("a0", DIM + 1)                    # start inside the padding
        with b.loop(count=CELLS - 2 * DIM - 2, counter="s6"):
            b.add("t0", "a0", "s2")
            b.lb("a1", "t0", 0)                # cell
            empty = b.forward_label()
            b.beq("a1", "zero", empty)         # skip empty points
            b.addi("s4", "s4", 1)
            # Four neighbours; count empties branch-free via SLTU.
            b.lb("a2", "t0", 1)
            b.sltu("t1", "zero", "a2")
            b.xori("t1", "t1", 1)
            b.add("s3", "s3", "t1")
            b.lb("a2", "t0", -1)
            b.sltu("t1", "zero", "a2")
            b.xori("t1", "t1", 1)
            b.add("s3", "s3", "t1")
            b.lb("a2", "t0", DIM)
            b.sltu("t1", "zero", "a2")
            b.xori("t1", "t1", 1)
            b.add("s3", "s3", "t1")
            b.lb("a2", "t0", -DIM)
            b.sltu("t1", "zero", "a2")
            b.xori("t1", "t1", 1)
            b.add("s3", "s3", "t1")
            b.place(empty)
            b.addi("a0", "a0", 1)
    checksum_and_halt(b, ["s3", "s4"])
    return b.build()
