"""omnetpp-like kernel: binary-heap event queue (sift-down loops).

SPEC's 520.omnetpp is a discrete-event simulator dominated by priority-queue
maintenance.  The kernel repeatedly replaces the heap root with a pseudo-
random timestamp and sifts it down: each step loads both children, picks the
smaller (data-dependent branch) and swaps through memory — a dense mix of
dependent loads, stores, reloads and unpredictable branches.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x40000
HEAP = 128


def build(scale: int = 1) -> Program:
    rng = data_rng("omnetpp")
    b = ProgramBuilder("omnetpp", data_base=BASE)
    heap = sorted(rng.getrandbits(20) for _ in range(HEAP))
    heap_base = b.alloc_words("heap", heap)

    b.li("s2", heap_base)
    b.li("s3", 0x9E3779B9)          # LCG-ish state
    with b.loop(count=40 * scale, counter="s4"):
        # New root "event time" from a cheap generator.
        b.mul("s3", "s3", "s3")
        b.srli("t0", "s3", 11)
        b.xor("s3", "s3", "t0")
        b.addi("s3", "s3", 0x3C5)
        b.andi("a0", "s3", 0xFFFFF)
        b.sd("a0", "s2", 0)
        b.li("a1", 0)                # index i
        with b.loop(count=6, counter="s5"):   # log2(HEAP) sift steps
            # left = 2i+1, right = 2i+2
            b.slli("a2", "a1", 1)
            b.addi("a2", "a2", 1)
            b.andi("a2", "a2", HEAP - 1)
            b.slli("t0", "a2", 3)
            b.add("t0", "t0", "s2")
            b.ld("a3", "t0", 0)      # left child
            b.ld("a4", "t0", 8)      # right child
            # pick smaller child index -> a2, value -> a3
            use_left = b.forward_label()
            b.blt("a3", "a4", use_left)
            b.addi("a2", "a2", 1)
            b.mov("a3", "a4")
            b.place(use_left)
            # parent value
            b.slli("t1", "a1", 3)
            b.add("t1", "t1", "s2")
            b.ld("a5", "t1", 0)
            done = b.forward_label()
            b.bge("a3", "a5", done)   # heap property holds
            # swap parent and child through memory
            b.andi("a2", "a2", HEAP - 1)
            b.slli("t2", "a2", 3)
            b.add("t2", "t2", "s2")
            b.sd("a5", "t2", 0)
            b.sd("a3", "t1", 0)
            b.mov("a1", "a2")
            b.place(done)
    checksum_and_halt(b, ["a1", "a3", "s3"])
    return b.build()
