"""gcc-like kernel: IR-walk with opcode dispatch and helper calls.

SPEC's 502.gcc interleaves table-driven dispatch, short helper functions and
irregular memory access.  The kernel walks a buffer of (opcode, operand)
pairs, dispatches through a chain of compare-and-branch cases (some of which
call helpers via jal/jalr, exercising the RAS), and updates a small symbol
table in memory.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x30000
OPS = 256


def build(scale: int = 1) -> Program:
    rng = data_rng("gcc")
    b = ProgramBuilder("gcc", data_base=BASE)
    stream = []
    for _ in range(OPS):
        stream.append(rng.randint(0, 3))        # opcode
        stream.append(rng.getrandbits(10))      # operand
    stream_base = b.alloc_words("stream", stream)
    symtab_base = b.reserve("symtab", 64 * 8)

    helper_fold = b.forward_label("fold")
    helper_emit = b.forward_label("emit")
    end = b.forward_label("end")

    b.li("s2", stream_base)
    b.li("s3", symtab_base)
    b.li("s4", 0)              # accumulator
    with b.loop(count=140 * scale, counter="s5"):
        b.ld("a0", "s2", 0)                       # opcode
        b.ld("a1", "s2", 8)                       # operand
        b.addi("s2", "s2", 16)
        case1 = b.forward_label()
        case2 = b.forward_label()
        case3 = b.forward_label()
        join = b.forward_label()
        b.li("t0", 1)
        b.beq("a0", "t0", case1)
        b.li("t0", 2)
        b.beq("a0", "t0", case2)
        b.li("t0", 3)
        b.beq("a0", "t0", case3)
        # Case 0: constant fold via helper call.
        b.jal("ra", helper_fold)
        b.jal(0, join)
        b.place(case1)                            # case 1: symbol store
        b.andi("t1", "a1", 63)
        b.slli("t1", "t1", 3)
        b.add("t1", "t1", "s3")
        b.sd("a1", "t1", 0)
        b.jal(0, join)
        b.place(case2)                            # case 2: symbol load
        b.andi("t1", "a1", 63)
        b.slli("t1", "t1", 3)
        b.add("t1", "t1", "s3")
        b.ld("t2", "t1", 0)
        b.add("s4", "s4", "t2")
        b.jal(0, join)
        b.place(case3)                            # case 3: emit via helper
        b.jal("ra", helper_emit)
        b.place(join)
        # Wrap the stream pointer.
        wrap = b.forward_label()
        b.li("t0", stream_base + OPS * 16)
        b.blt("s2", "t0", wrap)
        b.li("s2", stream_base)
        b.place(wrap)
    b.jal(0, end)

    b.place(helper_fold)
    b.add("s4", "s4", "a1")
    b.xori("s4", "s4", 0x155)
    b.jalr(0, "ra", 0)

    b.place(helper_emit)
    b.slli("t3", "a1", 1)
    b.add("s4", "s4", "t3")
    b.jalr(0, "ra", 0)

    b.place(end)
    checksum_and_halt(b, ["s4", "s2"])
    return b.build()
