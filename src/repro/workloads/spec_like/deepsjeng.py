"""deepsjeng-like kernel: bitboard move generation and evaluation.

SPEC's 531.deepsjeng (chess) manipulates 64-bit bitboards: shifts, masks,
bit-extraction loops and small-table lookups, with branches on extracted
bits.  The kernel generates "attack sets" by shifting piece boards, walks the
set bits (data-dependent loop exits — frequent mispredicts) and scores them
through a lookup table.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x70000


def build(scale: int = 1) -> Program:
    rng = data_rng("deepsjeng")
    b = ProgramBuilder("deepsjeng", data_base=BASE)
    boards = [rng.getrandbits(64) for _ in range(32)]
    boards_base = b.alloc_words("boards", boards)
    score_table = [rng.randint(-50, 50) & ((1 << 64) - 1) for _ in range(64)]
    table_base = b.alloc_words("scores", score_table)

    b.li("s2", boards_base)
    b.li("s3", table_base)
    b.li("s4", 0)                    # total score
    with b.loop(count=12 * scale, counter="s5"):
        b.li("a0", 0)                # board index
        with b.loop(count=16, counter="s6"):
            b.slli("t0", "a0", 3)
            b.add("t0", "t0", "s2")
            b.ld("a1", "t0", 0)          # piece board
            # Attack set: north-east fill flavoured shifting.
            b.slli("a2", "a1", 9)
            b.srli("a3", "a1", 7)
            b.xor("a2", "a2", "a3")
            b.emit("OR", rd="a2", rs1="a2", rs2="a1")
            # Walk up to 6 set bits (LSB extraction, branchy exit).
            b.li("a4", 0)                # bit position accumulator
            with b.loop(count=6, counter="s7"):
                empty = b.forward_label()
                b.beq("a2", "zero", empty)       # data-dependent exit
                b.sub("t1", "zero", "a2")
                b.emit("AND", rd="t1", rs1="t1", rs2="a2")   # lowest set bit
                b.xor("a2", "a2", "t1")                      # clear it
                # Fold the isolated bit into a 0-63 table index.
                b.srli("t2", "t1", 17)
                b.xor("t1", "t1", "t2")
                b.mul("t1", "t1", "a0")
                b.andi("t1", "t1", 63)
                b.slli("t1", "t1", 3)
                b.add("t1", "t1", "s3")
                b.ld("t3", "t1", 0)              # score lookup
                b.add("s4", "s4", "t3")
                b.addi("a4", "a4", 1)
                b.place(empty)
            b.addi("a0", "a0", 1)
            b.andi("a0", "a0", 31)
    checksum_and_halt(b, ["s4", "a4"])
    return b.build()
