"""mcf-like kernel: pointer chasing with data-dependent cost branches.

SPEC's 505.mcf is a network-simplex solver dominated by chasing arc/node
pointers and comparing costs.  The kernel walks a shuffled singly-linked list
(every load address depends on the previous load's data — the worst case for
delayed transmitters) and conditionally accumulates costs, giving it both
dependent-load chains and hard-to-predict branches.  The paper singles out
mcf as the benchmark where *backward* untainting matters most.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

NODES = 512
NODE_BYTES = 16     # [next_ptr, cost]
BASE = 0x10000


def build(scale: int = 1) -> Program:
    rng = data_rng("mcf")
    b = ProgramBuilder("mcf", data_base=BASE)
    order = list(range(1, NODES)) + [0]
    rng.shuffle(order[:-1])
    words = []
    for index in range(NODES):
        # Nodes hold *byte offsets* from the arena base, as real mcf holds
        # indices: the chase must add the base (an invertible ADD), which is
        # what SPT's backward rule exploits — declassifying the address
        # infers the loaded offset.
        words.append(order[index] * NODE_BYTES)              # next offset
        words.append(rng.randint(0, 1000))                   # cost
    b.alloc_words("nodes", words)

    b.li("s0", BASE)        # arena base (public)
    b.mov("a0", "s0")       # current node pointer
    b.li("a1", 0)           # accumulated cost
    b.li("a2", 500)         # pivot
    b.li("a3", 0)           # count of expensive arcs
    with b.loop(count=220 * scale, counter="s2"):
        b.ld("a4", "a0", 8)              # cost (depends on pointer chase)
        b.ld("a5", "a0", 0)              # next offset: dependent load
        b.add("a0", "a5", "s0")          # pointer = base + offset
        skip = b.forward_label()
        b.blt("a4", "a2", skip)          # data-dependent branch (mispredicts)
        b.add("a1", "a1", "a4")
        b.addi("a3", "a3", 1)
        b.place(skip)
    checksum_and_halt(b, ["a0", "a1", "a3"])
    return b.build()
