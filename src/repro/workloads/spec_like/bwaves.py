"""bwaves-like kernel: streaming triad over an L1-exceeding array.

SPEC's 503.bwaves (blast-wave CFD) streams through large arrays doing dense
arithmetic.  The kernel computes ``c[i] = a[i]*k + b[i] - c[i]`` over arrays
bigger than the L1D, so every iteration misses into L2 — a bandwidth-bound,
branch-light workload whose untaint traffic is almost purely forward events
(the paper's Figure 8 shows bwaves/fotonik dominated by forward untaints).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x100000
N = 6 * 1024          # 3 arrays x 6K words x 8B = 144 KB, exceeds the 32K L1


def build(scale: int = 1) -> Program:
    rng = data_rng("bwaves")
    b = ProgramBuilder("bwaves", data_base=BASE)
    a_base = b.alloc_words("a", (rng.getrandbits(32) for _ in range(N)))
    b_base = b.alloc_words("b", (rng.getrandbits(32) for _ in range(N)))
    c_base = b.reserve("c", N * 8)

    b.li("s2", a_base)
    b.li("s3", b_base)
    b.li("s4", c_base)
    b.li("s5", 3)                      # k
    with b.loop(count=1 * scale, counter="s6"):
        b.li("a0", 0)
        with b.loop(count=N // 8, counter="s7"):   # stride through lines
            b.add("t0", "a0", "s2")
            b.ld("a1", "t0", 0)
            b.add("t1", "a0", "s3")
            b.ld("a2", "t1", 0)
            b.add("t2", "a0", "s4")
            b.ld("a3", "t2", 0)
            b.mul("a1", "a1", "s5")
            b.add("a1", "a1", "a2")
            b.sub("a1", "a1", "a3")
            b.sd("a1", "t2", 0)
            b.addi("a0", "a0", 64)     # one cache line per iteration
    checksum_and_halt(b, ["a1", "a0"])
    return b.build()
