"""perlbench-like kernel: hash-table probing with write-back of hit counts.

SPEC's 500.perlbench spends its time in hash lookups and string handling.
The kernel hashes short keys byte-by-byte, probes a bucket array, compares
stored keys (data-dependent branch) and increments per-bucket hit counters
in place.  The store-then-reload of the counters is exactly the pattern the
shadow L1 exploits — the paper reports perlbench as the largest shadow-L1
win (15.9 percentage points in the Futuristic model).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BUCKETS = 256
BASE = 0x20000
KEYS = 64


def build(scale: int = 1) -> Program:
    rng = data_rng("perlbench")
    b = ProgramBuilder("perlbench", data_base=BASE)
    # Bucket table: [stored_key, hit_count] pairs.
    table = []
    keys = [rng.getrandbits(16) for _ in range(KEYS)]
    for index in range(BUCKETS):
        table.append(rng.choice(keys))
        table.append(0)
    table_base = b.alloc_words("table", table)
    key_base = b.alloc_words("keys", keys)

    b.li("s2", table_base)
    b.li("s3", key_base)
    # Zero the hit counters in-program, as perl would: the stored zeros are
    # computed from immediates (public), so the shadow L1 marks the counter
    # bytes untainted and the load-increment-store chain below stays public.
    b.mov("t0", "s2")
    with b.loop(count=BUCKETS, counter="t1"):
        b.sd("zero", "t0", 8)
        b.addi("t0", "t0", 16)
    with b.loop(count=60 * scale, counter="s4"):
        b.li("a0", 0)                       # key index
        with b.loop(count=16, counter="s5"):
            # Load the key and hash it (xor-shift mix).
            b.slli("a1", "a0", 3)
            b.add("a1", "a1", "s3")
            b.ld("a2", "a1", 0)             # key value
            b.mov("a3", "a2")
            b.srli("a4", "a3", 7)
            b.xor("a3", "a3", "a4")
            b.slli("a4", "a3", 3)
            b.xor("a3", "a3", "a4")
            b.andi("a3", "a3", (BUCKETS - 1))
            # Probe the bucket.
            b.slli("a3", "a3", 4)           # *16 bytes per bucket
            b.add("a3", "a3", "s2")
            b.ld("a5", "a3", 0)             # stored key
            miss = b.forward_label()
            b.bne("a5", "a2", miss)         # compare (data-dependent)
            b.ld("a6", "a3", 8)             # hit count: reload of own store
            b.addi("a6", "a6", 1)
            b.sd("a6", "a3", 8)
            b.place(miss)
            b.addi("a0", "a0", 3)
            b.andi("a0", "a0", KEYS - 1)
    checksum_and_halt(b, ["a0", "a3", "a6"])
    return b.build()
