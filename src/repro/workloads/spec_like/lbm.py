"""lbm-like kernel: lattice-Boltzmann collide-and-stream update.

SPEC's 519.lbm performs read-modify-write sweeps over distribution arrays
with neighbour gathers.  The kernel reads three neighbouring cells, relaxes
them toward their average and streams the results back — heavy load/store
traffic with full-line reuse, no data-dependent branching.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x280000
N = 4 * 1024


def build(scale: int = 1) -> Program:
    rng = data_rng("lbm")
    b = ProgramBuilder("lbm", data_base=BASE)
    cells_base = b.alloc_words("cells", (rng.getrandbits(24) for _ in range(N)))

    b.li("s2", cells_base)
    with b.loop(count=1 * scale, counter="s3"):
        b.li("a0", 8)
        with b.loop(count=(N - 2) // 4, counter="s4"):
            b.add("t0", "a0", "s2")
            b.ld("a1", "t0", -8)
            b.ld("a2", "t0", 0)
            b.ld("a3", "t0", 8)
            # rho = (a1+a2+a3); relax each toward rho/3.
            b.add("a4", "a1", "a2")
            b.add("a4", "a4", "a3")
            b.srli("a5", "a4", 2)        # ~rho/4 as integer relaxation
            b.add("a2", "a2", "a5")
            b.srli("a2", "a2", 1)
            b.sd("a2", "t0", 0)
            b.add("a1", "a1", "a5")
            b.srli("a1", "a1", 1)
            b.sd("a1", "t0", -8)
            b.addi("a0", "a0", 32)
    checksum_and_halt(b, ["a2", "a4"])
    return b.build()
