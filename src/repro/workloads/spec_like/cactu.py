"""cactuBSSN-like kernel: 1-D stencil sweep (numerical relativity flavour).

SPEC's 507.cactuBSSN evaluates finite-difference stencils over grid arrays.
The kernel applies a 5-point stencil with integer weights over a grid larger
than the L1D, writing a second array — spatially local loads with reuse
across neighbouring iterations, no data-dependent branches.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt, data_rng

BASE = 0x140000
N = 4 * 1024


def build(scale: int = 1) -> Program:
    rng = data_rng("cactu")
    b = ProgramBuilder("cactu", data_base=BASE)
    grid_base = b.alloc_words("grid", (rng.getrandbits(24) for _ in range(N)))
    out_base = b.reserve("out", N * 8)

    b.li("s2", grid_base)
    b.li("s3", out_base)
    b.li("s6", 6)                          # centre stencil weight
    with b.loop(count=1 * scale, counter="s4"):
        b.li("a0", 16)                     # skip the boundary
        with b.loop(count=(N - 4) // 4, counter="s5"):
            b.add("t0", "a0", "s2")
            b.ld("a1", "t0", -16)
            b.ld("a2", "t0", -8)
            b.ld("a3", "t0", 0)
            b.ld("a4", "t0", 8)
            b.ld("a5", "t0", 16)
            # out = a1 - 4*a2 + 6*a3 - 4*a4 + a5 (biharmonic weights).
            b.slli("t1", "a2", 2)
            b.sub("a1", "a1", "t1")
            b.mul("t1", "a3", "s6")        # s6 set below per sweep
            b.add("a1", "a1", "t1")
            b.slli("t1", "a4", 2)
            b.sub("a1", "a1", "t1")
            b.add("a1", "a1", "a5")
            b.add("t2", "a0", "s3")
            b.sd("a1", "t2", 0)
            b.addi("a0", "a0", 32)         # 4 words per iteration
        b.addi("s6", "s6", 1)
    checksum_and_halt(b, ["a1", "s6"])
    return b.build()
