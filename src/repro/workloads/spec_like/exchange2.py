"""exchange2-like kernel: nested counted loops permuting small arrays.

SPEC's 548.exchange2 (Fortran Sudoku solver) is almost pure integer compute
over tiny in-cache arrays with deeply nested counted loops and very
predictable control flow.  The kernel permutes digit blocks in place —
plenty of store-then-reload within an L1-resident working set.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import checksum_and_halt

BASE = 0x90000
GRID = 81


def build(scale: int = 1) -> Program:
    b = ProgramBuilder("exchange2", data_base=BASE)
    grid_base = b.reserve("grid", GRID * 8)

    b.li("s2", grid_base)
    # Generate the grid in-program from an LCG, as the solver builds its own
    # candidate boards.  The values are computed from immediates, so the grid
    # is public data under SPT from the first store on.
    b.li("t0", 11)                      # LCG state
    b.mov("t1", "s2")
    with b.loop(count=GRID, counter="t2"):
        b.mul("t0", "t0", "t0")
        b.addi("t0", "t0", 0x2545)
        b.srli("t3", "t0", 5)
        b.andi("t3", "t3", 7)
        b.addi("t3", "t3", 1)
        b.sd("t3", "t1", 0)
        b.addi("t1", "t1", 8)
    b.li("s3", 0)                       # checksum
    with b.loop(count=10 * scale, counter="s4"):
        # Swap rows r and r+3 element-wise (block exchange).
        b.li("a0", 0)                   # column
        with b.loop(count=9, counter="s5"):
            b.slli("t0", "a0", 3)
            b.add("t0", "t0", "s2")
            b.ld("a1", "t0", 0)             # row 0 element
            b.ld("a2", "t0", 27 * 8)        # row 3 element
            b.sd("a2", "t0", 0)
            b.sd("a1", "t0", 27 * 8)
            b.add("s3", "s3", "a1")
            b.addi("a0", "a0", 1)
        # Rotate a column through registers (reload what was just stored).
        b.li("a0", 0)
        with b.loop(count=8, counter="s5"):
            b.slli("t0", "a0", 3)
            b.add("t0", "t0", "s2")
            b.ld("a1", "t0", 0)
            b.ld("a2", "t0", 8)
            b.add("a3", "a1", "a2")
            b.andi("a3", "a3", 15)
            b.addi("a3", "a3", 1)
            b.sd("a3", "t0", 0)
            b.addi("a0", "a0", 1)
    checksum_and_halt(b, ["s3", "a3"])
    return b.build()
