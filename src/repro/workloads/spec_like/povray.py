"""povray-like kernel: ray/sphere intersection testing.

SPEC's 511.povray mixes dense arithmetic (dot products, discriminants) with
branchy hit/miss decisions and per-object state updates in memory.  The
kernel tests a bundle of rays against a list of spheres: three loads per
object, a multiply-heavy discriminant, a moderately unpredictable hit branch
and a hit-record store that later iterations reload.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import (checksum_and_halt, data_rng,
                                    emit_reload, emit_spill, setup_stack)

BASE = 0x200000
SPHERES = 32


def build(scale: int = 1) -> Program:
    rng = data_rng("povray")
    b = ProgramBuilder("povray", data_base=BASE)
    spheres = []
    for _ in range(SPHERES):
        spheres.extend((rng.randint(-500, 500) & ((1 << 64) - 1),
                        rng.randint(-500, 500) & ((1 << 64) - 1),
                        rng.randint(10, 100)))
    spheres_base = b.alloc_words("spheres", spheres)
    hits_base = b.reserve("hits", SPHERES * 8)

    setup_stack(b)
    b.li("s2", spheres_base)
    b.li("s3", hits_base)
    emit_spill(b, ["s2"])       # spill the object-list pointer
    # Zero the hit records in-program (public stores -> untainted bytes).
    b.mov("t0", "s3")
    with b.loop(count=SPHERES, counter="t1"):
        b.sd("zero", "t0", 0)
        b.addi("t0", "t0", 8)
    b.li("s4", 1)               # ray seed
    with b.loop(count=8 * scale, counter="s5"):
        # Ray direction from a little generator.
        b.mul("s4", "s4", "s4")
        b.addi("s4", "s4", 0x9E37)
        b.andi("a0", "s4", 0x3FF)
        b.srli("a1", "s4", 10)
        b.andi("a1", "a1", 0x3FF)
        b.li("a2", 0)           # sphere cursor (bytes)
        b.li("a3", 0)           # sphere index
        emit_reload(b, ["a7"])  # object-list pointer reloaded per ray
        with b.loop(count=SPHERES, counter="s6"):
            b.add("t0", "a2", "a7")
            b.ld("a4", "t0", 0)          # cx
            b.ld("a5", "t0", 8)          # cy
            b.ld("a6", "t0", 16)         # r
            # b-coefficient ~ dot(dir, centre); discriminant ~ b^2 - c.
            b.mul("t1", "a0", "a4")
            b.mul("t2", "a1", "a5")
            b.add("t1", "t1", "t2")
            b.srli("t1", "t1", 8)
            b.mul("t2", "t1", "t1")
            b.srli("t2", "t2", 8)
            b.mul("t3", "a6", "a6")
            miss = b.forward_label()
            b.blt("t2", "t3", miss)       # hit test (data-dependent)
            # Record the hit: increment per-sphere counter.
            b.slli("t4", "a3", 3)
            b.add("t4", "t4", "s3")
            b.ld("t5", "t4", 0)
            b.addi("t5", "t5", 1)
            b.sd("t5", "t4", 0)
            b.place(miss)
            b.addi("a2", "a2", 24)
            b.addi("a3", "a3", 1)
    checksum_and_halt(b, ["t5", "a3"])
    return b.build()
