"""fotonik3d-like kernel: FDTD field update stream.

SPEC's 549.fotonik3d updates electromagnetic field arrays with simple
element-wise expressions over large grids — a pure streaming kernel whose
untaint events are overwhelmingly forward propagation (Figure 8).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import (checksum_and_halt, data_rng,
                                    emit_reload, emit_spill, setup_stack)

BASE = 0x240000
N = 6 * 1024


def build(scale: int = 1) -> Program:
    rng = data_rng("fotonik")
    b = ProgramBuilder("fotonik", data_base=BASE)
    e_base = b.alloc_words("efield", (rng.getrandbits(30) for _ in range(N)))
    h_base = b.alloc_words("hfield", (rng.getrandbits(30) for _ in range(N)))

    setup_stack(b)
    b.li("s2", e_base)
    b.li("s3", h_base)
    b.li("s4", 7)                    # coupling coefficient
    emit_spill(b, ["s2", "s3"])      # field pointers spilled by the caller
    with b.loop(count=1 * scale, counter="s5"):
        b.li("a0", 0)
        with b.loop(count=N // 16 // 4, counter="s7"):   # per-chunk "call"
            emit_reload(b, ["s2", "s3"])
            with b.loop(count=16, counter="s6"):
                b.add("t0", "a0", "s2")
                b.add("t1", "a0", "s3")
                b.ld("a1", "t0", 0)          # E
                b.ld("a2", "t1", 0)          # H
                b.ld("a3", "t1", 8)          # H neighbour
                b.sub("a4", "a3", "a2")      # curl term
                b.mul("a4", "a4", "s4")
                b.srli("a4", "a4", 3)
                b.add("a1", "a1", "a4")
                b.sd("a1", "t0", 0)          # E update
                b.addi("a0", "a0", 8)        # dense word stride
    checksum_and_halt(b, ["a1", "a0"])
    return b.build()
