"""Shared helpers for workload kernels."""

from __future__ import annotations

import random
import zlib

from repro.isa.builder import ProgramBuilder

MASK32 = 0xFFFFFFFF


def data_rng(name: str) -> random.Random:
    """Deterministic per-workload RNG for initial data images.

    Uses a stable hash (not ``hash()``, which is salted per process by
    PYTHONHASHSEED) so workloads are bit-identical across runs and machines.
    """
    return random.Random(zlib.crc32(name.encode()))


def emit_min_branchless(b: ProgramBuilder, dst: str, a: str, c: str,
                        scratch1: str = "t4", scratch2: str = "t5") -> None:
    """dst = min(a, c) without branches: m = -(a<c); dst = c ^ ((a^c) & m)."""
    b.slt(scratch1, a, c)
    b.sub(scratch1, "zero", scratch1)        # all-ones if a < c
    b.xor(scratch2, a, c)
    b.emit("AND", rd=scratch2, rs1=scratch2, rs2=scratch1)
    b.xor(dst, c, scratch2)


def emit_rotl32(b: ProgramBuilder, dst: str, src: str, amount: int,
                scratch: str = "t4") -> None:
    """32-bit rotate-left by a constant, branch-free."""
    amount %= 32
    b.slli(scratch, src, amount)
    b.srli(dst, src, 32 - amount)
    b.emit("OR", rd=dst, rs1=dst, rs2=scratch)
    b.andi(dst, dst, MASK32)


def emit_abs_diff(b: ProgramBuilder, dst: str, a: str, c: str,
                  scratch: str = "t4") -> None:
    """dst = |a - c| branch-free: d = a-c; m = -(d<0); dst = (d^m) - m."""
    b.sub(dst, a, c)
    b.slti(scratch, dst, 0)
    b.sub(scratch, "zero", scratch)
    b.xor(dst, dst, scratch)
    b.sub(dst, dst, scratch)


def emit_spill(b: ProgramBuilder, regs: list, stack_reg: str = "sp") -> None:
    """Spill registers to the stack, as a compiled prologue would.

    Spilled public values (array base pointers etc.) are what the shadow L1
    is designed to keep public across the memory round-trip: without it,
    every reload of a spilled pointer is tainted and the loads it feeds are
    delayed until the visibility point.
    """
    for index, reg in enumerate(regs):
        b.sd(reg, stack_reg, index * 8)


def emit_reload(b: ProgramBuilder, regs: list, stack_reg: str = "sp") -> None:
    """Reload previously spilled registers (epilogue)."""
    for index, reg in enumerate(regs):
        b.ld(reg, stack_reg, index * 8)


def setup_stack(b: ProgramBuilder, size_bytes: int = 128) -> int:
    """Reserve a stack area and point ``sp`` at it; returns the address."""
    address = b.reserve("stack", size_bytes)
    b.li("sp", address)
    return address


def checksum_and_halt(b: ProgramBuilder, regs: list, out_address: int = 0x300) -> None:
    """Fold live registers into one checksum word, store it, halt."""
    b.li("s11", 0)
    for reg in regs:
        b.add("s11", "s11", reg)
    b.li("t4", out_address)
    b.sd("s11", "t4", 0)
    b.halt()
