"""Bitsliced AES-style round kernel (constant-time, after ctaes).

Bitsliced AES represents the state as eight bit-planes and evaluates the
S-box as a boolean circuit of AND/XOR/OR/NOT gates — no table lookups, no
secret-dependent addresses, no branches.  This kernel implements a
representative bitsliced round: a gate-circuit non-linear layer over eight
plane registers, a ShiftRows-flavoured rotation of each plane, a
MixColumns-flavoured XOR diffusion, and AddRoundKey from in-register round
keys.  The plaintext and key planes are secret; the ciphertext is stored to
a public buffer.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import data_rng

BASE = 0x340000
OUT_BASE = BASE + 0x1000

PLANES = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"]
KEYS = ["s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"]

# A representative bitsliced S-box segment: (dst, op, src1, src2) over plane
# indices; dst accumulates via XOR with the gate result (t-registers used as
# temporaries).  Modeled on the opening share/multiply structure of ctaes.
SBOX_GATES = [
    (0, "XOR", 3, 5), (1, "XOR", 0, 6), (2, "AND", 1, 4), (3, "XOR", 2, 7),
    (4, "OR", 0, 5), (5, "XOR", 4, 1), (6, "AND", 3, 2), (7, "XOR", 6, 0),
    (1, "AND", 7, 5), (2, "XOR", 1, 3), (0, "OR", 2, 6), (3, "XOR", 0, 4),
    (5, "AND", 3, 1), (6, "XOR", 5, 7), (4, "XOR", 6, 2), (7, "AND", 4, 0),
]


def _emit_sbox(b: ProgramBuilder) -> None:
    for dst, op, s1, s2 in SBOX_GATES:
        b.emit(op, rd="t0", rs1=PLANES[s1], rs2=PLANES[s2])
        b.xor(PLANES[dst], PLANES[dst], "t0")
    # NOT gates on two planes (the affine part of the real S-box).
    b.emit("NOT", rd=PLANES[1], rs1=PLANES[1])
    b.emit("NOT", rd=PLANES[6], rs1=PLANES[6])


def _emit_shiftrows(b: ProgramBuilder) -> None:
    for index, plane in enumerate(PLANES):
        if index % 4:
            b.rotli(plane, plane, 16 * (index % 4))


def _emit_mixcolumns(b: ProgramBuilder) -> None:
    for index, plane in enumerate(PLANES):
        neighbour = PLANES[(index + 1) % 8]
        b.rotli("t0", neighbour, 8)
        b.xor(plane, plane, "t0")


def build(scale: int = 1, rounds: int = 4, key_planes=None) -> Program:
    """Build the bitsliced kernel; ``key_planes`` overrides the secret key."""
    rng = data_rng("aes")
    b = ProgramBuilder("aes-bitslice", data_base=BASE)
    plaintext = [rng.getrandbits(64) for _ in range(8)]
    key = list(key_planes) if key_planes is not None else \
        [rng.getrandbits(64) for _ in range(8)]
    b.alloc_words("planes_in", plaintext + key)

    b.li("t5", BASE)
    b.li("t6", OUT_BASE)
    with b.loop(count=2 * scale, counter="t4"):
        for index, reg in enumerate(PLANES):
            b.ld(reg, "t5", index * 8)
        for index, reg in enumerate(KEYS):
            b.ld(reg, "t5", (8 + index) * 8)
        for _ in range(rounds):
            _emit_sbox(b)
            _emit_shiftrows(b)
            _emit_mixcolumns(b)
            for plane, key_reg in zip(PLANES, KEYS):
                b.xor(plane, plane, key_reg)     # AddRoundKey
        for index, reg in enumerate(PLANES):
            b.sd(reg, "t6", index * 8)
        b.addi("t6", "t6", 64)
    b.halt()
    return b.build()
