"""djbsort-style constant-time sorting network.

djbsort sorts secret data with a fixed Batcher odd-even merge network of
branch-free compare-exchange steps (min/max computed arithmetically), so the
memory access pattern and control flow are identical for every input.  This
kernel sorts a 16-element secret array in place; the sequence of addresses
is a compile-time constant.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import data_rng, emit_min_branchless

BASE = 0x380000
N = 16


def batcher_pairs(n: int) -> list:
    """Compare-exchange pairs of Batcher's odd-even merge sort for size n."""
    pairs = []
    p = 1
    while p < n:
        k = p
        while k >= 1:
            for j in range(k % p, n - k, 2 * k):
                for i in range(0, min(k, n - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        pairs.append((i + j, i + j + k))
            k //= 2
        p *= 2
    return pairs


def build(scale: int = 1, values=None) -> Program:
    """Build a constant-time sorter; ``values`` overrides the secret array."""
    rng = data_rng("djbsort")
    b = ProgramBuilder("djbsort", data_base=BASE)
    data = list(values) if values is not None else \
        [rng.getrandbits(32) for _ in range(N)]
    if len(data) != N:
        raise ValueError(f"expected {N} values")
    b.alloc_words("array", data)

    pairs = batcher_pairs(N)
    b.li("s2", BASE)
    with b.loop(count=2 * scale, counter="t6"):
        for i, j in pairs:
            b.ld("a0", "s2", i * 8)
            b.ld("a1", "s2", j * 8)
            # lo = min(a0, a1); hi = a0 ^ a1 ^ lo  (branch-free exchange).
            emit_min_branchless(b, "a2", "a0", "a1", scratch1="t0",
                                scratch2="t1")
            b.xor("a3", "a0", "a1")
            b.xor("a3", "a3", "a2")
            b.sd("a2", "s2", i * 8)
            b.sd("a3", "s2", j * 8)
    b.halt()
    return b.build()
