"""ChaCha20 keystream kernel (constant-time, after BearSSL's reference).

A faithful 32-bit ChaCha20 block function in the repro ISA: the 16-word
state lives entirely in registers, quarter-rounds use only ADD/XOR and
constant-amount rotates, the final feed-forward re-adds the input state, and
the keystream is stored to a public output buffer.  Key, nonce and counter
are *secret inputs* loaded from memory: they are never used as an address or
branch predicate, so the program is constant-time in the classical sense —
and, under SPT, stays secret even speculatively.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.common import MASK32, data_rng, emit_rotl32

BASE = 0x300000
SECRET_BASE = BASE            # 16 words: constants, key, counter, nonce
OUT_BASE = BASE + 0x1000

# State register assignment: the 16 ChaCha words.
STATE = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
         "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"]

QUARTER_ROUNDS = [
    (0, 4, 8, 12), (1, 5, 9, 13), (2, 6, 10, 14), (3, 7, 11, 15),   # column
    (0, 5, 10, 15), (1, 6, 11, 12), (2, 7, 8, 13), (3, 4, 9, 14),   # diagonal
]


def _quarter_round(b: ProgramBuilder, a: str, bb: str, c: str, d: str) -> None:
    b.add(a, a, bb)
    b.andi(a, a, MASK32)
    b.xor(d, d, a)
    emit_rotl32(b, d, d, 16, scratch="t0")
    b.add(c, c, d)
    b.andi(c, c, MASK32)
    b.xor(bb, bb, c)
    emit_rotl32(b, bb, bb, 12, scratch="t0")
    b.add(a, a, bb)
    b.andi(a, a, MASK32)
    b.xor(d, d, a)
    emit_rotl32(b, d, d, 8, scratch="t0")
    b.add(c, c, d)
    b.andi(c, c, MASK32)
    b.xor(bb, bb, c)
    emit_rotl32(b, bb, bb, 7, scratch="t0")


def build(scale: int = 1, double_rounds: int = 2,
          key_words=None) -> Program:
    """Build a ChaCha20-like keystream generator.

    ``double_rounds`` defaults to 2 (instead of the cipher's 10) to keep the
    dynamic instruction count simulator-friendly; the dataflow per round is
    exact.  ``key_words`` overrides the secret key (used by security tests to
    compare traces across secrets).
    """
    rng = data_rng("chacha20")
    b = ProgramBuilder("chacha20", data_base=BASE)
    constants = [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574]
    key = list(key_words) if key_words is not None else \
        [rng.getrandbits(32) for _ in range(8)]
    counter_nonce = [1, 0, rng.getrandbits(32), rng.getrandbits(32)]
    b.alloc_words("state_in", constants + key + counter_nonce)

    b.li("t5", SECRET_BASE)
    b.li("t6", OUT_BASE)
    blocks = 2 * scale
    with b.loop(count=blocks, counter="t4"):
        # Load the input state (the key words are the secret).
        for index, reg in enumerate(STATE):
            b.ld(reg, "t5", index * 8)
        for _ in range(double_rounds):
            for a, bb, c, d in QUARTER_ROUNDS:
                _quarter_round(b, STATE[a], STATE[bb], STATE[c], STATE[d])
        # Feed-forward: add the input state back in, store the keystream.
        for index, reg in enumerate(STATE):
            b.ld("t1", "t5", index * 8)
            b.add(reg, reg, "t1")
            b.andi(reg, reg, MASK32)
            b.sd(reg, "t6", index * 8)
        # Bump the block counter (word 12) and the output pointer.
        b.ld("t1", "t5", 12 * 8)
        b.addi("t1", "t1", 1)
        b.andi("t1", "t1", MASK32)
        b.sd("t1", "t5", 12 * 8)
        b.addi("t6", "t6", 128)
    b.halt()
    return b.build()


def reference_block(state_words: list, double_rounds: int = 2) -> list:
    """Python reference of one block (for functional unit tests)."""
    def rotl(x, n):
        return ((x << n) | (x >> (32 - n))) & MASK32

    x = list(state_words)
    for _ in range(double_rounds):
        for a, bb, c, d in QUARTER_ROUNDS:
            x[a] = (x[a] + x[bb]) & MASK32
            x[d] = rotl(x[d] ^ x[a], 16)
            x[c] = (x[c] + x[d]) & MASK32
            x[bb] = rotl(x[bb] ^ x[c], 12)
            x[a] = (x[a] + x[bb]) & MASK32
            x[d] = rotl(x[d] ^ x[a], 8)
            x[c] = (x[c] + x[d]) & MASK32
            x[bb] = rotl(x[bb] ^ x[c], 7)
    return [(x[i] + state_words[i]) & MASK32 for i in range(16)]
