"""Workloads: SPEC-like kernels, constant-time crypto, random programs."""

from repro.workloads.registry import (CATEGORY_CT, CATEGORY_SPEC, WORKLOADS,
                                      Workload, ct_workloads, get,
                                      spec_workloads)
from repro.workloads.random_programs import RandomProgramConfig, random_program

__all__ = [
    "CATEGORY_CT", "CATEGORY_SPEC", "WORKLOADS", "Workload", "ct_workloads",
    "get", "spec_workloads", "RandomProgramConfig", "random_program",
]
