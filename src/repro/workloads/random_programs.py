"""Random structured-program generator for differential testing.

Generates terminating programs that exercise every pipeline mechanism:
dependent ALU chains, loads/stores with register-dependent (but bounded)
addresses, data-dependent forward branches, counted loops, and call/return
pairs.  Every program halts by construction (loops are counted, non-loop
branches only jump forward), so the golden interpreter and the OoO core can
be compared on final architectural state.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program

# Registers the generator mutates freely (avoids ra/sp conventions).
_SCRATCH = ["t0", "t1", "t2", "a0", "a1", "a2", "a3", "s2", "s3", "s4"]
_ALU_RR = ["ADD", "SUB", "AND", "OR", "XOR", "SLL", "SRL", "MUL", "SLT", "SLTU"]
_ALU_RI = ["ADDI", "ANDI", "ORI", "XORI", "SLLI", "SRLI", "ROTLI", "ROTRI"]
_MEM_BASE = 0x4000
_MEM_MASK = 0x7F8          # 256 words, 8-byte aligned
# andi-masked addresses reach byte offsets [0, _MEM_MASK + 16 + 8): the
# mask itself, plus the largest static offset (16), plus a doubleword
# access.  The checksum word lives just past that window so no random
# store can clobber it (and no random load can read it back).
_CHECKSUM_OFFSET = _MEM_MASK + 24
_HEAP_WORDS = _CHECKSUM_OFFSET // 8 + 1


class RandomProgramConfig:
    """Tuning knobs for the generator."""

    def __init__(self, blocks: int = 12, loop_probability: float = 0.2,
                 branch_probability: float = 0.25, call_probability: float = 0.1,
                 mem_probability: float = 0.3, max_loop_count: int = 6):
        self.blocks = blocks
        self.loop_probability = loop_probability
        self.branch_probability = branch_probability
        self.call_probability = call_probability
        self.mem_probability = mem_probability
        self.max_loop_count = max_loop_count


def random_program(seed: int, config: Optional[RandomProgramConfig] = None) -> Program:
    """Build a deterministic pseudo-random program for ``seed``."""
    config = config or RandomProgramConfig()
    rng = random.Random(seed)
    b = ProgramBuilder(f"random-{seed}", data_base=_MEM_BASE)
    b.alloc_words("heap", [rng.getrandbits(64) for _ in range(_HEAP_WORDS)],
                  align=8)
    # Pin the data region base used by _emit_mem.
    b.li("s0", _MEM_BASE)
    for reg in _SCRATCH:
        b.li(reg, rng.getrandbits(12))
    has_callee = rng.random() < 0.8
    callee = b.forward_label("callee") if has_callee else None
    end = b.forward_label("end")

    for _ in range(config.blocks):
        roll = rng.random()
        if roll < config.loop_probability:
            _emit_loop(b, rng, config)
        elif roll < config.loop_probability + config.branch_probability:
            _emit_branch(b, rng)
        elif callee and roll < (config.loop_probability
                                + config.branch_probability
                                + config.call_probability):
            b.jal("ra", callee)
        else:
            _emit_straightline(b, rng, config)
    b.jal(0, end)

    if callee:
        b.place(callee)
        for _ in range(rng.randint(1, 4)):
            _emit_alu(b, rng)
        b.jalr(0, "ra", 0)

    b.place(end)
    # Publish a checksum so tests have a single value to compare as well.
    b.li("s1", 0)
    for reg in _SCRATCH:
        b.add("s1", "s1", reg)
    b.sd("s1", "s0", _CHECKSUM_OFFSET)
    b.halt()
    return b.build()


def _emit_straightline(b: ProgramBuilder, rng: random.Random,
                       config: RandomProgramConfig) -> None:
    for _ in range(rng.randint(2, 6)):
        if rng.random() < config.mem_probability:
            _emit_mem(b, rng)
        else:
            _emit_alu(b, rng)


def _emit_alu(b: ProgramBuilder, rng: random.Random) -> None:
    if rng.random() < 0.6:
        op = rng.choice(_ALU_RR)
        b.emit(op, rd=_reg(rng), rs1=_reg(rng), rs2=_reg(rng))
    else:
        op = rng.choice(_ALU_RI)
        imm = rng.randint(0, 63) if op in ("SLLI", "SRLI", "ROTLI", "ROTRI") \
            else rng.getrandbits(10)
        b.emit(op, rd=_reg(rng), rs1=_reg(rng), imm=imm)


def _emit_mem(b: ProgramBuilder, rng: random.Random) -> None:
    """Register-dependent but bounded memory access (address in the heap)."""
    addr = "t5"
    b.andi(addr, _reg(rng), _MEM_MASK)
    b.add(addr, addr, "s0")
    op = rng.choice(["LD", "SD", "LW", "SW", "LB", "SB"])
    offset = rng.choice([0, 8, 16])
    if op.startswith("L"):
        b.emit(op, rd=_reg(rng), rs1=addr, imm=offset)
    else:
        b.emit(op, rs1=addr, rs2=_reg(rng), imm=offset)


def _emit_branch(b: ProgramBuilder, rng: random.Random) -> None:
    op = rng.choice(["BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU"])
    else_label = b.forward_label()
    join = b.forward_label()
    b.emit(op, rs1=_reg(rng), rs2=_reg(rng), imm=else_label)
    for _ in range(rng.randint(1, 3)):
        _emit_alu(b, rng)
    b.jal(0, join)
    b.place(else_label)
    for _ in range(rng.randint(1, 3)):
        _emit_alu(b, rng)
    b.place(join)


def _emit_loop(b: ProgramBuilder, rng: random.Random,
               config: RandomProgramConfig) -> None:
    count = rng.randint(1, config.max_loop_count)
    with b.loop(count=count, counter="t6"):
        for _ in range(rng.randint(1, 3)):
            if rng.random() < config.mem_probability:
                _emit_mem(b, rng)
            else:
                _emit_alu(b, rng)


def _reg(rng: random.Random) -> str:
    return rng.choice(_SCRATCH)
