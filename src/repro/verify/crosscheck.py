"""Cross-checking the symbolic checker against the concrete fuzz oracle.

The two oracles answer related but distinct questions:

* the **concrete** oracle samples a secret pair and diffs attacker-trace
  digests under a real pipeline with real predictors;
* the **symbolic** checker decides non-interference for *all* secret values
  under the always-mispredict speculation semantics, which over-approximates
  every concrete predictor.

So agreement is implication-shaped, not equality-shaped:

==============================  ========================================
concrete diverged, symbolic     **missed-leak** — a disagreement.  The
``safe`` (complete)             concrete machine only diverges when some
                                access/branch/target differs across
                                secrets (cache state, hit levels and
                                timing are functions of that sequence),
                                and always-mispredict explores a superset
                                of any predictor's transient paths.
concrete clean, symbolic        **phantom-architectural-leak** — a
``leak`` with a *confirmed      disagreement: a depth-0 observation means
architectural* (depth-0)        the *committed* trace distinguishes some
witness                         secret pair, contradicting the
                                generator's architectural-independence
                                invariant that the concrete oracle
                                validated.
concrete clean, symbolic        **unconfirmed-witness** — a disagreement:
``leak``, no witness confirmed  the checker claims a leak but cannot
                                exhibit a distinguishing secret pair.
concrete clean, symbolic        **agree** — the expected over-
``leak`` with confirmed         approximation: the concrete predictor
*speculative* witnesses         simply didn't mispredict that way (or the
                                sampled pair didn't exercise the leak).
anything, symbolic ``unknown``  **inconclusive** — bounds/budget too
                                small; counted, never failed.
==============================  ========================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.fuzz.corpus import Corpus
from repro.fuzz.generator import generate_plan, render, secret_pair
from repro.fuzz.oracle import FUZZ_BUDGET, check_pair_direct
from repro.verify.selfcomp import CheckResult
from repro.verify.targets import check_plan

AGREE = "agree"
MISSED_LEAK = "missed-leak"
PHANTOM_ARCH = "phantom-architectural-leak"
UNCONFIRMED = "unconfirmed-witness"
INCONCLUSIVE = "inconclusive"

DISAGREEMENTS = (MISSED_LEAK, PHANTOM_ARCH, UNCONFIRMED)


@dataclass(frozen=True)
class CrossCheckRecord:
    """Both oracles' verdicts for one plan, and how they relate."""

    seed: int
    profile: str
    symbolic: str               # the checker's verdict
    concrete_diverged: bool     # UnsafeBaseline saw differing channels
    channels: tuple             # which channels (possibly from the corpus)
    classification: str         # AGREE / MISSED_LEAK / ... above
    detail: str = ""

    @property
    def disagreement(self) -> bool:
        return self.classification in DISAGREEMENTS

    def to_json(self) -> dict:
        return {"seed": self.seed, "profile": self.profile,
                "symbolic": self.symbolic,
                "concrete_diverged": self.concrete_diverged,
                "channels": list(self.channels),
                "classification": self.classification,
                "detail": self.detail}


@dataclass
class CrossCheckReport:
    """Outcome of one cross-check sweep."""

    records: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def disagreements(self) -> list:
        return [r for r in self.records if r.disagreement]

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def counts(self) -> dict:
        tally: dict = {}
        for record in self.records:
            tally[record.classification] = \
                tally.get(record.classification, 0) + 1
        return tally

    def to_json(self) -> dict:
        return {"checked": len(self.records), "ok": self.ok,
                "counts": self.counts(),
                "wall_seconds": round(self.wall_seconds, 3),
                "records": [r.to_json() for r in self.records]}


def classify_agreement(symbolic: CheckResult,
                       concrete_diverged: bool) -> tuple:
    """(classification, detail) for one oracle pair — the table above."""
    if symbolic.verdict == "unknown":
        return INCONCLUSIVE, "symbolic exploration incomplete"
    if symbolic.verdict == "safe":
        if concrete_diverged:
            return (MISSED_LEAK,
                    "concrete oracle diverged but the complete symbolic "
                    "exploration found no secret-dependent observation")
        return AGREE, ""
    # symbolic == "leak"
    if concrete_diverged:
        return AGREE, ""
    confirmed = [w for w in symbolic.witnesses if w.confirmed]
    if not confirmed:
        return (UNCONFIRMED,
                "symbolic leak but no witness has a distinguishing "
                "concrete secret pair")
    architectural = [w for w in confirmed if w.depth == 0]
    if architectural:
        first = architectural[0]
        return (PHANTOM_ARCH,
                f"confirmed depth-0 witness at pc={first.pc} "
                f"({first.kind}) but the committed concrete traces agree")
    return AGREE, "speculative-only leak; concrete predictor not mistrained"


def cross_check_plan(plan, *, secrets: Optional[tuple] = None,
                     model: AttackModel = AttackModel.SPECTRE,
                     max_instructions: int = FUZZ_BUDGET,
                     **bounds) -> CrossCheckRecord:
    """Run both oracles on one plan and classify their agreement.

    The concrete side diffs the plan's deterministic secret pair under
    ``UnsafeBaseline`` (protection-free, so every real leak is visible;
    its verdicts are also attack-model-independent in this simulator).
    """
    symbolic = check_plan(plan, **bounds)
    if secrets is None:
        secrets = secret_pair(plan.seed)
    channels = check_pair_direct(
        render(plan, secrets[0]), render(plan, secrets[1]),
        "UnsafeBaseline", model, max_instructions=max_instructions)
    classification, detail = classify_agreement(symbolic, bool(channels))
    return CrossCheckRecord(plan.seed, plan.profile, symbolic.verdict,
                            bool(channels), tuple(channels),
                            classification, detail)


def cross_check_seeds(count: int, profile: str = "quick", *,
                      seed_start: int = 0,
                      model: AttackModel = AttackModel.SPECTRE,
                      max_instructions: int = FUZZ_BUDGET,
                      **bounds) -> CrossCheckReport:
    """Cross-check ``count`` freshly generated plans of one profile."""
    start = time.perf_counter()
    report = CrossCheckReport()
    for seed in range(seed_start, seed_start + count):
        plan = generate_plan(seed, profile)
        report.records.append(cross_check_plan(
            plan, model=model, max_instructions=max_instructions, **bounds))
    report.wall_seconds = time.perf_counter() - start
    return report


def cross_check_corpus(corpus: Corpus, *, limit: Optional[int] = None,
                       **bounds) -> CrossCheckReport:
    """Replay a fuzz corpus through the symbolic checker.

    The concrete verdicts come from the corpus records themselves (the
    campaign already simulated every cell); only the symbolic side runs
    fresh.  ``UnsafeBaseline`` cells across all attack models stand in for
    "did the concrete oracle see this plan leak".
    """
    start = time.perf_counter()
    report = CrossCheckReport()
    pairs = corpus.replayable()
    if limit is not None:
        pairs = pairs[:limit]
    for record, plan in pairs:
        unsafe_cells = [c for c in record.get("cells", ())
                        if c.get("config") == "UnsafeBaseline"]
        channels: list = []
        for cell in unsafe_cells:
            for channel in cell.get("channels", ()):
                if channel not in channels:
                    channels.append(channel)
        symbolic = check_plan(plan, **bounds)
        classification, detail = classify_agreement(symbolic,
                                                    bool(channels))
        report.records.append(CrossCheckRecord(
            plan.seed, plan.profile, symbolic.verdict, bool(channels),
            tuple(channels), classification, detail))
    report.wall_seconds = time.perf_counter() - start
    return report
