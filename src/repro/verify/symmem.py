"""Byte-granular symbolic memory for the bounded symbolic explorer.

Mirrors :class:`repro.isa.interpreter.ArchState`'s memory exactly — a sparse
``{byte address: byte}`` mapping with little-endian multi-byte access and
2^64 address wrap — except each byte may be a symbolic term (an
:class:`repro.verify.expr.Expr` with interval ``[0, 255]``) instead of an
int.  Addresses themselves are always concrete here: a *symbolic* address is
a leak by definition and the explorer reports it before ever reaching this
layer.

Two things matter for precision:

* **Reassembly folding** — storing a symbolic word writes eight
  ``EXTRACT(word, i)`` bytes; loading them back must return ``word`` itself,
  not a tower of shifts and ORs, or round-tripped values (chacha20's block
  counter, spilled temporaries) would look like fresh opaque terms and
  equality-based simplification would die.  :meth:`SymMemory.load` detects
  the pattern and reassembles.
* **Speculation journaling** — the explorer snapshots memory when it forces
  a misprediction and rolls the bytes back at squash while keeping the
  observer trace.  A write journal per speculation frame makes that O(bytes
  written under speculation), not O(memory).
"""

from __future__ import annotations

from typing import Optional

from repro.isa.opcodes import WORD_MASK
from repro.verify.expr import Expr, SymbolicDomain, Term

_MISSING = object()


class SymMemory:
    """Sparse little-endian byte memory over symbolic byte terms."""

    def __init__(self, initial: Optional[dict] = None):
        # {address: int | Expr}; absent addresses read as 0, like ArchState.
        self._bytes: dict = dict(initial) if initial else {}
        # Stack of journals, one per open speculation frame:
        # each is {address: previous byte or _MISSING}.
        self._journals: list = []

    # ------------------------------------------------------------- access
    def load(self, address: int, size: int) -> Term:
        data = self._bytes
        parts = [data.get((address + offset) & WORD_MASK, 0)
                 for offset in range(size)]
        if all(isinstance(p, int) for p in parts):
            value = 0
            for offset, byte in enumerate(parts):
                value |= byte << (8 * offset)
            return value
        reassembled = self._reassemble(parts, size)
        if reassembled is not None:
            return reassembled
        d = SymbolicDomain
        value: Term = 0
        for offset, byte in enumerate(parts):
            value = d.or_(value, d.sll(byte, 8 * offset))
        return value

    @staticmethod
    def _reassemble(parts: list, size: int) -> Optional[Term]:
        """Fold ``EXTRACT(base, 0..size-1)`` byte runs back into ``base``."""
        first = parts[0]
        if isinstance(first, Expr) and first.op == "EXTRACT":
            base, index = first.args
        elif isinstance(first, Expr) and first.hi <= 0xFF:
            # A bare byte-sized term stored with SB reads back as itself.
            base, index = first, 0
            if size == 1:
                return first
        else:
            return None
        if index != 0:
            return None
        for offset in range(1, size):
            part = parts[offset]
            if isinstance(part, Expr) and part.op == "EXTRACT" \
                    and part.args[1] == offset and part.args[0] is base:
                continue
            if part == 0 and base.hi < 1 << (8 * offset):
                continue          # high byte folded to 0 at store time
            return None
        if size == 8 or base.hi < 1 << (8 * size):
            return base
        return None

    def store(self, address: int, value: Term, size: int) -> None:
        data = self._bytes
        journal = self._journals[-1] if self._journals else None
        d = SymbolicDomain
        for offset in range(size):
            key = (address + offset) & WORD_MASK
            if journal is not None and key not in journal:
                journal[key] = data.get(key, _MISSING)
            data[key] = d.extract(value, offset)

    def byte(self, address: int) -> Term:
        return self._bytes.get(address & WORD_MASK, 0)

    # -------------------------------------------------------- speculation
    def begin_speculation(self) -> None:
        """Open a rollback frame; stores are journaled until commit/rollback."""
        self._journals.append({})

    def rollback(self) -> None:
        """Undo every store since the matching :meth:`begin_speculation`."""
        journal = self._journals.pop()
        data = self._bytes
        for key, previous in journal.items():
            if previous is _MISSING:
                data.pop(key, None)
            else:
                data[key] = previous
        # A nested frame's writes belong to the outer frame too.
        if self._journals:
            outer = self._journals[-1]
            for key, previous in journal.items():
                outer.setdefault(key, previous)

    def commit(self) -> None:
        """Close the innermost frame, keeping its writes."""
        journal = self._journals.pop()
        if self._journals:
            outer = self._journals[-1]
            for key, previous in journal.items():
                outer.setdefault(key, previous)

    # -------------------------------------------------------- diagnostics
    @property
    def speculation_depth(self) -> int:
        return len(self._journals)

    def symbolic_addresses(self) -> list:
        """Addresses currently holding symbolic bytes (sorted)."""
        return sorted(k for k, v in self._bytes.items()
                      if isinstance(v, Expr))

    def concretise(self, env: dict) -> dict:
        """Fully concrete byte image under ``env`` (for witness replay)."""
        from repro.verify.expr import evaluate
        return {k: (v if isinstance(v, int) else evaluate(v, env))
                for k, v in self._bytes.items()}
