"""Relational leak checker: bounded symbolic speculative non-interference.

``repro.verify`` proves (up to explicit speculation bounds) or refutes (with
a concrete witness) that a program's attacker-visible behaviour is
independent of its secrets — over *all* secret values, where the concrete
fuzz oracle samples pairs.  See DESIGN.md §8 for the soundness argument.

Layers:

* :mod:`repro.verify.expr` — the symbolic term language + simplifier;
* :mod:`repro.verify.symmem` — byte-granular symbolic memory;
* :mod:`repro.verify.explorer` — always-mispredict bounded symbolic
  execution over the shared semantics tables;
* :mod:`repro.verify.selfcomp` — the self-composition check + witnesses;
* :mod:`repro.verify.targets` — named subjects (crypto kernels, attack
  gadgets, fuzz plans);
* :mod:`repro.verify.crosscheck` — agreement testing against the concrete
  fuzz oracle;
* :mod:`repro.verify.cli` — the ``repro verify`` command.
"""

from repro.verify.selfcomp import (CheckResult, LeakWitness, check_program,
                                   reflexive_check)
from repro.verify.targets import (TARGETS, SecretLayout, check_plan,
                                  make_symbolic_memory, verify_target)

__all__ = [
    "CheckResult", "LeakWitness", "check_program", "reflexive_check",
    "TARGETS", "SecretLayout", "check_plan", "make_symbolic_memory",
    "verify_target",
]
