"""The symbolic expression layer of the relational leak checker.

A *term* is either a plain Python int (a fully concrete 64-bit value) or an
:class:`Expr` node containing at least one secret-byte variable.  Keeping
concrete values as raw ints means the symbolic interpreter pays nothing for
the (overwhelmingly common) public computation: expression nodes only ever
appear downstream of a secret byte.

:class:`SymbolicDomain` implements the same value-domain protocol as
:class:`repro.isa.semantics.ConcreteDomain`, so the shared per-opcode
semantics tables execute unchanged over symbolic terms.  Construction is
*simplifying*: every smart constructor constant-folds (all-int operands
delegate straight to the concrete domain), applies algebraic identities
(``x ^ x = 0``, ``a & 0 = 0``, masking a value that already fits, …), and
propagates unsigned **intervals** so that comparisons and line-granular
address projections resolve to concrete values whenever the secret cannot
actually change them.  No external SMT solver is involved: the checker's
verdict is ``leak`` exactly when a *simplified* observation still contains
a secret variable.

Evaluation (:func:`evaluate`) and variable collection (:func:`variables`)
are iterative (explicit stack, memoised by node identity) so deep dataflow
chains — a sorting network over symbolic keys, say — cannot hit Python's
recursion limit.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.isa.opcodes import WORD_MASK
from repro.isa.semantics import ConcreteDomain as _C

Term = Union[int, "Expr"]

_BYTE = 0xFF


def _is_low_ones(mask: int) -> bool:
    """True for 0b0...01...1 masks (2**k - 1)."""
    return mask & (mask + 1) == 0


class Expr:
    """One symbolic node: an operator over int/Expr operands.

    ``lo``/``hi`` bound the node's value as a 64-bit *unsigned* integer —
    sound for every reachable assignment of the secret bytes, used by the
    constructors to discharge comparisons and shifts without solving.
    Nodes are immutable; structural equality and the hash are cached.
    """

    __slots__ = ("op", "args", "lo", "hi", "_hash")

    def __init__(self, op: str, args: tuple, lo: int = 0,
                 hi: int = WORD_MASK):
        self.op = op
        self.args = args
        self.lo = lo
        self.hi = hi
        self._hash = hash((op,) + tuple(
            a._hash if isinstance(a, Expr) else a for a in args))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return False
        if self._hash != other._hash or self.op != other.op or \
                len(self.args) != len(other.args):
            return False
        return all(a == b for a, b in zip(self.args, other.args))

    def __repr__(self) -> str:
        return render(self, max_depth=6)


def var(set_id: str, index: int) -> Expr:
    """A symbolic secret byte: byte ``index`` of secret-var set ``set_id``."""
    return Expr("VAR", (set_id, index), 0, _BYTE)


def is_var(term: Term) -> bool:
    return isinstance(term, Expr) and term.op == "VAR"


def bounds(term: Term) -> tuple:
    """Unsigned (lo, hi) interval of a term."""
    if isinstance(term, int):
        return term, term
    return term.lo, term.hi


def _hull(op: str, args: tuple, lo: int, hi: int) -> Expr:
    return Expr(op, args, lo, hi)


class SymbolicDomain:
    """The pluggable value domain over int-or-Expr terms.

    Implements the same protocol as
    :class:`repro.isa.semantics.ConcreteDomain`; the shared semantics
    tables built by :func:`repro.isa.semantics.build_alu_table` /
    ``build_branch_table`` run over this domain unmodified.  Branch
    predicates return Python bools when the interval analysis (or constant
    folding) decides them, and 0/1-valued :class:`Expr` nodes otherwise —
    a predicate that *stays* an Expr is exactly a secret-dependent branch.
    """

    name = "symbolic"

    # ------------------------------------------------------------ basics
    @staticmethod
    def const(value: int) -> int:
        return value & WORD_MASK

    @staticmethod
    def add(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.add(a, b)
        if b == 0:
            return a
        if a == 0:
            return b
        (alo, ahi), (blo, bhi) = bounds(a), bounds(b)
        if ahi + bhi <= WORD_MASK:
            return _hull("ADD", (a, b), alo + blo, ahi + bhi)
        return _hull("ADD", (a, b), 0, WORD_MASK)

    @staticmethod
    def sub(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.sub(a, b)
        if b == 0:
            return a
        if isinstance(a, Expr) and a == b:
            return 0
        (alo, ahi), (blo, bhi) = bounds(a), bounds(b)
        if alo >= bhi:
            return _hull("SUB", (a, b), alo - bhi, ahi - blo)
        return _hull("SUB", (a, b), 0, WORD_MASK)

    @staticmethod
    def and_(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return a & b
        if a == 0 or b == 0:
            return 0
        if isinstance(a, Expr) and a == b:
            return a
        for value, mask in ((a, b), (b, a)):
            if isinstance(mask, int):
                vlo, vhi = bounds(value)
                if _is_low_ones(mask) and vhi <= mask:
                    return value          # masking a value that already fits
        _, ahi = bounds(a)
        _, bhi = bounds(b)
        return _hull("AND", (a, b), 0, min(ahi, bhi))

    @staticmethod
    def or_(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return a | b
        if a == 0:
            return b
        if b == 0:
            return a
        if isinstance(a, Expr) and a == b:
            return a
        (alo, ahi), (blo, bhi) = bounds(a), bounds(b)
        hi = min(WORD_MASK, (1 << max(ahi.bit_length(), bhi.bit_length())) - 1)
        return _hull("OR", (a, b), max(alo, blo), hi)

    @staticmethod
    def xor(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return a ^ b
        if a == 0:
            return b
        if b == 0:
            return a
        if isinstance(a, Expr) and a == b:
            return 0
        (_, ahi), (_, bhi) = bounds(a), bounds(b)
        hi = min(WORD_MASK, (1 << max(ahi.bit_length(), bhi.bit_length())) - 1)
        return _hull("XOR", (a, b), 0, hi)

    @staticmethod
    def not_(a: Term) -> Term:
        if isinstance(a, int):
            return _C.not_(a)
        return _hull("NOT", (a,), WORD_MASK - a.hi, WORD_MASK - a.lo)

    @staticmethod
    def mul(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.mul(a, b)
        if a == 0 or b == 0:
            return 0
        if b == 1:
            return a
        if a == 1:
            return b
        (alo, ahi), (blo, bhi) = bounds(a), bounds(b)
        if ahi * bhi <= WORD_MASK:
            return _hull("MUL", (a, b), alo * blo, ahi * bhi)
        return _hull("MUL", (a, b), 0, WORD_MASK)

    @staticmethod
    def div(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.div(a, b)
        blo, bhi = bounds(b)
        if blo == bhi == 0:
            return WORD_MASK
        node = _hull("DIV", (a, b), 0, WORD_MASK)
        if blo == 0:          # divisor could be zero: fold the special case in
            return SymbolicDomain.ite(SymbolicDomain.eq(b, 0),
                                      WORD_MASK, node)
        return node

    @staticmethod
    def rem(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.rem(a, b)
        blo, bhi = bounds(b)
        if blo == bhi == 0:
            return a
        node = _hull("REM", (a, b), 0, WORD_MASK)
        if blo == 0:
            return SymbolicDomain.ite(SymbolicDomain.eq(b, 0), a, node)
        return node

    # ------------------------------------------------------------ shifts
    @staticmethod
    def sll(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.sll(a, b)
        if isinstance(b, int):
            shift = b & 63
            if shift == 0:
                return a
            if a == 0:
                return 0
            alo, ahi = bounds(a)
            if ahi << shift <= WORD_MASK:
                return _hull("SLL", (a, shift), alo << shift, ahi << shift)
            return _hull("SLL", (a, shift), 0, WORD_MASK)
        return _hull("SLL", (a, b), 0, WORD_MASK)

    @staticmethod
    def srl(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.srl(a, b)
        if isinstance(b, int):
            shift = b & 63
            if shift == 0:
                return a
            alo, ahi = bounds(a)
            if alo >> shift == ahi >> shift:
                # The secret cannot move the result (e.g. every reachable
                # address lands in one cache line).
                return alo >> shift
            return _hull("SRL", (a, shift), alo >> shift, ahi >> shift)
        _, ahi = bounds(a)
        return _hull("SRL", (a, b), 0, ahi)

    @staticmethod
    def sra(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.sra(a, b)
        alo, ahi = bounds(a)
        if ahi < 1 << 63 and isinstance(b, int):
            return SymbolicDomain.srl(a, b)     # non-negative: same as SRL
        return _hull("SRA", (a, b) if isinstance(b, Expr) else (a, b & 63),
                     0, WORD_MASK)

    @staticmethod
    def rotl(a: Term, shift: int) -> Term:
        if isinstance(a, int):
            return _C.rotl(a, shift)
        shift &= 63
        if shift == 0:
            return a
        if a.hi << shift <= WORD_MASK:          # no wrap: same as SLL
            return SymbolicDomain.sll(a, shift)
        return _hull("ROTL", (a, shift), 0, WORD_MASK)

    @staticmethod
    def rotr(a: Term, shift: int) -> Term:
        if isinstance(a, int):
            return _C.rotr(a, shift)
        shift &= 63
        if shift == 0:
            return a
        if a.hi >> shift == a.lo >> shift and a.lo & ((1 << shift) - 1) == 0 \
                and a.hi & ((1 << shift) - 1) == 0 and a.lo == a.hi:
            return _C.rotr(a.lo, shift)
        return _hull("ROTR", (a, shift), 0, WORD_MASK)

    # ----------------------------------------------------- comparisons
    @staticmethod
    def _unsigned_decide(a: Term, b: Term) -> Optional[bool]:
        """Decide ``a < b`` (unsigned) from intervals, or None."""
        (alo, ahi), (blo, bhi) = bounds(a), bounds(b)
        if ahi < blo:
            return True
        if alo >= bhi:
            return False
        return None

    @staticmethod
    def _signed_ok(a: Term, b: Term) -> bool:
        """Both operands provably non-negative as signed 64-bit values."""
        return bounds(a)[1] < 1 << 63 and bounds(b)[1] < 1 << 63

    @staticmethod
    def slt(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.slt(a, b)
        if SymbolicDomain._signed_ok(a, b):
            decided = SymbolicDomain._unsigned_decide(a, b)
            if decided is not None:
                return int(decided)
        return _hull("SLT", (a, b), 0, 1)

    @staticmethod
    def sltu(a: Term, b: Term) -> Term:
        if isinstance(a, int) and isinstance(b, int):
            return _C.sltu(a, b)
        decided = SymbolicDomain._unsigned_decide(a, b)
        if decided is not None:
            return int(decided)
        return _hull("SLTU", (a, b), 0, 1)

    # Branch predicates: bool when decided, 0/1-valued Expr otherwise.
    @staticmethod
    def eq(a: Term, b: Term) -> Union[bool, Expr]:
        if isinstance(a, int) and isinstance(b, int):
            return a == b
        if isinstance(a, Expr) and a == b:
            return True
        (alo, ahi), (blo, bhi) = bounds(a), bounds(b)
        if ahi < blo or bhi < alo:
            return False
        return _hull("EQ", (a, b), 0, 1)

    @staticmethod
    def ne(a: Term, b: Term) -> Union[bool, Expr]:
        decided = SymbolicDomain.eq(a, b)
        if isinstance(decided, bool):
            return not decided
        return _hull("NE", (a, b), 0, 1)

    @staticmethod
    def lt(a: Term, b: Term) -> Union[bool, Expr]:
        if isinstance(a, int) and isinstance(b, int):
            return _C.lt(a, b)
        if SymbolicDomain._signed_ok(a, b):
            decided = SymbolicDomain._unsigned_decide(a, b)
            if decided is not None:
                return decided
        return _hull("LT", (a, b), 0, 1)

    @staticmethod
    def ge(a: Term, b: Term) -> Union[bool, Expr]:
        decided = SymbolicDomain.lt(a, b)
        if isinstance(decided, bool):
            return not decided
        return _hull("GE", (a, b), 0, 1)

    @staticmethod
    def ltu(a: Term, b: Term) -> Union[bool, Expr]:
        if isinstance(a, int) and isinstance(b, int):
            return _C.ltu(a, b)
        decided = SymbolicDomain._unsigned_decide(a, b)
        if decided is not None:
            return decided
        return _hull("LTU", (a, b), 0, 1)

    @staticmethod
    def geu(a: Term, b: Term) -> Union[bool, Expr]:
        decided = SymbolicDomain.ltu(a, b)
        if isinstance(decided, bool):
            return not decided
        return _hull("GEU", (a, b), 0, 1)

    # ------------------------------------------------- structure helpers
    @staticmethod
    def ite(cond: Union[bool, Expr], then: Term, other: Term) -> Term:
        if isinstance(cond, bool):
            return then if cond else other
        if isinstance(cond, int):
            return then if cond else other
        if then == other if isinstance(then, Expr) else then == other:
            return then
        (tlo, thi), (olo, ohi) = bounds(then), bounds(other)
        return _hull("ITE", (cond, then, other), min(tlo, olo),
                     max(thi, ohi))

    @staticmethod
    def extract(value: Term, index: int) -> Term:
        """Byte ``index`` of a 64-bit term (little-endian)."""
        if isinstance(value, int):
            return (value >> (8 * index)) & _BYTE
        if index and value.hi < 1 << (8 * index):
            return 0
        if index == 0 and value.hi <= _BYTE:
            return value
        return _hull("EXTRACT", (value, index), 0, _BYTE)


# ----------------------------------------------------------------- analysis
_EVAL_BINARY = {
    "ADD": _C.add, "SUB": _C.sub, "AND": _C.and_, "OR": _C.or_,
    "XOR": _C.xor, "MUL": _C.mul, "DIV": _C.div, "REM": _C.rem,
    "SLL": _C.sll, "SRL": _C.srl, "SRA": _C.sra,
    "ROTL": _C.rotl, "ROTR": _C.rotr,
    "SLT": _C.slt, "SLTU": _C.sltu,
    "EQ": lambda a, b: int(a == b), "NE": lambda a, b: int(a != b),
    "LT": lambda a, b: int(_C.lt(a, b)), "GE": lambda a, b: int(_C.ge(a, b)),
    "LTU": lambda a, b: int(a < b), "GEU": lambda a, b: int(a >= b),
    "EXTRACT": lambda v, i: (v >> (8 * i)) & _BYTE,
}


def evaluate(term: Term, env: dict) -> int:
    """Concrete value of ``term`` under ``env``: {(set_id, index): byte}.

    Unbound variables read as 0.  Iterative post-order with an identity
    memo, so shared sub-DAGs are evaluated once and deep chains cannot
    overflow the Python stack.
    """
    if isinstance(term, int):
        return term
    memo: dict = {}
    stack = [term]
    while stack:
        node = stack[-1]
        if id(node) in memo:
            stack.pop()
            continue
        if node.op == "VAR":
            memo[id(node)] = env.get(node.args, 0) & _BYTE
            stack.pop()
            continue
        pending = [a for a in node.args
                   if isinstance(a, Expr) and id(a) not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        values = [memo[id(a)] if isinstance(a, Expr) else a
                  for a in node.args]
        if node.op == "ITE":
            cond, then, other = values
            memo[id(node)] = then if cond else other
        elif node.op == "NOT":
            memo[id(node)] = _C.not_(values[0])
        else:
            memo[id(node)] = _EVAL_BINARY[node.op](values[0], values[1])
    return memo[id(term)]


def variables(term: Term) -> frozenset:
    """All (set_id, index) secret-byte variables occurring in ``term``."""
    if isinstance(term, int):
        return frozenset()
    found = set()
    seen = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.op == "VAR":
            found.add(node.args)
            continue
        stack.extend(a for a in node.args if isinstance(a, Expr))
    return frozenset(found)


def secret_bytes(term: Term) -> tuple:
    """Sorted byte indices of the secret variables in ``term``."""
    return tuple(sorted({index for _set, index in variables(term)}))


def rename(term: Term, set_id: str) -> Term:
    """``term`` with every variable moved into variable set ``set_id``.

    Materialises the two runs of the self-composition: the same symbolic
    trace instantiated once per secret-variable set.
    """
    if isinstance(term, int):
        return term
    memo: dict = {}
    stack = [term]
    while stack:
        node = stack[-1]
        if id(node) in memo:
            stack.pop()
            continue
        if node.op == "VAR":
            memo[id(node)] = var(set_id, node.args[1])
            stack.pop()
            continue
        pending = [a for a in node.args
                   if isinstance(a, Expr) and id(a) not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        args = tuple(memo[id(a)] if isinstance(a, Expr) else a
                     for a in node.args)
        memo[id(node)] = Expr(node.op, args, node.lo, node.hi)
    return memo[id(term)]


def render(term: Term, max_depth: int = 8) -> str:
    """Human-readable rendering, depth-capped for very deep terms."""
    if isinstance(term, int):
        return hex(term) if term > 9 else str(term)
    if term.op == "VAR":
        return f"{term.args[0]}[{term.args[1]}]"
    if max_depth <= 0:
        return "…"
    inner = ", ".join(
        render(a, max_depth - 1) if isinstance(a, Expr) else
        (hex(a) if isinstance(a, int) and a > 9 else str(a))
        for a in term.args)
    return f"{term.op.lower()}({inner})"


def size(term: Term) -> int:
    """Distinct node count of a term's DAG (diagnostics)."""
    if isinstance(term, int):
        return 0
    seen = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(a for a in node.args if isinstance(a, Expr))
    return len(seen)


def any_symbolic(terms: Iterable[Term]) -> bool:
    return any(isinstance(t, Expr) for t in terms)
