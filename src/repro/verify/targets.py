"""Verification targets: programs + where their secrets live.

A target couples a program builder with a :class:`SecretLayout` — the byte
ranges of initial memory that hold the secret — plus the documented
expectation (the constant-time kernels must verify ``safe``; the attack
gadgets must produce a leak witness).  The layouts mirror exactly what the
concrete security tests treat as secret:

* ``chacha20`` — key, counter and nonce words (``state_in`` words 4..15);
* ``aes-bitslice`` — all plaintext and key planes (``planes_in``);
* ``djbsort`` — the 16-word ``array`` being sorted;
* ``spectre-pht`` — the out-of-bounds byte behind ``victim_array``;
* ``nonspec-secret`` — the final (secret) entry of the ``values`` table.

Fuzz plans get the same treatment via :func:`plan_target`: the plan is
rendered once (the instruction stream and data addresses are
secret-independent by generator invariant) and the whole 64-byte secret
region becomes symbolic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.instructions import Program
from repro.security import attacks
from repro.verify.expr import var
from repro.verify.selfcomp import SET_ID, CheckResult, check_program
from repro.verify.symmem import SymMemory
from repro.workloads.crypto import aes_bitslice, chacha20, djbsort


@dataclass(frozen=True)
class SecretLayout:
    """Byte ranges of initial memory holding the secret."""

    ranges: tuple               # ((address, length), ...)

    @property
    def total_bytes(self) -> int:
        return sum(length for _a, length in self.ranges)

    def addressed_bytes(self):
        """Yields (secret byte index, memory address) pairs."""
        index = 0
        for address, length in self.ranges:
            for offset in range(length):
                yield index, address + offset
                index += 1


def make_symbolic_memory(program: Program, layout: SecretLayout,
                         set_id: str = SET_ID) -> SymMemory:
    """The program's initial memory with secret bytes as free variables."""
    memory = SymMemory(program.initial_memory)
    for index, address in layout.addressed_bytes():
        memory.store(address, var(set_id, index), 1)
    return memory


@dataclass(frozen=True)
class VerifyTarget:
    """A named verification subject with its documented expectation."""

    name: str
    description: str
    expected: str               # "safe" (constant-time) | "leak" (gadget)
    build: Callable             # scale -> (Program, SecretLayout)
    bounds: dict = field(default_factory=dict)   # default bound overrides


def _chacha20(scale: int):
    program = chacha20.build(scale=scale)
    base = program.data_symbols["state_in"]
    # Words 0..3 are the public ChaCha constants; 4..11 key, 12 counter,
    # 13..15 nonce — all secret inputs per the kernel's contract.
    return program, SecretLayout(((base + 4 * 8, 12 * 8),))


def _aes_bitslice(scale: int):
    program = aes_bitslice.build(scale=scale)
    base = program.data_symbols["planes_in"]
    return program, SecretLayout(((base, 16 * 8),))


def _djbsort(scale: int):
    program = djbsort.build(scale=scale)
    base = program.data_symbols["array"]
    return program, SecretLayout(((base, djbsort.N * 8),))


def _spectre_pht(scale: int):
    attack = attacks.spectre_v1()
    base = attack.program.data_symbols["victim_array"]
    # The array's in-bounds prefix is public training data; only the byte
    # one past the end (what the transient OOB access reaches) is secret.
    in_bounds = 16                  # spectre_v1's default bound
    return attack.program, SecretLayout(((base + in_bounds, 1),))


def _nonspec_secret(scale: int):
    attack = attacks.nonspec_secret()
    base = attack.program.data_symbols["values"]
    trainings = 4                   # nonspec_secret's default
    return attack.program, SecretLayout(((base + trainings, 1),))


TARGETS: dict = {
    "chacha20": VerifyTarget(
        "chacha20", "ChaCha20 keystream kernel (constant-time)", "safe",
        _chacha20),
    "aes-bitslice": VerifyTarget(
        "aes-bitslice", "bitsliced AES-style round kernel (constant-time)",
        "safe", _aes_bitslice),
    "djbsort": VerifyTarget(
        "djbsort", "constant-time Batcher sorting network", "safe",
        _djbsort),
    "spectre-pht": VerifyTarget(
        "spectre-pht", "bounds-check-bypass gadget (must leak)", "leak",
        _spectre_pht),
    "nonspec-secret": VerifyTarget(
        "nonspec-secret",
        "mis-trained indirect call over a non-speculative secret "
        "(must leak)", "leak", _nonspec_secret),
}


def verify_target(name: str, scale: int = 1, **bounds) -> CheckResult:
    """Check one named target; bounds kwargs override the target defaults."""
    try:
        target = TARGETS[name]
    except KeyError:
        raise KeyError(f"unknown verify target {name!r}; "
                       f"known: {sorted(TARGETS)}") from None
    program, layout = target.build(scale)
    merged = dict(target.bounds)
    merged.update(bounds)
    return check_program(program, make_symbolic_memory(program, layout),
                         **merged)


def plan_target(plan) -> tuple:
    """(program, layout) for a fuzz plan, whole secret region symbolic."""
    from repro.fuzz.generator import SECRET_BYTES, render
    program = render(plan, secret=0)
    base = program.data_symbols["secret"]
    return program, SecretLayout(((base, SECRET_BYTES),))


def check_plan(plan, **bounds) -> CheckResult:
    """Self-composition check of one fuzz plan."""
    program, layout = plan_target(plan)
    return check_program(program, make_symbolic_memory(program, layout),
                         **bounds)
