"""Self-composition leak check over the bounded symbolic explorer.

Speculative non-interference is a *relational* (2-run) property: runs with
secrets A and B must be attacker-indistinguishable.  The explorer performs
the self-composition symbolically in one pass — both runs are the same term
graph modulo which variable set the secret bytes draw from, so the traces
differ for *some* A/B exactly when an observation's simplified term still
contains a secret variable (see :mod:`repro.verify.explorer`).

This module turns a raw :class:`~repro.verify.explorer.LeakObservation`
into an actionable :class:`LeakWitness`: it renames the term into the two
runs' variable sets (``A``/``B``) for literal two-trace rendering, and
*confirms* the witness by searching for a concrete secret pair under which
the observed value actually differs — a syntactic leak whose term is
semantically constant (a simplifier blind spot like ``add(x, 1) - add(1,
x)``) is reported unconfirmed rather than silently trusted.  The concrete
pair doubles as the replay input for the fuzz oracle during cross-checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Program
from repro.verify.explorer import (ExplorationStats, ExplorerResult,
                                   SpeculativeExplorer)
from repro.verify.expr import Term, evaluate, rename, render, variables
from repro.verify.symmem import SymMemory

SET_ID = "S"                    # the canonical secret-variable set


@dataclass(frozen=True)
class LeakWitness:
    """A confirmed-or-not divergence point of the self-composition."""

    kind: str                   # observation kind (explorer OBS_*)
    pc: int                     # static instruction index
    depth: int                  # 0 = architectural, >0 = transient
    secret: tuple               # responsible secret-byte indices
    expression: str             # the observed term, rendered
    expression_a: str           # same term over run A's variables
    expression_b: str           # ... and run B's
    confirmed: bool             # a distinguishing secret pair was found
    secret_a: dict = field(default_factory=dict)   # {byte index: value}
    secret_b: dict = field(default_factory=dict)
    value_a: Optional[int] = None    # observed value under each assignment
    value_b: Optional[int] = None

    @property
    def speculative(self) -> bool:
        return self.depth > 0

    def to_json(self) -> dict:
        return {
            "kind": self.kind, "pc": self.pc, "depth": self.depth,
            "speculative": self.speculative,
            "secret_bytes": list(self.secret),
            "expression": self.expression,
            "run_a": {"expression": self.expression_a,
                      "secret": {str(k): v
                                 for k, v in sorted(self.secret_a.items())},
                      "observed": self.value_a},
            "run_b": {"expression": self.expression_b,
                      "secret": {str(k): v
                                 for k, v in sorted(self.secret_b.items())},
                      "observed": self.value_b},
            "confirmed": self.confirmed,
        }


@dataclass(frozen=True)
class CheckResult:
    """Verdict of one self-composition check."""

    program: str
    verdict: str                # "safe" | "leak" | "unknown"
    witnesses: tuple            # LeakWitness, discovery order
    complete: bool
    halted: bool
    stats: ExplorationStats
    bounds: dict

    @property
    def leaked(self) -> bool:
        return self.verdict == "leak"

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "verdict": self.verdict,
            "complete": self.complete,
            "halted": self.halted,
            "bounds": dict(self.bounds),
            "stats": {"retired": self.stats.retired,
                      "explored": self.stats.explored,
                      "windows": self.stats.windows,
                      "branches": self.stats.branches},
            "witnesses": [w.to_json() for w in self.witnesses],
        }


def distinguishing_pair(term: Term) -> Optional[tuple]:
    """A concrete secret pair under which ``term`` evaluates differently.

    Returns ``(env_a, env_b, value_a, value_b)`` with envs mapping
    ``(set, index) -> byte``, or None if sampling finds no distinguishing
    pair (the term may be semantically constant).  Deterministic.
    """
    names = sorted(variables(term))
    env_a: dict = {}
    value_a = evaluate(term, env_a)
    # Single-byte flips find most real leaks (the transmit is usually a
    # direct function of one byte).
    for name in names:
        for probe in (0xFF, 0x01, 0x80, 0x55):
            env_b = {name: probe}
            value_b = evaluate(term, env_b)
            if value_b != value_a:
                return env_a, env_b, value_a, value_b
    rng = random.Random(f"verify-witness:{len(names)}")
    for _ in range(128):
        env_b = {name: rng.getrandbits(8) for name in names}
        value_b = evaluate(term, env_b)
        if value_b != value_a:
            return env_a, env_b, value_a, value_b
    return None


def _witness(observation) -> LeakWitness:
    term = observation.term
    pair = distinguishing_pair(term)
    expression = render(term)
    expression_a = render(rename(term, "A"))
    expression_b = render(rename(term, "B"))
    if pair is None:
        return LeakWitness(observation.kind, observation.pc,
                           observation.depth, observation.secret,
                           expression, expression_a, expression_b,
                           confirmed=False)
    env_a, env_b, value_a, value_b = pair
    return LeakWitness(
        observation.kind, observation.pc, observation.depth,
        observation.secret, expression, expression_a, expression_b,
        confirmed=True,
        secret_a={index: env_a.get((SET_ID, index), 0)
                  for index in observation.secret},
        secret_b={index: env_b.get((SET_ID, index), 0)
                  for index in observation.secret},
        value_a=value_a, value_b=value_b)


def check_program(program: Program, memory: SymMemory, *,
                  spec_window: int = 32, spec_depth: int = 1,
                  max_instructions: int = 400_000,
                  max_explored: int = 2_000_000,
                  max_leaks: int = 8) -> CheckResult:
    """Run the self-composition check on a prepared symbolic state.

    ``memory`` must hold the program's initial memory with secret bytes
    replaced by ``S``-set variables (:func:`repro.verify.targets.
    make_symbolic_memory`).  A ``safe`` verdict is sound for *all* secret
    values, up to the speculation bounds; ``leak`` comes with witnesses.
    """
    bounds = {"spec_window": spec_window, "spec_depth": spec_depth,
              "max_instructions": max_instructions,
              "max_explored": max_explored, "max_leaks": max_leaks}
    explorer = SpeculativeExplorer(
        program, memory, spec_window=spec_window, spec_depth=spec_depth,
        max_instructions=max_instructions, max_explored=max_explored,
        max_leaks=max_leaks)
    result: ExplorerResult = explorer.run()
    witnesses = tuple(_witness(obs) for obs in result.leaks)
    return CheckResult(program.name, result.verdict, witnesses,
                       result.complete, result.halted, result.stats, bounds)


def reflexive_check(program: Program, memory: SymMemory,
                    **bounds) -> CheckResult:
    """The reflexivity half of self-composition: equal secrets, no leak.

    Concretises every symbolic byte to its zero-env value — i.e. runs the
    *same* secret on both sides — and re-runs the explorer.  With no free
    variables, no observation can contain one, so any verdict other than
    ``safe``/``unknown`` would mean the checker itself is broken.
    """
    concrete = SymMemory(memory.concretise({}))
    return check_program(program, concrete, **bounds)
