"""Rendering and JSON serialisation for verification results."""

from __future__ import annotations

import json
from typing import Optional

from repro.verify.crosscheck import CrossCheckReport
from repro.verify.selfcomp import CheckResult, LeakWitness


def render_witness(witness: LeakWitness, indent: str = "    ") -> str:
    lines = [
        f"{indent}{witness.kind} at pc={witness.pc} "
        f"({'transient, depth ' + str(witness.depth) if witness.speculative else 'architectural'})"
        f" — secret bytes {list(witness.secret)}"
        f"{'' if witness.confirmed else '  [UNCONFIRMED]'}",
        f"{indent}  observed: {witness.expression}",
    ]
    if witness.confirmed:
        lines.append(
            f"{indent}  run A: secret {witness.secret_a} -> "
            f"{witness.value_a:#x}  |  run B: secret {witness.secret_b} "
            f"-> {witness.value_b:#x}")
    return "\n".join(lines)


def render_check(result: CheckResult, expected: Optional[str] = None) -> str:
    """One target's verdict as a human-readable block."""
    status = result.verdict.upper()
    suffix = ""
    if expected is not None:
        suffix = "  [ok]" if result.verdict == expected else \
            f"  [EXPECTED {expected.upper()}]"
    lines = [
        f"{result.program}: {status}{suffix}"
        f"  (retired={result.stats.retired}"
        f" transient={result.stats.explored}"
        f" windows={result.stats.windows}"
        f" spec_window={result.bounds['spec_window']}"
        f" spec_depth={result.bounds['spec_depth']})"
    ]
    if not result.complete:
        lines.append("    exploration incomplete — verdict is not a proof")
    for witness in result.witnesses:
        lines.append(render_witness(witness))
    return "\n".join(lines)


def render_crosscheck(report: CrossCheckReport) -> str:
    counts = report.counts()
    lines = [
        f"cross-check: {len(report.records)} plans, "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        + f"  ({report.wall_seconds:.1f}s)"
    ]
    for record in report.disagreements:
        lines.append(
            f"  DISAGREEMENT seed={record.seed} profile={record.profile}: "
            f"{record.classification} — symbolic={record.symbolic}, "
            f"concrete {'diverged ' + str(list(record.channels)) if record.concrete_diverged else 'clean'}")
        if record.detail:
            lines.append(f"    {record.detail}")
    if report.ok:
        lines.append("  zero oracle disagreements")
    return "\n".join(lines)


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def checks_to_json(results: list, expectations: Optional[dict] = None) -> dict:
    """Aggregate JSON report for a batch of checks."""
    expectations = expectations or {}
    entries = []
    for result in results:
        entry = result.to_json()
        expected = expectations.get(result.program)
        if expected is not None:
            entry["expected"] = expected
            entry["as_expected"] = result.verdict == expected
        entries.append(entry)
    return {"checks": entries,
            "ok": all(e.get("as_expected", True) for e in entries)}
