"""Bounded symbolic execution with always-mispredict speculation.

The explorer runs a program over :class:`repro.verify.expr.SymbolicDomain`
— the same per-opcode semantics tables the concrete interpreter executes,
built over symbolic terms — with secret bytes as free variables, and applies
the *always-mispredict* speculation semantics of pitchfork's specvex: at
every resolved conditional branch it additionally executes the wrong path
for up to ``spec_window`` instructions before rolling architectural effects
back, and at every indirect jump it explores every previously-seen alternate
target of the same static instruction (the within-run BTB mistraining that
the ``nonspec-secret`` attack relies on).  This over-approximates every
concrete predictor the pipeline can be configured with: whatever a real
predictor mispredicts, always-mispredict also explores.

**Leak condition.**  The checker decides speculative non-interference by
self-composition: two runs with distinct secret-variable sets must produce
syntactically equal observer traces.  Because the two symbolic runs are the
*same* term graph modulo variable naming, trace inequality is equivalent to
a single run producing an observation whose simplified term still contains
a secret variable.  Observations mirror the concrete attacker model
(:mod:`repro.security.observer`): cache-line addresses of loads and stores
(line-granular — a secret-dependent address that provably stays inside one
line is not a cache leak), conditional-branch outcomes, and indirect-jump
targets, on the architectural path *and* on every explored transient path.

**Bounds.**  ``spec_window`` (transient instructions per misprediction) and
``spec_depth`` (misprediction nesting) bound the exploration; a ``safe``
verdict means safe *up to those bounds* — see DESIGN.md §8 for what that
under-approximates.  Separate instruction budgets make the run total; a
budget exhaustion downgrades ``safe`` to ``unknown`` (never to ``leak``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Program
from repro.isa.opcodes import Kind, NUM_ARCH_REGS, WORD_MASK
from repro.isa.semantics import (build_alu_table, build_branch_table,
                                 build_effective_address)
from repro.verify.expr import (Expr, SymbolicDomain, Term, evaluate,
                               secret_bytes)
from repro.verify.symmem import SymMemory

_ALU = build_alu_table(SymbolicDomain)
_BRANCH = build_branch_table(SymbolicDomain)
_EA = build_effective_address(SymbolicDomain)

LINE_SHIFT = 6                  # 64-byte cache lines, as everywhere else

# Observation kinds (aligned with the concrete observer's channels).
OBS_LOAD_LINE = "load-line"
OBS_STORE_LINE = "store-line"
OBS_BRANCH = "branch-taken"
OBS_JUMP_TARGET = "jump-target"

# A symbolic load/store address confined to one cache line is not a cache
# leak, but the *value* read then depends on the secret: the explorer muxes
# the possible cells into an ITE chain, up to this many candidate addresses.
_MUX_LIMIT = 256


class _Abort(Exception):
    """Internal: stop all exploration (leak quota or budget reached)."""


@dataclass(frozen=True)
class LeakObservation:
    """One secret-dependent attacker observation (self-composition diverges).

    ``term`` is the simplified symbolic value that reached the observer;
    ``secret`` names the responsible secret-byte indices.
    """

    kind: str                   # OBS_* above
    pc: int                     # static instruction index of the observation
    depth: int                  # 0 = architectural, >0 = transient nesting
    term: Term
    secret: tuple               # sorted secret-byte indices in the term

    @property
    def speculative(self) -> bool:
        return self.depth > 0


@dataclass
class ExplorationStats:
    """Work counters for one exploration."""

    retired: int = 0            # architectural instructions executed
    explored: int = 0           # transient (wrong-path) instructions executed
    windows: int = 0            # speculation windows opened
    branches: int = 0           # dynamic conditional branches seen


@dataclass
class ExplorerResult:
    """Outcome of one bounded symbolic exploration."""

    verdict: str                # "safe" | "leak" | "unknown"
    leaks: tuple                # LeakObservation, discovery order
    complete: bool              # exploration exhausted within the budgets
    halted: bool                # the architectural path reached HALT
    stats: ExplorationStats = field(default_factory=ExplorationStats)


class SpeculativeExplorer:
    """One-shot symbolic executor for a program + symbolic initial memory.

    The caller supplies ``memory`` with secret bytes already replaced by
    variables (see :mod:`repro.verify.targets`); registers start at zero,
    exactly like :class:`repro.isa.interpreter.ArchState`.
    """

    def __init__(self, program: Program, memory: SymMemory, *,
                 spec_window: int = 32, spec_depth: int = 1,
                 max_instructions: int = 400_000,
                 max_explored: int = 2_000_000,
                 max_leaks: int = 8):
        self.program = program
        self.memory = memory
        self.spec_window = spec_window
        self.spec_depth = spec_depth
        self.max_instructions = max_instructions
        self.max_explored = max_explored
        self.max_leaks = max_leaks

        self.regs: list = [0] * NUM_ARCH_REGS
        self.stats = ExplorationStats()
        self.leaks: list = []
        self._leak_sites: set = set()        # (pc, kind) dedup
        self._jump_targets: dict = {}        # static pc -> seen targets
        self._incomplete_reason: Optional[str] = None
        self._halted = False

    # --------------------------------------------------------------- driver
    def run(self) -> ExplorerResult:
        instructions = self.program.instructions
        length = len(instructions)
        pc = 0
        try:
            while self.stats.retired < self.max_instructions:
                if not 0 <= pc < length:
                    self._incomplete_reason = f"PC {pc} left the program"
                    break
                inst = instructions[pc]
                self.stats.retired += 1
                if inst.info.kind == Kind.HALT:
                    self._halted = True
                    break
                pc = self._step(inst, pc, depth=0)
            else:
                self._incomplete_reason = (
                    f"architectural budget ({self.max_instructions}) "
                    f"exhausted")
        except _Abort:
            pass
        complete = (self._halted and self._incomplete_reason is None
                    and not self._over_quota())
        if self.leaks:
            verdict = "leak"
        elif complete:
            verdict = "safe"
        else:
            verdict = "unknown"
        return ExplorerResult(verdict, tuple(self.leaks), complete,
                              self._halted, self.stats)

    def _over_quota(self) -> bool:
        return (len(self.leaks) >= self.max_leaks
                or self.stats.explored >= self.max_explored)

    # ----------------------------------------------------------------- step
    def _step(self, inst, pc: int, depth: int) -> int:
        """Execute one instruction at ``depth``; returns the next PC.

        Raises ``_Abort`` to stop everything, ``_EndWindow`` never — a
        transient path that must end mid-window signals it by returning a
        PC outside the program, which the window loop treats as done.
        """
        kind = inst.info.kind
        regs = self.regs
        d = SymbolicDomain

        if kind in (Kind.ALU, Kind.ALU_IMM, Kind.MOVE, Kind.LOAD_IMM):
            fn = _ALU[inst.op]
            self._write_reg(inst.rd,
                            fn(self._read_reg(inst.rs1),
                               self._read_reg(inst.rs2), inst.imm))
            return pc + 1

        if kind == Kind.LOAD:
            address = _EA(self._read_reg(inst.rs1), inst.imm)
            value = self._access(address, inst, pc, depth, store=False)
            self._write_reg(inst.rd, value)
            return pc + 1

        if kind == Kind.STORE:
            address = _EA(self._read_reg(inst.rs1), inst.imm)
            self._access(address, inst, pc, depth, store=True,
                         data=self._read_reg(inst.rs2))
            return pc + 1

        if kind == Kind.BRANCH:
            self.stats.branches += 1
            taken = _BRANCH[inst.op](self._read_reg(inst.rs1),
                                     self._read_reg(inst.rs2))
            if isinstance(taken, Expr):
                # The branch outcome itself depends on the secret: the PC
                # sequence (and every predictor update) diverges.
                self._leak(OBS_BRANCH, pc, taken, depth)
                taken = bool(evaluate(taken, {}))
            elif depth < self.spec_depth:
                # Always-mispredict: explore the wrong direction.
                wrong = pc + 1 if taken else inst.imm
                self._window(wrong, depth + 1)
            return inst.imm if taken else pc + 1

        if kind == Kind.JUMP:
            self._write_reg(inst.rd, pc + 1)
            return inst.imm

        if kind == Kind.JUMP_REG:
            target = d.add(self._read_reg(inst.rs1), d.const(inst.imm))
            if isinstance(target, Expr):
                self._leak(OBS_JUMP_TARGET, pc, target, depth)
                target = evaluate(target, {}) & WORD_MASK
            elif depth < self.spec_depth:
                # BTB-style target misprediction: any previously-seen
                # target of this static jump may be fetched instead.
                for alternate in sorted(
                        self._jump_targets.get(pc, set()) - {target}):
                    self._window(alternate, depth + 1)
            if depth == 0:
                self._jump_targets.setdefault(pc, set()).add(target)
            self._write_reg(inst.rd, pc + 1)
            return target

        if kind == Kind.NOP:
            return pc + 1
        raise RuntimeError(f"unhandled kind {kind}")      # pragma: no cover

    # ---------------------------------------------------------- speculation
    def _window(self, pc: int, depth: int) -> None:
        """Execute a transient window at ``pc``, then roll everything back."""
        if self.stats.explored >= self.max_explored:
            self._incomplete_reason = (
                f"transient budget ({self.max_explored}) exhausted")
            raise _Abort
        self.stats.windows += 1
        instructions = self.program.instructions
        length = len(instructions)
        saved_regs = list(self.regs)
        leaks_before = len(self.leaks)
        self.memory.begin_speculation()
        try:
            for _ in range(self.spec_window):
                if not 0 <= pc < length:
                    break                    # transient fetch fault: squash
                inst = instructions[pc]
                if inst.info.kind == Kind.HALT:
                    break
                self.stats.explored += 1
                if self.stats.explored >= self.max_explored:
                    self._incomplete_reason = (
                        f"transient budget ({self.max_explored}) exhausted")
                    raise _Abort
                pc = self._step(inst, pc, depth)
                if len(self.leaks) > leaks_before:
                    break    # this path already diverged; the window is done
        finally:
            self.memory.rollback()
            self.regs = saved_regs

    # --------------------------------------------------------------- memory
    def _access(self, address: Term, inst, pc: int, depth: int, *,
                store: bool, data: Term = 0) -> Term:
        """Observe + perform one memory access; returns the loaded value."""
        d = SymbolicDomain
        line = d.srl(address, LINE_SHIFT)
        if isinstance(line, Expr):
            # The cache line touched depends on the secret — the classic
            # transmit.  Observe, then continue down a concretisation.
            self._leak(OBS_STORE_LINE if store else OBS_LOAD_LINE,
                       pc, line, depth)
        if isinstance(address, Expr):
            return self._mux_access(address, inst, store, data)
        if store:
            self.memory.store(address, data, inst.info.mem_size)
            return 0
        return self.memory.load(address, inst.info.mem_size)

    def _mux_access(self, address: Expr, inst, store: bool,
                    data: Term) -> Term:
        """Access through a symbolic address by muxing candidate cells.

        Sound for narrow address intervals (a secret-indexed access inside
        one cache line); wide intervals fall back to a zero-secret
        concretisation, which is only reached after the address already
        produced a leak observation — precision after the verdict, not
        soundness, is what degrades.
        """
        d = SymbolicDomain
        size = inst.info.mem_size
        width = address.hi - address.lo + 1
        if width > _MUX_LIMIT:
            concrete = evaluate(address, {}) & WORD_MASK
            if store:
                self.memory.store(concrete, data, size)
                return 0
            return self.memory.load(concrete, size)
        if store:
            for cell in range(address.lo, address.hi + 1):
                hit = d.eq(address, cell)
                old = self.memory.load(cell, size)
                self.memory.store(cell, d.ite(hit, data, old), size)
            return 0
        value: Term = self.memory.load(address.lo, size)
        for cell in range(address.lo + 1, address.hi + 1):
            value = d.ite(d.eq(address, cell),
                          self.memory.load(cell, size), value)
        return value

    # ------------------------------------------------------------ registers
    def _read_reg(self, index: int) -> Term:
        return 0 if index == 0 else self.regs[index]

    def _write_reg(self, index: int, value: Term) -> None:
        if index != 0:
            self.regs[index] = value

    # ----------------------------------------------------------------- leak
    def _leak(self, kind: str, pc: int, term: Expr, depth: int) -> None:
        site = (pc, kind)
        if site not in self._leak_sites:
            self._leak_sites.add(site)
            self.leaks.append(
                LeakObservation(kind, pc, depth, term, secret_bytes(term)))
        if len(self.leaks) >= self.max_leaks:
            raise _Abort
