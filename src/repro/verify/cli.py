"""``repro verify`` — the relational leak checker's command-line front end.

Examples::

    python -m repro.cli verify target                     # all named targets
    python -m repro.cli verify target chacha20 djbsort --scale 1
    python -m repro.cli verify plan --seeds 20 --profile quick
    python -m repro.cli verify plan-file counterexample.json
    python -m repro.cli verify crosscheck --seeds 20 --profile quick
    python -m repro.cli verify crosscheck --corpus-dir fuzz-corpus --json out.json

Exit status 0 means: every named target matched its documented expectation
(constant-time kernels ``safe``, attack gadgets ``leak`` with a confirmed
witness), or the cross-check found zero oracle disagreements.  ``plan`` /
``plan-file`` modes are informational and fail only on ``unknown``
(bounds too small to decide).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.fuzz.generator import PROFILES, generate_plan, plan_from_json
from repro.verify.report import (checks_to_json, render_check,
                                 render_crosscheck, write_json)
from repro.verify.targets import TARGETS, check_plan, verify_target

_BOUND_FLAGS = ("spec_window", "spec_depth", "max_instructions",
                "max_explored", "max_leaks")


def _add_bound_args(parser: argparse.ArgumentParser) -> None:
    bounds = parser.add_argument_group(
        "bounds", "speculation bounds and exploration budgets")
    bounds.add_argument("--spec-window", type=int, default=32,
                        help="transient instructions per misprediction "
                             "(default 32)")
    bounds.add_argument("--spec-depth", type=int, default=1,
                        help="misprediction nesting depth (default 1)")
    bounds.add_argument("--max-instructions", type=int, default=400_000,
                        help="architectural instruction budget")
    bounds.add_argument("--max-explored", type=int, default=2_000_000,
                        help="total transient instruction budget")
    bounds.add_argument("--max-leaks", type=int, default=8,
                        help="stop after this many distinct leak sites")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write a JSON witness report to this path")


def _bounds(args: argparse.Namespace) -> dict:
    return {flag: getattr(args, flag) for flag in _BOUND_FLAGS}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_spt verify",
        description="Bounded symbolic speculative non-interference checks "
                    "(self-composition over the golden interpreter).")
    modes = parser.add_subparsers(dest="mode", required=True)

    target = modes.add_parser(
        "target", help="check named targets (crypto kernels, gadgets)")
    target.add_argument("names", nargs="*", default=[],
                        help=f"target names (default: all of "
                             f"{', '.join(sorted(TARGETS))})")
    target.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    _add_bound_args(target)

    plan = modes.add_parser(
        "plan", help="check generated fuzz plans by seed")
    plan.add_argument("--seeds", type=int, default=1,
                      help="number of consecutive seeds (default 1)")
    plan.add_argument("--seed-start", type=int, default=0)
    plan.add_argument("--profile", default="quick",
                      choices=sorted(PROFILES))
    _add_bound_args(plan)

    plan_file = modes.add_parser(
        "plan-file", help="check a plan-IR JSON file (e.g. a recorded "
                          "counterexample's plan)")
    plan_file.add_argument("path", help="path to plan JSON "
                                        "(plan_to_json format)")
    _add_bound_args(plan_file)

    cross = modes.add_parser(
        "crosscheck", help="replay victims through both oracles and fail "
                           "on verdict disagreement")
    cross.add_argument("--seeds", type=int, default=20,
                       help="fresh plans to cross-check (default 20; "
                            "ignored with --corpus-dir)")
    cross.add_argument("--seed-start", type=int, default=0)
    cross.add_argument("--profile", default="quick",
                       choices=sorted(PROFILES))
    cross.add_argument("--corpus-dir", default=None,
                       help="replay this fuzz corpus instead of fresh "
                            "plans (concrete verdicts from its records)")
    cross.add_argument("--limit", type=int, default=None,
                       help="cap on corpus records to replay")
    _add_bound_args(cross)
    return parser


def _run_targets(args: argparse.Namespace) -> int:
    names = args.names or sorted(TARGETS)
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        print(f"error: unknown target(s) {', '.join(unknown)}; "
              f"known: {', '.join(sorted(TARGETS))}", file=sys.stderr)
        return 2
    results = []
    expectations = {}
    ok = True
    for name in names:
        result = verify_target(name, scale=args.scale, **_bounds(args))
        expected = TARGETS[name].expected
        expectations[result.program] = expected
        results.append(result)
        print(render_check(result, expected))
        if result.verdict != expected:
            ok = False
        elif expected == "leak" and not any(w.confirmed
                                            for w in result.witnesses):
            print(f"    {name}: leak verdict but no confirmed witness")
            ok = False
    if args.json_path:
        write_json(checks_to_json(results, expectations), args.json_path)
        print(f"report written to {args.json_path}")
    return 0 if ok else 1


def _run_plans(args: argparse.Namespace) -> int:
    results = []
    undecided = 0
    for seed in range(args.seed_start, args.seed_start + args.seeds):
        result = check_plan(generate_plan(seed, args.profile),
                            **_bounds(args))
        results.append(result)
        print(render_check(result))
        if result.verdict == "unknown":
            undecided += 1
    if args.json_path:
        write_json(checks_to_json(results), args.json_path)
        print(f"report written to {args.json_path}")
    return 1 if undecided else 0


def _run_plan_file(args: argparse.Namespace) -> int:
    with open(args.path) as handle:
        data = json.load(handle)
    # Accept either a bare plan or a corpus counterexample record.
    plan_blob = data.get("plan", data) if isinstance(data, dict) else data
    result = check_plan(plan_from_json(plan_blob), **_bounds(args))
    print(render_check(result))
    if args.json_path:
        write_json(checks_to_json([result]), args.json_path)
        print(f"report written to {args.json_path}")
    return 1 if result.verdict == "unknown" else 0


def _run_crosscheck(args: argparse.Namespace) -> int:
    from repro.verify.crosscheck import cross_check_corpus, cross_check_seeds
    if args.corpus_dir is not None:
        from repro.fuzz.corpus import Corpus
        report = cross_check_corpus(Corpus(args.corpus_dir),
                                    limit=args.limit, **_bounds(args))
    else:
        report = cross_check_seeds(args.seeds, args.profile,
                                   seed_start=args.seed_start,
                                   **_bounds(args))
    print(render_crosscheck(report))
    if args.json_path:
        write_json(report.to_json(), args.json_path)
        print(f"report written to {args.json_path}")
    return 0 if report.ok else 1


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.mode == "target":
        return _run_targets(args)
    if args.mode == "plan":
        return _run_plans(args)
    if args.mode == "plan-file":
        return _run_plan_file(args)
    return _run_crosscheck(args)


if __name__ == "__main__":
    raise SystemExit(main())
