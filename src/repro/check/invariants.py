"""The invariant registry: what the sanitizer checks, and where it comes from.

Each :class:`InvariantSpec` names one cycle-level property, the paper
section that motivates it, and the minimum ``check_level`` at which it is
evaluated.  The sanitizer itself (:mod:`repro.check.sanitizer`) implements
the checks; this registry is the single source of truth for ids, so the
CLI report, the docs, and the mutation suite all agree on names.

Levels:

* ``commit`` — retire-time lockstep with the golden interpreter plus
  squash-event checks.  Linear in retired instructions.
* ``full`` — everything: per-cycle window scans (ROB ordering, VP
  frontier, taint algebra, shadow residency) and per-event gating checks.
"""

from __future__ import annotations

from dataclasses import dataclass

CHECK_LEVELS = ("off", "commit", "full")


@dataclass(frozen=True)
class InvariantSpec:
    """One checked property: id, provenance, and activation level."""

    id: str
    level: str              # "commit" or "full"
    section: str            # paper section the invariant formalises
    description: str


INVARIANTS: dict[str, InvariantSpec] = {}


def _register(id: str, level: str, section: str, description: str) -> None:
    INVARIANTS[id] = InvariantSpec(id, level, section, description)


# ----------------------------------------------------------- commit level
_register(
    "pc-sequence", "commit", "§7.1",
    "Retired PCs replay the golden interpreter's control-flow path exactly "
    "(no wrong-path instruction ever retires).")
_register(
    "reg-equality", "commit", "§7.1",
    "Every retired instruction's destination value equals the golden "
    "interpreter's result for the same dynamic instruction.")
_register(
    "mem-equality", "commit", "§7.1",
    "Every retired store writes the golden interpreter's address and "
    "value; every retired load read the golden address.")
_register(
    "lsq-forwarding", "commit", "§6.7",
    "A load served by store-to-load forwarding retires with the value the "
    "golden memory image holds at that point of the program order.")
_register(
    "retire-order", "commit", "§7.1",
    "Retirement pops the ROB head, in strictly increasing sequence-number "
    "order, and never retires a squashed instruction.")
_register(
    "squash-complete", "commit", "§7.1",
    "A squash removes every instruction younger than its anchor from the "
    "ROB, RS, LSQ, and pending-control list, and clears the fetch buffer.")
_register(
    "final-state", "commit", "§7.1",
    "At HALT the drained pipeline's architectural registers and memory "
    "image equal the golden interpreter's final state.")

# -------------------------------------------------------------- full level
_register(
    "rob-age-order", "full", "§7.1",
    "The reorder buffer is age-ordered: in-flight sequence numbers are "
    "strictly increasing from head to tail, with no squashed residue in "
    "the ROB, RS, LSQ, or pending-control structures.")
_register(
    "vp-frontier", "full", "§5, §7.3",
    "The visibility-point frontier matches an independent recomputation "
    "from the attack model's obstacle predicate: reached_vp holds exactly "
    "for the program-order prefix through the first obstacle.")
_register(
    "vp-declassify", "full", "§6.6",
    "No in-flight instruction is declassified (operands untainted as "
    "attacker-inferable) while it is still transient — declassification "
    "happens at or after the visibility point only.")
_register(
    "gated-transmitter", "full", "§4, §7.2",
    "No transmitter computes its address or touches the cache hierarchy "
    "while the protection engine's gating predicate holds (tainted "
    "address operand, pre-VP under SecureBaseline).")
_register(
    "gated-resolution", "full", "§4, §6.6",
    "No branch or indirect jump applies its resolution side effects "
    "(predictor update, squash) while its predicate operands are tainted "
    "and it has not reached the visibility point.")
_register(
    "stl-visibility", "full", "§6.7",
    "A forwarded load skips its cache access only once the forwarding "
    "decision is public (STLPublic under SPT; both ends at the VP under "
    "STT).")
_register(
    "taint-init", "full", "§6.3, §6.5",
    "Rename-time taint matches the taint algebra: source bits mirror the "
    "register taint vector and the output bit equals "
    "initial_output_taint (loads tainted, PC-inferable outputs public).")
_register(
    "taint-monotonic", "full", "§6.6, §7.3",
    "No physical register transitions tainted -> untainted outside an "
    "accounted untaint broadcast or a rename reallocation; registers "
    "never become tainted except at rename.")
_register(
    "broadcast-width", "full", "§7.3",
    "At most untaint_broadcast_width registers are untainted per cycle "
    "(non-ideal SPT configurations).")
_register(
    "taint-entry-bits", "full", "§7.2",
    "A set per-entry taint bit always implies the backing physical "
    "register is tainted (entry bits are cleared locally first, never "
    "the other way around).")
_register(
    "zero-reg", "full", "§6.3",
    "The architectural zero register's physical register is never "
    "tainted (its value is public by definition).")
_register(
    "shadow-residency", "full", "§6.8, §7.5",
    "In shadow-L1 mode the shadow structure tracks only lines resident "
    "in the real L1D: an eviction must drop the shadow line so refills "
    "re-taint.")
_register(
    "stall-identity", "full", "repro.obs",
    "Stall-cause accounting attributes every cycle to exactly one cause "
    "(the bucket sum equals the cycle count).")


def invariants_at(level: str) -> list:
    """The specs evaluated at ``level`` (commit ⊆ full)."""
    if level == "full":
        return list(INVARIANTS.values())
    if level == "commit":
        return [spec for spec in INVARIANTS.values() if spec.level == "commit"]
    return []
