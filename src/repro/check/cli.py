"""``repro check`` — sweep a grid with the lockstep sanitizer enabled.

Runs (workload, configuration, attack model) cells with
``MachineParams.check_level`` raised (default ``full``) and reports
per-invariant evaluation counts.  Any :class:`InvariantViolation` fails
the sweep with the offending cell and the full violation report, so a CI
job can gate directly on this command.

Examples::

    python -m repro.cli check --smoke
    python -m repro.cli check --workloads mcf,chacha20 --configs STT \\
        --models spectre --budget 5000
    python -m repro.cli check             # the full grid (nightly)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.check.invariants import INVARIANTS
from repro.core.attack_model import AttackModel
from repro.harness.configs import CONFIGURATIONS
from repro.harness.parallel import RunFailure, RunSpec, run_many
from repro.pipeline.params import MachineParams
from repro.workloads.registry import WORKLOADS

BOTH_MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)

# The CI smoke grid: one memory-bound SPEC workload, one branchy SPEC
# workload, one constant-time kernel — against one representative of each
# protection family.
SMOKE_WORKLOADS = ("mcf", "xalancbmk", "chacha20")
SMOKE_CONFIGS = ("UnsafeBaseline", "SecureBaseline", "STT",
                 "SPT{Bwd,ShadowL1}")
SMOKE_BUDGET = 1500
FULL_BUDGET = 2000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_spt check",
        description="Run the lockstep invariant sanitizer over a grid of "
                    "(workload, configuration, attack model) cells.")
    parser.add_argument("--smoke", action="store_true",
                        help=f"small CI grid: {len(SMOKE_WORKLOADS)} "
                             f"workloads x {len(SMOKE_CONFIGS)} configs x "
                             f"both models, budget {SMOKE_BUDGET}")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names "
                             "(default: all, or the smoke set)")
    parser.add_argument("--configs", default=None,
                        help="comma-separated Table 2 configuration names "
                             "(default: all, or the smoke set)")
    parser.add_argument("--models", default="both",
                        choices=["spectre", "futuristic", "both"],
                        help="attack model(s) to check under (default both)")
    parser.add_argument("--level", default="full",
                        choices=["commit", "full"],
                        help="check level for the sweep (default full)")
    parser.add_argument("--backend", default="reference",
                        choices=["reference", "vector"],
                        help="simulation backend to check (default "
                             "reference); vector runs the fast path in "
                             "lockstep with the golden interpreter")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-run retired-instruction budget "
                             f"(default {FULL_BUDGET}, "
                             f"smoke {SMOKE_BUDGET})")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                             "CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    return parser


def _parse_configs(text: str) -> list:
    """Split a --configs value on commas, honouring brace nesting
    (configuration names such as SPT{Bwd,ShadowL1} contain commas)."""
    names: list = []
    pending = ""
    for part in text.split(","):
        pending = f"{pending},{part}" if pending else part
        if pending.count("{") == pending.count("}"):
            if pending.strip():
                names.append(pending.strip())
            pending = ""
    if pending.strip():
        names.append(pending.strip())
    for name in names:
        if name not in CONFIGURATIONS:
            raise SystemExit(
                f"error: unknown configuration {name!r}; "
                f"known: {', '.join(CONFIGURATIONS)}")
    if not names:
        raise SystemExit("error: --configs selected nothing")
    return names


def _parse_workloads(text: str) -> list:
    names = [name.strip() for name in text.split(",") if name.strip()]
    for name in names:
        if name not in WORKLOADS:
            raise SystemExit(
                f"error: unknown workload {name!r}; "
                f"known: {', '.join(sorted(WORKLOADS))}")
    if not names:
        raise SystemExit("error: --workloads selected nothing")
    return names


def check_counts(metrics_blob: dict) -> dict:
    """Per-invariant pass counts from a RunResult's metrics dict."""
    check = metrics_blob.get("groups", {}).get("check", {})
    return dict(check.get("groups", {}).get("passed", {})
                .get("scalars", {}))


def render_report(counts: dict, cells: int, level: str) -> str:
    lines = [f"sanitizer sweep: {cells} cells clean at "
             f"check_level={level}",
             "per-invariant evaluations:"]
    width = max((len(name) for name in counts), default=10)
    for invariant in sorted(INVARIANTS):
        spec = INVARIANTS[invariant]
        count = counts.get(invariant, 0)
        note = "" if count else "   (never exercised on this grid)"
        lines.append(f"  {invariant:<{width}}  {count:>10}  "
                     f"[{spec.level}] {spec.section}{note}")
    lines.append(f"  {'total':<{width}}  {sum(counts.values()):>10}")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        workloads = list(SMOKE_WORKLOADS)
        configs = list(SMOKE_CONFIGS)
        budget = args.budget or SMOKE_BUDGET
    else:
        workloads = sorted(WORKLOADS)
        configs = list(CONFIGURATIONS)
        budget = args.budget or FULL_BUDGET
    if args.workloads:
        workloads = _parse_workloads(args.workloads)
    if args.configs:
        configs = _parse_configs(args.configs)
    models = list(BOTH_MODELS) if args.models == "both" \
        else [AttackModel(args.models)]

    params = MachineParams(check_level=args.level, backend=args.backend)
    specs = [RunSpec(workload, config, model, max_instructions=budget,
                     params=params)
             for workload in workloads
             for config in configs
             for model in models]
    try:
        results = run_many(specs, jobs=args.jobs,
                           use_cache=False if args.no_cache else None)
    except RunFailure as failure:
        print(f"INVARIANT VIOLATION in {failure.spec.describe()}:",
              file=sys.stderr)
        print(f"  {failure.cause}", file=sys.stderr)
        return 1

    totals: dict = {}
    for result in results:
        for invariant, count in check_counts(result.metrics).items():
            totals[invariant] = totals.get(invariant, 0) + count
    print(render_report(totals, len(specs), args.level))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
