"""Lockstep invariant sanitizer (``repro.check``).

Runs the out-of-order pipeline in lockstep with the golden ISA interpreter
and evaluates a registry of cycle-level microarchitectural invariants:
commit-order architectural equality, ROB age ordering, squash completeness,
store-to-load forwarding against golden memory, SPT taint-algebra
monotonicity, visibility-point legality, delayed-transmitter gating, and
shadow-L1 residency.  Checking is off by default (``MachineParams.
check_level="off"`` leaves the core's hook attribute ``None``) and is
enabled per run through ``check_level="commit"`` (retire-time lockstep
only) or ``check_level="full"`` (everything, including the per-cycle
scans).

A violated invariant raises :class:`~repro.check.violation.
InvariantViolation` carrying the invariant id, cycle, instruction, and a
window of recent pipeline events.  The ``repro check`` CLI sweeps a grid
of (workload, configuration, model) cells with the sanitizer enabled and
reports per-invariant evaluation counts through the run metrics tree.
"""

from repro.check.invariants import CHECK_LEVELS, INVARIANTS, InvariantSpec
from repro.check.sanitizer import Sanitizer
from repro.check.violation import InvariantViolation

__all__ = [
    "CHECK_LEVELS",
    "INVARIANTS",
    "InvariantSpec",
    "InvariantViolation",
    "Sanitizer",
]
