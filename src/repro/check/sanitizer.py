"""The lockstep sanitizer: golden-interpreter lockstep + cycle-level scans.

A :class:`Sanitizer` attaches to one :class:`~repro.pipeline.core.OoOCore`
(constructed automatically when ``MachineParams.check_level`` is not
``"off"``) and observes the pipeline through a handful of hooks the core
calls behind ``is not None`` guards — the off-mode cost is a single
attribute test per event.  The sanitizer is strictly passive: it never
mutates core, engine, or memory state, so a checked run retires the exact
cycle-for-cycle schedule of an unchecked one.

Checking is layered for independence from the code it checks:

* retire-time lockstep replays every retired instruction on the golden
  :mod:`repro.isa.interpreter` state machine and compares PCs, register
  results, and store address/value pairs — the semantics come from
  ``repro.isa.semantics`` applied to an architectural state the pipeline
  never touches;
* taint checks recompute the Section 6.3/6.5 rules from
  :mod:`repro.core.taint_algebra` and diff the engine's taint vector
  against the previous cycle, so an engine that silently drops or leaks
  taint disagrees with the recomputation;
* visibility-point checks re-derive the frontier from the attack model's
  obstacle predicate (:attr:`ProtectionEngine.vp_predicate`) rather than
  trusting ``advance_vp``.

Every violated property raises :class:`InvariantViolation`; every passed
evaluation bumps a per-invariant counter exported into the run metrics
under the ``check`` group.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.check.invariants import CHECK_LEVELS
from repro.check.violation import InvariantViolation
from repro.core.baselines import SecureBaseline
from repro.core.spt import SPTEngine
from repro.core.stt import STTEngine
from repro.core.shadow_l1 import ShadowMode
from repro.core.taint_algebra import initial_output_taint
from repro.isa.interpreter import ArchState, step
from repro.isa.opcodes import WORD_MASK
from repro.isa.semantics import effective_address
from repro.obs.metrics import Metrics

if TYPE_CHECKING:
    from repro.pipeline.core import OoOCore
    from repro.pipeline.dyninst import DynInst

# How many recent pipeline events ride along in a violation report.
TRACE_WINDOW = 24


class Sanitizer:
    """Passive lockstep checker for one simulation run."""

    def __init__(self, core: "OoOCore", level: str):
        if level not in CHECK_LEVELS or level == "off":
            raise ValueError(f"invalid check level {level!r}; "
                             f"expected one of {CHECK_LEVELS[1:]}")
        self.core = core
        self.level = level
        self.full = level == "full"
        self.counts: dict[str, int] = {}

        # Golden lockstep state: an independent architectural machine.
        self.golden = ArchState()
        self.golden.memory.update(core.program.initial_memory)
        self.expected_pc: Optional[int] = 0
        self.golden_retired = 0
        self._last_retired_seq = -1

        # Context for violation reports.
        self.window: deque = deque(maxlen=TRACE_WINDOW)

        engine = core.engine
        self._spt = engine if isinstance(engine, SPTEngine) else None
        self._stt = engine if isinstance(engine, STTEngine) else None
        self._secure = isinstance(engine, SecureBaseline)
        self._vp_predicate = getattr(engine, "vp_predicate", None)
        # Independent youngest-root-of-taint map for STT (Section 2.2):
        # maintained from rename events only, never read from the engine, so
        # an engine that corrupts its own root map still gets caught at the
        # transmit/resolve gates.
        self._yrot: dict = {}

        # Previous-cycle taint snapshot for the monotonicity diff.
        self._prev_taint: Optional[list] = None
        self._prev_untaint_total = 0
        if self._spt is not None:
            self._prev_taint = list(self._spt.taint)
            self._prev_untaint_total = self._spt.untaint.total

    # -------------------------------------------------------------- plumbing
    def _pass(self, invariant: str) -> None:
        self.counts[invariant] = self.counts.get(invariant, 0) + 1

    def _fail(self, invariant: str, message: str,
              di: Optional["DynInst"] = None) -> None:
        raise InvariantViolation(
            invariant, self.core.cycle, message,
            inst=repr(di) if di is not None else None,
            window=list(self.window))

    def _check(self, invariant: str, ok: bool, message: str,
               di: Optional["DynInst"] = None) -> None:
        if not ok:
            self._fail(invariant, message, di)
        self._pass(invariant)

    def metrics_tree(self) -> Metrics:
        """Per-invariant evaluation counts (grafted under ``check``)."""
        m = Metrics("check")
        m.set("level", 1 if self.level == "commit" else 2)
        passed = m.child("passed")
        for invariant, count in sorted(self.counts.items()):
            passed.set(invariant, count)
        m.set("total", sum(self.counts.values()))
        return m

    # --------------------------------------------------------- engine gates
    # Independent recomputations of the engines' gating predicates from
    # their taint state (not their gating methods), so a bug in — or a
    # mutation of — may_compute_address / may_resolve is visible.
    def _transmit_legal(self, di: "DynInst") -> bool:
        if di.reached_vp:
            return True
        if self._spt is not None:
            return not di.t_src1
        if self._stt is not None:
            return not self._stt_tainted(di.prs1)
        if self._secure:
            return False
        return True

    def _resolve_legal(self, di: "DynInst") -> bool:
        if di.reached_vp:
            return True
        if self._spt is not None:
            return not di.t_src1 and not (di.info.reads_rs2 and di.t_src2)
        if self._stt is not None:
            return not (self._stt_tainted(di.prs1)
                        or (di.info.reads_rs2
                            and self._stt_tainted(di.prs2)))
        if self._secure:
            return False
        return True

    def _stt_live_root(self, preg: int) -> Optional["DynInst"]:
        root = self._yrot.get(preg)
        if root is None or root.reached_vp or root.squashed or root.retired:
            return None
        return root

    def _stt_tainted(self, preg: int) -> bool:
        return preg >= 0 and self._stt_live_root(preg) is not None

    # ------------------------------------------------------------ event hooks
    def on_rename(self, di: "DynInst") -> None:
        """Dispatch renamed ``di`` (taint initialisation just happened)."""
        if not self.full:
            return
        if self._stt is not None:
            # Mirror the YRoT propagation rule into the private map.
            if di.is_load:
                if di.prd >= 0:
                    self._yrot[di.prd] = di
            else:
                root = None
                for preg in (di.prs1, di.prs2):
                    candidate = self._stt_live_root(preg) \
                        if preg >= 0 else None
                    if candidate is not None and (
                            root is None or candidate.seq > root.seq):
                        root = candidate
                if di.prd >= 0:
                    if root is None:
                        self._yrot.pop(di.prd, None)
                    else:
                        self._yrot[di.prd] = root
            return
        if self._spt is None:
            return
        taint = self._spt.taint
        want_src1 = di.prs1 >= 0 and taint[di.prs1]
        want_src2 = di.prs2 >= 0 and taint[di.prs2]
        want_dst = initial_output_taint(di.inst, want_src1, want_src2)
        self._check(
            "taint-init",
            di.t_src1 == want_src1 and di.t_src2 == want_src2
            and di.t_dst == want_dst
            and (di.prd < 0 or taint[di.prd] == want_dst),
            f"rename taint mismatch: entry bits "
            f"(src1={di.t_src1}, src2={di.t_src2}, dst={di.t_dst}) vs "
            f"algebra (src1={want_src1}, src2={want_src2}, dst={want_dst})",
            di)

    def on_transmit(self, di: "DynInst") -> None:
        """A transmitter began executing (address computation)."""
        if not self.full:
            return
        self._check(
            "gated-transmitter", self._transmit_legal(di),
            "transmitter computed its address while gated "
            f"(reached_vp={di.reached_vp}, t_src1={di.t_src1})", di)

    def on_cache_access(self, load: "DynInst") -> None:
        """A load is about to access the cache hierarchy."""
        if not self.full:
            return
        self._check(
            "gated-transmitter", self._transmit_legal(load),
            "load touched the cache hierarchy while gated "
            f"(reached_vp={load.reached_vp}, t_src1={load.t_src1})", load)

    def on_forward_skip(self, load: "DynInst", store: "DynInst") -> None:
        """A forwarded load is skipping its cache access."""
        if not self.full:
            return
        if self._spt is not None:
            ok = self._stl_public_recompute(load, store)
            detail = (f"STLPublic does not hold (load.t_src1={load.t_src1}, "
                      f"store.t_src1={store.t_src1})")
        elif self._stt is not None:
            ok = load.reached_vp and store.reached_vp
            detail = (f"ends not both at VP (load={load.reached_vp}, "
                      f"store={store.reached_vp})")
        elif self._secure:
            # SecureBaseline loads only issue at the VP, where the
            # forwarding decision is architecturally determined.
            ok = load.reached_vp
            detail = f"load not at VP (reached_vp={load.reached_vp})"
        else:
            ok, detail = True, ""
        self._check(
            "stl-visibility", ok,
            f"forwarded load skipped its cache access but the forwarding "
            f"decision is not public: {detail}", load)

    def _stl_public_recompute(self, load: "DynInst",
                              store: "DynInst") -> bool:
        """Re-derive STLPublic(S, L) from the LSQ (paper Section 6.7)."""
        if load.t_src1 or store.t_src1:
            return False
        for st in self.core.lsq:
            if st.seq >= load.seq:
                break
            if (st.is_store and not st.squashed and st.seq >= store.seq
                    and st.t_src1):
                return False
        return True

    def on_resolve(self, di: "DynInst") -> None:
        """A control instruction is applying its resolution effects."""
        if not self.full:
            return
        self._check(
            "gated-resolution", self._resolve_legal(di),
            "control resolution applied while the predicate is protected "
            f"(reached_vp={di.reached_vp}, t_src1={di.t_src1}, "
            f"t_src2={di.t_src2})", di)

    # ----------------------------------------------------------- commit hooks
    def on_retire(self, di: "DynInst") -> None:
        """Called at the head of ``_retire`` — lockstep with the golden ISA."""
        core = self.core
        self._check(
            "retire-order",
            not di.squashed and di is core.head_inst()
            and di.seq > self._last_retired_seq,
            f"retired out of order (squashed={di.squashed}, "
            f"head={core.head_inst()!r}, last_seq={self._last_retired_seq})",
            di)
        self._last_retired_seq = di.seq

        if self.expected_pc is None:
            self._fail("pc-sequence",
                       "instruction retired after the golden HALT", di)
        self._check(
            "pc-sequence", di.pc == self.expected_pc,
            f"retired pc {di.pc} but the golden path expects "
            f"{self.expected_pc}", di)

        inst = di.inst
        golden = self.golden
        if di.is_store:
            addr = effective_address(inst, golden.read_reg(inst.rs1))
            value = golden.read_reg(inst.rs2)
            mask = (1 << (8 * di.info.mem_size)) - 1
            self._check(
                "mem-equality",
                di.address == addr
                and ((di.rs2_value or 0) ^ value) & mask == 0,
                f"store writes {di.rs2_value!r} @ {di.address!r}; golden "
                f"writes {value:#x} @ {addr:#x}", di)
        elif di.is_load:
            addr = effective_address(inst, golden.read_reg(inst.rs1))
            value = golden.load(addr, di.info.mem_size)
            invariant = ("lsq-forwarding" if di.forwarded_from is not None
                         else "mem-equality")
            self._check(
                invariant,
                di.address == addr and di.result == value,
                f"load returned {di.result!r} @ {di.address!r}; golden "
                f"reads {value:#x} @ {addr:#x}"
                + (" (store-to-load forwarded)"
                   if di.forwarded_from is not None else ""), di)

        next_pc = step(golden, inst, di.pc)
        self.golden_retired += 1
        if inst.dest_reg() is not None:
            want = golden.read_reg(inst.rd)
            got = None if di.result is None else di.result & WORD_MASK
            self._check(
                "reg-equality", got == want,
                f"x{inst.rd} result {got!r}; golden computes {want:#x}", di)
        self.expected_pc = next_pc
        self.window.append(
            f"cycle {self.core.cycle}: retire #{di.seq} pc={di.pc} {inst}")

    def on_squash(self, anchor, squashed: list) -> None:
        """Called at the end of ``_squash_after``; ``anchor`` survives."""
        core = self.core
        boundary = anchor.seq
        for victim in squashed:
            if not victim.squashed:
                self._fail("squash-complete",
                           f"victim #{victim.seq} not marked squashed",
                           victim)
        rob_tail = core.rob[-1] if len(core.rob) > core.rob_head else None
        ok = (rob_tail is None or rob_tail.seq <= boundary) \
            and not core.fetch_buffer
        detail = ""
        if ok:
            for name, structure in (("RS", core.rs), ("LSQ", core.lsq),
                                    ("pending-control",
                                     core.pending_control)):
                for di in structure:
                    if di.seq > boundary or di.squashed:
                        ok, detail = False, (
                            f"#{di.seq} (squashed={di.squashed}) survived "
                            f"in the {name}")
                        break
                if not ok:
                    break
        self._check(
            "squash-complete", ok,
            f"squash younger than #{boundary} incomplete: "
            + (detail or f"ROB tail {rob_tail!r}, "
               f"fetch_buffer={len(core.fetch_buffer)}"))
        self.window.append(
            f"cycle {core.cycle}: squash younger than #{boundary} "
            f"({len(squashed)} victims)")

    def on_finish(self, halted: bool) -> None:
        """End of ``run()``: full architectural-state comparison at HALT."""
        if not halted:
            return      # budget-cut run: the pipeline is not drained
        core = self.core
        golden_halted = self.expected_pc is None
        ok = golden_halted
        detail = "sim halted but the golden path has not"
        if ok:
            for index in range(32):
                sim_value = core.rename.arch_value(index)
                golden_value = self.golden.read_reg(index)
                if sim_value != golden_value:
                    ok = False
                    detail = (f"x{index}: sim={sim_value:#x} "
                              f"golden={golden_value:#x}")
                    break
        if ok:
            golden_mem = {a: v for a, v in self.golden.memory.items() if v}
            if core.memory.snapshot() != golden_mem:
                ok, detail = False, "memory image diverged from golden"
        self._check("final-state", ok,
                    f"architectural state mismatch at HALT: {detail}")

    # ------------------------------------------------------------ cycle scan
    def on_cycle(self) -> None:
        """End-of-cycle window scans (``check_level="full"`` only)."""
        if not self.full:
            return
        core = self.core
        self._scan_window(core)
        if self._vp_predicate is not None:
            self._scan_vp(core)
        if self._spt is not None:
            self._scan_taint(core)
        self._check(
            "stall-identity", sum(core.stall_counts) == core.cycle,
            f"stall buckets sum to {sum(core.stall_counts)} at cycle "
            f"{core.cycle}")

    def _scan_window(self, core: "OoOCore") -> None:
        prev_seq = -1
        live = set()
        for di in core.in_flight():
            if di.squashed or di.seq <= prev_seq:
                self._fail(
                    "rob-age-order",
                    f"ROB out of age order (squashed={di.squashed}, "
                    f"prev_seq={prev_seq})", di)
            prev_seq = di.seq
            live.add(di.seq)
        self._pass("rob-age-order")
        for name, structure in (("RS", core.rs), ("LSQ", core.lsq),
                                ("pending-control", core.pending_control)):
            for di in structure:
                if di.squashed or di.seq not in live:
                    self._fail(
                        "squash-complete",
                        f"dead instruction resident in the {name} "
                        f"(squashed={di.squashed}, in_rob={di.seq in live})",
                        di)
        self._pass("squash-complete")

    def _scan_vp(self, core: "OoOCore") -> None:
        obstacle = self._vp_predicate
        blocked = False
        declassify_checked = False
        for di in core.in_flight():
            expected = not blocked
            if not blocked and obstacle(di):
                blocked = True      # the first obstacle itself reaches VP
            if di.reached_vp != expected:
                self._fail(
                    "vp-frontier",
                    f"reached_vp={di.reached_vp} but the frontier "
                    f"recomputation says {expected}", di)
            if di.declassified and not di.reached_vp:
                self._fail(
                    "vp-declassify",
                    "declassified while still transient (pre-VP)", di)
            declassify_checked = True
        self._pass("vp-frontier")
        if declassify_checked:
            self._pass("vp-declassify")

    def _scan_taint(self, core: "OoOCore") -> None:
        engine = self._spt
        taint = engine.taint
        self._check("zero-reg", not taint[0],
                    "the zero register's physical register became tainted")

        for di in core.in_flight():
            if (di.t_src1 and di.prs1 >= 0 and not taint[di.prs1]) \
                    or (di.t_src2 and di.prs2 >= 0 and not taint[di.prs2]) \
                    or (di.t_dst and di.prd >= 0 and not taint[di.prd]):
                self._fail(
                    "taint-entry-bits",
                    "entry taint bit set over an untainted physical "
                    f"register (src1={di.t_src1}/{di.prs1}, "
                    f"src2={di.t_src2}/{di.prs2}, "
                    f"dst={di.t_dst}/{di.prd})", di)
        self._pass("taint-entry-bits")

        prev = self._prev_taint
        cycle = core.cycle
        renamed = {di.prd for di in core.in_flight()
                   if di.prd >= 0 and di.dispatch_cycle == cycle}
        newly_tainted = []
        newly_untainted = []
        for preg, was in enumerate(prev):
            now = taint[preg]
            if was and not now:
                newly_untainted.append(preg)
            elif now and not was:
                newly_tainted.append(preg)
        bad_taints = [p for p in newly_tainted if p not in renamed]
        if bad_taints:
            self._fail(
                "taint-monotonic",
                f"registers {bad_taints} became tainted outside rename")
        broadcasts = engine.untaint.total - self._prev_untaint_total
        unaccounted = [p for p in newly_untainted if p not in renamed]
        self._check(
            "taint-monotonic", len(unaccounted) <= broadcasts,
            f"{len(unaccounted)} registers untainted this cycle "
            f"({unaccounted[:8]}...) but only {broadcasts} untaint "
            f"broadcasts were accounted")
        if not engine.ideal:
            self._check(
                "broadcast-width",
                len(unaccounted) <= core.params.untaint_broadcast_width,
                f"{len(unaccounted)} registers untainted in one cycle; "
                f"broadcast width is "
                f"{core.params.untaint_broadcast_width}")
        self._prev_taint = list(taint)
        self._prev_untaint_total = engine.untaint.total

        shadow = engine.shadow
        if shadow is not None and shadow.mode == ShadowMode.L1:
            l1 = core.hierarchy.l1
            for line in shadow.lines():
                if not l1.probe(line):
                    self._fail(
                        "shadow-residency",
                        f"shadow L1 tracks line {line:#x} which is not "
                        f"resident in the L1D (missed eviction?)")
            self._pass("shadow-residency")
