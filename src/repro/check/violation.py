"""Structured invariant-violation report.

An :class:`InvariantViolation` is the sanitizer's only failure mode: a
checked run either completes clean or raises one of these, carrying
everything a triage needs — the invariant id, the cycle, the offending
instruction, and a window of the pipeline events leading up to the
violation.  The exception pickles cleanly so it survives the process-pool
boundary of ``run_many`` (where it surfaces wrapped in a ``RunFailure``).
"""

from __future__ import annotations

from typing import Optional, Sequence


class InvariantViolation(AssertionError):
    """A cycle-level invariant failed during a checked simulation."""

    def __init__(self, invariant: str, cycle: int, message: str,
                 inst: Optional[str] = None,
                 window: Optional[Sequence[str]] = None):
        self.invariant = invariant
        self.cycle = cycle
        self.inst = inst
        self.window = list(window or ())
        self.message = message
        super().__init__(self._render())

    def _render(self) -> str:
        lines = [f"[{self.invariant}] cycle {self.cycle}: {self.message}"]
        if self.inst:
            lines.append(f"  instruction: {self.inst}")
        if self.window:
            lines.append("  recent events:")
            lines.extend(f"    {event}" for event in self.window)
        return "\n".join(lines)

    def __reduce__(self):
        # Exceptions with non-trivial __init__ signatures need an explicit
        # reduce to cross the ProcessPoolExecutor pickle boundary.
        return (type(self), (self.invariant, self.cycle, self.message,
                             self.inst, self.window))
