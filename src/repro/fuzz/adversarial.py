"""AMuLeT-style adversarial campaign: hill-climbing over the plan IR.

Uniform seed sampling (the default ``repro fuzz`` campaign) treats every
victim as equally likely to leak.  Against *hardened* victim populations —
where most generated speculation windows are too narrow to exploit — that
wastes almost the whole budget on hopeless candidates.  This module
replaces it with a guided search:

1. **Score** every candidate plan by how deeply it exercises the
   speculative-taint machinery.  The candidate is run once under the full
   SPT design (the *instrument* configuration) and folded to a scalar from
   the engine metrics: cycles transmitters spent delayed while tainted
   (speculative taint reach — a direct measure of how much tainted data
   the transient window carried to a transmitter), delayed squash
   resolutions, untaint traffic, and shadow-L1 occupancy.  The score is a
   leak-proximity proxy that stays informative *before* any leak exists:
   it grows monotonically as mutations widen a transient window, where the
   binary leak verdict is flat.

2. **Mutate** the winning plan's IR — widen/trainings/bounds knob tweaks,
   transmitter and exposure swaps, gadget insertion, block
   drop/duplicate/swap — and keep the candidate whenever its score
   improves (hill climbing with random restarts on stagnation).

3. **Verify** every *promising* candidate (score improved, or a fresh
   restart) against the target configuration with the campaign's own
   non-interference oracle (two secrets, per-channel digest diff), so
   "found a leak" means exactly what the uniform campaign means.
   Non-improving candidates are rejected after the single instrument run,
   which is what lets the climber out-spend uniform sampling on direction
   instead of on verdicts.

The search is deterministic for a given (profile, config, model, seed) and
budgeted in *simulations* (oracle runs cost 2, instrument runs 1), making
``hill_climb`` and :func:`uniform_search` directly comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.fuzz.generator import (PROFILES, SECRET_BYTES, FuzzPlan,
                                  FuzzProfile, Gadget, _gen_gadget,
                                  generate_plan, render, secret_pair,
                                  with_blocks)
from repro.fuzz.oracle import (FUZZ_BUDGET, architectural_dependence,
                               check_pair_direct, expected_to_diverge,
                               run_traced)

# The instrument: the full SPT design's taint machinery measures how far
# secrets travel speculatively, whatever configuration the leak targets.
INSTRUMENT_CONFIG = "SPT{Bwd,ShadowL1}"

# Score weights (see taint_reach_score).  The delay terms carry the
# gradient; the untaint/shadow terms are deliberately small tiebreakers so
# occupancy noise from filler edits cannot drown the window-width signal.
_W_TRANSMIT_DELAY = 1.0
_W_RESOLUTION_DELAY = 2.0
_W_UNTAINT = 0.05
_W_SHADOW_BYTES = 0.01
_W_SHADOW_LINES = 0.01


def taint_reach_score(stats: dict) -> float:
    """Fold one instrumented run's stats into a leak-proximity scalar.

    ``transmitters_delayed_cycles`` dominates: every cycle a transmitter
    sat delayed is a cycle tainted (secret-derived) data was at its
    operands — the window the attack needs.  Delayed squash resolutions
    extend implicit-channel windows the same way.  Untaint traffic and
    shadow-L1 occupancy reward plans that move more (declassifiable) data
    through the protection machinery at all.
    """
    return (_W_TRANSMIT_DELAY * stats.get("transmitters_delayed_cycles", 0)
            + _W_RESOLUTION_DELAY * stats.get("resolutions_delayed_cycles", 0)
            + _W_UNTAINT * stats.get("engine.untaint.total", 0)
            + _W_SHADOW_BYTES
            * stats.get("engine.shadow.resident_untainted_bytes", 0)
            + _W_SHADOW_LINES * stats.get("engine.shadow.tracked_lines", 0))


# ------------------------------------------------------------------ mutation
_WIDEN_STEPS = (-8, -4, -2, -1, 1, 2, 4, 8)
_MAX_WIDEN = 48
_MAX_TRAININGS = 8


def _mutate_gadget(gadget: Gadget, rng: random.Random,
                   cfg: FuzzProfile) -> Gadget:
    knob = rng.choice(("widen", "widen", "widen", "trainings", "in_bounds",
                       "secret_index", "transmit", "exposure"))
    if knob == "widen":
        widen = min(_MAX_WIDEN,
                    max(0, gadget.widen + rng.choice(_WIDEN_STEPS)))
        return replace(gadget, widen=widen)
    if knob == "trainings":
        trainings = min(_MAX_TRAININGS,
                        max(0, gadget.trainings + rng.choice((-1, 1))))
        return replace(gadget, trainings=trainings)
    if knob == "in_bounds":
        return replace(gadget, in_bounds=rng.choice(cfg.in_bounds))
    if knob == "secret_index":
        return replace(gadget, secret_index=rng.randrange(SECRET_BYTES))
    if knob == "transmit":
        return replace(gadget, transmit=rng.choice(cfg.transmits))
    return replace(gadget, exposure=rng.choice(cfg.exposures))


def mutate(plan: FuzzPlan, rng: random.Random,
           cfg: FuzzProfile) -> FuzzPlan:
    """One random structure-preserving edit of the plan IR.

    Always leaves at least one gadget in place; all edits stay inside the
    generator's architectural-secret-independence envelope (and the search
    re-checks that invariant before simulating any candidate).
    """
    blocks = list(plan.blocks)
    gadget_at = [i for i, b in enumerate(blocks) if isinstance(b, Gadget)]
    op = rng.choice(("knob", "knob", "knob", "knob",
                     "add_gadget", "dup", "swap", "drop"))
    if op == "knob":
        index = rng.choice(gadget_at)
        blocks[index] = _mutate_gadget(blocks[index], rng, cfg)
    elif op == "add_gadget" and len(gadget_at) < cfg.max_gadgets:
        blocks.insert(rng.randint(0, len(blocks)), _gen_gadget(rng, cfg))
    elif op == "dup" and len(blocks) > 1:
        index = rng.randrange(len(blocks))
        if not isinstance(blocks[index], Gadget):
            blocks.insert(index, blocks[index])
    elif op == "swap" and len(blocks) > 1:
        i, j = rng.sample(range(len(blocks)), 2)
        blocks[i], blocks[j] = blocks[j], blocks[i]
    elif op == "drop" and len(blocks) > 1:
        candidates = [i for i in range(len(blocks))
                      if not isinstance(blocks[i], Gadget)
                      or len(gadget_at) > 1]
        if candidates:
            del blocks[rng.choice(candidates)]
    mutated = with_blocks(plan, blocks)
    return mutated if mutated.gadgets else plan


# -------------------------------------------------------------------- search
@dataclass(frozen=True)
class SearchOutcome:
    """What one budgeted search produced."""

    mode: str               # "hill-climb" | "uniform"
    profile: str
    config: str
    model: str              # AttackModel name
    found: bool             # a leaking plan was reached
    plan: Optional[FuzzPlan]
    channels: tuple         # diverging channels of the leaking plan
    sims: int               # total simulations consumed
    evals: int              # candidate plans evaluated
    best_score: float       # best instrument score seen (hill-climb only)

    @property
    def counterexample(self) -> bool:
        """True when the leak contradicts the protection-scope matrix."""
        return (self.found and self.plan is not None
                and not expected_to_diverge(self.plan.exposure, self.config))


class _Budget:
    def __init__(self, sims: int):
        self.limit = sims
        self.sims = 0
        self.evals = 0

    def take(self, n: int) -> bool:
        if self.sims + n > self.limit:
            return False
        self.sims += n
        return True


def _leak_channels(plan: FuzzPlan, config: str, model: AttackModel,
                   max_instructions: int) -> Optional[tuple]:
    """The oracle verdict for one plan: diverging channels, or None when
    the candidate is invalid (broken invariant / non-halting)."""
    a, b = secret_pair(plan.seed)
    prog_a, prog_b = render(plan, a), render(plan, b)
    if architectural_dependence(prog_a, prog_b, max_instructions):
        return None
    try:
        return tuple(check_pair_direct(prog_a, prog_b, config, model,
                                       max_instructions=max_instructions))
    except RuntimeError:
        return None


def _instrument_score(plan: FuzzPlan, model: AttackModel,
                      max_instructions: int) -> Optional[float]:
    secret, _ = secret_pair(plan.seed)
    try:
        sim = run_traced(render(plan, secret), INSTRUMENT_CONFIG, model,
                         max_instructions=max_instructions)
    except RuntimeError:
        return None
    return taint_reach_score(sim.stats)


def hill_climb(profile: str = "hard", config: str = "UnsafeBaseline",
               model: AttackModel = AttackModel.SPECTRE,
               budget: int = 150, seed: int = 0, patience: int = 6,
               max_instructions: int = FUZZ_BUDGET) -> SearchOutcome:
    """Adversarially search for a leaking plan under ``config``.

    Per candidate: 1 instrument simulation (the score); candidates whose
    score improves on the incumbent — plus every restart — additionally
    pay 2 oracle simulations for the leak check.  All runs count against
    ``budget``.  Restarts from a fresh random plan after ``patience``
    non-improving candidates.
    """
    cfg = PROFILES[profile]
    rng = random.Random(
        f"adversarial:{profile}:{config}:{model.value}:{seed}")
    budget_ = _Budget(budget)
    fresh_seed = seed * 1_000_000
    best_score = float("-inf")

    def fresh_plan() -> FuzzPlan:
        nonlocal fresh_seed
        plan = generate_plan(fresh_seed, profile)
        fresh_seed += 1
        return plan

    def done(found: bool, plan: Optional[FuzzPlan],
             channels: tuple) -> SearchOutcome:
        return SearchOutcome("hill-climb", profile, config, model.name,
                             found, plan, channels, budget_.sims,
                             budget_.evals, best_score)

    current: Optional[FuzzPlan] = None
    current_score = float("-inf")
    stale = 0
    while True:
        restart = current is None or stale >= patience
        candidate = fresh_plan() if restart \
            else mutate(current, rng, cfg)
        if not budget_.take(1):
            return done(False, None, ())
        budget_.evals += 1
        score = _instrument_score(candidate, model, max_instructions)
        if score is None:               # invalid candidate: never climb onto it
            stale += 1
            continue
        best_score = max(best_score, score)
        if not (restart or score > current_score):
            stale += 1
            continue
        # Promising: pay for the oracle verdict before climbing onto it.
        if not budget_.take(2):
            return done(False, None, ())
        channels = _leak_channels(candidate, config, model, max_instructions)
        if channels is None:
            stale += 1
            continue
        if channels:
            return done(True, candidate, channels)
        current, current_score, stale = candidate, score, 0


def uniform_search(profile: str = "hard", config: str = "UnsafeBaseline",
                   model: AttackModel = AttackModel.SPECTRE,
                   budget: int = 150, seed_start: int = 0,
                   max_instructions: int = FUZZ_BUDGET) -> SearchOutcome:
    """The baseline the hill climber replaces: fresh seeds, same oracle.

    Each seed costs 2 oracle simulations; no instrument runs, so uniform
    search actually evaluates *more* candidates per budget — it just
    cannot steer toward the leak boundary.
    """
    budget_ = _Budget(budget)
    seed = seed_start
    while budget_.take(2):
        budget_.evals += 1
        plan = generate_plan(seed, profile)
        seed += 1
        channels = _leak_channels(plan, config, model, max_instructions)
        if channels:
            return SearchOutcome("uniform", profile, config, model.name,
                                 True, plan, channels, budget_.sims,
                                 budget_.evals, float("-inf"))
    return SearchOutcome("uniform", profile, config, model.name,
                         False, None, (), budget_.sims, budget_.evals,
                         float("-inf"))


def render_outcome(outcome: SearchOutcome) -> str:
    """One-paragraph human-readable search summary."""
    head = (f"{outcome.mode} over profile '{outcome.profile}' vs "
            f"{outcome.config}/{outcome.model}: ")
    if not outcome.found:
        return (head + f"no leaking plan within {outcome.sims} sims "
                f"({outcome.evals} candidates).")
    gadget = outcome.plan.gadgets[0]
    text = (head + f"leaking plan after {outcome.sims} sims "
            f"({outcome.evals} candidates); channels="
            f"{','.join(outcome.channels)}; gadget: {gadget.exposure}/"
            f"{gadget.transmit}, widen={gadget.widen}, "
            f"trainings={gadget.trainings}.")
    if outcome.counterexample:
        text += "  COUNTEREXAMPLE: this cell must not leak."
    return text
