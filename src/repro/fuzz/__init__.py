"""Automated leakage-fuzzing campaigns (design-time security validation).

The paper's Section 9.1 pen-test checks two hand-written gadgets; this
package turns the repository's strongest correctness claim — attacker-trace
equivalence of the secure configurations across secret values — into a
continuously machine-checked property, in the style of SpecFuzz/AMuLeT:

* :mod:`repro.fuzz.generator` — secret-aware random victims: deterministic
  programs whose *architectural* behaviour is secret-independent by
  construction, embedding randomized leak gadgets (bounds-check bypass,
  mis-trained indirect calls; cache-line / transient-branch / transient-loop
  transmitters) among random filler.
* :mod:`repro.fuzz.oracle` — the non-interference oracle: run each victim
  under two secrets, compare per-channel trace digests, and classify any
  divergence against the expected-leak matrix (mirrors
  ``pentest.expected_to_leak``).
* :mod:`repro.fuzz.minimize` — delta-debugging of a leaking victim down to
  a minimal reproducing gadget.
* :mod:`repro.fuzz.corpus` / :mod:`repro.fuzz.campaign` — the resumable
  campaign driver with a persistent JSONL corpus, fanned out through
  ``repro.harness.parallel.run_many``.
* ``python -m repro.cli fuzz`` — the command-line front end.
"""

from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.generator import (PROFILES, FuzzPlan, generate_plan, render,
                                  secret_pair)
from repro.fuzz.minimize import minimize_plan
from repro.fuzz.oracle import CellVerdict, check_pair_direct, expected_to_diverge
from repro.fuzz.report import FuzzReport, render_report

__all__ = [
    "CampaignConfig", "run_campaign", "PROFILES", "FuzzPlan",
    "generate_plan", "render", "secret_pair", "minimize_plan",
    "CellVerdict", "check_pair_direct", "expected_to_diverge",
    "FuzzReport", "render_report",
]
