"""Persistent JSONL campaign corpus.

One append-only ``corpus.jsonl`` per corpus directory; every line is a
self-describing JSON record:

* ``{"type": "seed", ...}`` — one fuzzed seed: its exposure class, the
  secret pair, and the per-cell verdicts.  Records carry the simulator
  source fingerprint, so campaigns resume across runs — a seed is only
  skipped when its recorded result still describes the current code.
* ``{"type": "counterexample", ...}`` — an unexpected secure-config
  divergence, with the full plan JSON (and the minimised plan when the
  campaign ran with minimisation) so it can be reproduced from the corpus
  alone.

JSONL keeps the corpus mergeable and greppable; a crashed campaign leaves
at worst one truncated trailing line, which the loader skips.
"""

from __future__ import annotations

import json
import os
from typing import Optional


class Corpus:
    """Append-oriented view over one corpus directory (or in-memory)."""

    def __init__(self, directory: Optional[str]):
        self.directory = directory
        self._records: list = []
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._records = self._read()

    @property
    def path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, "corpus.jsonl")

    def _read(self) -> list:
        records = []
        try:
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        continue    # truncated trailing line: skip
        except OSError:
            pass
        return records

    def append(self, record: dict) -> None:
        self._records.append(record)
        if self.path is None:
            return
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    # -------------------------------------------------------------- queries
    def records(self, kind: Optional[str] = None) -> list:
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.get("type") == kind]

    def tried_seeds(self, profile: str, fingerprint: str) -> set:
        """Seeds already fuzzed for this profile under the current code."""
        return {r["seed"] for r in self.records("seed")
                if r.get("profile") == profile
                and r.get("fingerprint") == fingerprint}

    def counterexamples(self) -> list:
        return self.records("counterexample")

    def replayable(self) -> list:
        """(record, plan) pairs for every valid seed record, oldest first.

        The replay hook for cross-oracle checking: seed records don't store
        plan JSON (plans are deterministic in (seed, profile)), so this
        regenerates each plan and hands it back with the recorded concrete
        verdicts.  Records from stale fingerprints are included — the
        symbolic checker re-judges the *plan*, which is fingerprint-free.
        """
        from repro.fuzz.generator import generate_plan
        pairs = []
        for record in self.records("seed"):
            if not record.get("valid"):
                continue
            pairs.append((record,
                          generate_plan(record["seed"], record["profile"])))
        return pairs
