"""The non-interference oracle.

A victim leaks under a configuration when running it with two different
secrets produces different attacker-visible traces.  The oracle reduces
each run to per-channel digests (:func:`repro.security.observer.
channel_digests`), diffs the pair, and judges the divergence against the
expected-leak matrix — the same matrix as ``pentest.expected_to_leak``,
keyed by how the victim exposes its secret instead of by attack name:

* ``UnsafeBaseline`` is *expected* to diverge — campaigns use those
  divergences as a sanity check that the oracle can see leaks at all;
* ``STT`` is expected to diverge on victims that expose a
  **non-speculatively** accessed secret (the protection-scope gap that
  motivates SPT);
* any other divergence under a secure configuration is a counterexample
  to the reproduction's security claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.harness.configs import make_engine
from repro.isa.instructions import Program
from repro.isa.interpreter import run_program
from repro.pipeline.core import OoOCore
from repro.pipeline.params import MachineParams
from repro.security.observer import (channel_digests, differing_channels,
                                     differing_events)
from repro.fuzz.generator import (EXPOSURE_NONSPECULATIVE,
                                  EXPOSURE_SPECULATIVE)

# Retired-instruction budget for fuzz victims: they are small programs, so
# a run that hits this without halting is itself a finding.
FUZZ_BUDGET = 200_000


@dataclass(frozen=True)
class CellVerdict:
    """The oracle's judgement for one (config, attack-model) cell."""

    config: str
    model: AttackModel
    channels: tuple         # diverging channels, trace order (empty = clean)
    expected: bool          # is divergence expected in this cell?

    @property
    def diverged(self) -> bool:
        return bool(self.channels)

    @property
    def counterexample(self) -> bool:
        """An unexpected divergence: a secure configuration leaked."""
        return self.diverged and not self.expected


def expected_to_diverge(exposure: str, config: str) -> bool:
    """The pen-test matrix, keyed by the victim's secret-exposure class."""
    if exposure not in (EXPOSURE_SPECULATIVE, EXPOSURE_NONSPECULATIVE):
        raise ValueError(f"unknown exposure class {exposure!r}")
    if config == "UnsafeBaseline":
        return True
    if exposure == EXPOSURE_NONSPECULATIVE:
        return config == "STT"      # STT's scope excludes non-spec secrets
    return False


def classify(exposure: str, config: str, model: AttackModel,
             channels) -> CellVerdict:
    """Fold a digest diff into a verdict for one cell."""
    return CellVerdict(config, model, tuple(channels),
                       expected_to_diverge(exposure, config))


def architectural_dependence(a: Program, b: Program,
                             max_instructions: int = FUZZ_BUDGET) -> bool:
    """Does the *committed* execution path differ between two renderings?

    The generator guarantees architectural secret-independence; a True here
    means a generator invariant broke (the divergence would then be overt,
    not microarchitectural, and no speculation defense could mask it).
    """
    ra = run_program(a, max_instructions=max_instructions, trace_pcs=True)
    rb = run_program(b, max_instructions=max_instructions, trace_pcs=True)
    return ra.halted != rb.halted or ra.pc_trace != rb.pc_trace


def run_traced(program: Program, config: str, model: AttackModel,
               params: Optional[MachineParams] = None,
               max_instructions: int = FUZZ_BUDGET):
    """One in-process simulation, returning the SimResult (with observer)."""
    core = OoOCore(program, engine=make_engine(config, model),
                   params=params or MachineParams())
    sim = core.run(max_instructions=max_instructions)
    if not sim.halted:
        raise RuntimeError(
            f"{program.name} did not halt under {config}/{model.value} "
            f"within {max_instructions} instructions")
    return sim


def check_pair_direct(a: Program, b: Program, config: str,
                      model: AttackModel,
                      params: Optional[MachineParams] = None,
                      max_instructions: int = FUZZ_BUDGET) -> list:
    """Diverging channels between two renderings, simulated in-process.

    The minimiser's (and the tests') fast path — no pool, no cache.
    """
    sim_a = run_traced(a, config, model, params, max_instructions)
    sim_b = run_traced(b, config, model, params, max_instructions)
    return differing_channels(channel_digests(sim_a.observer, sim_a.cycles),
                              channel_digests(sim_b.observer, sim_b.cycles))


def divergence_detail(a: Program, b: Program, config: str,
                      model: AttackModel, limit: int = 5) -> str:
    """Human-readable first differing events (counterexample reports)."""
    sim_a = run_traced(a, config, model)
    sim_b = run_traced(b, config, model)
    diffs = differing_events(sim_a.observer, sim_b.observer, limit=limit)
    if not diffs and sim_a.cycles != sim_b.cycles:
        return f"event streams equal; total cycles {sim_a.cycles} != {sim_b.cycles}"
    return "\n".join(str(d) for d in diffs)
