"""The leakage-fuzzing campaign driver.

A campaign fans ``seeds x configurations x attack-models x 2 secrets``
simulations through :func:`repro.harness.parallel.run_many` — every run is
an ordinary harness run (parallelised, cached, deduplicated; the
``UnsafeBaseline`` runs are even shared between attack models via the
model-independent cache key) — then folds the per-channel trace digests
into oracle verdicts, triage counts, and corpus records.

Campaigns are resumable: seed outcomes land in a JSONL corpus stamped with
the simulator source fingerprint, and a re-run skips exactly the seeds
whose recorded results still describe the current code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.attack_model import AttackModel
from repro.fuzz.corpus import Corpus
from repro.fuzz.generator import (FuzzPlan, generate_plan, plan_to_json,
                                  render, secret_pair, workload_name)
from repro.fuzz.minimize import minimize_plan
from repro.fuzz.oracle import (FUZZ_BUDGET, architectural_dependence,
                               classify, divergence_detail)
from repro.fuzz.report import FuzzReport
from repro.harness import cache
from repro.harness.configs import CONFIGURATIONS
from repro.harness.parallel import RunSpec, run_many
from repro.isa.interpreter import InterpreterError
from repro.security.observer import differing_channels

BOTH_MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)


@dataclass
class CampaignConfig:
    """One campaign's parameters."""

    seeds: int = 50
    seed_start: int = 0
    profile: str = "default"
    configs: Sequence[str] = field(
        default_factory=lambda: list(CONFIGURATIONS))
    models: Sequence[AttackModel] = field(
        default_factory=lambda: list(BOTH_MODELS))
    jobs: Optional[int] = None          # None: REPRO_JOBS / CPU count
    minimize: bool = False
    corpus_dir: Optional[str] = None    # None: in-memory only
    use_cache: Optional[bool] = None    # None: consult REPRO_NO_CACHE
    max_instructions: int = FUZZ_BUDGET


@dataclass
class _SeedWork:
    """One seed's plan, secrets, and validity."""

    seed: int
    plan: FuzzPlan
    secrets: tuple
    valid: bool
    reason: str = ""


def _prepare_seed(seed: int, cfg: CampaignConfig) -> _SeedWork:
    """Generate and architecturally validate one seed's victim pair."""
    plan = generate_plan(seed, cfg.profile)
    secrets = secret_pair(seed)
    try:
        dependent = architectural_dependence(
            render(plan, secrets[0]), render(plan, secrets[1]),
            max_instructions=cfg.max_instructions)
    except InterpreterError as exc:
        return _SeedWork(seed, plan, secrets, False, str(exc))
    if dependent:
        return _SeedWork(seed, plan, secrets, False,
                         "committed path depends on the secret")
    return _SeedWork(seed, plan, secrets, True)


def run_campaign(cfg: CampaignConfig) -> FuzzReport:
    """Run one campaign end to end; returns the triage report."""
    start = time.perf_counter()
    fingerprint = cache.source_fingerprint()
    corpus = Corpus(cfg.corpus_dir)
    tried = corpus.tried_seeds(cfg.profile, fingerprint)
    requested = list(range(cfg.seed_start, cfg.seed_start + cfg.seeds))
    fresh = [s for s in requested if s not in tried]

    report = FuzzReport(
        profile=cfg.profile, seeds_requested=len(requested),
        seeds_run=len(fresh), seeds_resumed=len(requested) - len(fresh),
        configs=list(cfg.configs), models=[m.value for m in cfg.models])

    work = [_prepare_seed(seed, cfg) for seed in fresh]
    for item in work:
        if not item.valid:
            report.invalid_seeds.append(item.seed)
            corpus.append({
                "type": "seed", "seed": item.seed, "profile": cfg.profile,
                "fingerprint": fingerprint, "valid": False,
                "reason": item.reason,
                "exposure": item.plan.exposure,
                "secrets": [f"{s:x}" for s in item.secrets], "cells": []})

    # The whole campaign as one deduplicated, cached, parallel sweep.
    runnable = [item for item in work if item.valid]
    specs = []
    cells = []      # (work item, config, model) per spec *pair*
    for item in runnable:
        for config in cfg.configs:
            for model in cfg.models:
                cells.append((item, config, model))
                for secret in item.secrets:
                    specs.append(RunSpec(
                        workload_name(cfg.profile, item.seed, secret),
                        config, model,
                        max_instructions=cfg.max_instructions,
                        collect_trace=True))
    results = run_many(specs, jobs=cfg.jobs, use_cache=cfg.use_cache)

    outcomes: dict = {}     # seed -> list of verdict dicts
    for pair_index, (item, config, model) in enumerate(cells):
        result_a = results[2 * pair_index]
        result_b = results[2 * pair_index + 1]
        channels = differing_channels(result_a.trace_digests,
                                      result_b.trace_digests)
        verdict = classify(item.plan.exposure, config, model, channels)
        report.cells_checked += 1
        if verdict.diverged:
            report.divergences_by_config[config] = \
                report.divergences_by_config.get(config, 0) + 1
            for channel in channels:
                report.divergences_by_channel[channel] = \
                    report.divergences_by_channel.get(channel, 0) + 1
            if config == "UnsafeBaseline":
                report.unsafe_divergences += 1
            if verdict.expected:
                report.expected_divergences += 1
        outcomes.setdefault(item.seed, []).append({
            "config": config, "model": model.value,
            "channels": list(channels), "expected": verdict.expected})
        if verdict.counterexample:
            record = _counterexample_record(item, verdict, cfg)
            report.counterexamples.append(record)
            corpus.append(record)

    for item in runnable:
        corpus.append({
            "type": "seed", "seed": item.seed, "profile": cfg.profile,
            "fingerprint": fingerprint, "valid": True,
            "exposure": item.plan.exposure,
            "secrets": [f"{s:x}" for s in item.secrets],
            "cells": outcomes.get(item.seed, []),
            "counterexample": any(
                c["channels"] and not c["expected"]
                for c in outcomes.get(item.seed, []))})

    report.wall_seconds = time.perf_counter() - start
    return report


def _counterexample_record(item: _SeedWork, verdict, cfg) -> dict:
    """Confirm, explain, and (optionally) minimise one counterexample."""
    program_a = render(item.plan, item.secrets[0])
    record = {
        "type": "counterexample", "seed": item.seed,
        "profile": cfg.profile, "config": verdict.config,
        "model": verdict.model.value, "channels": list(verdict.channels),
        "exposure": item.plan.exposure,
        "secrets": [f"{s:x}" for s in item.secrets],
        "plan": plan_to_json(item.plan),
        "instructions": len(program_a.instructions),
        "detail": divergence_detail(
            program_a, render(item.plan, item.secrets[1]),
            verdict.config, verdict.model),
    }
    if cfg.minimize:
        minimized = minimize_plan(item.plan, item.secrets, verdict.config,
                                  verdict.model,
                                  max_instructions=cfg.max_instructions)
        record["minimized_plan"] = plan_to_json(minimized.plan)
        record["minimized_instructions"] = minimized.instructions_after
        record["minimize_checks"] = minimized.checks
    return record
