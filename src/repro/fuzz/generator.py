"""Secret-aware random victim generator.

Extends :mod:`repro.workloads.random_programs` with a *secret region*: each
generated program owns a designated block of memory whose contents derive
from a secret value, and embeds randomized leak gadgets that parameterise
transient control flow, load addresses, and loop trip counts on
secret-derived bytes.  The cardinal invariant is that the *architectural*
execution (the committed instruction path) is secret-independent by
construction — secrets influence behaviour only through transient execution
or through registers that are never branched on, stored, or checksummed —
so any attacker-visible divergence between two secrets is a
microarchitectural leak, attributable to the protection configuration
under test.

Generation is two-phase.  :func:`generate_plan` derives a declarative
**plan** (a block list: filler / loops / branches / gadgets) from the seed
alone; :func:`render` lowers a plan plus a concrete secret to a
:class:`~repro.isa.instructions.Program`.  The split is what makes
counterexamples actionable: the delta-debugging minimiser edits plans, not
instruction streams, and the corpus stores plans as JSON.

Gadget taxonomy (exposure x transmitter):

========================  ====================================================
``speculative``           the secret is reachable only transiently, via a
                          Spectre-v1-style bounds-check bypass whose
                          out-of-bounds index lands in the secret region
``nonspeculative``        the secret is loaded architecturally into a
                          register (constant-time use only); a mis-trained
                          indirect call transiently runs a transmitter with
                          the register live — the protection-scope gap that
                          motivates SPT (STT does not block this)
------------------------  ----------------------------------------------------
``line``                  transmit through a secret-indexed probe-array load
``branch``                transient branch on a secret bit (predictor and
                          probe-line channels)
``loop``                  transient loop with a secret-derived trip count,
                          touching one probe line per iteration
========================  ====================================================

Register discipline (the invariant's mechanical form):

* ``s0``/``s1``/``s2`` hold the heap / probe / secret-region bases;
* filler touches only ``s4 s5 s10 s11 a6 a7`` (plus ``t5``/``t6`` scratch),
  mirroring ``random_programs``;
* gadgets use ``t0-t4 a0-a5 s3 s9 ra`` freely;
* ``s6 s7 s8`` may carry secret-derived values and are never read by
  filler, the checksum, or any architectural branch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Program
from repro.workloads.random_programs import _ALU_RI, _ALU_RR
from repro.workloads.registry import Workload

FUZZ_BASE = 0x100000            # data segment base for fuzz victims
_HEAP_MASK = 0x7F8              # filler addresses: 256 words, 8-byte aligned
# Filler reaches [0, mask + 16 + 8); one extra word holds the checksum.
_CHECKSUM_OFFSET = _HEAP_MASK + 24
_HEAP_WORDS = _CHECKSUM_OFFSET // 8 + 1
SECRET_BYTES = 64               # size of the secret region
PROBE_LINE_BYTES = 64
PROBE_LINES = 256

EXPOSURE_SPECULATIVE = "speculative"
EXPOSURE_NONSPECULATIVE = "nonspeculative"
TRANSMITS = ("line", "branch", "loop")

# Filler operates on these registers only; gadget/secret registers are
# disjoint (see the module docstring for the full register plan).
_FILLER_REGS = ("s4", "s5", "s10", "s11", "a6", "a7")


# --------------------------------------------------------------------- plan
@dataclass(frozen=True)
class Filler:
    """Straight-line public computation (ALU + bounded heap accesses)."""

    instrs: tuple


@dataclass(frozen=True)
class Loop:
    """A counted loop over public filler instructions."""

    count: int
    instrs: tuple


@dataclass(frozen=True)
class Branch:
    """A data-dependent (public) forward branch with two filler arms."""

    op: str
    rs1: str
    rs2: str
    then_instrs: tuple
    else_instrs: tuple


@dataclass(frozen=True)
class Gadget:
    """One leak attempt: how the secret is exposed and transmitted."""

    exposure: str       # EXPOSURE_SPECULATIVE | EXPOSURE_NONSPECULATIVE
    transmit: str       # "line" | "branch" | "loop"
    trainings: int      # mis-training iterations before the attack pass
    widen: int          # multiply-chain length delaying resolution
    in_bounds: int      # victim-array length (bounds-bypass only)
    secret_index: int   # which secret-region byte the gadget reaches
    shift: int          # probe-line stride shift (6 => 64-byte lines)


Block = Union[Filler, Loop, Branch, Gadget]


@dataclass(frozen=True)
class FuzzPlan:
    """A complete victim: an ordered block list derived from one seed."""

    seed: int
    profile: str
    blocks: tuple

    @property
    def exposure(self) -> str:
        """The strongest exposure class present (drives expectations)."""
        for block in self.blocks:
            if isinstance(block, Gadget) and \
                    block.exposure == EXPOSURE_NONSPECULATIVE:
                return EXPOSURE_NONSPECULATIVE
        return EXPOSURE_SPECULATIVE

    @property
    def gadgets(self) -> list:
        return [b for b in self.blocks if isinstance(b, Gadget)]


@dataclass(frozen=True)
class FuzzProfile:
    """Tuning knobs for a campaign's generator."""

    blocks: int = 8
    max_gadgets: int = 2
    mem_probability: float = 0.3
    loop_probability: float = 0.2
    branch_probability: float = 0.25
    max_loop_count: int = 5
    trainings: tuple = (2, 3, 4)
    widen: tuple = (8, 12, 18, 24)
    in_bounds: tuple = (4, 6, 8)
    exposures: tuple = (EXPOSURE_SPECULATIVE, EXPOSURE_NONSPECULATIVE)
    transmits: tuple = TRANSMITS


PROFILES: dict[str, FuzzProfile] = {
    "default": FuzzProfile(),
    # Small programs for smoke tests and CI: one gadget, little filler.
    "quick": FuzzProfile(blocks=4, max_gadgets=1, trainings=(2, 3),
                         widen=(8, 12), in_bounds=(4, 6)),
    # Larger victims with more interleaved structure.
    "deep": FuzzProfile(blocks=14, max_gadgets=3, max_loop_count=8,
                        trainings=(2, 3, 4, 6), widen=(8, 16, 24, 32)),
    # Hardened victims for the adversarial campaign: bounds-bypass gadgets
    # whose speculation windows are too narrow to leak as generated.  The
    # leak boundary sits at widen=3 (widen<=2 never leaked across 263
    # sampled plans), so the sampled envelope is leak-free by construction:
    # uniform search cannot draw its way to a leak, while the hill climber
    # can *widen* a window via mutations beyond the envelope, guided by
    # the taint-reach score.
    "hard": FuzzProfile(blocks=5, max_gadgets=1,
                        trainings=(0, 1, 2),
                        widen=(0, 0, 1, 1, 2, 2),
                        in_bounds=(4, 6, 8),
                        exposures=(EXPOSURE_SPECULATIVE,),
                        transmits=("line",)),
}


def secret_pair(seed: int) -> tuple:
    """The two secrets a campaign contrasts for ``seed`` (deterministic)."""
    rng = random.Random(f"fuzz-secrets:{seed}")
    a = rng.getrandbits(64)
    b = rng.getrandbits(64)
    while b == a:
        b = rng.getrandbits(64)
    return a, b


def secret_region(secret: int) -> list:
    """The secret-region byte image derived from a secret value."""
    rng = random.Random(f"fuzz-region:{secret}")
    return [rng.getrandbits(8) for _ in range(SECRET_BYTES)]


# --------------------------------------------------------------- generation
def generate_plan(seed: int, profile: str = "default") -> FuzzPlan:
    """Derive the deterministic victim plan for ``seed``."""
    cfg = PROFILES[profile]
    rng = random.Random(f"fuzz-plan:{profile}:{seed}")
    gadget_count = rng.randint(1, cfg.max_gadgets)
    slots = max(cfg.blocks, gadget_count)
    gadget_slots = set(rng.sample(range(slots), gadget_count))
    blocks: list = []
    for slot in range(slots):
        if slot in gadget_slots:
            blocks.append(_gen_gadget(rng, cfg))
            continue
        roll = rng.random()
        if roll < cfg.loop_probability:
            blocks.append(Loop(rng.randint(1, cfg.max_loop_count),
                               _gen_instrs(rng, cfg, rng.randint(1, 3))))
        elif roll < cfg.loop_probability + cfg.branch_probability:
            blocks.append(Branch(
                rng.choice(["BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU"]),
                rng.choice(_FILLER_REGS), rng.choice(_FILLER_REGS),
                _gen_instrs(rng, cfg, rng.randint(1, 3)),
                _gen_instrs(rng, cfg, rng.randint(1, 3))))
        else:
            blocks.append(Filler(_gen_instrs(rng, cfg, rng.randint(2, 6))))
    return FuzzPlan(seed, profile, tuple(blocks))


def _gen_gadget(rng: random.Random, cfg: FuzzProfile) -> Gadget:
    return Gadget(
        exposure=rng.choice(cfg.exposures),
        transmit=rng.choice(cfg.transmits),
        trainings=rng.choice(cfg.trainings),
        widen=rng.choice(cfg.widen),
        in_bounds=rng.choice(cfg.in_bounds),
        secret_index=rng.randrange(SECRET_BYTES),
        shift=6)


def _gen_instrs(rng: random.Random, cfg: FuzzProfile, n: int) -> tuple:
    instrs = []
    for _ in range(n):
        if rng.random() < cfg.mem_probability:
            op = rng.choice(["LD", "SD", "LW", "SW", "LB", "SB"])
            instrs.append(("MEM", op, rng.choice(_FILLER_REGS),
                           rng.choice(_FILLER_REGS),
                           rng.choice([0, 8, 16])))
        elif rng.random() < 0.6:
            instrs.append(("ALU", rng.choice(_ALU_RR),
                           rng.choice(_FILLER_REGS),
                           rng.choice(_FILLER_REGS),
                           rng.choice(_FILLER_REGS)))
        else:
            op = rng.choice(_ALU_RI)
            imm = rng.randint(0, 63) if op in ("SLLI", "SRLI", "ROTLI",
                                               "ROTRI") \
                else rng.getrandbits(10)
            instrs.append(("ALUI", op, rng.choice(_FILLER_REGS),
                           rng.choice(_FILLER_REGS), imm))
    return tuple(instrs)


# ---------------------------------------------------------------- rendering
def render(plan: FuzzPlan, secret: int) -> Program:
    """Lower ``plan`` with a concrete ``secret`` to a runnable program.

    The instruction stream and every data-segment *address* depend only on
    the plan; the secret changes nothing but the secret region's contents.
    """
    rng = random.Random(f"fuzz-render:{plan.profile}:{plan.seed}")
    b = ProgramBuilder(f"fuzz-{plan.profile}-{plan.seed}",
                       data_base=FUZZ_BASE)
    heap = b.alloc_words("heap",
                         [rng.getrandbits(64) for _ in range(_HEAP_WORDS)])
    # Cache-line aligned so no filler (or checksum) access shares a line
    # with secret bytes: the only lines whose state can depend on the
    # secret are the ones a leak gadget touches.
    secret_base = b.alloc_bytes("secret", secret_region(secret), align=64)
    probe = b.reserve("probe", PROBE_LINES * PROBE_LINE_BYTES,
                      align=PROBE_LINE_BYTES)
    b.li("s0", heap)
    b.li("s1", probe)
    b.li("s2", secret_base)
    for reg in _FILLER_REGS:
        b.li(reg, rng.getrandbits(12))
    for index, block in enumerate(plan.blocks):
        if isinstance(block, Gadget):
            _render_gadget(b, block, index, secret_base)
        elif isinstance(block, Loop):
            with b.loop(count=block.count, counter="t6"):
                _render_instrs(b, block.instrs)
        elif isinstance(block, Branch):
            else_label = b.forward_label()
            join = b.forward_label()
            b.emit(block.op, rs1=block.rs1, rs2=block.rs2, imm=else_label)
            _render_instrs(b, block.then_instrs)
            b.jal(0, join)
            b.place(else_label)
            _render_instrs(b, block.else_instrs)
            b.place(join)
        else:
            _render_instrs(b, block.instrs)
    # Public checksum (filler registers only — never s6/s7/s8), stored past
    # the filler-addressable window.
    b.li("t0", 0)
    for reg in _FILLER_REGS:
        b.add("t0", "t0", reg)
    b.sd("t0", "s0", _CHECKSUM_OFFSET)
    b.halt()
    return b.build()


def _render_instrs(b: ProgramBuilder, instrs: tuple) -> None:
    for instr in instrs:
        kind = instr[0]
        if kind == "ALU":
            _, op, rd, rs1, rs2 = instr
            b.emit(op, rd=rd, rs1=rs1, rs2=rs2)
        elif kind == "ALUI":
            _, op, rd, rs1, imm = instr
            b.emit(op, rd=rd, rs1=rs1, imm=imm)
        elif kind == "MEM":
            _, op, reg, src, offset = instr
            b.andi("t5", src, _HEAP_MASK)
            b.add("t5", "t5", "s0")
            if op.startswith("L"):
                b.emit(op, rd=reg, rs1="t5", imm=offset)
            else:
                b.emit(op, rs1="t5", rs2=reg, imm=offset)
        else:
            raise ValueError(f"unknown filler instruction {instr!r}")


def _widen(b: ProgramBuilder, dst: str, src: str, mults: int) -> None:
    """dst = src via a multiply chain (delays whatever consumes dst)."""
    b.mov(dst, src)
    b.li("t3", 1)
    for _ in range(mults):
        b.mul(dst, dst, "t3")


def _render_transmit(b: ProgramBuilder, value_reg: str, shift: int) -> None:
    """Touch probe lines as a function of ``value_reg`` (transient only)."""
    b.slli("a2", value_reg, shift)
    b.add("a2", "a2", "s1")
    b.lb("a3", "a2", 0)


def _render_transmit_branch(b: ProgramBuilder, value_reg: str) -> None:
    """Branch on a secret bit; arms touch distinct probe lines."""
    b.andi("a2", value_reg, 1)
    other = b.forward_label()
    join = b.forward_label()
    b.bne("a2", "zero", other)
    b.lb("a3", "s1", 0)
    b.jal(0, join)
    b.place(other)
    b.lb("a3", "s1", PROBE_LINE_BYTES)
    b.place(join)


def _render_transmit_loop(b: ProgramBuilder, value_reg: str,
                          shift: int) -> None:
    """Loop with a secret-derived trip count, one probe line per pass."""
    b.andi("a2", value_reg, 3)
    b.addi("a2", "a2", 1)
    top = b.label()
    b.slli("a3", "a2", shift)
    b.add("a3", "a3", "s1")
    b.lb("a4", "a3", 0)
    b.addi("a2", "a2", -1 & ((1 << 64) - 1))
    b.bne("a2", "zero", top)


def _transmit(b: ProgramBuilder, gadget: Gadget, value_reg: str) -> None:
    if gadget.transmit == "line":
        _render_transmit(b, value_reg, gadget.shift)
    elif gadget.transmit == "branch":
        _render_transmit_branch(b, value_reg)
    elif gadget.transmit == "loop":
        _render_transmit_loop(b, value_reg, gadget.shift)
    else:
        raise ValueError(f"unknown transmitter {gadget.transmit!r}")


def _render_gadget(b: ProgramBuilder, gadget: Gadget, index: int,
                   secret_base: int) -> None:
    if gadget.exposure == EXPOSURE_SPECULATIVE:
        _render_bounds_bypass(b, gadget, index, secret_base)
    elif gadget.exposure == EXPOSURE_NONSPECULATIVE:
        _render_mistrain_call(b, gadget, index)
    else:
        raise ValueError(f"unknown exposure {gadget.exposure!r}")


def _render_bounds_bypass(b: ProgramBuilder, gadget: Gadget, index: int,
                          secret_base: int) -> None:
    """``if (i < N) use(A[i])`` with the final i reaching the secret region.

    Architecturally the out-of-bounds pass takes the bounds-check branch
    (the access never commits); transiently, after mis-training, the
    secret-region byte flows into the transmitter.
    """
    victim = b.alloc_bytes(f"g{index}_victim",
                           [v % 16 for v in range(gadget.in_bounds)])
    indices: list = []
    for _ in range(gadget.trainings):
        indices.extend(range(gadget.in_bounds))
    # The out-of-bounds index lands exactly on the chosen secret byte.
    indices.append(secret_base + gadget.secret_index - victim)
    index_base = b.alloc_words(f"g{index}_idx", indices)

    b.li("t0", victim)
    b.li("t1", gadget.in_bounds)      # the bound
    b.li("s3", index_base)            # index cursor
    # Warm the target secret line.  The value is discarded into x0 and the
    # address is public, so this is architecturally secret-independent; it
    # only ensures the transient access wins the race against the squash.
    b.lb("zero", "s2", gadget.secret_index)
    # Warm the attacker-controlled index array so the per-pass index load
    # hits while the widened bound resolves late.
    b.mov("a0", "s3")
    with b.loop(count=(len(indices) * 8 + 63) // 64 + 1, counter="t4"):
        b.ld("zero", "a0", 0)
        b.addi("a0", "a0", 64)
    with b.loop(count=len(indices), counter="s9"):
        b.ld("a0", "s3", 0)
        b.addi("s3", "s3", 8)
        _widen(b, "t2", "t1", gadget.widen)   # slow bound
        skip = b.forward_label()
        # Unsigned: the out-of-bounds index wraps to a huge value, so the
        # check always catches it architecturally.
        b.bgeu("a0", "t2", skip)              # the bounds check
        b.add("a1", "t0", "a0")
        b.lb("a1", "a1", 0)                   # the transient secret access
        _transmit(b, gadget, "a1")
        b.place(skip)


def _render_mistrain_call(b: ProgramBuilder, gadget: Gadget,
                          index: int) -> None:
    """Leak a *non-speculatively* accessed secret via a mis-trained call.

    The victim loads a secret byte into ``s6`` architecturally and computes
    over it in constant time.  A polymorphic call site, trained on earlier
    iterations to dispatch to the transmitter, transiently runs the
    transmitter with ``s6`` live on the final iteration (which dispatches
    to a harmless handler architecturally).
    """
    train_rng = random.Random(f"fuzz-train:{index}:{gadget.trainings}")
    values = b.alloc_bytes(
        f"g{index}_vals",
        [train_rng.getrandbits(8) for _ in range(gadget.trainings)])

    gadget_label = b.forward_label(f"g{index}_gadget")
    legit = b.forward_label(f"g{index}_legit")
    after = b.forward_label(f"g{index}_after")

    # Warm the secret line (value discarded, address public) so the
    # architectural secret load returns before the mispredicted call
    # resolves.
    b.lb("zero", "s2", gadget.secret_index)
    b.li("s3", 0)                     # iteration index
    b.li("t0", gadget.trainings)      # the final (attack) iteration number
    with b.loop(count=gadget.trainings + 1, counter="t4"):
        load_secret = b.forward_label()
        loaded = b.forward_label()
        b.beq("s3", "t0", load_secret)
        b.li("a0", values)
        b.add("a0", "a0", "s3")
        b.lb("s6", "a0", 0)           # training byte (public)
        b.jal(0, loaded)
        b.place(load_secret)
        b.lb("s6", "s2", gadget.secret_index)   # the non-spec secret load
        b.place(loaded)
        # Constant-time computation over the byte (never leaks it).
        b.xori("s7", "s6", 0x3C)
        b.add("s7", "s7", "s7")
        b.xor("s8", "s7", "s6")
        # Dispatch target: the transmitter while training, `legit` last.
        is_last = b.forward_label()
        picked = b.forward_label()
        b.beq("s3", "t0", is_last)
        b.li("t1", gadget_label)
        b.jal(0, picked)
        b.place(is_last)
        b.li("t1", legit)
        b.place(picked)
        _widen(b, "t2", "t1", gadget.widen)
        b.jalr("ra", "t2", 0)         # the polymorphic call site
        b.addi("s3", "s3", 1)
    b.jal(0, after)

    b.place(gadget_label)
    _transmit(b, gadget, "s6")
    b.jalr(0, "ra", 0)

    b.place(legit)
    b.addi("s7", "s7", 1)
    b.jalr(0, "ra", 0)

    b.place(after)


# --------------------------------------------------------- plan (de)serialise
def plan_to_json(plan: FuzzPlan) -> dict:
    """A JSON-safe encoding of ``plan`` (corpus storage / reproduction)."""
    blocks = []
    for block in plan.blocks:
        if isinstance(block, Gadget):
            blocks.append({"type": "gadget", "exposure": block.exposure,
                           "transmit": block.transmit,
                           "trainings": block.trainings,
                           "widen": block.widen,
                           "in_bounds": block.in_bounds,
                           "secret_index": block.secret_index,
                           "shift": block.shift})
        elif isinstance(block, Loop):
            blocks.append({"type": "loop", "count": block.count,
                           "instrs": [list(i) for i in block.instrs]})
        elif isinstance(block, Branch):
            blocks.append({"type": "branch", "op": block.op,
                           "rs1": block.rs1, "rs2": block.rs2,
                           "then": [list(i) for i in block.then_instrs],
                           "else": [list(i) for i in block.else_instrs]})
        else:
            blocks.append({"type": "filler",
                           "instrs": [list(i) for i in block.instrs]})
    return {"seed": plan.seed, "profile": plan.profile, "blocks": blocks}


def plan_from_json(data: dict) -> FuzzPlan:
    """Rebuild a plan from :func:`plan_to_json` output."""
    blocks: list = []
    for blob in data["blocks"]:
        kind = blob["type"]
        if kind == "gadget":
            blocks.append(Gadget(blob["exposure"], blob["transmit"],
                                 blob["trainings"], blob["widen"],
                                 blob["in_bounds"], blob["secret_index"],
                                 blob["shift"]))
        elif kind == "loop":
            blocks.append(Loop(blob["count"],
                               tuple(tuple(i) for i in blob["instrs"])))
        elif kind == "branch":
            blocks.append(Branch(blob["op"], blob["rs1"], blob["rs2"],
                                 tuple(tuple(i) for i in blob["then"]),
                                 tuple(tuple(i) for i in blob["else"])))
        elif kind == "filler":
            blocks.append(Filler(tuple(tuple(i) for i in blob["instrs"])))
        else:
            raise ValueError(f"unknown block type {kind!r}")
    return FuzzPlan(data["seed"], data["profile"], tuple(blocks))


def with_blocks(plan: FuzzPlan, blocks) -> FuzzPlan:
    """A copy of ``plan`` with a different block list (minimiser edits)."""
    return replace(plan, blocks=tuple(blocks))


# ------------------------------------------------------- dynamic workloads
def workload_name(profile: str, seed: int, secret: int) -> str:
    """The registry name running one (plan, secret) rendering."""
    return f"fuzz:{profile}:{seed}:{secret:x}"


def workload_from_name(name: str) -> Optional[Workload]:
    """Resolve ``fuzz:<profile>:<seed>:<secret-hex>`` to a Workload.

    This is the hook :mod:`repro.workloads.registry` calls for the
    ``fuzz:`` dynamic family; it lets worker processes (and the result
    cache) rebuild any fuzz victim from its name alone.
    """
    parts = name.split(":")
    if len(parts) != 4 or parts[0] != "fuzz":
        return None
    _, profile, seed_text, secret_hex = parts
    if profile not in PROFILES:
        raise KeyError(f"unknown fuzz profile {profile!r}; "
                       f"known: {sorted(PROFILES)}")
    try:
        seed = int(seed_text)
        secret = int(secret_hex, 16)
    except ValueError as exc:
        raise KeyError(f"malformed fuzz workload name {name!r}") from exc

    def build(scale: int = 1) -> Program:
        return render(generate_plan(seed, profile), secret)

    return Workload(name, "fuzz", build,
                    f"fuzz victim (profile={profile}, seed={seed})")
