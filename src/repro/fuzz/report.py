"""Campaign summary: triage counts and the pass/fail verdict.

Rendered in the style of :mod:`repro.harness.report` (fixed-width ASCII
tables), because a fuzz campaign is an experiment like any figure sweep —
its output lands in terminals, CI logs, and bench trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.report import format_table
from repro.security.observer import CHANNELS


@dataclass
class FuzzReport:
    """Everything a campaign learned, plus the verdict."""

    profile: str
    seeds_requested: int
    seeds_run: int
    seeds_resumed: int              # skipped: already in the corpus
    configs: list
    models: list
    cells_checked: int = 0
    divergences_by_config: dict = field(default_factory=dict)
    divergences_by_channel: dict = field(default_factory=dict)
    expected_divergences: int = 0   # UnsafeBaseline / STT-nonspec cells
    unsafe_divergences: int = 0     # the oracle sanity signal
    invalid_seeds: list = field(default_factory=list)   # generator breakage
    counterexamples: list = field(default_factory=list)  # corpus records
    wall_seconds: float = 0.0

    @property
    def sanity_ok(self) -> bool:
        """A campaign where UnsafeBaseline never leaks cannot be trusted.

        Only meaningful when UnsafeBaseline was part of the sweep and at
        least one seed actually ran.
        """
        if "UnsafeBaseline" not in self.configs or self.seeds_run == 0:
            return True
        return self.unsafe_divergences > 0

    @property
    def ok(self) -> bool:
        return (not self.counterexamples and not self.invalid_seeds
                and self.sanity_ok)


def render_report(report: FuzzReport) -> str:
    """The campaign's terminal summary."""
    lines = [
        f"fuzz campaign: profile={report.profile} "
        f"seeds={report.seeds_run} run / {report.seeds_resumed} resumed "
        f"(of {report.seeds_requested} requested), "
        f"{report.cells_checked} oracle cells, "
        f"{report.wall_seconds:.1f}s",
        "",
    ]
    rows = []
    for config in report.configs:
        count = report.divergences_by_config.get(config, 0)
        expected = "expected" if config == "UnsafeBaseline" else (
            "scope gap" if config == "STT" and count else "")
        rows.append([config, count, expected])
    lines.append(format_table(["Configuration", "Divergent cells", "Note"],
                              rows, title="Divergences by configuration"))
    lines.append("")
    channel_rows = [[c, report.divergences_by_channel.get(c, 0)]
                    for c in CHANNELS
                    if report.divergences_by_channel.get(c, 0)]
    if channel_rows:
        lines.append(format_table(["Channel", "Divergent cells"],
                                  channel_rows, title="Triage by channel"))
        lines.append("")
    if report.invalid_seeds:
        lines.append(f"GENERATOR INVARIANT BROKEN on seeds "
                     f"{report.invalid_seeds} (architectural divergence)")
    if not report.sanity_ok:
        lines.append("ORACLE SANITY FAILURE: UnsafeBaseline never diverged "
                     "— the campaign cannot have found real leaks")
    if report.counterexamples:
        lines.append(f"{len(report.counterexamples)} COUNTEREXAMPLE(S):")
        for ce in report.counterexamples:
            lines.append(
                f"  seed={ce['seed']} {ce['config']}/{ce['model']} "
                f"channels={','.join(ce['channels'])} "
                f"instructions={ce.get('instructions', '?')}"
                + (f" minimised={ce['minimized_instructions']}"
                   if "minimized_instructions" in ce else ""))
    else:
        lines.append("no counterexamples: every secure configuration held "
                     "non-interference on every generated victim")
    return "\n".join(lines)
