"""``repro fuzz`` — the campaign command-line front end.

Examples::

    python -m repro.cli fuzz --seeds 200 --minimize --corpus-dir fuzz-corpus
    python -m repro.cli fuzz --seeds 25 --jobs 2 --configs UnsafeBaseline,STT \\
        --models futuristic
    python -m repro.cli fuzz --adversarial --profile hard --budget 400 \\
        --compare-uniform

Exit status is 0 only when the campaign is clean: no secure-configuration
counterexample, no generator-invariant breakage, and the UnsafeBaseline
sanity signal fired (when UnsafeBaseline was part of the sweep) — so a CI
job can gate directly on this command.

``--adversarial`` switches from uniform seed sampling to the guided
hill-climbing search of :mod:`repro.fuzz.adversarial` against a single
target configuration (the first of ``--configs``, or UnsafeBaseline).
Exit status is 1 only for a protection-scope counterexample.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.fuzz.campaign import BOTH_MODELS, CampaignConfig, run_campaign
from repro.fuzz.generator import PROFILES
from repro.fuzz.report import render_report
from repro.harness.configs import parse_config_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_spt fuzz",
        description="Run a randomized leakage-hunting campaign against the "
                    "protection configurations (non-interference oracle).")
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of victim programs to fuzz (default 50)")
    parser.add_argument("--seed-start", type=int, default=0,
                        help="first seed (campaigns are deterministic per "
                             "seed; shift this to explore new victims)")
    parser.add_argument("--profile", default="default",
                        choices=sorted(PROFILES),
                        help="generator profile (victim size/shape)")
    parser.add_argument("--configs", default="all",
                        help="comma-separated Table 2 configuration names, "
                             "or 'all' (default)")
    parser.add_argument("--models", default="both",
                        choices=["spectre", "futuristic", "both"],
                        help="attack model(s) to fuzz under (default both)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or CPU "
                             "count)")
    parser.add_argument("--minimize", action="store_true",
                        help="delta-debug every counterexample down to a "
                             "minimal gadget before recording it")
    parser.add_argument("--corpus-dir", default=None,
                        help="persistent corpus directory (campaigns resume "
                             "from it; default: in-memory only)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="per-run retired-instruction budget")
    adv = parser.add_argument_group(
        "adversarial mode",
        "guided hill-climbing search instead of uniform seed sampling")
    adv.add_argument("--adversarial", action="store_true",
                     help="hill-climb over mutated plans, scored by "
                          "speculative taint reach, against one target "
                          "configuration")
    adv.add_argument("--budget", type=int, default=150,
                     help="simulation budget per search (adversarial mode; "
                          "default 150)")
    adv.add_argument("--patience", type=int, default=6,
                     help="non-improving candidates before a random restart "
                          "(default 6)")
    adv.add_argument("--compare-uniform", action="store_true",
                     help="also run the uniform-sampling baseline under the "
                          "same budget and report the sims-to-leak of both")
    return parser


def _run_adversarial(args) -> int:
    from repro.fuzz.adversarial import (hill_climb, render_outcome,
                                        uniform_search)
    configs = parse_config_names(args.configs)
    config = "UnsafeBaseline" if args.configs == "all" else configs[0]
    model = AttackModel.SPECTRE if args.models == "both" \
        else AttackModel(args.models)
    kwargs = {}
    if args.max_instructions:
        kwargs["max_instructions"] = args.max_instructions
    outcome = hill_climb(profile=args.profile, config=config, model=model,
                         budget=args.budget, seed=args.seed_start,
                         patience=args.patience, **kwargs)
    print(render_outcome(outcome))
    if args.compare_uniform:
        base = uniform_search(profile=args.profile, config=config,
                              model=model, budget=args.budget,
                              seed_start=args.seed_start * 1000, **kwargs)
        print(render_outcome(base))
        if outcome.found and not base.found:
            print(f"advantage: hill-climb leaked in {outcome.sims} sims; "
                  f"uniform exhausted its {base.sims}-sim budget.")
        elif outcome.found and base.found:
            print(f"advantage: hill-climb {outcome.sims} sims vs uniform "
                  f"{base.sims} sims.")
        else:
            print("no leak found by either search within budget.")
    return 1 if outcome.counterexample else 0




def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    if args.adversarial:
        return _run_adversarial(args)
    models = list(BOTH_MODELS) if args.models == "both" \
        else [AttackModel(args.models)]
    cfg = CampaignConfig(
        seeds=args.seeds, seed_start=args.seed_start, profile=args.profile,
        configs=parse_config_names(args.configs), models=models,
        jobs=args.jobs, minimize=args.minimize,
        corpus_dir=args.corpus_dir,
        use_cache=False if args.no_cache else None)
    if args.max_instructions:
        cfg.max_instructions = args.max_instructions
    report = run_campaign(cfg)
    print(render_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
