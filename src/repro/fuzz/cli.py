"""``repro fuzz`` — the campaign command-line front end.

Examples::

    python -m repro.cli fuzz --seeds 200 --minimize --corpus-dir fuzz-corpus
    python -m repro.cli fuzz --seeds 25 --jobs 2 --configs UnsafeBaseline,STT \\
        --models futuristic

Exit status is 0 only when the campaign is clean: no secure-configuration
counterexample, no generator-invariant breakage, and the UnsafeBaseline
sanity signal fired (when UnsafeBaseline was part of the sweep) — so a CI
job can gate directly on this command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.fuzz.campaign import BOTH_MODELS, CampaignConfig, run_campaign
from repro.fuzz.generator import PROFILES
from repro.fuzz.report import render_report
from repro.harness.configs import parse_config_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_spt fuzz",
        description="Run a randomized leakage-hunting campaign against the "
                    "protection configurations (non-interference oracle).")
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of victim programs to fuzz (default 50)")
    parser.add_argument("--seed-start", type=int, default=0,
                        help="first seed (campaigns are deterministic per "
                             "seed; shift this to explore new victims)")
    parser.add_argument("--profile", default="default",
                        choices=sorted(PROFILES),
                        help="generator profile (victim size/shape)")
    parser.add_argument("--configs", default="all",
                        help="comma-separated Table 2 configuration names, "
                             "or 'all' (default)")
    parser.add_argument("--models", default="both",
                        choices=["spectre", "futuristic", "both"],
                        help="attack model(s) to fuzz under (default both)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or CPU "
                             "count)")
    parser.add_argument("--minimize", action="store_true",
                        help="delta-debug every counterexample down to a "
                             "minimal gadget before recording it")
    parser.add_argument("--corpus-dir", default=None,
                        help="persistent corpus directory (campaigns resume "
                             "from it; default: in-memory only)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="per-run retired-instruction budget")
    return parser




def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    models = list(BOTH_MODELS) if args.models == "both" \
        else [AttackModel(args.models)]
    cfg = CampaignConfig(
        seeds=args.seeds, seed_start=args.seed_start, profile=args.profile,
        configs=parse_config_names(args.configs), models=models,
        jobs=args.jobs, minimize=args.minimize,
        corpus_dir=args.corpus_dir,
        use_cache=False if args.no_cache else None)
    if args.max_instructions:
        cfg.max_instructions = args.max_instructions
    report = run_campaign(cfg)
    print(render_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
