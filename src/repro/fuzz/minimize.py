"""Delta-debugging counterexample minimiser.

Shrinks a leaking victim to a minimal reproducing gadget while re-checking
the non-interference oracle after every candidate edit.  Minimisation works
on the generator's *plan* representation, never on raw instruction streams,
so every candidate is a well-formed, halting program by construction:

1. **ddmin over blocks** — drop whole filler/loop/branch/gadget blocks
   (classic Zeller/Hildebrandt delta debugging over the block list);
2. **instruction-level shrink** — ddmin over the instruction lists inside
   the surviving filler blocks;
3. **gadget parameter lowering** — walk each surviving gadget's numeric
   knobs (training passes, widening chain, victim-array size) down a
   shrink ladder while the leak persists.

The predicate is "the same (config, model) cell still diverges"; any
diverging channel counts, so a counterexample that mutates from (say) a
cache-line divergence into a pure timing divergence while shrinking is
still pursued.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.attack_model import AttackModel
from repro.fuzz.generator import (Branch, Filler, FuzzPlan, Gadget, Loop,
                                  render, with_blocks)
from repro.fuzz.oracle import FUZZ_BUDGET, check_pair_direct
from repro.pipeline.params import MachineParams

# Lowering ladders for gadget parameters (tried left to right).
_TRAININGS_LADDER = (1, 2, 3)
_WIDEN_LADDER = (0, 2, 4, 8, 16)
_IN_BOUNDS_LADDER = (1, 2, 4)


@dataclass
class MinimizeResult:
    """Outcome of one minimisation."""

    plan: FuzzPlan              # the minimal still-leaking plan
    checks: int                 # oracle invocations spent
    instructions_before: int    # rendered static program size
    instructions_after: int


class _Budget:
    """Caps oracle invocations so pathological cases terminate."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit


def minimize_plan(plan: FuzzPlan, secrets: tuple, config: str,
                  model: AttackModel,
                  params: Optional[MachineParams] = None,
                  max_checks: int = 300,
                  max_instructions: int = FUZZ_BUDGET) -> MinimizeResult:
    """Shrink ``plan`` while its (config, model) divergence persists.

    ``secrets`` is the pair of secret values that exhibited the leak.
    Raises ``ValueError`` if the input plan does not diverge at all (the
    caller should only minimise confirmed counterexamples/leaks).
    """
    budget = _Budget(max_checks)

    def leaks(candidate: FuzzPlan) -> bool:
        budget.used += 1
        try:
            channels = check_pair_direct(
                render(candidate, secrets[0]), render(candidate, secrets[1]),
                config, model, params, max_instructions)
        except RuntimeError:
            return False        # a candidate that no longer halts is bad
        return bool(channels)

    if not leaks(plan):
        raise ValueError(
            f"plan for seed {plan.seed} does not diverge under "
            f"{config}/{model.value}; nothing to minimise")
    size_before = len(render(plan, secrets[0]).instructions)

    blocks = _ddmin(list(plan.blocks),
                    lambda bs: leaks(with_blocks(plan, bs)), budget)
    plan = with_blocks(plan, blocks)
    plan = _shrink_block_bodies(plan, leaks, budget)
    plan = _lower_gadget_params(plan, leaks, budget)

    return MinimizeResult(plan, budget.used, size_before,
                          len(render(plan, secrets[0]).instructions))


def _ddmin(items: list, test, budget: _Budget) -> list:
    """Classic ddmin: the sublist is 1-minimal w.r.t. ``test`` on return."""
    granularity = 2
    while len(items) >= 2 and not budget.spent():
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            if budget.spent():
                break
            candidate = items[:start] + items[start + chunk:]
            if candidate and test(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def _shrink_block_bodies(plan: FuzzPlan, leaks, budget: _Budget) -> FuzzPlan:
    """ddmin the instruction lists inside surviving non-gadget blocks."""
    for index, block in enumerate(plan.blocks):
        if budget.spent():
            break
        if isinstance(block, (Filler, Loop)) and block.instrs:
            def test(instrs, _index=index, _block=block):
                shrunk = replace(_block, instrs=tuple(instrs))
                return leaks(_replace_block(plan, _index, shrunk))
            kept = _ddmin(list(block.instrs), test, budget)
            # _ddmin never returns an empty list; probe the empty body too.
            if not budget.spent() and len(kept) == 1:
                if leaks(_replace_block(plan, index,
                                        replace(block, instrs=()))):
                    kept = []
            plan = _replace_block(plan, index,
                                  replace(block, instrs=tuple(kept)))
        elif isinstance(block, Branch):
            stripped = replace(block, then_instrs=(), else_instrs=())
            if leaks(_replace_block(plan, index, stripped)):
                plan = _replace_block(plan, index, stripped)
    return plan


def _lower_gadget_params(plan: FuzzPlan, leaks, budget: _Budget) -> FuzzPlan:
    """Walk each gadget's knobs down their shrink ladders."""
    ladders = (("trainings", _TRAININGS_LADDER),
               ("widen", _WIDEN_LADDER),
               ("in_bounds", _IN_BOUNDS_LADDER))
    for index, block in enumerate(plan.blocks):
        if not isinstance(block, Gadget):
            continue
        for attr, ladder in ladders:
            current = getattr(block, attr)
            for value in ladder:
                if budget.spent() or value >= current:
                    break
                candidate = replace(block, **{attr: value})
                if leaks(_replace_block(plan, index, candidate)):
                    block = candidate
                    break
        plan = _replace_block(plan, index, block)
    return plan


def _replace_block(plan: FuzzPlan, index: int, block) -> FuzzPlan:
    blocks = list(plan.blocks)
    blocks[index] = block
    return with_blocks(plan, blocks)
