"""Pure functional semantics of the ISA, shared by the golden interpreter and
the out-of-order pipeline's execute stage.

Keeping the semantics in one place guarantees that the pipeline cannot drift
from the reference model: both call :func:`alu_result`, :func:`branch_taken`
and the memory access helpers below.

The semantics are written once, as *tables* of per-opcode functions over a
pluggable **value domain** (:func:`build_alu_table`,
:func:`build_branch_table`, :func:`build_effective_address`).  A domain
supplies the primitive operations — 64-bit add, shifts, comparisons, … —
over whatever value representation it likes:

* :class:`ConcreteDomain` computes over plain Python ints and backs the
  public entry points below (the pipeline / interpreter hot path);
* ``repro.verify.expr.SymbolicDomain`` computes over expression terms with
  secret-byte variables, so the bounded symbolic checker executes the exact
  same per-opcode semantics the concrete machine does.

Because both domains share one table, the symbolic checker cannot disagree
with the concrete machine about what an opcode *means* — only about what is
known of its operands.  ``tests/isa/test_semantics_pin.py`` pins the
concrete table bit-for-bit against the pre-refactor if-chain.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import WORD_MASK, to_signed, to_unsigned


class ConcreteDomain:
    """The concrete value domain: 64-bit unsigned semantics over Python ints.

    Every primitive takes and returns plain ints in ``[0, 2**64)``
    (comparisons return Python ints 0/1 for ALU forms and bools for branch
    predicates).  This is the reference definition of every operation;
    other domains (the symbolic one) must agree with it on concrete inputs.
    """

    name = "concrete"

    @staticmethod
    def const(value: int) -> int:
        return value & WORD_MASK

    @staticmethod
    def add(a: int, b: int) -> int:
        return (a + b) & WORD_MASK

    @staticmethod
    def sub(a: int, b: int) -> int:
        return (a - b) & WORD_MASK

    @staticmethod
    def and_(a: int, b: int) -> int:
        return a & b

    @staticmethod
    def or_(a: int, b: int) -> int:
        return a | b

    @staticmethod
    def xor(a: int, b: int) -> int:
        return a ^ b

    @staticmethod
    def not_(a: int) -> int:
        return a ^ WORD_MASK

    @staticmethod
    def mul(a: int, b: int) -> int:
        return (a * b) & WORD_MASK

    @staticmethod
    def div(a: int, b: int) -> int:
        if b == 0:
            return WORD_MASK
        return to_unsigned(int(to_signed(a) / to_signed(b)))

    @staticmethod
    def rem(a: int, b: int) -> int:
        if b == 0:
            return a
        sa, sb = to_signed(a), to_signed(b)
        return to_unsigned(sa - sb * int(sa / sb))

    @staticmethod
    def sll(a: int, b: int) -> int:
        return (a << (b & 63)) & WORD_MASK

    @staticmethod
    def srl(a: int, b: int) -> int:
        return a >> (b & 63)

    @staticmethod
    def sra(a: int, b: int) -> int:
        return to_unsigned(to_signed(a) >> (b & 63))

    @staticmethod
    def rotl(a: int, shift: int) -> int:
        shift &= 63
        if not shift:
            return a
        return ((a << shift) | (a >> (64 - shift))) & WORD_MASK

    @staticmethod
    def rotr(a: int, shift: int) -> int:
        shift &= 63
        if not shift:
            return a
        return ((a >> shift) | (a << (64 - shift))) & WORD_MASK

    @staticmethod
    def slt(a: int, b: int) -> int:
        return 1 if to_signed(a) < to_signed(b) else 0

    @staticmethod
    def sltu(a: int, b: int) -> int:
        return 1 if a < b else 0

    # Branch predicates: concrete evaluation yields Python bools.
    @staticmethod
    def eq(a: int, b: int) -> bool:
        return a == b

    @staticmethod
    def ne(a: int, b: int) -> bool:
        return a != b

    @staticmethod
    def lt(a: int, b: int) -> bool:
        return to_signed(a) < to_signed(b)

    @staticmethod
    def ge(a: int, b: int) -> bool:
        return to_signed(a) >= to_signed(b)

    @staticmethod
    def ltu(a: int, b: int) -> bool:
        return a < b

    @staticmethod
    def geu(a: int, b: int) -> bool:
        return a >= b


def build_alu_table(d) -> dict:
    """The ALU / move / load-immediate semantics over domain ``d``.

    Returns ``{opcode: fn(a, b, imm) -> value}`` where ``a``/``b`` are the
    rs1/rs2 values *in the domain's representation* and ``imm`` is the
    instruction's (concrete, static) immediate.  Immediate operands are
    injected through ``d.const`` so domains see them as ordinary values;
    shift/rotate immediates stay concrete (they are static by construction).
    """
    c = d.const
    return {
        # Register-register ALU.
        "ADD": lambda a, b, imm: d.add(a, b),
        "SUB": lambda a, b, imm: d.sub(a, b),
        "AND": lambda a, b, imm: d.and_(a, b),
        "OR": lambda a, b, imm: d.or_(a, b),
        "XOR": lambda a, b, imm: d.xor(a, b),
        "SLL": lambda a, b, imm: d.sll(a, b),
        "SRL": lambda a, b, imm: d.srl(a, b),
        "SRA": lambda a, b, imm: d.sra(a, b),
        "SLT": lambda a, b, imm: d.slt(a, b),
        "SLTU": lambda a, b, imm: d.sltu(a, b),
        "MUL": lambda a, b, imm: d.mul(a, b),
        "DIV": lambda a, b, imm: d.div(a, b),
        "REM": lambda a, b, imm: d.rem(a, b),
        # Register-immediate ALU.
        "ADDI": lambda a, b, imm: d.add(a, c(imm)),
        "ANDI": lambda a, b, imm: d.and_(a, c(imm)),
        "ORI": lambda a, b, imm: d.or_(a, c(imm)),
        "XORI": lambda a, b, imm: d.xor(a, c(imm)),
        "SLLI": lambda a, b, imm: d.sll(a, imm & 63),
        "SRLI": lambda a, b, imm: d.srl(a, imm & 63),
        "SRAI": lambda a, b, imm: d.sra(a, imm & 63),
        "SLTI": lambda a, b, imm: d.slt(a, c(imm)),
        "ROTLI": lambda a, b, imm: d.rotl(a, imm & 63),
        "ROTRI": lambda a, b, imm: d.rotr(a, imm & 63),
        # Moves / unary / load-immediate.
        "MOV": lambda a, b, imm: a,
        "NOT": lambda a, b, imm: d.not_(a),
        "LI": lambda a, b, imm: c(imm),
    }


def build_branch_table(d) -> dict:
    """Branch-taken predicates over domain ``d``: ``{op: fn(a, b)}``."""
    return {
        "BEQ": d.eq,
        "BNE": d.ne,
        "BLT": d.lt,
        "BGE": d.ge,
        "BLTU": d.ltu,
        "BGEU": d.geu,
    }


def build_effective_address(d):
    """Load/store address computation over domain ``d``."""
    c = d.const

    def ea(base, imm):
        return d.add(base, c(imm))

    return ea


_CONCRETE_ALU = build_alu_table(ConcreteDomain)
_CONCRETE_BRANCH = build_branch_table(ConcreteDomain)


def alu_result(inst: Instruction, a: int, b: int) -> int:
    """Result of an ALU / move / load-immediate instruction.

    ``a`` is the rs1 value, ``b`` the rs2 value (ignored by immediate forms).
    All values are 64-bit unsigned.
    """
    fn = _CONCRETE_ALU.get(inst.op)
    if fn is None:
        raise ValueError(f"{inst.op} is not an ALU instruction")
    return fn(a, b, inst.imm)


def branch_taken(inst: Instruction, a: int, b: int) -> bool:
    """Whether a conditional branch is taken given its operand values."""
    fn = _CONCRETE_BRANCH.get(inst.op)
    if fn is None:
        raise ValueError(f"{inst.op} is not a branch")
    return fn(a, b)


def effective_address(inst: Instruction, base: int) -> int:
    """Byte address accessed by a load/store (wraps at 2^64)."""
    return (base + inst.imm) & WORD_MASK
