"""Pure functional semantics of the ISA, shared by the golden interpreter and
the out-of-order pipeline's execute stage.

Keeping the semantics in one place guarantees that the pipeline cannot drift
from the reference model: both call :func:`alu_result`, :func:`branch_taken`
and the memory access helpers below.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import WORD_MASK, to_signed, to_unsigned


def alu_result(inst: Instruction, a: int, b: int) -> int:
    """Result of an ALU / move / load-immediate instruction.

    ``a`` is the rs1 value, ``b`` the rs2 value (ignored by immediate forms).
    All values are 64-bit unsigned.
    """
    op = inst.op
    imm = inst.imm
    if op == "ADD":
        return (a + b) & WORD_MASK
    if op == "SUB":
        return (a - b) & WORD_MASK
    if op == "AND":
        return a & b
    if op == "OR":
        return a | b
    if op == "XOR":
        return a ^ b
    if op == "SLL":
        return (a << (b & 63)) & WORD_MASK
    if op == "SRL":
        return a >> (b & 63)
    if op == "SRA":
        return to_unsigned(to_signed(a) >> (b & 63))
    if op == "SLT":
        return 1 if to_signed(a) < to_signed(b) else 0
    if op == "SLTU":
        return 1 if a < b else 0
    if op == "MUL":
        return (a * b) & WORD_MASK
    if op == "DIV":
        if b == 0:
            return WORD_MASK
        return to_unsigned(int(to_signed(a) / to_signed(b)))
    if op == "REM":
        if b == 0:
            return a
        sa, sb = to_signed(a), to_signed(b)
        return to_unsigned(sa - sb * int(sa / sb))
    if op == "ADDI":
        return (a + imm) & WORD_MASK
    if op == "ANDI":
        return a & (imm & WORD_MASK)
    if op == "ORI":
        return a | (imm & WORD_MASK)
    if op == "XORI":
        return a ^ (imm & WORD_MASK)
    if op == "SLLI":
        return (a << (imm & 63)) & WORD_MASK
    if op == "SRLI":
        return a >> (imm & 63)
    if op == "SRAI":
        return to_unsigned(to_signed(a) >> (imm & 63))
    if op == "SLTI":
        return 1 if to_signed(a) < to_signed(imm) else 0
    if op == "ROTLI":
        shift = imm & 63
        return ((a << shift) | (a >> (64 - shift))) & WORD_MASK if shift else a
    if op == "ROTRI":
        shift = imm & 63
        return ((a >> shift) | (a << (64 - shift))) & WORD_MASK if shift else a
    if op == "MOV":
        return a
    if op == "NOT":
        return a ^ WORD_MASK
    if op == "LI":
        return imm & WORD_MASK
    raise ValueError(f"{op} is not an ALU instruction")


def branch_taken(inst: Instruction, a: int, b: int) -> bool:
    """Whether a conditional branch is taken given its operand values."""
    op = inst.op
    if op == "BEQ":
        return a == b
    if op == "BNE":
        return a != b
    if op == "BLT":
        return to_signed(a) < to_signed(b)
    if op == "BGE":
        return to_signed(a) >= to_signed(b)
    if op == "BLTU":
        return a < b
    if op == "BGEU":
        return a >= b
    raise ValueError(f"{op} is not a branch")


def effective_address(inst: Instruction, base: int) -> int:
    """Byte address accessed by a load/store (wraps at 2^64)."""
    return (base + inst.imm) & WORD_MASK
