"""ISA: instruction definitions, assembler, builder, and golden interpreter."""

from repro.isa.assembler import Assembler, assemble, parse_register
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import (Instruction, IsaError, Program, load_word,
                                    store_word)
from repro.isa.interpreter import (ArchState, InterpResult, InterpreterError,
                                   run_program, step)
from repro.isa.opcodes import (BRANCH_OPS, LOAD_OPS, NUM_ARCH_REGS, OPCODES,
                               STORE_OPS, WORD_MASK, Kind, OpInfo, to_signed,
                               to_unsigned)
from repro.isa.semantics import alu_result, branch_taken, effective_address

__all__ = [
    "Assembler", "assemble", "parse_register", "ProgramBuilder",
    "Instruction", "IsaError", "Program", "load_word", "store_word",
    "ArchState", "InterpResult", "InterpreterError", "run_program", "step",
    "BRANCH_OPS", "LOAD_OPS", "NUM_ARCH_REGS", "OPCODES", "STORE_OPS",
    "WORD_MASK", "Kind", "OpInfo", "to_signed", "to_unsigned",
    "alu_result", "branch_taken", "effective_address",
]
