"""Programmatic program builder.

The builder is the workhorse for writing workloads: it offers labels with
forward references, loop helpers, and a tiny data-segment allocator, while
emitting exactly the same :class:`~repro.isa.instructions.Program` objects as
the text assembler.

Example::

    b = ProgramBuilder("sum")
    array = b.alloc_words("array", [1, 2, 3, 4])
    b.li("a0", array)
    b.li("a1", 0)
    with b.loop(count=4, counter="t0"):
        b.ld("t1", "a0", 0)
        b.add("a1", "a1", "t1")
        b.addi("a0", "a0", 8)
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Union

from repro.isa.assembler import parse_register
from repro.isa.instructions import Instruction, IsaError, Program, store_word
from repro.isa.opcodes import OPCODES, Kind

Reg = Union[str, int]


class _Label:
    """A (possibly forward) instruction-index reference."""

    def __init__(self, name: str):
        self.name = name
        self.pc: Optional[int] = None


class ProgramBuilder:
    """Fluent builder for programs in the repro ISA."""

    def __init__(self, name: str = "program", data_base: int = 0x1000):
        self.name = name
        self._instructions: list[tuple[str, int, int, int, object]] = []
        self._labels: dict[str, _Label] = {}
        self._memory: dict[int, int] = {}
        self._data_symbols: dict[str, int] = {}
        self._data_cursor = data_base
        self._auto_label = 0

    # ------------------------------------------------------------------ data
    def alloc_words(self, name: str, values: Iterable[int],
                    align: int = 8) -> int:
        """Allocate and initialise an array of 8-byte words; returns address."""
        address = self._align(align)
        cursor = address
        for value in values:
            store_word(self._memory, cursor, value & ((1 << 64) - 1), 8)
            cursor += 8
        self._data_cursor = cursor
        self._data_symbols[name] = address
        return address

    def alloc_bytes(self, name: str, values: Iterable[int],
                    align: int = 8) -> int:
        """Allocate and initialise a byte array; returns its address."""
        address = self._align(align)
        cursor = address
        for value in values:
            self._memory[cursor] = value & 0xFF
            cursor += 1
        self._data_cursor = cursor
        self._data_symbols[name] = address
        return address

    def reserve(self, name: str, size_bytes: int, align: int = 8) -> int:
        """Reserve zero-initialised space; returns its address."""
        address = self._align(align)
        self._data_cursor = address + size_bytes
        self._data_symbols[name] = address
        return address

    def _align(self, align: int) -> int:
        cursor = self._data_cursor
        if cursor % align:
            cursor += align - cursor % align
        return cursor

    # ---------------------------------------------------------------- labels
    def label(self, name: Optional[str] = None) -> str:
        """Create (or place) a label at the current position."""
        if name is None:
            name = f"_L{self._auto_label}"
            self._auto_label += 1
        ref = self._labels.setdefault(name, _Label(name))
        if ref.pc is not None:
            raise IsaError(f"label {name!r} placed twice")
        ref.pc = len(self._instructions)
        return name

    def forward_label(self, name: Optional[str] = None) -> str:
        """Declare a label to be placed later with :meth:`place`."""
        if name is None:
            name = f"_L{self._auto_label}"
            self._auto_label += 1
        self._labels.setdefault(name, _Label(name))
        return name

    def place(self, name: str) -> None:
        """Place a previously declared forward label here."""
        ref = self._labels.setdefault(name, _Label(name))
        if ref.pc is not None:
            raise IsaError(f"label {name!r} placed twice")
        ref.pc = len(self._instructions)

    # ------------------------------------------------------------------ emit
    def emit(self, op: str, rd: Reg = 0, rs1: Reg = 0, rs2: Reg = 0,
             imm: object = 0) -> "ProgramBuilder":
        """Append one instruction; ``imm`` may be an int or a label name."""
        if op not in OPCODES:
            raise IsaError(f"unknown opcode {op!r}")
        self._instructions.append(
            (op, self._reg(rd), self._reg(rs1), self._reg(rs2), imm))
        return self

    @staticmethod
    def _reg(reg: Reg) -> int:
        if isinstance(reg, str):
            return parse_register(reg)
        return reg

    # Generated convenience emitters -----------------------------------
    def li(self, rd: Reg, imm: int) -> "ProgramBuilder":
        return self.emit("LI", rd=rd, imm=imm)

    def mov(self, rd: Reg, rs1: Reg) -> "ProgramBuilder":
        return self.emit("MOV", rd=rd, rs1=rs1)

    def halt(self) -> "ProgramBuilder":
        return self.emit("HALT")

    def nop(self) -> "ProgramBuilder":
        return self.emit("NOP")

    def jal(self, rd: Reg, target: object) -> "ProgramBuilder":
        return self.emit("JAL", rd=rd, imm=target)

    def jalr(self, rd: Reg, rs1: Reg, imm: int = 0) -> "ProgramBuilder":
        return self.emit("JALR", rd=rd, rs1=rs1, imm=imm)

    def __getattr__(self, name: str):
        op = name.upper()
        if op not in OPCODES:
            raise AttributeError(name)
        info = OPCODES[op]

        if info.kind == Kind.ALU:
            def alu(rd: Reg, rs1: Reg, rs2: Reg, _op=op):
                return self.emit(_op, rd=rd, rs1=rs1, rs2=rs2)
            return alu
        if info.kind == Kind.ALU_IMM:
            def alu_imm(rd: Reg, rs1: Reg, imm: int, _op=op):
                return self.emit(_op, rd=rd, rs1=rs1, imm=imm)
            return alu_imm
        if info.kind == Kind.MOVE:
            def move(rd: Reg, rs1: Reg, _op=op):
                return self.emit(_op, rd=rd, rs1=rs1)
            return move
        if info.kind == Kind.LOAD:
            def load(rd: Reg, base: Reg, offset: int = 0, _op=op):
                return self.emit(_op, rd=rd, rs1=base, imm=offset)
            return load
        if info.kind == Kind.STORE:
            def store(data: Reg, base: Reg, offset: int = 0, _op=op):
                return self.emit(_op, rs1=base, rs2=data, imm=offset)
            return store
        if info.kind == Kind.BRANCH:
            def branch(rs1: Reg, rs2: Reg, target: object, _op=op):
                return self.emit(_op, rs1=rs1, rs2=rs2, imm=target)
            return branch
        raise AttributeError(name)

    # ----------------------------------------------------------- structures
    @contextmanager
    def loop(self, count: int, counter: Reg = "t6") -> Iterator[None]:
        """Emit a counted loop: ``counter`` runs ``count`` down to zero."""
        self.li(counter, count)
        top = self.label()
        yield
        self.emit("ADDI", rd=counter, rs1=counter, imm=-1 & ((1 << 64) - 1))
        self.emit("BNE", rs1=self._reg(counter), rs2=0, imm=top)

    @contextmanager
    def while_ne(self, rs1: Reg, rs2: Reg) -> Iterator[None]:
        """Emit ``while (rs1 != rs2) { body }``."""
        top = self.label()
        done = self.forward_label()
        self.emit("BEQ", rs1=self._reg(rs1), rs2=self._reg(rs2), imm=done)
        yield
        self.jal(0, top)
        self.place(done)

    # ----------------------------------------------------------------- build
    def build(self) -> Program:
        symbols = {}
        for name, ref in self._labels.items():
            if ref.pc is None:
                raise IsaError(f"label {name!r} was never placed")
            symbols[name] = ref.pc
        instructions = []
        for op, rd, rs1, rs2, imm in self._instructions:
            if isinstance(imm, str):
                if imm in symbols:
                    imm = symbols[imm]
                elif imm in self._data_symbols:
                    imm = self._data_symbols[imm]
                else:
                    raise IsaError(f"unresolved symbol {imm!r}")
            instructions.append(Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm))
        return Program(instructions, dict(self._memory), symbols,
                       dict(self._data_symbols), self.name)
