"""Opcode definitions and static metadata for the repro ISA.

The ISA is a 64-bit, RISC-like, load/store architecture with 32 architectural
registers (``x0`` is hardwired to zero).  The program counter is an
*instruction index* (it advances by 1 per instruction); data memory is
byte-addressed.

Every opcode carries static metadata that the pipeline and the taint engines
consume:

* ``kind`` — coarse class (ALU, load, store, branch, jump, ...).
* ``latency`` — execution latency in cycles (memory ops use the hierarchy).
* ``reads``/``writes`` — which register fields are live.
* ``invertible`` — whether the backward untaint rule of SPT (Section 6.6 of
  the paper) applies: knowing the output and all-but-one input determines the
  remaining input.
* ``transmitter`` — whether the instruction's execution forms an explicit
  covert channel.  Following the paper's evaluation (Section 9.1), loads and
  stores are the transmit instructions and the leaked operand is the address
  base register.  Branches are implicit channels and are handled separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Kind(enum.Enum):
    """Coarse instruction class used by the pipeline."""

    ALU = "alu"
    ALU_IMM = "alu_imm"
    LOAD_IMM = "load_imm"
    MOVE = "move"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    JUMP_REG = "jump_reg"
    HALT = "halt"
    NOP = "nop"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    name: str
    kind: Kind
    latency: int = 1
    reads_rs1: bool = False
    reads_rs2: bool = False
    writes_rd: bool = False
    has_imm: bool = False
    invertible: bool = False
    mem_size: int = 0

    @property
    def is_mem(self) -> bool:
        return self.kind in (Kind.LOAD, Kind.STORE)

    @property
    def is_transmitter(self) -> bool:
        """Explicit-channel transmitters: loads and stores (paper Section 9.1)."""
        return self.is_mem

    @property
    def is_control(self) -> bool:
        return self.kind in (Kind.BRANCH, Kind.JUMP, Kind.JUMP_REG)


def _alu(name: str, latency: int = 1, invertible: bool = False) -> OpInfo:
    return OpInfo(name, Kind.ALU, latency=latency, reads_rs1=True,
                  reads_rs2=True, writes_rd=True, invertible=invertible)


def _alu_imm(name: str, latency: int = 1, invertible: bool = False) -> OpInfo:
    return OpInfo(name, Kind.ALU_IMM, latency=latency, reads_rs1=True,
                  writes_rd=True, has_imm=True, invertible=invertible)


def _load(name: str, size: int) -> OpInfo:
    return OpInfo(name, Kind.LOAD, reads_rs1=True, writes_rd=True,
                  has_imm=True, mem_size=size)


def _store(name: str, size: int) -> OpInfo:
    return OpInfo(name, Kind.STORE, reads_rs1=True, reads_rs2=True,
                  has_imm=True, mem_size=size)


def _branch(name: str) -> OpInfo:
    return OpInfo(name, Kind.BRANCH, reads_rs1=True, reads_rs2=True,
                  has_imm=True)


# Invertible operations (backward untaint applies): ADD/SUB/XOR and their
# immediate forms, rotates, NOT and MOV.  AND/OR/shifts/MUL/comparisons are
# lossy and therefore not invertible.
OPCODES: dict[str, OpInfo] = {
    # Register-register ALU.
    "ADD": _alu("ADD", invertible=True),
    "SUB": _alu("SUB", invertible=True),
    "AND": _alu("AND"),
    "OR": _alu("OR"),
    "XOR": _alu("XOR", invertible=True),
    "SLL": _alu("SLL"),
    "SRL": _alu("SRL"),
    "SRA": _alu("SRA"),
    "SLT": _alu("SLT"),
    "SLTU": _alu("SLTU"),
    "MUL": _alu("MUL", latency=3),
    "DIV": _alu("DIV", latency=12),
    "REM": _alu("REM", latency=12),
    # Register-immediate ALU.
    "ADDI": _alu_imm("ADDI", invertible=True),
    "ANDI": _alu_imm("ANDI"),
    "ORI": _alu_imm("ORI"),
    "XORI": _alu_imm("XORI", invertible=True),
    "SLLI": _alu_imm("SLLI"),
    "SRLI": _alu_imm("SRLI"),
    "SRAI": _alu_imm("SRAI"),
    "SLTI": _alu_imm("SLTI"),
    "ROTLI": _alu_imm("ROTLI", invertible=True),
    "ROTRI": _alu_imm("ROTRI", invertible=True),
    # Register move / unary (distinct opcodes because SPT's backward rule for
    # MOV is its own case in Section 6.6).
    "MOV": OpInfo("MOV", Kind.MOVE, reads_rs1=True, writes_rd=True,
                  invertible=True),
    "NOT": OpInfo("NOT", Kind.MOVE, reads_rs1=True, writes_rd=True,
                  invertible=True),
    # Load immediate: output depends only on ROB contents, so SPT untaints it
    # unconditionally (Section 6.5).
    "LI": OpInfo("LI", Kind.LOAD_IMM, writes_rd=True, has_imm=True),
    # Memory.  rs1 is the address base (leaked operand); rs2 is store data.
    "LD": _load("LD", 8),
    "LW": _load("LW", 4),
    "LH": _load("LH", 2),
    "LB": _load("LB", 1),
    "SD": _store("SD", 8),
    "SW": _store("SW", 4),
    "SH": _store("SH", 2),
    "SB": _store("SB", 1),
    # Control flow.  imm is the target instruction index for direct branches.
    "BEQ": _branch("BEQ"),
    "BNE": _branch("BNE"),
    "BLT": _branch("BLT"),
    "BGE": _branch("BGE"),
    "BLTU": _branch("BLTU"),
    "BGEU": _branch("BGEU"),
    "JAL": OpInfo("JAL", Kind.JUMP, writes_rd=True, has_imm=True),
    "JALR": OpInfo("JALR", Kind.JUMP_REG, reads_rs1=True, writes_rd=True,
                   has_imm=True),
    "HALT": OpInfo("HALT", Kind.HALT),
    "NOP": OpInfo("NOP", Kind.NOP),
}


BRANCH_OPS = frozenset(n for n, i in OPCODES.items() if i.kind == Kind.BRANCH)
LOAD_OPS = frozenset(n for n, i in OPCODES.items() if i.kind == Kind.LOAD)
STORE_OPS = frozenset(n for n, i in OPCODES.items() if i.kind == Kind.STORE)

NUM_ARCH_REGS = 32
WORD_MASK = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    value &= WORD_MASK
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap an arbitrary Python int into the 64-bit unsigned range."""
    return value & WORD_MASK
