"""Two-pass text assembler for the repro ISA.

Syntax (one instruction per line, ``#`` or ``;`` starts a comment)::

    loop:                       # label
        li   t0, 42             # load immediate
        add  a0, a0, t0
        ld   a1, 8(a0)          # loads/stores use offset(base)
        sd   a1, 0(sp)
        beq  a0, zero, done     # branch to label
        jal  ra, loop
    done:
        halt

    .data secret 0x1000         # data label at byte address 0x1000
    .word 0x1000 7              # 8-byte little-endian constant
    .byte 0x1008 255

Registers accept ``x0``-``x31`` or RISC-V style ABI names.
"""

from __future__ import annotations

import re

from repro.isa.instructions import Instruction, IsaError, Program, store_word
from repro.isa.opcodes import OPCODES, Kind

_ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "fp": 8, "s0": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")


def parse_register(token: str) -> int:
    """Parse a register token (``x7`` or an ABI name) to its number."""
    token = token.strip().lower()
    if token in _ABI_NAMES:
        return _ABI_NAMES[token]
    if token.startswith("x") and token[1:].isdigit():
        number = int(token[1:])
        if 0 <= number < 32:
            return number
    raise IsaError(f"bad register {token!r}")


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise IsaError(f"bad integer literal {token!r}") from None


class Assembler:
    """Two-pass assembler building a :class:`Program`."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._lines: list[tuple[int, str]] = []

    def assemble(self, source: str) -> Program:
        labels, stripped = self._collect_labels(source)
        instructions: list[Instruction] = []
        memory: dict[int, int] = {}
        data_symbols: dict[str, int] = {}
        for line_number, text in stripped:
            if text.startswith("."):
                self._directive(text, line_number, memory, data_symbols)
                continue
            instructions.append(
                self._parse_instruction(text, line_number, labels, data_symbols))
        if not instructions:
            raise IsaError("empty program")
        return Program(instructions, memory, labels, data_symbols, self.name)

    def _collect_labels(self, source: str) -> tuple[dict[str, int], list[tuple[int, str]]]:
        labels: dict[str, int] = {}
        stripped: list[tuple[int, str]] = []
        pc = 0
        for line_number, raw in enumerate(source.splitlines(), start=1):
            text = re.split(r"[#;]", raw, maxsplit=1)[0].strip()
            if not text:
                continue
            while ":" in text:
                label, _, rest = text.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise IsaError(f"line {line_number}: bad label {label!r}")
                if label in labels:
                    raise IsaError(f"line {line_number}: duplicate label {label!r}")
                labels[label] = pc
                text = rest.strip()
            if not text:
                continue
            stripped.append((line_number, text))
            if not text.startswith("."):
                pc += 1
        return labels, stripped

    def _directive(self, text: str, line_number: int, memory: dict[int, int],
                   data_symbols: dict[str, int]) -> None:
        parts = text.split()
        directive = parts[0]
        if directive == ".data" and len(parts) == 3:
            data_symbols[parts[1]] = _parse_int(parts[2])
        elif directive == ".word" and len(parts) == 3:
            address = self._data_address(parts[1], data_symbols)
            store_word(memory, address, _parse_int(parts[2]) & ((1 << 64) - 1), 8)
        elif directive == ".byte" and len(parts) == 3:
            address = self._data_address(parts[1], data_symbols)
            memory[address] = _parse_int(parts[2]) & 0xFF
        else:
            raise IsaError(f"line {line_number}: bad directive {text!r}")

    @staticmethod
    def _data_address(token: str, data_symbols: dict[str, int]) -> int:
        if token in data_symbols:
            return data_symbols[token]
        return _parse_int(token)

    def _parse_instruction(self, text: str, line_number: int,
                           labels: dict[str, int],
                           data_symbols: dict[str, int]) -> Instruction:
        mnemonic, _, operand_text = text.partition(" ")
        op = mnemonic.strip().upper()
        if op not in OPCODES:
            raise IsaError(f"line {line_number}: unknown opcode {mnemonic!r}")
        info = OPCODES[op]
        operands = [t.strip() for t in operand_text.split(",") if t.strip()]
        try:
            return self._build(op, info.kind, operands, labels, data_symbols)
        except IsaError as error:
            raise IsaError(f"line {line_number}: {error}") from None

    def _build(self, op: str, kind: Kind, operands: list[str],
               labels: dict[str, int], data_symbols: dict[str, int]) -> Instruction:
        def imm_of(token: str) -> int:
            if token in labels:
                return labels[token]
            if token in data_symbols:
                return data_symbols[token]
            return _parse_int(token)

        if kind in (Kind.HALT, Kind.NOP):
            self._expect(op, operands, 0)
            return Instruction(op)
        if kind == Kind.LOAD_IMM:
            self._expect(op, operands, 2)
            return Instruction(op, rd=parse_register(operands[0]),
                               imm=imm_of(operands[1]))
        if kind == Kind.MOVE:
            self._expect(op, operands, 2)
            return Instruction(op, rd=parse_register(operands[0]),
                               rs1=parse_register(operands[1]))
        if kind == Kind.ALU:
            self._expect(op, operands, 3)
            return Instruction(op, rd=parse_register(operands[0]),
                               rs1=parse_register(operands[1]),
                               rs2=parse_register(operands[2]))
        if kind == Kind.ALU_IMM:
            self._expect(op, operands, 3)
            return Instruction(op, rd=parse_register(operands[0]),
                               rs1=parse_register(operands[1]),
                               imm=imm_of(operands[2]))
        if kind in (Kind.LOAD, Kind.STORE):
            self._expect(op, operands, 2)
            offset, base = self._parse_mem(operands[1], data_symbols)
            data_reg = parse_register(operands[0])
            if kind == Kind.LOAD:
                return Instruction(op, rd=data_reg, rs1=base, imm=offset)
            return Instruction(op, rs1=base, rs2=data_reg, imm=offset)
        if kind == Kind.BRANCH:
            self._expect(op, operands, 3)
            return Instruction(op, rs1=parse_register(operands[0]),
                               rs2=parse_register(operands[1]),
                               imm=imm_of(operands[2]))
        if kind == Kind.JUMP:
            self._expect(op, operands, 2)
            return Instruction(op, rd=parse_register(operands[0]),
                               imm=imm_of(operands[1]))
        if kind == Kind.JUMP_REG:
            self._expect(op, operands, 3)
            return Instruction(op, rd=parse_register(operands[0]),
                               rs1=parse_register(operands[1]),
                               imm=imm_of(operands[2]))
        raise IsaError(f"unhandled kind {kind} for {op}")

    @staticmethod
    def _expect(op: str, operands: list[str], count: int) -> None:
        if len(operands) != count:
            raise IsaError(f"{op} expects {count} operands, got {len(operands)}")

    def _parse_mem(self, token: str, data_symbols: dict[str, int]) -> tuple[int, int]:
        match = _MEM_OPERAND.match(token.strip())
        if not match:
            raise IsaError(f"bad memory operand {token!r}")
        offset_token, base_token = match.groups()
        if offset_token in data_symbols:
            offset = data_symbols[offset_token]
        else:
            offset = _parse_int(offset_token)
        return offset, parse_register(base_token)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    return Assembler(name).assemble(source)
