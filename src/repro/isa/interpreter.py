"""Golden functional interpreter.

Executes programs with exact architectural semantics and no timing model.
The out-of-order pipeline is differentially tested against this interpreter:
every configuration must retire the same instruction stream and produce the
same final architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import Kind, NUM_ARCH_REGS, WORD_MASK
from repro.isa.semantics import alu_result, branch_taken, effective_address


class InterpreterError(Exception):
    """Raised when a program misbehaves (e.g. runs off the end)."""


@dataclass
class ArchState:
    """Architectural machine state: registers + byte-addressed memory."""

    regs: list = field(default_factory=lambda: [0] * NUM_ARCH_REGS)
    memory: dict = field(default_factory=dict)

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & WORD_MASK

    def load(self, address: int, size: int) -> int:
        value = 0
        for offset in range(size):
            value |= self.memory.get((address + offset) & WORD_MASK, 0) << (8 * offset)
        return value

    def store(self, address: int, value: int, size: int) -> None:
        for offset in range(size):
            self.memory[(address + offset) & WORD_MASK] = (value >> (8 * offset)) & 0xFF


@dataclass
class InterpResult:
    """Outcome of a functional run."""

    state: ArchState
    retired: int
    halted: bool
    pc_trace: Optional[list] = None

    def reg(self, index: int) -> int:
        return self.state.read_reg(index)

    def word(self, address: int) -> int:
        return self.state.load(address, 8)


def run_program(program: Program, max_instructions: int = 1_000_000,
                trace_pcs: bool = False) -> InterpResult:
    """Run ``program`` to HALT (or the instruction budget) and return state."""
    state = ArchState()
    state.memory.update(program.initial_memory)
    pc = 0
    retired = 0
    pcs: Optional[list] = [] if trace_pcs else None
    instructions = program.instructions
    length = len(instructions)
    while retired < max_instructions:
        if not 0 <= pc < length:
            raise InterpreterError(
                f"{program.name}: PC {pc} left the program (no HALT?)")
        inst = instructions[pc]
        if pcs is not None:
            pcs.append(pc)
        next_pc = step(state, inst, pc)
        retired += 1
        if next_pc is None:
            return InterpResult(state, retired, True, pcs)
        pc = next_pc
    return InterpResult(state, retired, False, pcs)


def step(state: ArchState, inst: Instruction, pc: int) -> Optional[int]:
    """Execute one instruction; returns the next PC or None on HALT."""
    kind = inst.info.kind
    if kind in (Kind.ALU, Kind.ALU_IMM, Kind.MOVE, Kind.LOAD_IMM):
        result = alu_result(inst, state.read_reg(inst.rs1),
                            state.read_reg(inst.rs2))
        state.write_reg(inst.rd, result)
        return pc + 1
    if kind == Kind.LOAD:
        address = effective_address(inst, state.read_reg(inst.rs1))
        state.write_reg(inst.rd, state.load(address, inst.info.mem_size))
        return pc + 1
    if kind == Kind.STORE:
        address = effective_address(inst, state.read_reg(inst.rs1))
        state.store(address, state.read_reg(inst.rs2), inst.info.mem_size)
        return pc + 1
    if kind == Kind.BRANCH:
        taken = branch_taken(inst, state.read_reg(inst.rs1),
                             state.read_reg(inst.rs2))
        return inst.imm if taken else pc + 1
    if kind == Kind.JUMP:
        state.write_reg(inst.rd, pc + 1)
        return inst.imm
    if kind == Kind.JUMP_REG:
        target = (state.read_reg(inst.rs1) + inst.imm) & WORD_MASK
        state.write_reg(inst.rd, pc + 1)
        return target
    if kind == Kind.HALT:
        return None
    if kind == Kind.NOP:
        return pc + 1
    raise InterpreterError(f"unhandled kind {kind}")
