"""Static instruction and program representations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.isa.opcodes import NUM_ARCH_REGS, OPCODES, Kind, OpInfo


class IsaError(Exception):
    """Raised for malformed instructions or programs."""


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    ``rd``/``rs1``/``rs2`` are architectural register numbers; unused fields
    are 0.  ``imm`` is a Python int: a 64-bit constant for ALU-immediate ops,
    a byte offset for memory ops, and a target *instruction index* for control
    flow.
    """

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise IsaError(f"unknown opcode {self.op!r}")
        for name, reg in (("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2)):
            if not 0 <= reg < NUM_ARCH_REGS:
                raise IsaError(f"{name}={reg} out of range for {self.op}")

    @property
    def info(self) -> OpInfo:
        return OPCODES[self.op]

    def source_regs(self) -> tuple[int, ...]:
        """Architectural source registers actually read (x0 included)."""
        info = self.info
        sources = []
        if info.reads_rs1:
            sources.append(self.rs1)
        if info.reads_rs2:
            sources.append(self.rs2)
        return tuple(sources)

    def dest_reg(self) -> Optional[int]:
        """Architectural destination, or None (x0 writes are discarded)."""
        info = self.info
        if info.writes_rd and self.rd != 0:
            return self.rd
        return None

    def __str__(self) -> str:
        info = self.info
        parts = [self.op.lower()]
        operands = []
        if info.writes_rd:
            operands.append(f"x{self.rd}")
        if info.kind in (Kind.LOAD, Kind.STORE):
            data = f"x{self.rd}" if info.kind == Kind.LOAD else f"x{self.rs2}"
            return f"{parts[0]} {data}, {self.imm}(x{self.rs1})"
        if info.reads_rs1:
            operands.append(f"x{self.rs1}")
        if info.reads_rs2:
            operands.append(f"x{self.rs2}")
        if info.has_imm:
            operands.append(str(self.imm))
        return parts[0] + (" " + ", ".join(operands) if operands else "")


@dataclass
class Program:
    """A fully assembled program plus its initial data memory image.

    ``instructions`` is indexed by PC.  ``initial_memory`` maps byte address
    to byte value (0-255); unmentioned bytes read as zero.  ``symbols`` maps
    label name to instruction index, ``data_symbols`` maps data label to byte
    address — both are conveniences for tests and attack harnesses.
    """

    instructions: Sequence[Instruction]
    initial_memory: dict[int, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    data_symbols: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.instructions:
            raise IsaError("program has no instructions")
        for address, byte in self.initial_memory.items():
            if address < 0:
                raise IsaError(f"negative data address {address}")
            if not 0 <= byte <= 0xFF:
                raise IsaError(f"memory byte {byte} at {address} out of range")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Instruction at ``pc`` or None when the PC falls off the program.

        Wrong-path fetch can run past the end of the program; the pipeline
        treats a None fetch as an implicit halt bubble.
        """
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None

    def with_memory(self, patch: dict[int, int], name: Optional[str] = None) -> "Program":
        """A copy of this program with extra/overridden initial memory bytes."""
        merged = dict(self.initial_memory)
        merged.update(patch)
        return Program(self.instructions, merged, dict(self.symbols),
                       dict(self.data_symbols), name or self.name)


def store_word(memory: dict[int, int], address: int, value: int, size: int = 8) -> None:
    """Write ``size`` little-endian bytes of ``value`` into a memory image."""
    for offset in range(size):
        memory[address + offset] = (value >> (8 * offset)) & 0xFF


def load_word(memory: dict[int, int], address: int, size: int = 8) -> int:
    """Read ``size`` little-endian bytes from a memory image."""
    value = 0
    for offset in range(size):
        value |= memory.get(address + offset, 0) << (8 * offset)
    return value
