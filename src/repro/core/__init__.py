"""The paper's contribution: untaint algebra, attack models, and engines."""

from repro.core.attack_model import AttackModel, vp_obstacle
from repro.core.baselines import SecureBaseline, UnsafeBaseline
from repro.core.events import UntaintKind, UntaintStats
from repro.core.gates import Circuit, CircuitError, Gate, Wire, gate_value
from repro.core.shadow_l1 import ShadowMode, ShadowTaint
from repro.core.inferability import consistent_assignments, soundness_violation
from repro.core.spt import SPTEngine
from repro.core.taint_algebra import (backward_untaints,
                                      forward_untaints_output,
                                      initial_output_taint, leaked_operands)
from repro.core.stt import STTEngine

__all__ = [
    "AttackModel", "vp_obstacle", "SecureBaseline", "UnsafeBaseline",
    "UntaintKind", "UntaintStats", "Circuit", "CircuitError", "Gate", "Wire",
    "gate_value", "ShadowMode", "ShadowTaint", "SPTEngine", "STTEngine",
    "consistent_assignments", "soundness_violation", "backward_untaints",
    "forward_untaints_output", "initial_output_taint", "leaked_operands",
]
