"""Shadow L1 / shadow memory: byte-granular taint for cached data.

The shadow L1 (paper Sections 6.8 and 7.5) mirrors the L1D's geometry and
stores one taint bit per byte of each resident line.  It holds no tags: the
L1D's tag-check and eviction decisions drive it.  Lines are born fully
tainted (a fill re-taints), an eviction drops the line (so the data reads as
tainted again), untainted store data clears the written bytes, and a load
whose output register is already untainted clears the read bytes.

``ShadowMode.FULL_MEMORY`` is the idealised SPT {Bwd, ShadowMem} variant of
Table 2: taint is kept for every byte of memory and survives evictions.
"""

from __future__ import annotations

import enum


class ShadowMode(enum.Enum):
    NONE = "none"
    L1 = "l1"
    FULL_MEMORY = "mem"


class ShadowTaint:
    """Byte-granularity taint for memory-resident data.

    Lines are represented as integers with one bit per byte (bit set =
    tainted).  An absent line is fully tainted — which makes fills and
    resets free.
    """

    def __init__(self, mode: ShadowMode, line_bytes: int = 64):
        self.mode = mode
        self.line_bytes = line_bytes
        self._full_mask = (1 << line_bytes) - 1
        self._lines: dict[int, int] = {}
        self.stores_cleared = 0
        self.loads_cleared = 0

    def _line_and_mask(self, address: int, size: int) -> tuple[int, int]:
        line = address - address % self.line_bytes
        offset = address - line
        mask = ((1 << size) - 1) << offset
        return line, mask & self._full_mask

    def range_tainted(self, address: int, size: int) -> bool:
        """Is any byte of [address, address+size) tainted?

        Accesses that straddle a line boundary are conservatively split.
        """
        if self.mode == ShadowMode.NONE:
            return True
        while size > 0:
            line, mask = self._line_and_mask(address, size)
            span = min(size, self.line_bytes - (address - line))
            if self._lines.get(line, self._full_mask) & mask:
                return True
            address += span
            size -= span
        return False

    def set_range(self, address: int, size: int, tainted: bool) -> None:
        """Overwrite the taint of [address, address+size) (store rule)."""
        if self.mode == ShadowMode.NONE:
            return
        while size > 0:
            line, mask = self._line_and_mask(address, size)
            span = min(size, self.line_bytes - (address - line))
            current = self._lines.get(line, self._full_mask)
            if tainted:
                self._lines[line] = current | mask
            else:
                self._lines[line] = current & ~mask
            address += span
            size -= span

    def clear_range(self, address: int, size: int) -> None:
        self.set_range(address, size, tainted=False)

    def invalidate_line(self, line_address: int) -> None:
        """L1D eviction/invalidation: data becomes tainted again (L1 mode)."""
        if self.mode == ShadowMode.L1:
            self._lines.pop(line_address, None)

    def lines(self) -> list[int]:
        """Line addresses currently tracked (i.e. holding explicit taint).

        In L1 mode every tracked line must be resident in the real L1D —
        an eviction drops the shadow line — which is exactly the
        ``shadow-residency`` invariant the repro.check sanitizer enforces.
        """
        return list(self._lines)

    def resident_untainted_bytes(self) -> int:
        """Diagnostic: how many bytes are currently tracked as untainted."""
        total = 0
        for mask in self._lines.values():
            total += self.line_bytes - bin(mask).count("1")
        return total
