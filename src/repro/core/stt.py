"""Speculative Taint Tracking (STT) engine (paper Section 2.2, [83]).

STT protects *speculatively-accessed* data only: the output of every load is
s-tainted until the load reaches the visibility point of the attack model.
Taint propagates through register dataflow via the youngest-root-of-taint
(YRoT) scheme: each physical register remembers the youngest access
instruction (load) its value transitively depends on, and is s-tainted
exactly while that root has not reached the VP.  Because the VP frontier is a
program-order prefix, the youngest root reaching the VP implies all older
roots have too — untainting is a single O(1) check.

Protection policy: delay transmitters whose address operand is s-tainted and
delay branch-resolution effects while the predicate is s-tainted (blocking
both explicit and implicit channels).  Store-to-load forwarding is hidden by
always performing the cache access (Section 6.7's starting point).
"""

from __future__ import annotations

from typing import Optional

from repro.core.attack_model import AttackModel, vp_obstacle
from repro.pipeline.dyninst import DynInst
from repro.pipeline.engine_api import ProtectionEngine


class STTEngine(ProtectionEngine):
    """STT: protects speculatively-accessed data over all covert channels."""

    protects_speculative_data = True
    protects_nonspeculative_secrets = False

    def __init__(self, model: AttackModel):
        super().__init__()
        self.model = model
        self.name = "STT"
        self.vp_predicate = vp_obstacle(model)
        # Physical register -> youngest root of taint, stored as
        # (seq, load DynInst).  The seq tag makes the lazy liveness check
        # safe under the vector backend's DynInst pooling: a squashed root
        # may be recycled into a brand-new instruction (``squashed`` back to
        # False), but its seq changes — seqs are never reused — so a stale
        # entry can never masquerade as a live root.
        self._root_of: dict[int, tuple[int, DynInst]] = {}

    # --------------------------------------------------------------- s-taint
    def _live_root(self, preg: int) -> Optional[DynInst]:
        entry = self._root_of.get(preg)
        if entry is None:
            return None
        seq, root = entry
        if (root.seq != seq or root.reached_vp or root.squashed
                or root.retired):
            return None
        return root

    def s_tainted(self, preg: int) -> bool:
        return preg >= 0 and self._live_root(preg) is not None

    def on_rename(self, di: DynInst) -> None:
        if di.is_load:
            # Output of an access instruction: s-tainted until the load's VP.
            if di.prd >= 0:
                self._root_of[di.prd] = (di.seq, di)
            return
        root: Optional[DynInst] = None
        for preg in (di.prs1, di.prs2):
            if preg < 0:
                continue
            candidate = self._live_root(preg)
            if candidate is not None and (root is None
                                          or candidate.seq > root.seq):
                root = candidate
        if di.prd >= 0:
            if root is None:
                self._root_of.pop(di.prd, None)
            else:
                self._root_of[di.prd] = (root.seq, root)

    # ---------------------------------------------------------------- gating
    def may_compute_address(self, di: DynInst) -> bool:
        if self.s_tainted(di.prs1):
            self.bump("delayed_transmitter_checks")
            return False
        return True

    def may_resolve(self, di: DynInst) -> bool:
        if self.s_tainted(di.prs1) or (di.inst.info.reads_rs2
                                       and self.s_tainted(di.prs2)):
            self.bump("delayed_resolution_checks")
            return False
        return True

    def skip_cache_for_forwarding(self, load: DynInst, store: DynInst) -> bool:
        # Hide the forwarding decision: always perform the cache access
        # unless the implicit branch is public (all involved addresses
        # s-untainted).  Conservative: we only skip when both instructions
        # are past the VP.
        return load.reached_vp and store.reached_vp

    def tick(self) -> None:
        self.core.advance_vp(self.vp_predicate)

    # ------------------------------------------------- quiescent fast-forward
    # The gating hooks above bump their delayed-check counters once per
    # consult, including on quiescent cycles; replay the per-cycle delta
    # over fast-forwarded stretches so the totals stay bit-identical.
    def quiet_state(self) -> tuple:
        counters = self.metrics.scalars
        return (counters.get("delayed_transmitter_checks", 0),
                counters.get("delayed_resolution_checks", 0))

    def on_quiet_cycles(self, skipped: int, before: tuple) -> None:
        after = self.quiet_state()
        for key, b, a in zip(("delayed_transmitter_checks",
                              "delayed_resolution_checks"), before, after):
            delta = a - b
            if delta:
                self.metrics.add(key, delta * skipped)
