"""Baseline protection engines: UnsafeBaseline and SecureBaseline (Table 2)."""

from __future__ import annotations

from repro.core.attack_model import AttackModel, vp_obstacle
from repro.pipeline.dyninst import DynInst
from repro.pipeline.engine_api import ProtectionEngine


class UnsafeBaseline(ProtectionEngine):
    """An unmodified, insecure processor (Table 2 row 1).

    Identical to the default :class:`ProtectionEngine` but named explicitly
    for the configuration registry.
    """

    name = "UnsafeBaseline"


class SecureBaseline(ProtectionEngine):
    """Delay loads and stores until they reach the visibility point.

    This is the paper's SecureBaseline (Table 2): the same protection scope
    as SPT — both speculatively-accessed data and non-speculative secrets —
    achieved by brute force (NDA-style delayed transmitters), with branch
    resolution likewise applied only at the VP so implicit channels carry no
    speculative information.
    """

    name = "SecureBaseline"
    protects_speculative_data = True
    protects_nonspeculative_secrets = True

    def __init__(self, model: AttackModel):
        super().__init__()
        self.model = model
        self.vp_predicate = vp_obstacle(model)

    def may_compute_address(self, di: DynInst) -> bool:
        return di.reached_vp

    def may_resolve(self, di: DynInst) -> bool:
        return di.reached_vp

    def skip_cache_for_forwarding(self, load: DynInst, store: DynInst) -> bool:
        # A load only issues at the VP, where every older store address is
        # architecturally determined; the forwarding decision is public.
        return True

    def tick(self) -> None:
        self.core.advance_vp(self.vp_predicate)
