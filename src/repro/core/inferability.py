"""Executable counterpart of the paper's security proof (Section 8).

The proof's Lemma 2 states that every untainted value is *inferable by the
attacker*: expressible as a function of operands of transmitters that have
reached the visibility point.  For the gate-level algebra this is directly
checkable by brute force: enumerate every assignment to the tainted primary
inputs that is consistent with the circuit's untainted wires, and verify that
each untainted wire takes the same value under all consistent assignments —
i.e. its value is determined by public information alone.

This module is used by the property-based tests to validate the untaint
algebra of :mod:`repro.core.gates` on thousands of random circuits.
"""

from __future__ import annotations

from itertools import product
from typing import Optional

from repro.core.gates import Circuit, gate_value


def consistent_assignments(circuit: Circuit,
                           original_values: dict) -> list:
    """All primary-input assignments consistent with public knowledge.

    Public knowledge = the circuit structure, the values of the inputs that
    were public from the start, and the values of the *explicitly
    declassified* wires (leaked operands).  Crucially it does NOT include
    wires the algebra merely marked untainted — those are exactly what the
    soundness check must validate.  ``original_values`` maps primary input
    name to its true value (defines the search space shape).
    """
    inputs = circuit.primary_inputs()
    free_inputs = [name for name in inputs
                   if name not in circuit.initially_public
                   and name not in circuit.declassified]
    fixed = {name: circuit.value(name) for name in inputs
             if name not in free_inputs}
    assignments = []
    for bits in product((0, 1), repeat=len(free_inputs)):
        candidate = dict(fixed)
        candidate.update(dict(zip(free_inputs, bits)))
        if _consistent(circuit, candidate):
            assignments.append(candidate)
    return assignments


def _consistent(circuit: Circuit, input_values: dict) -> bool:
    """Would these input values reproduce every declassified wire's value?"""
    values = dict(input_values)
    for gate in circuit.gates:
        values[gate.output] = gate_value(
            gate.op, [values[w] for w in gate.inputs])
    for name in circuit.declassified:
        if values[name] != circuit.wires[name].value:
            return False
    return True


def soundness_violation(circuit: Circuit) -> Optional[str]:
    """Check Lemma 2 on a circuit; returns a description of any violation.

    For every untainted wire W, every input assignment consistent with the
    public wires must give W the same value.  If two consistent assignments
    disagree on W, then W's untainting leaked information it should not have
    — the algebra would be unsound.
    """
    inputs = circuit.primary_inputs()
    original = {name: circuit.value(name) for name in inputs}
    assignments = consistent_assignments(circuit, original)
    if not assignments:
        return "no consistent assignment (internal inconsistency)"
    for name, wire in circuit.wires.items():
        if wire.tainted:
            continue
        witnessed = set()
        for assignment in assignments:
            values = dict(assignment)
            for gate in circuit.gates:
                values[gate.output] = gate_value(
                    gate.op, [values[w] for w in gate.inputs])
            witnessed.add(values[name])
        if len(witnessed) > 1:
            return (f"wire {name} is untainted but not determined by public "
                    f"knowledge (possible values: {sorted(witnessed)})")
    return None
