"""Attack models and their visibility-point predicates (paper Section 2.2.1).

* **Spectre** — covers control-flow speculation: an instruction reaches the
  visibility point (VP) once all older control-flow instructions have had
  their resolution applied.
* **Futuristic** — covers all forms of speculation: an instruction reaches
  the VP once it can no longer be squashed, i.e. every older instruction has
  fully completed (loads returned data, stores computed address and data,
  control resolved).
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.pipeline.dyninst import DynInst


class AttackModel(enum.Enum):
    SPECTRE = "spectre"
    FUTURISTIC = "futuristic"


def _spectre_obstacle(di: DynInst) -> bool:
    return di.is_predicted_control and not di.resolution_applied


def _futuristic_obstacle(di: DynInst) -> bool:
    if di.is_load:
        return not di.mem_complete
    if di.is_predicted_control:
        return not (di.complete and di.resolution_applied)
    return not di.complete


def vp_obstacle(model: AttackModel) -> Callable[[DynInst], bool]:
    """The predicate blocking the VP frontier under ``model``."""
    if model == AttackModel.SPECTRE:
        return _spectre_obstacle
    return _futuristic_obstacle
