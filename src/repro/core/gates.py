"""Gate-level untaint algebra (paper Section 5).

A small boolean-circuit model with per-wire (value, taint) tuples that
implements:

* **forward information flow** (Section 5.1) — GLIFT-precise taint
  propagation through AND/OR/XOR/NOT, re-applied dynamically after
  declassifications;
* **backward information flow** (Section 5.2) — the paper's novel untaint
  operation: when an output becomes untainted, gate semantics plus other
  untainted wires can imply input values, untainting them too;
* **composition** (Section 5.3) — fixpoint propagation across arbitrary
  DAGs of gates, reproducing the worked example of Figure 3.

This module is deliberately independent of the pipeline: it is the algebra
in its purest form, and the property tests brute-force verify its soundness
(an untainted wire's value must be uniquely determined by the declassified
wires and circuit structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

GATE_TYPES = ("AND", "OR", "XOR", "NOT", "WIRE")


class CircuitError(Exception):
    """Raised for malformed circuits or inconsistent assignments."""


@dataclass
class Wire:
    """One boolean wire: a concrete value and a taint bit."""

    name: str
    value: int
    tainted: bool

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise CircuitError(f"wire {self.name}: value must be 0/1")


@dataclass
class Gate:
    """One gate: ``output = op(inputs)``."""

    op: str
    inputs: tuple
    output: str

    def __post_init__(self) -> None:
        if self.op not in GATE_TYPES:
            raise CircuitError(f"unknown gate {self.op}")
        arity = 1 if self.op in ("NOT", "WIRE") else 2
        if len(self.inputs) != arity:
            raise CircuitError(f"{self.op} expects {arity} inputs")


def gate_value(op: str, values: Iterable[int]) -> int:
    values = list(values)
    if op == "AND":
        return values[0] & values[1]
    if op == "OR":
        return values[0] | values[1]
    if op == "XOR":
        return values[0] ^ values[1]
    if op == "NOT":
        return values[0] ^ 1
    if op == "WIRE":
        return values[0]
    raise CircuitError(f"unknown gate {op}")


class Circuit:
    """A DAG of gates over named wires with declassification support."""

    def __init__(self) -> None:
        self.wires: dict[str, Wire] = {}
        self.gates: list[Gate] = []
        self._driver: dict[str, Gate] = {}
        # Attacker knowledge bookkeeping (used by the inferability checker):
        # wires whose values were explicitly leaked, and inputs that were
        # public from the start.
        self.declassified: set = set()
        self.initially_public: set = set()

    # -------------------------------------------------------------- building
    def input(self, name: str, value: int, tainted: bool) -> str:
        """Declare a primary input wire."""
        if name in self.wires:
            raise CircuitError(f"duplicate wire {name}")
        self.wires[name] = Wire(name, value, tainted)
        if not tainted:
            self.initially_public.add(name)
        return name

    def gate(self, op: str, *inputs: str, name: Optional[str] = None) -> str:
        """Add a gate; the output wire's value/taint follow the forward rules."""
        for wire in inputs:
            if wire not in self.wires:
                raise CircuitError(f"unknown input wire {wire}")
        name = name or f"w{len(self.wires)}"
        if name in self.wires:
            raise CircuitError(f"duplicate wire {name}")
        gate = Gate(op, tuple(inputs), name)
        value = gate_value(op, [self.wires[w].value for w in inputs])
        tainted = self._forward_taint(gate)
        self.wires[name] = Wire(name, value, tainted)
        self.gates.append(gate)
        self._driver[name] = gate
        return name

    # --------------------------------------------------------------- algebra
    def _forward_taint(self, gate: Gate) -> bool:
        """GLIFT-precise forward rule (Section 5.1)."""
        ins = [self.wires[w] for w in gate.inputs]
        if gate.op in ("NOT", "WIRE"):
            return ins[0].tainted
        a, b = ins
        if gate.op == "XOR":
            return a.tainted or b.tainted
        if gate.op == "AND":
            # An untainted 0 forces the output to a public 0.
            if not a.tainted and a.value == 0:
                return False
            if not b.tainted and b.value == 0:
                return False
            return a.tainted or b.tainted
        if gate.op == "OR":
            if not a.tainted and a.value == 1:
                return False
            if not b.tainted and b.value == 1:
                return False
            return a.tainted or b.tainted
        raise CircuitError(gate.op)

    def _backward_untaint(self, gate: Gate) -> list:
        """Backward rule (Section 5.2): returns wires to untaint."""
        out = self.wires[gate.output]
        if out.tainted:
            return []
        ins = [self.wires[w] for w in gate.inputs]
        if gate.op in ("NOT", "WIRE"):
            return [ins[0].name] if ins[0].tainted else []
        a, b = ins
        newly: list[str] = []
        if gate.op == "XOR":
            # Output plus one input determines the other.
            if a.tainted and not b.tainted:
                newly.append(a.name)
            elif b.tainted and not a.tainted:
                newly.append(b.name)
        elif gate.op == "AND":
            if out.value == 1:
                # 1 = a & b  =>  a = b = 1.
                newly.extend(w.name for w in (a, b) if w.tainted)
            else:
                # 0 = a & b with one input an untainted 1 => other is 0.
                if not a.tainted and a.value == 1 and b.tainted:
                    newly.append(b.name)
                if not b.tainted and b.value == 1 and a.tainted:
                    newly.append(a.name)
        elif gate.op == "OR":
            if out.value == 0:
                newly.extend(w.name for w in (a, b) if w.tainted)
            else:
                if not a.tainted and a.value == 0 and b.tainted:
                    newly.append(b.name)
                if not b.tainted and b.value == 0 and a.tainted:
                    newly.append(a.name)
        return newly

    def declassify(self, name: str) -> list:
        """Declassify one wire and propagate untaint to a fixpoint.

        Returns the names of every wire untainted as a consequence
        (including ``name`` itself if it was tainted).
        """
        if name not in self.wires:
            raise CircuitError(f"unknown wire {name}")
        self.declassified.add(name)
        newly: list[str] = []
        wire = self.wires[name]
        if wire.tainted:
            wire.tainted = False
            newly.append(name)
        newly.extend(self.propagate())
        return newly

    def propagate(self) -> list:
        """Run forward + backward rules to a fixpoint; returns untainted wires."""
        newly: list[str] = []
        changed = True
        while changed:
            changed = False
            for gate in self.gates:
                out = self.wires[gate.output]
                if out.tainted and not self._forward_taint(gate):
                    out.tainted = False
                    newly.append(out.name)
                    changed = True
                for wire_name in self._backward_untaint(gate):
                    self.wires[wire_name].tainted = False
                    newly.append(wire_name)
                    changed = True
        return newly

    # --------------------------------------------------------------- queries
    def tainted(self, name: str) -> bool:
        return self.wires[name].tainted

    def value(self, name: str) -> int:
        return self.wires[name].value

    def primary_inputs(self) -> list:
        driven = set(self._driver)
        return [name for name in self.wires if name not in driven]
